"""Sensitivity sweeps (ablations over the design parameters).

The paper fixes 4 VCs x 4-flit buffers (Section V); these sweeps quantify
how the pseudo-circuit win depends on those choices and on load — the
ablation experiments a reviewer would ask for:

* ``sweep_vcs`` — more VCs dilute per-VC locality under dynamic VA but give
  static VA more flows to separate;
* ``sweep_buffer_depth`` — deeper buffers lengthen the stretch a circuit
  can stream and delay credit terminations;
* ``sweep_load`` — reuse decays as contention rises (the paper's Section
  VIII observation that pseudo-circuits help little at saturation).

Every sweep point gets its own seed derived from the sweep seed (see
``parallel.derive_seed``), and all points of a sweep are dispatched through
``parallel.run_experiments``: simulations run across worker processes, and
the ordered merge keeps the returned rows bit-identical to a serial run.

The scheduler's fault-tolerance knobs pass straight through: ``journal=``
checkpoints every completed point, ``resume=True`` replays an interrupted
sweep's checkpoint file, ``retries``/``timeout`` govern worker
retries and pool-stall recovery (``DESIGN.md`` §11), and ``telemetry=``
records the span/event stream documented in ``repro.telemetry``.
"""

from __future__ import annotations

from ..network.config import BASELINE, PSEUDO_SB
from .experiment import ExperimentConfig
from .parallel import derive_seed, run_experiments
from .report import reduction


def _synthetic(**overrides) -> ExperimentConfig:
    defaults = dict(topology="mesh", kx=8, ky=8, concentration=1,
                    routing="xy", vc_policy="static", pattern="uniform",
                    rate=0.10, packet_size=5, synth_cycles=1000,
                    synth_warmup=250, seed=1)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _rows(key: str, points: list, max_workers: int | None,
          check: bool = False, **scheduler) -> list[dict]:
    """Simulate baseline + Pseudo+S+B for every point, merged in order."""
    configs = []
    for _, cfg in points:
        configs.append(cfg.with_scheme(BASELINE))
        configs.append(cfg.with_scheme(PSEUDO_SB))
    results = run_experiments(configs, max_workers=max_workers,
                              check=check, **scheduler)
    rows = []
    for k, (value, _) in enumerate(points):
        base, full = results[2 * k], results[2 * k + 1]
        rows.append({
            key: value,
            "baseline_latency": base.avg_latency,
            "latency": full.avg_latency,
            "reduction": reduction(base.avg_latency, full.avg_latency),
            "reusability": full.reusability,
            "buffer_bypass_rate": full.buffer_bypass_rate,
        })
    return rows


def _scheduler_kwargs(overrides: dict) -> dict:
    """Split the scheduler passthrough keywords out of sweep overrides."""
    scheduler = {}
    for name in ("journal", "resume", "retries", "backoff_base",
                 "backoff_cap", "timeout", "sleep", "store", "batch_size",
                 "check_stride", "telemetry"):
        if name in overrides:
            scheduler[name] = overrides.pop(name)
    return scheduler


def sweep_vcs(vc_counts=(2, 4, 8), max_workers: int | None = None,
              check: bool = False, **overrides) -> list[dict]:
    """Ablate the VC count (baseline vs Pseudo+S+B per point)."""
    scheduler = _scheduler_kwargs(overrides)
    sweep_seed = overrides.pop("seed", 1)
    points = [(n, _synthetic(num_vcs=n,
                             seed=derive_seed(sweep_seed, "vcs", n),
                             **overrides))
              for n in vc_counts]
    return _rows("num_vcs", points, max_workers, check, **scheduler)


def sweep_buffer_depth(depths=(2, 4, 8), max_workers: int | None = None,
                       check: bool = False, **overrides) -> list[dict]:
    """Ablate the per-VC buffer depth (baseline vs Pseudo+S+B per point)."""
    scheduler = _scheduler_kwargs(overrides)
    sweep_seed = overrides.pop("seed", 1)
    points = [(d, _synthetic(buffer_depth=d,
                             seed=derive_seed(sweep_seed, "buffers", d),
                             **overrides))
              for d in depths]
    return _rows("buffer_depth", points, max_workers, check, **scheduler)


def sweep_load(loads=(0.05, 0.15, 0.25), max_workers: int | None = None,
               check: bool = False, **overrides) -> list[dict]:
    """Ablate the injection rate (baseline vs Pseudo+S+B per point)."""
    scheduler = _scheduler_kwargs(overrides)
    sweep_seed = overrides.pop("seed", 1)
    points = [(load, _synthetic(rate=load,
                                seed=derive_seed(sweep_seed, "load", load),
                                **overrides))
              for load in loads]
    return _rows("load", points, max_workers, check, **scheduler)
