"""Sensitivity sweeps (ablations over the design parameters).

The paper fixes 4 VCs x 4-flit buffers (Section V); these sweeps quantify
how the pseudo-circuit win depends on those choices and on load — the
ablation experiments a reviewer would ask for:

* ``sweep_vcs`` — more VCs dilute per-VC locality under dynamic VA but give
  static VA more flows to separate;
* ``sweep_buffer_depth`` — deeper buffers lengthen the stretch a circuit
  can stream and delay credit terminations;
* ``sweep_load`` — reuse decays as contention rises (the paper's Section
  VIII observation that pseudo-circuits help little at saturation).
"""

from __future__ import annotations

from dataclasses import replace

from ..network.config import BASELINE, PSEUDO_SB
from .experiment import ExperimentConfig, run_experiment
from .report import reduction


def _point(cfg: ExperimentConfig) -> dict:
    base = run_experiment(cfg.with_scheme(BASELINE))
    full = run_experiment(cfg.with_scheme(PSEUDO_SB))
    return {
        "baseline_latency": base.avg_latency,
        "latency": full.avg_latency,
        "reduction": reduction(base.avg_latency, full.avg_latency),
        "reusability": full.reusability,
        "buffer_bypass_rate": full.buffer_bypass_rate,
    }


def _synthetic(**overrides) -> ExperimentConfig:
    defaults = dict(topology="mesh", kx=8, ky=8, concentration=1,
                    routing="xy", vc_policy="static", pattern="uniform",
                    rate=0.10, packet_size=5, synth_cycles=1000,
                    synth_warmup=250, seed=1)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def sweep_vcs(vc_counts=(2, 4, 8), **overrides) -> list[dict]:
    rows = []
    for num_vcs in vc_counts:
        cfg = _synthetic(num_vcs=num_vcs, **overrides)
        rows.append({"num_vcs": num_vcs, **_point(cfg)})
    return rows


def sweep_buffer_depth(depths=(2, 4, 8), **overrides) -> list[dict]:
    rows = []
    for depth in depths:
        cfg = _synthetic(buffer_depth=depth, **overrides)
        rows.append({"buffer_depth": depth, **_point(cfg)})
    return rows


def sweep_load(loads=(0.05, 0.15, 0.25), **overrides) -> list[dict]:
    rows = []
    for load in loads:
        cfg = _synthetic(rate=load, **overrides)
        rows.append({"load": load, **_point(cfg)})
    return rows
