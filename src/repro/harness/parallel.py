"""Process-parallel experiment execution.

``run_experiments`` fans a list of ``ExperimentConfig`` points out over a
``concurrent.futures.ProcessPoolExecutor`` and merges the results back in
submission order, so callers see exactly the list a serial loop would have
produced. Determinism is free: every config carries its own seed, a
simulation's outcome depends on nothing but its config, and the ordered
merge removes scheduling effects — parallel and serial runs are
bit-identical (``tests/network/test_active_set.py`` locks this in).

Workers are forked (POSIX default), so they inherit the parent's trace and
run caches; results travel back pickled and are folded into the parent's
cache, which lets the figure code keep its cheap memoized
``run_experiment`` calls after a ``prefetch``.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor

from ..instrument import run_manifest
from .experiment import (ExperimentConfig, Result, cache_result, cached,
                         run_experiment)


def derive_seed(sweep_seed: int, *coords) -> int:
    """Deterministic per-point seed from a sweep seed and point coordinates.

    Hashing decorrelates neighbouring points (seed 1, 2, 3 ... would share
    most of their Mersenne-Twister state) while keeping every point fully
    reproducible from the single sweep seed.
    """
    text = ":".join(str(part) for part in (sweep_seed, *coords))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") + 1


def default_workers() -> int:
    """Worker count used when callers pass ``max_workers=None``."""
    return max(1, os.cpu_count() or 1)


class SweepPointError(RuntimeError):
    """One point of a sweep failed; names the failing point's parameters.

    A bare exception out of a worker process loses all context about
    *which* of the fanned-out simulations died, so every point — worker or
    inline — is wrapped to attach its ``ExperimentConfig``. The original
    exception stays chained as ``__cause__`` (inline runs) and summarized
    in ``cause`` (which also survives pickling back from a worker). When
    the run manifest of the failing point is available it is embedded in
    the message and kept on ``manifest``, so the report names the exact
    config hash, seed and commit needed to reproduce the failure.
    """

    def __init__(self, point: str, cause: str, manifest: dict | None = None):
        message = f"sweep point {point} failed: {cause}"
        if manifest is not None:
            message += "\nrun manifest: " + json.dumps(
                manifest, sort_keys=True, default=str)
        super().__init__(message)
        self.point = point
        self.cause = cause
        self.manifest = manifest

    def __reduce__(self):
        # Default exception pickling would re-call __init__ with the
        # formatted message as ``point``; rebuild from the raw fields.
        return (SweepPointError, (self.point, self.cause, self.manifest))


def _run_point(cfg: ExperimentConfig, check: bool = False) -> Result:
    """Simulate one point, labelling any failure with the point's config."""
    try:
        return run_experiment(cfg, check=check)
    except Exception as exc:
        try:
            manifest = run_manifest(cfg, seed=cfg.seed)
        except Exception:
            manifest = None  # provenance must never mask the real failure
        raise SweepPointError(
            f"{cfg.label} ({cfg!r})", f"{type(exc).__name__}: {exc}",
            manifest,
        ) from exc


def _run_chunk(configs: Sequence[ExperimentConfig],
               check: bool = False) -> list[Result]:
    """Worker entry point: simulate one chunk of configs, in order."""
    return [_run_point(cfg, check) for cfg in configs]


def run_experiments(configs: Iterable[ExperimentConfig],
                    max_workers: int | None = None,
                    chunk_size: int | None = None,
                    check: bool = False) -> list[Result]:
    """Run many experiment points, returning results in input order.

    Cached points are answered from the in-process memo without touching
    the pool; the remainder is split into chunks (amortizing process
    round-trips) and dispatched. With ``max_workers`` of 1 — or a single
    uncached point — everything runs inline, which keeps tests and
    single-core machines free of pool overhead.

    ``check=True`` attaches the full monitor suite to every point
    (strict mode: the first invariant violation surfaces as a
    ``SweepPointError`` naming the point). Checked runs bypass the memo
    entirely — a cached result would skip the monitors.
    """
    configs = list(configs)
    results: list[Result | None] = [None] * len(configs)
    todo: list[tuple[int, ExperimentConfig]] = []
    for idx, cfg in enumerate(configs):
        hit = cached(cfg) if not check else None
        if hit is not None:
            results[idx] = hit
        else:
            todo.append((idx, cfg))
    if not todo:
        return results
    if max_workers is None:
        max_workers = default_workers()
    if max_workers <= 1 or len(todo) == 1:
        for idx, cfg in todo:
            results[idx] = _run_point(cfg, check)
        return results
    if chunk_size is None:
        # ~4 chunks per worker balances load without excessive pickling.
        chunk_size = max(1, len(todo) // (max_workers * 4))
    chunks = [todo[lo:lo + chunk_size]
              for lo in range(0, len(todo), chunk_size)]
    workers = min(max_workers, len(chunks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_run_chunk, [cfg for _, cfg in chunk],
                               check)
                   for chunk in chunks]
        for chunk, future in zip(chunks, futures):
            for (idx, _), result in zip(chunk, future.result()):
                results[idx] = result
                if not check:
                    cache_result(result)
    return results


def prefetch(configs: Iterable[ExperimentConfig],
             max_workers: int | None = None) -> None:
    """Warm the run cache so later ``run_experiment`` calls are instant.

    The figure code stays written as straightforward serial loops; calling
    ``prefetch`` with every config a figure will need turns those loops
    into cache lookups while the simulations run in parallel.
    """
    run_experiments(configs, max_workers=max_workers)
