"""Fault-tolerant, resumable process-parallel experiment scheduler.

``run_experiments`` fans a list of ``ExperimentConfig`` points out over a
``concurrent.futures.ProcessPoolExecutor`` and merges the results back in
submission order, so callers see exactly the list a serial loop would
have produced. Determinism is free: every config carries its own seed, a
simulation's outcome depends on nothing but its config, and the ordered
merge removes scheduling effects — parallel and serial runs are
bit-identical (``tests/network/test_active_set.py`` locks this in).

On top of that ordered merge the scheduler is built to *survive*
(``DESIGN.md`` §11):

* **Checkpointing** — with ``journal=`` every completed point is
  appended (flushed + fsync'd) to a ``repro.store.SweepJournal`` as it
  lands; ``resume=True`` replays journaled points instead of
  recomputing them, and the merge stays bit-identical to an
  uninterrupted run because results are pure functions of their config.
* **Retries with deterministic backoff** — ``retries=N`` grants every
  point up to N extra attempts, sleeping ``backoff_base * 2**(k-1)``
  (capped at ``backoff_cap``) before the k-th retry. No jitter: the
  wait sequence is reproducible, which matters more here than
  thundering-herd avoidance (the "herd" is our own worker pool). The
  ``sleep`` callable is injectable so tests can run the schedule on a
  fake clock.
* **Graceful degradation** — a broken pool (worker SIGKILLed, fork
  bomb, pickling failure) or a stall past ``timeout`` seconds without
  any chunk completing abandons the pool and finishes the remaining
  points serially in-process, in input order.
* **Durable caching** — completed points are written through the
  content-addressed ``ResultStore`` (explicit ``store=`` or the
  process-wide default installed by
  ``experiment.set_default_store``), so a *new process* reruns nothing
  that is already known.
* **Telemetry** — with ``telemetry=`` every scheduling decision and
  cost lands in an append-only span/event stream
  (``repro.telemetry``): one closed span per completed point stamped
  with its resolution tier (journal-replay/memo/store/simulate), the
  backend chosen and why, attempt count and backoff history, plus
  scheduler lifecycle events (batch-group formation, pool dispatch,
  degradation, retries) and per-process store-counter deltas. The
  default is ``telemetry=None`` and that path is a null object — no
  stream, no spans, no timing calls (the bench gate's
  ``telemetry_cold_check`` enforces it).
* **Batched execution** — after the cache layers resolve, points that
  share a ``batch_key`` (same chip shape, scheme and VC policy, with
  backend ``batched`` or ``auto``) are grouped into units of up to
  ``batch_size`` lanes and simulated as one ``BatchNetwork`` per unit
  (``experiment.run_batch_experiments``), amortizing the vectorized
  core's per-cycle dispatch cost across the lanes. Lanes stay
  bit-identical to solo runs, store/journal entries stay per-point,
  and a failing batch falls back to solo execution with the full
  retry budget — batching is purely a throughput tier.

Workers are forked (POSIX default), so they inherit the parent's trace
and run caches; results travel back pickled and are folded into the
parent's cache, which lets the figure code keep its cheap memoized
``run_experiment`` calls after a ``prefetch``. ``check=True`` runs
bypass every cache layer — memo, store and journal — because a replayed
result would silently skip the monitors.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from ..instrument import run_manifest
from ..store import (SweepJournal, payload_to_result, result_to_payload,
                     store_key)
from .experiment import (ExperimentConfig, Result, backend_decision,
                         batch_key, cache_result, cached, default_store,
                         memo_hit, run_batch_experiments, run_experiment)


def derive_seed(sweep_seed: int, *coords) -> int:
    """Deterministic per-point seed from a sweep seed and point coordinates.

    Hashing decorrelates neighbouring points (seed 1, 2, 3 ... would share
    most of their Mersenne-Twister state) while keeping every point fully
    reproducible from the single sweep seed.
    """
    text = ":".join(str(part) for part in (sweep_seed, *coords))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") + 1


def default_workers() -> int:
    """Worker count used when callers pass ``max_workers=None``."""
    return max(1, os.cpu_count() or 1)


def backoff_delay(attempt: int, base: float, cap: float) -> float:
    """Seconds to wait before retry ``attempt`` (1-based): exponential,
    capped, deliberately jitter-free so retry schedules are reproducible.
    """
    return min(cap, base * (2 ** (attempt - 1)))


class SweepPointError(RuntimeError):
    """One point of a sweep failed; names the failing point's parameters.

    A bare exception out of a worker process loses all context about
    *which* of the fanned-out simulations died, so every point — worker or
    inline — is wrapped to attach its ``ExperimentConfig``. The original
    exception stays chained as ``__cause__`` (inline runs) and summarized
    in ``cause`` (which also survives pickling back from a worker). When
    the run manifest of the failing point is available it is embedded in
    the message and kept on ``manifest``, so the report names the exact
    config hash, seed and commit needed to reproduce the failure.

    When the scheduler retried the point, ``attempts`` counts every try
    and ``backoff_s`` lists the waits (seconds) that preceded each retry,
    so the error is a complete record of the retry schedule.
    """

    def __init__(self, point: str, cause: str, manifest: dict | None = None,
                 attempts: int = 1,
                 backoff_s: Sequence[float] | None = None):
        message = f"sweep point {point} failed"
        backoff_s = list(backoff_s or [])
        if attempts > 1:
            waits = ", ".join(f"{delay:g}s" for delay in backoff_s)
            message += f" after {attempts} attempts (backoff: {waits})"
        message += f": {cause}"
        if manifest is not None:
            message += "\nrun manifest: " + json.dumps(
                manifest, sort_keys=True, default=str)
        super().__init__(message)
        self.point = point
        self.cause = cause
        self.manifest = manifest
        self.attempts = attempts
        self.backoff_s = backoff_s

    def __reduce__(self):
        """Rebuild from the raw fields (default exception pickling would
        re-call ``__init__`` with the formatted message as ``point``)."""
        return (SweepPointError, (self.point, self.cause, self.manifest,
                                  self.attempts, self.backoff_s))


def _run_point(cfg: ExperimentConfig, check: bool = False,
               check_stride: int = 1) -> Result:
    """Simulate one point, labelling any failure with the point's config."""
    try:
        return run_experiment(cfg, check=check, check_stride=check_stride)
    except Exception as exc:
        try:
            manifest = run_manifest(cfg, seed=cfg.seed)
        except Exception:
            manifest = None  # provenance must never mask the real failure
        raise SweepPointError(
            f"{cfg.label} ({cfg!r})", f"{type(exc).__name__}: {exc}",
            manifest,
        ) from exc


def _group_units(todo: Sequence[tuple], batch_size: int) -> list[list]:
    """Group todo points into execution units of at most ``batch_size``.

    Points whose ``batch_key`` matches (same chip shape, scheme, VC
    policy — and a backend that opted into batching) land in one unit
    and will run as lanes of a single ``BatchNetwork``; everything else
    becomes a singleton unit. Units are ordered by their first point, so
    with ``batch_size=1`` this degenerates to the plain per-point list
    and the ordered result merge is unaffected either way.
    """
    if batch_size <= 1:
        return [[point] for point in todo]
    units: list[list] = []
    filling: dict = {}  # batch_key -> unit still below batch_size
    for idx, cfg in todo:
        key = batch_key(cfg)
        if key is None:
            units.append([(idx, cfg)])
            continue
        unit = filling.get(key)
        if unit is None:
            unit = filling[key] = []
            units.append(unit)
        unit.append((idx, cfg))
        if len(unit) >= batch_size:
            del filling[key]
    return units


def _decision_fields(cfg: ExperimentConfig, lanes: int = 1) -> dict:
    """Span fields naming the chosen backend and the selector inputs."""
    try:
        decision = backend_decision(cfg, lanes=lanes)
    except Exception:
        return {}  # observation must never fail the point
    return {"backend": decision.pop("chosen", None), "decision": decision}


def _run_unit(points: Sequence[tuple], check: bool = False,
              check_stride: int = 1, tel=None) -> list:
    """Simulate one unit: a multi-point unit runs as one batched chip.

    ``points`` are ``(idx, cfg)`` pairs (the sweep index travels with
    the config so telemetry spans name the point they close). A failure
    of the *batch* (any lane's exception aborts the shared chip) falls
    back to per-point simulation, which both isolates the failing lane
    and completes its innocent unit-mates. Per-point failures are
    returned as ``SweepPointError`` outcomes, never raised, so one bad
    point cannot discard the unit's completed work. Checked units stay
    batched: one ``VectorInvariantChecker`` sweeps every lane of the
    shared chip at once.

    With ``tel`` every completed point emits its closed span *before*
    the outcome travels back to the parent (whose ``finish_point``
    journals it) — the ordering that makes "every journaled point has a
    span" hold through a SIGKILL at any instant.
    """
    cfgs = [cfg for _, cfg in points]
    solo_fallback = False
    if len(cfgs) > 1:
        start = time.perf_counter()
        try:
            # Cache layers were already consulted by ``collect_todo``;
            # the parent's ``finish_point`` writes results through.
            results = list(run_batch_experiments(cfgs, use_cache=False,
                                                 check=check,
                                                 check_stride=check_stride))
        except Exception as exc:
            solo_fallback = True  # rerun solo to isolate the failing lane
            if tel is not None:
                tel.emit("unit", lanes=len(cfgs), status="batch-failed",
                         cause=f"{type(exc).__name__}: {exc}")
        else:
            if tel is not None:
                dur = time.perf_counter() - start
                tel.emit("unit", lanes=len(cfgs), status="ok",
                         dur_s=round(dur, 6))
                for lane, (idx, cfg) in enumerate(points):
                    tel.point(idx, cfg, store_key(cfg), "simulate",
                              dur / len(cfgs), backend="batched",
                              attempts=1, lane=lane, lanes=len(cfgs),
                              decision={"policy": cfg.backend,
                                        "reason": "batched-unit",
                                        "batch": len(cfgs)})
            return results
    outcomes = []
    for idx, cfg in points:
        start = time.perf_counter()
        try:
            result = _run_point(cfg, check, check_stride)
        except SweepPointError as err:
            if tel is not None:
                tel.emit("point_failed", idx=idx, label=cfg.label,
                         cause=err.cause, solo_fallback=solo_fallback)
            outcomes.append(err)
        else:
            if tel is not None:
                tel.point(idx, cfg, store_key(cfg), "simulate",
                          time.perf_counter() - start, attempts=1,
                          solo_fallback=solo_fallback,
                          **_decision_fields(cfg))
            outcomes.append(result)
    return outcomes


#: Per-process worker telemetry: stream path -> (Telemetry, store-stat
#: baseline at first use). Forked workers inherit the parent's counter
#: values, so the baseline turns cumulative counters into this worker's
#: own traffic.
_worker_state: dict = {}


def _worker_telemetry(spec):
    """The (emitter, store baseline) pair of this worker process."""
    path, sweep = spec
    state = _worker_state.get(path)
    if state is None:
        from ..telemetry import Telemetry
        store = default_store()
        baseline = dict(store.stats) if store is not None else None
        state = _worker_state[path] = (Telemetry(path, sweep=sweep),
                                       baseline)
    return state


def _run_chunk(units: Sequence[Sequence[tuple]],
               check: bool = False, check_stride: int = 1,
               telemetry=None) -> list:
    """Worker entry point: simulate one chunk of units, in order.

    ``units`` hold ``(idx, cfg)`` points. Returns one outcome per
    *point* (units flattened in order): either a ``Result`` or the
    ``SweepPointError`` that point raised (both pickle-safe).
    ``telemetry`` is ``(stream path, sweep id)`` or ``None``; with it,
    the worker appends spans to the shared stream as points complete
    and a cumulative ``worker_store`` counter delta after each chunk.
    """
    tel = baseline = None
    if telemetry is not None:
        tel, baseline = _worker_telemetry(telemetry)
    start = time.perf_counter()
    outcomes = []
    for points in units:
        outcomes.extend(_run_unit(points, check, check_stride, tel))
    if tel is not None:
        fields = {"points": len(outcomes),
                  "busy_s": round(time.perf_counter() - start, 6)}
        store = default_store()
        if store is not None and baseline is not None:
            fields["stats"] = store.stats_delta(baseline)
        tel.emit("worker_store", **fields)
    return outcomes


def _open_journal(journal, resume: bool):
    """Normalize the ``journal=`` argument; truncate unless resuming."""
    if journal is None:
        return None
    if not isinstance(journal, SweepJournal):
        journal = SweepJournal(journal)
    if not resume:
        journal.truncate()
    return journal


def _open_telemetry(telemetry, resume: bool):
    """Normalize ``telemetry=``: ``None``, a path, or a live emitter.

    Mirrors ``_open_journal``: a path starts the stream over unless
    resuming (a resumed sweep appends its records after the interrupted
    sweep's, and followers/reports key on the newest ``sweep_begin``).
    The import is lazy so the telemetry-off path never touches the
    package.
    """
    if telemetry is None:
        return None
    from ..telemetry import Telemetry
    if isinstance(telemetry, Telemetry):
        return telemetry
    tel = Telemetry(telemetry)
    if not resume:
        tel.truncate()
    return tel


class _Scheduler:
    """One ``run_experiments`` invocation's mutable scheduling state."""

    def __init__(self, configs, *, check, store, journal, resume,
                 max_attempts, backoff_base, backoff_cap, timeout, sleep,
                 check_stride=1, telemetry=None):
        self.configs = configs
        self.results: list[Result | None] = [None] * len(configs)
        self.check = check
        self.check_stride = check_stride
        self.store = store
        self.journal = journal
        self.resume = resume
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.timeout = timeout
        self.sleep = sleep
        self.tel = telemetry

    # -- completion -------------------------------------------------------

    def finish_point(self, idx: int, result: Result,
                     from_journal: bool = False) -> None:
        """Record one completed point: slot, memo/store, checkpoint.

        With telemetry on, the store write-through and journal append
        are timed and emitted as a ``persist`` event — the "40% of the
        wall went to store I/O" records the ISSUE asks for.
        """
        self.results[idx] = result
        tel = self.tel
        t0 = time.perf_counter() if tel is not None else 0.0
        if not self.check:
            cache_result(result, store=self.store)
        t1 = time.perf_counter() if tel is not None else 0.0
        if self.journal is not None and not from_journal:
            self.journal.append(store_key(result.config),
                                result_to_payload(result))
        if tel is not None:
            tel.emit("persist", idx=idx, store_s=round(t1 - t0, 6),
                     journal_s=round(time.perf_counter() - t1, 6))

    # -- skip phase: journal, memo, store ---------------------------------

    def collect_todo(self) -> list[tuple[int, ExperimentConfig]]:
        """Resolve every point answerable without simulating; return the
        rest.

        With telemetry on, every cache-resolved point emits a closed
        span stamped with the tier that answered it — ``journal-replay``,
        ``memo`` (in-process memory, free) or ``store`` (paid a disk
        read, whose wall the span carries). Spans are emitted *before*
        the journal append so a journaled point always has its span.
        """
        tel = self.tel
        journaled: dict[str, dict] = {}
        if self.journal is not None and self.resume:
            journaled = self.journal.load()
        todo: list[tuple[int, ExperimentConfig]] = []
        for idx, cfg in enumerate(self.configs):
            if self.check:
                todo.append((idx, cfg))
                continue
            key = store_key(cfg)
            payload = journaled.get(key)
            if payload is not None:
                t0 = time.perf_counter() if tel is not None else 0.0
                try:
                    result = payload_to_result(payload)
                except (KeyError, TypeError, ValueError):
                    pass  # stale journal payload: recompute
                else:
                    if tel is not None:
                        tel.point(idx, cfg, key, "journal-replay",
                                  time.perf_counter() - t0, attempts=0)
                    self.finish_point(idx, result, from_journal=True)
                    continue
            if tel is not None:
                hit = memo_hit(cfg)
                tier, read_s = "memo", 0.0
                if hit is None:
                    t0 = time.perf_counter()
                    hit = cached(cfg, store=self.store)
                    read_s = time.perf_counter() - t0
                    tier = "store"
            else:
                hit = cached(cfg, store=self.store)
            if hit is not None:
                # Already durable — record the slot (and checkpoint, so
                # the journal stays self-contained) without a store put.
                self.results[idx] = hit
                if tel is not None:
                    tel.point(idx, cfg, key, tier, read_s, attempts=0)
                if self.journal is not None:
                    self.journal.append(key, result_to_payload(hit))
            else:
                todo.append((idx, cfg))
        return todo

    # -- serial execution with retries ------------------------------------

    def attempt_with_retries(self, cfg: ExperimentConfig,
                             first_error: SweepPointError | None = None,
                             attempts_done: int = 0,
                             idx: int | None = None) -> Result:
        """Run one point inline, retrying with deterministic backoff.

        ``first_error``/``attempts_done`` account for attempts already
        spent in the worker pool. Exhausting the budget raises a
        ``SweepPointError`` carrying the attempt count and the full
        backoff history, chained to the underlying cause. Telemetry
        records every scheduled retry (attempt number, delay, cause),
        the final span with its total attempt count and backoff
        history, and — on a spent budget — a terminal ``point_error``
        span, so a crashed sweep's stream explains itself.
        """
        tel = self.tel
        attempt = attempts_done
        last = first_error
        history: list[float] = []
        while attempt < self.max_attempts:
            if attempt > 0:
                delay = backoff_delay(attempt, self.backoff_base,
                                      self.backoff_cap)
                history.append(delay)
                if tel is not None:
                    tel.emit("retry", idx=idx, label=cfg.label,
                             attempt=attempt + 1, delay_s=round(delay, 6),
                             cause=(last.cause if last is not None
                                    else None))
                self.sleep(delay)
            attempt += 1
            t0 = time.perf_counter() if tel is not None else 0.0
            try:
                result = _run_point(cfg, self.check, self.check_stride)
            except SweepPointError as err:
                last = err
            else:
                if tel is not None:
                    tel.point(idx, cfg, store_key(cfg), "simulate",
                              time.perf_counter() - t0, attempts=attempt,
                              backoff_s=[round(d, 6) for d in history],
                              **_decision_fields(cfg))
                return result
        if tel is not None:
            tel.point_error(idx, cfg, last.cause, attempts=attempt,
                            backoff_s=history)
        if attempt <= 1 and not history:
            raise last  # single attempt: surface the original error as-is
        rebuilt = SweepPointError(last.point, last.cause, last.manifest,
                                  attempt, history)
        raise rebuilt from (last.__cause__ or last)

    def run_serial(self, units) -> None:
        """Execute units inline, in input order (the no-pool path).

        Multi-point units run as one batched chip first; if the batch
        fails, every lane reruns solo through the normal retry path, so
        batching never costs a point its retry budget.
        """
        tel = self.tel
        for unit in units:
            if len(unit) > 1:
                t0 = time.perf_counter()
                try:
                    lanes = run_batch_experiments(
                        [cfg for _, cfg in unit], use_cache=False,
                        check=self.check, check_stride=self.check_stride)
                except Exception as exc:
                    lanes = None  # isolate the failing lane solo below
                    if tel is not None:
                        tel.emit("unit", lanes=len(unit),
                                 status="batch-failed",
                                 cause=f"{type(exc).__name__}: {exc}")
                if lanes is not None:
                    dur = time.perf_counter() - t0
                    if tel is not None:
                        tel.emit("unit", lanes=len(unit), status="ok",
                                 dur_s=round(dur, 6))
                    for lane, ((idx, cfg), result) in enumerate(
                            zip(unit, lanes)):
                        if tel is not None:
                            tel.point(idx, cfg, store_key(cfg), "simulate",
                                      dur / len(unit), backend="batched",
                                      attempts=1, lane=lane,
                                      lanes=len(unit),
                                      decision={"policy": cfg.backend,
                                                "reason": "batched-unit",
                                                "batch": len(unit)})
                        self.finish_point(idx, result)
                    continue
            for idx, cfg in unit:
                self.finish_point(idx,
                                  self.attempt_with_retries(cfg, idx=idx))

    # -- pooled execution --------------------------------------------------

    def run_pooled(self, units, max_workers: int,
                   chunk_size: int | None) -> None:
        """Dispatch chunks of units to a process pool; recover serially.

        Chunk outcomes are journaled as they land (``as_completed``
        order), the final merge is input-ordered. Worker-raised
        ``SweepPointError``s, a broken pool, and a pool that makes no
        progress for ``timeout`` seconds all funnel the affected points
        into an in-process retry pass with backoff; the first point (in
        input order) to exhaust its attempts raises.
        """
        tel = self.tel
        npoints = sum(len(unit) for unit in units)
        if chunk_size is None:
            # ~4 chunks per worker balances load without excessive
            # pickling.
            chunk_size = max(1, npoints // (max_workers * 4))
        # Chunks close once they reach chunk_size points; units are
        # never split across chunks (a batch must share one worker).
        chunks: list[list] = []
        cur: list = []
        count = 0
        for unit in units:
            cur.append(unit)
            count += len(unit)
            if count >= chunk_size:
                chunks.append(cur)
                cur, count = [], 0
        if cur:
            chunks.append(cur)
        workers = min(max_workers, len(chunks))
        if tel is not None:
            tel.emit("dispatch", points=npoints, chunks=len(chunks),
                     chunk_size=chunk_size, workers=workers)
        tel_spec = (tel.path, tel.sweep) if tel is not None else None
        pool = ProcessPoolExecutor(max_workers=workers)
        recover: list[tuple] = []  # (idx, cfg, pool_error | None)
        submitted: dict = {}       # future -> submission perf_counter
        try:
            future_chunks = {}
            for chunk in chunks:
                future = pool.submit(_run_chunk, chunk, self.check,
                                     self.check_stride, tel_spec)
                future_chunks[future] = [point for unit in chunk
                                         for point in unit]
                submitted[future] = time.perf_counter()
        except Exception:
            # Pool unusable from the start (e.g. fork failure): everything
            # runs inline.
            recover = [(idx, cfg, None)
                       for unit in units for idx, cfg in unit]
            future_chunks = {}
            if tel is not None:
                tel.emit("degrade", reason="pool-unusable",
                         points=npoints)
        pending = set(future_chunks)
        while pending:
            done, pending = wait(pending, timeout=self.timeout,
                                 return_when=FIRST_COMPLETED)
            if not done:
                # No chunk completed within the timeout window: stop
                # trusting the pool, salvage the rest in-process.
                stalled = 0
                for future in pending:
                    future.cancel()
                    recover.extend((idx, cfg, None)
                                   for idx, cfg in future_chunks[future])
                    stalled += len(future_chunks[future])
                if tel is not None:
                    tel.emit("degrade", reason="stall-timeout",
                             timeout_s=self.timeout, points=stalled)
                pending = set()
                break
            for future in done:
                chunk = future_chunks[future]
                try:
                    outcomes = future.result()
                except Exception as exc:
                    # Worker process died / pool broke mid-flight: the
                    # chunk's points rerun serially.
                    recover.extend((idx, cfg, None) for idx, cfg in chunk)
                    if tel is not None:
                        tel.emit("degrade", reason="worker-failure",
                                 points=len(chunk),
                                 cause=f"{type(exc).__name__}: {exc}")
                    continue
                if tel is not None:
                    tel.emit("chunk", points=len(chunk),
                             turnaround_s=round(
                                 time.perf_counter() - submitted[future],
                                 6))
                for (idx, cfg), outcome in zip(chunk, outcomes):
                    if isinstance(outcome, SweepPointError):
                        recover.append((idx, cfg, outcome))
                    else:
                        self.finish_point(idx, outcome)
        pool.shutdown(wait=False, cancel_futures=True)
        for idx, cfg, err in sorted(recover, key=lambda item: item[0]):
            if err is not None and self.max_attempts <= 1:
                if tel is not None:
                    tel.point_error(idx, cfg, err.cause,
                                    attempts=err.attempts,
                                    backoff_s=err.backoff_s)
                raise err
            result = self.attempt_with_retries(
                cfg, first_error=err, attempts_done=1 if err else 0,
                idx=idx)
            self.finish_point(idx, result)


def run_experiments(configs: Iterable[ExperimentConfig],
                    max_workers: int | None = None,
                    chunk_size: int | None = None,
                    check: bool = False,
                    check_stride: int = 1,
                    store=None,
                    journal=None,
                    resume: bool = False,
                    retries: int = 0,
                    backoff_base: float = 0.5,
                    backoff_cap: float = 30.0,
                    timeout: float | None = None,
                    sleep=time.sleep,
                    batch_size: int = 16,
                    telemetry=None) -> list[Result]:
    """Run many experiment points, returning results in input order.

    Cached points are answered without simulating — from the in-process
    memo, the content-addressed ``store`` (explicit or the process-wide
    default), or, with ``resume=True``, the checkpoint ``journal`` of an
    interrupted earlier run. The remainder is split into chunks
    (amortizing process round-trips) and dispatched to a worker pool;
    every completed point is journaled and written through the store *as
    it lands*, so progress survives a SIGKILL at any instant. With
    ``max_workers`` of 1 — or a single uncached point — everything runs
    inline, which keeps tests and single-core machines free of pool
    overhead.

    Failures retry up to ``retries`` extra times with deterministic
    exponential backoff (``backoff_base``/``backoff_cap``, injectable
    ``sleep`` for testing); a broken or stalled pool (no completion for
    ``timeout`` seconds) degrades to serial in-process execution. The
    first point (in input order) to exhaust its attempts raises a
    ``SweepPointError`` carrying its attempt count and backoff history —
    with every other completed point already checkpointed.

    Before dispatch, uncached points that share a ``batch_key`` (same
    chip shape, scheme and VC policy, backend ``batched`` or ``auto``)
    are grouped into units of up to ``batch_size`` lanes and simulated
    as one ``BatchNetwork`` run each — the lanes amortize the
    per-cycle array-dispatch cost while staying bit-identical to solo
    runs. Store and journal keys are unchanged: one entry per point,
    whichever way it ran. ``batch_size=1`` disables grouping.

    ``check=True`` attaches invariant checking to every point (strict
    mode: the first violation surfaces as a ``SweepPointError`` naming
    the point): the full scalar monitor suite on the scalar core, the
    array-native ``VectorInvariantChecker`` — sweeping every
    ``check_stride`` cycles — on the vectorized and batched cores.
    Checked runs bypass memo, store and journal entirely (a cached or
    replayed result would skip the monitors) but batch normally: one
    checker's whole-array sweeps cover every lane of a shared chip, and
    violations carry the offending lane index.

    ``telemetry=`` (a stream path or a live ``repro.telemetry
    .Telemetry``) switches on the span/event stream documented in
    ``repro.telemetry``: one closed span per point, scheduler lifecycle
    events, per-process store-counter deltas — and, when given as a
    path, a ``repro.sweep-report/1`` summary written next to the stream
    when the sweep ends (whatever way it ends). Telemetry is pure
    observation: results are bit-identical with it on or off, and the
    default off path holds no emitter at all.
    """
    configs = list(configs)
    journal = _open_journal(journal if not check else None, resume)
    tel = _open_telemetry(telemetry, resume)
    scheduler = _Scheduler(
        configs, check=check, store=store, journal=journal, resume=resume,
        max_attempts=1 + max(0, retries), backoff_base=backoff_base,
        backoff_cap=backoff_cap, timeout=timeout, sleep=sleep,
        check_stride=check_stride, telemetry=tel)
    if max_workers is None:
        max_workers = default_workers()
    status, error = "error", None
    start = time.perf_counter()
    active_store = store if store is not None else default_store()
    store_baseline = (dict(active_store.stats)
                      if tel is not None and active_store is not None
                      else None)
    if tel is not None:
        tel.emit("sweep_begin", points=len(configs), workers=max_workers,
                 batch_size=batch_size, check=check, resume=resume,
                 retries=max(0, retries),
                 journal=(journal.path if journal is not None else None))
    try:
        todo = scheduler.collect_todo()
        if todo:
            units = _group_units(todo, batch_size)
            if tel is not None:
                multi = [len(unit) for unit in units if len(unit) > 1]
                tel.emit("batch_groups", todo=len(todo), units=len(units),
                         multi_lane_units=len(multi),
                         batched_points=sum(multi),
                         batch_size=batch_size)
            if max_workers <= 1 or len(units) == 1:
                scheduler.run_serial(units)
            else:
                scheduler.run_pooled(units, max_workers, chunk_size)
        status = "ok"
    except BaseException as exc:
        error = f"{type(exc).__name__}: {exc}".splitlines()[0]
        raise
    finally:
        if tel is not None:
            if store_baseline is not None:
                tel.emit("worker_store", role="parent",
                         stats=active_store.stats_delta(store_baseline))
            tel.emit("sweep_end", status=status, error=error,
                     wall_s=round(time.perf_counter() - start, 6),
                     completed=sum(result is not None
                                   for result in scheduler.results))
            tel.close()
            if not hasattr(telemetry, "emit"):
                # Given as a path: the stream owns a report sidecar.
                from ..telemetry.report import try_write_sweep_report
                try_write_sweep_report(tel.path)
        if journal is not None:
            journal.close()
    return scheduler.results


def prefetch(configs: Iterable[ExperimentConfig],
             max_workers: int | None = None, **kwargs) -> None:
    """Warm the run cache so later ``run_experiment`` calls are instant.

    The figure code stays written as straightforward serial loops; calling
    ``prefetch`` with every config a figure will need turns those loops
    into cache lookups while the simulations run in parallel. Extra
    keyword arguments (``store``, ``journal``, ``resume``, ``retries``,
    ...) pass through to ``run_experiments``.
    """
    run_experiments(configs, max_workers=max_workers, **kwargs)
