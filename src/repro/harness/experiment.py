"""Experiment runner: a declarative config -> a simulated network -> results.

``ExperimentConfig`` captures everything the paper varies: topology,
routing, VC allocation policy, pseudo-circuit scheme, and the traffic
source (a benchmark trace or a synthetic pattern). ``run_experiment``
builds the network, drives it, and returns a ``Result`` with the metrics
every figure needs. Traces and completed runs are memoized per process so
overlapping figures (e.g. Fig. 9 and Fig. 10 use the same grid of runs)
pay for each simulation once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from ..energy import DEFAULT_ENERGY_MODEL
from ..evc import EvcMesh, EvcRouting
from ..instrument import run_manifest
from ..network.backend import (BackendUnsupportedError, backend_of,
                               choose_backend, resolve_backend)
from ..network.config import NetworkConfig, PseudoCircuitConfig
from ..network.simulator import Network
from ..topology import make_topology
from ..traffic.synthetic import SyntheticTraffic
from ..traffic.trace import Trace, TraceReplayTraffic
from .traces import get_trace


@dataclass(frozen=True)
class ExperimentConfig:
    """One simulation point."""

    # Network structure.
    topology: str = "cmesh"
    kx: int = 4
    ky: int = 4
    concentration: int = 4
    # Chiplet-only structure (ignored by other topologies): number of
    # compute dies and the wire latency of each die<->IO boundary link.
    chiplets: int = 4
    chiplet_link_latency: int = 4
    routing: str = "o1turn"
    vc_policy: str = "dynamic"
    scheme: PseudoCircuitConfig = field(default_factory=PseudoCircuitConfig)
    num_vcs: int = 4
    buffer_depth: int = 4
    # Traffic: either a benchmark trace or a synthetic pattern.
    benchmark: str | None = None
    trace_cycles: int = 2000
    trace_warmup: int = 400
    pattern: str | None = None
    rate: float = 0.1
    packet_size: int = 5
    synth_cycles: int = 1500
    synth_warmup: int = 300
    mshrs: int = 4   # NIC self-throttling during trace replay
    seed: int = 1
    # Network core: "scalar", "vectorized", "batched" or "auto"; None
    # picks up the process default
    # (repro.network.backend.set_default_backend). "auto" and "batched"
    # are kept as-is in store keys (a point's identity includes the
    # *policy* it ran under); build_network resolves them to a concrete
    # core per point, and the scheduler groups compatible
    # batched/auto points into BatchNetwork lanes.
    backend: str | None = None

    def __post_init__(self):
        if (self.benchmark is None) == (self.pattern is None):
            raise ValueError(
                "configure exactly one of benchmark= or pattern=")
        # Resolve the backend at construction so equality, run-cache and
        # store keys always carry a concrete backend name — results from
        # different backends never alias, whatever the process default
        # was when either was computed.
        object.__setattr__(self, "backend", resolve_backend(self.backend))

    @property
    def label(self) -> str:
        """Human-readable point label (topology/routing/VA/scheme/traffic)."""
        traffic = self.benchmark or f"{self.pattern}@{self.rate:g}"
        return (f"{self.topology}/{self.routing}/{self.vc_policy}/"
                f"{self.scheme.label}/{traffic}")

    def with_scheme(self, scheme: PseudoCircuitConfig) -> "ExperimentConfig":
        """This config with the pseudo-circuit scheme replaced."""
        return replace(self, scheme=scheme)


@dataclass(frozen=True)
class Result:
    """Metrics extracted from one finished simulation."""

    config: ExperimentConfig
    avg_latency: float
    avg_network_latency: float
    avg_hops: float
    reusability: float
    buffer_bypass_rate: float
    e2e_locality: float
    xbar_locality: float
    packets: int
    flit_hops: int
    energy_pj: float
    energy_breakdown: dict
    pc_restored: int
    # Run provenance (repro.instrument.run_manifest). Excluded from
    # equality so results compare by metrics regardless of which machine
    # or commit produced them.
    manifest: dict | None = field(default=None, compare=False)
    # Metrics document from a ``check=True`` run (repro.monitor); absent
    # on unchecked runs. Excluded from equality for the same reason.
    monitor_report: dict | None = field(default=None, compare=False)

    @classmethod
    def from_network(cls, config: ExperimentConfig, net: Network,
                     manifest: dict | None = None,
                     monitor_report: dict | None = None) -> "Result":
        """Extract the paper's metrics from a finished simulation."""
        return cls.from_stats(config, net.stats, manifest=manifest,
                              monitor_report=monitor_report)

    @classmethod
    def from_stats(cls, config: ExperimentConfig, stats,
                   manifest: dict | None = None,
                   monitor_report: dict | None = None) -> "Result":
        """Extract the paper's metrics from a finished NetworkStats
        (the per-lane extraction path of batched runs)."""
        energy = DEFAULT_ENERGY_MODEL.router_energy(stats)
        return cls(
            config=config,
            avg_latency=stats.avg_latency,
            avg_network_latency=stats.avg_network_latency,
            avg_hops=stats.avg_hops,
            reusability=stats.reusability,
            buffer_bypass_rate=stats.buffer_bypass_rate,
            e2e_locality=stats.e2e_locality,
            xbar_locality=stats.xbar_locality,
            packets=stats.measured_packets,
            flit_hops=stats.flit_hops,
            energy_pj=energy["total"],
            energy_breakdown=energy,
            pc_restored=stats.pc_restored,
            manifest=manifest,
            monitor_report=monitor_report,
        )


_run_cache: dict[ExperimentConfig, Result] = {}

#: Process-wide ResultStore backing the memo (None = memory only).
_default_store = None


def set_default_store(store) -> None:
    """Install the process-wide result store behind the run cache.

    With a store installed, every cache miss consults the store (a
    durable, content-addressed hit is folded into the memo) and every
    computed result is written through, so repeated ``figure all``
    invocations across *processes* become near-free cache hits. Pass
    ``None`` to go back to memory-only caching. Checked runs
    (``check=True``) bypass both layers.
    """
    global _default_store
    _default_store = store


def default_store():
    """The process-wide result store, or ``None`` (memory-only cache)."""
    return _default_store


def build_network(config: ExperimentConfig, probe=None) -> Network:
    """Construct the simulated network one experiment point describes.

    ``config.backend`` picks the core: the scalar object-per-router
    ``Network`` or the numpy ``VectorNetwork`` (bit-identical stats; see
    ARCHITECTURE.md "Backends"). ``"batched"`` runs single points on
    the vectorized core (lane grouping happens in the scheduler, not
    here); ``"auto"`` picks per point via ``choose_backend`` and — as
    its documented policy, not a silent fallback — takes the scalar
    core wherever the vectorized core refuses the configuration. For
    the explicit vectorized/batched backends unsupported configurations
    still raise ``BackendUnsupportedError``.
    """
    net_cfg = NetworkConfig(
        num_vcs=config.num_vcs, buffer_depth=config.buffer_depth,
        pseudo=config.scheme,
        mshrs=config.mshrs if config.benchmark is not None else 0)
    if config.topology == "evc_mesh":
        topo = EvcMesh(config.kx, config.ky, config.concentration)
        routing = EvcRouting(topo)
    else:
        topo = make_topology(
            config.topology, config.kx, config.ky, config.concentration,
            chiplets=config.chiplets,
            chiplet_link_latency=config.chiplet_link_latency)
        routing = config.routing
    kwargs = dict(routing=routing, vc_policy=config.vc_policy,
                  seed=config.seed, probe=probe)
    backend = resolve_backend(config.backend)
    if backend == "auto":
        backend = choose_backend(
            terminals=topo.num_terminals,
            rate=config.rate if config.benchmark is None else None,
            pseudo=config.scheme.enabled)
        if backend == "vectorized":
            from ..network.vectorized import VectorNetwork
            try:
                return VectorNetwork(topo, net_cfg, **kwargs)
            except BackendUnsupportedError:
                return Network(topo, net_cfg, **kwargs)
    if backend in ("vectorized", "batched"):
        from ..network.vectorized import VectorNetwork
        return VectorNetwork(topo, net_cfg, **kwargs)
    return Network(topo, net_cfg, **kwargs)


def _attach_monitors(net, probe, check_stride: int):
    """Attach the ``--check`` suite to a freshly built network.

    Scalar cores bind the monitor registry's composite probe (merged
    with any user probe); vectorized/batched cores attach the
    array-native ``VectorInvariantChecker`` and switch on the per-phase
    profiler instead. Returns the registry whose ``finish``/``snapshot``
    produce the run's metrics document.
    """
    if hasattr(net, "attach_checker"):
        from ..monitor import MetricsRegistry
        from ..network.vectorized import VectorInvariantChecker
        if probe is not None:
            net.bind_probe(probe)
        checker = VectorInvariantChecker(strict=True, stride=check_stride)
        net.attach_checker(checker)
        net.enable_profile()
        return MetricsRegistry([checker])
    from ..instrument import CompositeProbe
    from ..monitor import default_registry
    registry = default_registry(strict=True)
    monitor_probe = registry.probe()
    net.bind_probe(monitor_probe if probe is None
                   else CompositeProbe(probe, monitor_probe))
    return registry


def run_experiment(config: ExperimentConfig, *, use_cache: bool = True,
                   probe=None, check: bool = False,
                   check_stride: int = 1) -> Result:
    """Simulate one configuration (memoized per process).

    ``probe`` attaches an instrumentation probe for this run; probed runs
    never read or populate the memo (the probe observes the simulation, so
    a cached result would silently skip it). ``check=True`` additionally
    attaches invariant checking — the full scalar monitor suite
    (``repro.monitor.default_registry``) on the scalar core, the
    array-native ``VectorInvariantChecker`` sweeping every
    ``check_stride`` cycles on the vectorized cores; both strict (the
    first violation raises) — and stores the metrics document on
    ``Result.monitor_report``.
    """
    if probe is not None or check:
        use_cache = False
    if use_cache:
        hit = cached(config)
        if hit is not None:
            return hit
    registry = None
    start = time.perf_counter()
    if check:
        # Built bare: monitors attach after construction so the vector
        # cores can take the checker path instead of a probe refusal.
        net = build_network(config)
        registry = _attach_monitors(net, probe, check_stride)
    else:
        net = build_network(config, probe=probe)
    if config.benchmark is not None:
        trace = get_trace(config.benchmark, cycles=config.trace_cycles,
                          warmup=config.trace_warmup, seed=config.seed)
        _replay(net, trace)
    else:
        traffic = SyntheticTraffic(config.pattern,
                                   net.topology.num_terminals, config.rate,
                                   config.packet_size, seed=config.seed)
        net.stats.warmup_cycles = config.synth_warmup
        net.run(config.synth_cycles, traffic)
        net.drain(max_cycles=500_000)
    net.check_invariants()
    monitor_report = None
    if registry is not None:
        monitor_report = registry.finish(net)
        profile = getattr(net, "profile", None)
        if profile is not None and (prof_doc := profile()) is not None:
            monitor_report["phase_profile"] = prof_doc
    wall = time.perf_counter() - start
    manifest = run_manifest(config, seed=config.seed, cycles=net.cycle,
                            wall_s=wall, extra={"backend": backend_of(net)})
    result = Result.from_network(config, net, manifest=manifest,
                                 monitor_report=monitor_report)
    if use_cache:
        cache_result(result)
    return result


#: Config fields every lane of one batch must share (the chip shape the
#: replicated layout is built from). pattern/rate/packet_size/seed and
#: the cycle/warmup windows may vary per lane.
BATCH_KEY_FIELDS = ("topology", "kx", "ky", "concentration", "chiplets",
                    "chiplet_link_latency", "routing", "vc_policy", "scheme",
                    "num_vcs", "buffer_depth")


def batch_key(config: ExperimentConfig):
    """Grouping key for batched execution, or ``None`` if unbatchable.

    Only synthetic-traffic points that opted into batching (backend
    ``batched`` or ``auto``) are grouped; trace replay needs MSHR
    self-throttling and per-trace state, and ``evc_mesh`` routing is
    dynamic-only — both always run solo.
    """
    if config.benchmark is not None or config.topology == "evc_mesh":
        return None
    if resolve_backend(config.backend) not in ("batched", "auto"):
        return None
    return tuple(getattr(config, f) for f in BATCH_KEY_FIELDS)


class _LaneStatsView:
    """Stats/cycle shim so ``MetricsRegistry.snapshot`` can document one
    lane of a batched run (the live network only has whole-chip stats)."""

    def __init__(self, net, lane: int):
        self.stats = net.lane_stats(lane)
        self.cycle = net.cycle


def run_batch_experiments(configs, *, use_cache: bool = True,
                          check: bool = False, check_stride: int = 1):
    """Simulate compatible points as lanes of one ``BatchNetwork`` run.

    All configs must share ``batch_key`` (same chip shape, scheme and
    VC policy); pattern, rate, packet size, seed and the cycle/warmup
    windows may vary per lane. Returns one ``Result`` per config, in
    order, each bit-identical to ``run_experiment`` of the same point
    (the batched-parity suite locks this in). Cached points are
    returned from the memo/store without occupying a lane.

    ``check=True`` attaches one ``VectorInvariantChecker`` to the shared
    chip (whole-array sweeps every ``check_stride`` cycles cover every
    lane at once; violations carry the offending lane index) and gives
    each result a per-lane metrics document on ``monitor_report``.
    """
    if not configs:
        return []
    if check:
        use_cache = False
    keys = {batch_key(cfg) for cfg in configs}
    if len(keys) != 1 or None in keys:
        raise ValueError(
            "configs are not batch-compatible (one shared batch_key "
            "required)")
    results: list[Result | None] = [None] * len(configs)
    todo = []
    for i, cfg in enumerate(configs):
        hit = cached(cfg) if use_cache else None
        if hit is not None:
            results[i] = hit
        else:
            todo.append(i)
    if not todo:
        return results
    first = configs[todo[0]]
    net_cfg = NetworkConfig(num_vcs=first.num_vcs,
                            buffer_depth=first.buffer_depth,
                            pseudo=first.scheme, mshrs=0)
    topo = make_topology(
        first.topology, first.kx, first.ky, first.concentration,
        chiplets=first.chiplets,
        chiplet_link_latency=first.chiplet_link_latency)
    from ..network.vectorized import BatchNetwork
    start = time.perf_counter()
    net = BatchNetwork(topo, net_cfg, routing=first.routing,
                       vc_policy=first.vc_policy,
                       seeds=[configs[i].seed for i in todo])
    registry = None
    if check:
        registry = _attach_monitors(net, None, check_stride)
    traffics = [SyntheticTraffic(configs[i].pattern, topo.num_terminals,
                                 configs[i].rate, configs[i].packet_size,
                                 seed=configs[i].seed)
                for i in todo]
    net.run_batch(traffics,
                  [configs[i].synth_cycles for i in todo],
                  [configs[i].synth_warmup for i in todo])
    net.drain(max_cycles=500_000)
    net.check_invariants()
    prof_doc = None
    if registry is not None:
        for monitor in registry.monitors:
            monitor.finish(net)
        prof_doc = net.profile()
    wall = time.perf_counter() - start
    for lane, i in enumerate(todo):
        cfg = configs[i]
        manifest = run_manifest(cfg, seed=cfg.seed, cycles=net.cycle,
                                wall_s=wall / len(todo),
                                extra={"batch_lanes": len(todo),
                                       "backend": "batched",
                                       "batch_lane": lane})
        monitor_report = None
        if registry is not None:
            monitor_report = registry.snapshot(_LaneStatsView(net, lane),
                                               backend="batched")
            monitor_report["batch_lanes"] = len(todo)
            monitor_report["batch_lane"] = lane
            if prof_doc is not None:
                monitor_report["phase_profile"] = prof_doc
        result = Result.from_stats(cfg, net.lane_stats(lane),
                                   manifest=manifest,
                                   monitor_report=monitor_report)
        if use_cache:
            cache_result(result)
        results[i] = result
    return results


def _replay(net: Network, trace: Trace) -> None:
    replay = TraceReplayTraffic(trace)
    while not replay.exhausted:
        replay.tick(net, net.cycle)
        net.step()
        nxt = replay.next_injection_cycle(net.cycle)
        if nxt is not None:
            # Idle gaps between scheduled injections are skipped outright.
            net.fast_forward(nxt, nxt)
    net.drain(max_cycles=500_000)


def memo_hit(config: ExperimentConfig) -> Result | None:
    """The in-process memo entry for ``config``; the store is untouched.

    Telemetry uses this to attribute cache resolutions to the right
    tier: a ``memo`` hit answered from process memory versus a
    ``store`` hit that paid a disk read — ``cached`` alone cannot tell
    them apart (and bumps the store's miss counter while looking).
    """
    return _run_cache.get(config)


def backend_decision(config: ExperimentConfig, lanes: int = 1) -> dict:
    """The concrete core a point runs on, with the selector's inputs.

    For ``auto`` points this is ``network.backend.explain_choice`` —
    chosen core, offered load, the calibrated crossover it was compared
    against, calibration source. Explicit backends record the policy
    with ``reason: "explicit"`` (a solo point under the ``batched``
    policy runs on the vectorized core, as ``build_network`` does).
    Purely observational: ``build_network`` stays the authority, and
    its documented scalar fallback for refused ``auto`` configurations
    is not re-modelled here.
    """
    policy = resolve_backend(config.backend)
    if policy != "auto":
        chosen = policy
        if policy == "batched" and lanes <= 1:
            chosen = "vectorized"
        return {"chosen": chosen, "policy": policy, "reason": "explicit"}
    from ..network.backend import explain_choice
    routers = config.kx * config.ky
    if config.topology == "chiplet":
        # K dies of kx*ky routers plus the IO die, each with terminals.
        routers = config.chiplets * config.kx * config.ky + 1
    decision = explain_choice(
        terminals=routers * config.concentration,
        rate=config.rate if config.benchmark is None else None,
        pseudo=config.scheme.enabled, batch=lanes)
    decision["policy"] = "auto"
    return decision


def cached(config: ExperimentConfig, store=None) -> Result | None:
    """Return the cached result for ``config``, if any.

    The in-process memo is consulted first; on a miss, the explicit
    ``store`` (or the process-wide default store) is queried by content
    address. A durable hit is deserialized, folded into the memo, and
    returned — corrupt store entries read back as misses (the store
    quarantines them), so callers transparently recompute.
    """
    hit = _run_cache.get(config)
    if hit is not None:
        return hit
    store = store if store is not None else _default_store
    if store is None:
        return None
    from ..store import payload_to_result, store_key
    payload = store.get(store_key(config))
    if payload is None:
        return None
    try:
        result = payload_to_result(payload)
    except (KeyError, TypeError, ValueError):
        return None  # forward-incompatible payload: recompute
    _run_cache[config] = result
    return result


def cache_result(result: Result, store=None) -> None:
    """Fold a computed result into the memo and write it through.

    With a ``store`` (explicit or the process-wide default) the result
    is also persisted under its content-addressed key, making it
    durable across processes.
    """
    _run_cache[result.config] = result
    store = store if store is not None else _default_store
    if store is not None:
        from ..store import result_to_payload, store_key
        store.put(store_key(result.config), result_to_payload(result),
                  label=result.config.label)


def clear_cache() -> None:
    """Empty the in-process run memo (the default store is untouched)."""
    _run_cache.clear()
