"""Plain-text table/series rendering and result persistence."""

from __future__ import annotations

import json
from collections.abc import Sequence

from ..instrument import write_manifest


def format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 10 else f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned text table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence]) -> None:
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def percent(fraction: float) -> str:
    return f"{100.0 * fraction:+.1f}%"


def reduction(baseline: float, value: float) -> float:
    """Latency reduction of ``value`` relative to ``baseline`` (0..1)."""
    if baseline <= 0:
        raise ValueError("baseline latency must be positive")
    return 1.0 - value / baseline


def write_results(path: str, rows, manifest: dict | None = None) -> str:
    """Persist figure/sweep rows as JSON; with ``manifest``, also write the
    provenance sidecar (``<path minus ext>.manifest.json``)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"rows": rows}, fh, indent=2, default=str)
        fh.write("\n")
    if manifest is not None:
        write_manifest(manifest, path)
    return path
