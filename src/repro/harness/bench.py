"""Core-performance benchmark and perf-trajectory tracking.

``run_bench`` times the canonical simulator workloads — an 8x8 mesh under
uniform-random traffic at a low-load and a near-saturation point, for the
baseline router and the full Pseudo+S+B scheme — in both the shipped fast
mode (active-set stepping + compiled routing tables + bitmask allocator)
and the exhaustive reference mode (``active_set=False`` with the dynamic
``route()`` path), verifies that the two modes produced identical
``NetworkStats``, and writes the timings to ``BENCH_core.json``. Re-running
``python -m repro bench`` after a change (and diffing the JSON) is how this
repo tracks simulator performance over time.

Wall-clock numbers are best-of-``repeats`` to suppress scheduler noise.
Each optimization wave keeps the wall-clock of the wave before it as a
fixed column (``pre_change_wall_s`` for the pre-active-set core,
``pr1_wall_s`` for the active-set core of PR 1), so the file always carries
the whole perf trajectory with it. The aggregate speedups weight the
saturation workloads heavier (``weight`` column) because reproduction
wall-clock is dominated by the high-load end of the latency-throughput
sweeps.

``--profile`` wraps one extra repeat of every workload in ``cProfile`` and
prints the top cumulative-time entries, so perf work can cite a profile
instead of guessing.

``--gate`` turns the run into the instrumentation-overhead gate: before
overwriting the report it loads the previous one, then (a) asserts a
default-built network carries no probe, (b) asserts stats stay
bit-identical with a full tracer + time-series stack attached, and (c)
when a previous report at matching scale exists, asserts the fresh
probes-disabled walls are within 2% of it (weighted geomean). See
``repro.instrument.overhead``.

Timing methodology: the injection sequence of a workload is a Bernoulli
draw per (terminal, cycle) that never depends on network state, so the
bench pre-draws it once per workload (``_InjectionSchedule``) and replays
it inside the timed region. The walls therefore time the simulator core,
not the Python traffic generator, and every mode/backend of a workload
consumes byte-identical injections. ``meta.methodology`` names this
scheme so gates never compare walls across methodologies.

``backend="vectorized"`` additionally times every workload on the numpy
structure-of-arrays core (``repro.network.vectorized``), asserts its
stats fingerprint is bit-identical to the scalar core's, and records
per-workload ``vectorized_wall_s``/``speedup_vectorized`` columns plus
saturation/overall speedup geomeans in the summary — the scalar columns
keep their historical meaning, so the perf trajectory stays comparable.
Every vectorized-capable backend (``vectorized``/``auto``/``batched``)
also times the 16-point low-load sweep once per point on the solo
vectorized core and once as 16 lanes of one ``BatchNetwork`` (the
``batched`` report section; every lane hard-asserted bit-identical to
its solo reference; ``--min-batched-speedup`` puts a gate floor under
the speedup). ``backend="auto"`` first runs the selector
microcalibration — measuring the scalar/vectorized crossover and
recording it as the report's ``calibration`` block, which
``repro.network.backend.load_calibration`` installs in later processes
— then records per-workload ``recommended_backend``/``fastest_backend``
columns; ``--gate`` fails when the selector disagrees with the measured
fastest core on more than one workload or recommends a core over 5%
slower than the best.
"""

from __future__ import annotations

import cProfile
import json
import math
import os
import platform
import pstats
import sys
import time

from ..instrument import git_sha, overhead_gate, run_manifest, write_manifest
from ..instrument.overhead import timing_gate, vectorized_overhead_gate
from ..store import SweepJournal
from ..network.config import BASELINE, PSEUDO_SB, NetworkConfig
from ..network.flit import Packet
from ..network.simulator import build_network
from ..topology import make_topology
from ..traffic.synthetic import SyntheticTraffic

#: (name, scheme, injection rate in flits/terminal/cycle, weight). 0.02 sits
#: in the paper's low-load latency region; 0.30 is just past saturation for
#: the baseline 8x8 mesh with XY routing. Weights skew the aggregate
#: speedups toward the saturation workloads that dominate sweep wall-clock.
CANONICAL_WORKLOADS = (
    ("mesh8x8-uniform-low-baseline", BASELINE, 0.02, 1),
    ("mesh8x8-uniform-low-pseudo_sb", PSEUDO_SB, 0.02, 1),
    ("mesh8x8-uniform-sat-baseline", BASELINE, 0.30, 3),
    ("mesh8x8-uniform-sat-pseudo_sb", PSEUDO_SB, 0.30, 3),
)

#: Wall-clock of the pre-active-set core (commit b4c3d8c) on the canonical
#: workloads, measured with this same driver (cycles=1500, best of 2) on
#: the machine where the active-set core was developed. Kept as the fixed
#: origin of the perf trajectory; only comparable to runs with default
#: ``cycles`` on similar hardware.
PRE_CHANGE_WALL_S = {
    "mesh8x8-uniform-low-baseline": 0.497,
    "mesh8x8-uniform-low-pseudo_sb": 0.616,
    "mesh8x8-uniform-sat-baseline": 3.936,
    "mesh8x8-uniform-sat-pseudo_sb": 5.694,
}

#: Wall-clock of the PR 1 active-set core (commit 78707cf), before compiled
#: routing tables and the bitmask allocator — the second fixed point of the
#: trajectory, same measurement conditions as ``PRE_CHANGE_WALL_S``.
PR1_WALL_S = {
    "mesh8x8-uniform-low-baseline": 0.165,
    "mesh8x8-uniform-low-pseudo_sb": 0.2175,
    "mesh8x8-uniform-sat-baseline": 2.3686,
    "mesh8x8-uniform-sat-pseudo_sb": 3.2235,
}

DEFAULT_CYCLES = 1500
DEFAULT_REPEATS = 3
_SEED = 7

#: Bench backends that time the vectorized core alongside the scalar one.
#: ``auto`` additionally runs the selector microcalibration and records
#: per-workload ``recommended_backend`` / ``fastest_backend`` columns;
#: every backend in this tuple also times the batched 16-point sweep.
_VEC_BACKENDS = ("vectorized", "auto", "batched")

#: Offered-load points probed by the selector microcalibration
#: (flits/terminal/cycle on the canonical 8x8 mesh).
CALIBRATION_RATES = (0.02, 0.05, 0.10, 0.20, 0.30)

#: The batched-backend benchmark: a 16-point low-load sweep (rates cycle
#: through this tuple, seeds vary per point) timed once per point on the
#: solo vectorized core and once as 16 lanes of one ``BatchNetwork``.
BATCHED_SWEEP_LANES = 16
BATCHED_SWEEP_RATES = (0.01, 0.02, 0.03, 0.04)

#: Timing-methodology tag written to ``meta``; the timing gate only
#: compares walls between reports with matching tags. Bump when the
#: timed region changes meaning (e.g. "replay-1" moved traffic
#: generation out of it).
METHODOLOGY = "replay-1"


class _InjectionSchedule:
    """The pre-drawn injection sequence of one canonical workload.

    A Bernoulli source draws per (terminal, cycle) independently of
    network state, so the whole sequence can be recorded up front —
    outside the timed region — and replayed identically into every
    mode and backend of the workload.
    """

    def __init__(self, rate: float, cycles: int, terminals: int,
                 packet_size: int = 5, seed: int = _SEED):
        traffic = SyntheticTraffic("uniform", terminals, rate, packet_size,
                                   seed=seed)
        entries: list[tuple[int, int, int]] = []

        class _Recorder:
            cycle = 0

            @staticmethod
            def inject(packet):
                """Record the draw instead of simulating it."""
                entries.append((_Recorder.cycle, packet.src, packet.dst))

        for cycle in range(cycles):
            _Recorder.cycle = cycle
            traffic.tick(_Recorder, cycle)
        self.entries = entries
        self.packet_size = packet_size

    def replay(self) -> "_ReplayTraffic":
        """A fresh traffic source replaying this schedule from the top."""
        return _ReplayTraffic(self)


class _ReplayTraffic:
    """Traffic source injecting a recorded schedule (fresh packets)."""

    def __init__(self, schedule: _InjectionSchedule):
        self._entries = schedule.entries
        self._size = schedule.packet_size
        self._pos = 0

    def tick(self, network, cycle: int) -> None:
        """Inject every recorded packet due this cycle."""
        entries, size = self._entries, self._size
        pos, n = self._pos, len(entries)
        while pos < n and entries[pos][0] == cycle:
            _, src, dst = entries[pos]
            network.inject(Packet(src, dst, size, cycle))
            pos += 1
        self._pos = pos

    def next_injection_cycle(self, cycle: int) -> int | None:
        """Cycle of the next pending injection (None when drained)."""
        pos = self._pos
        return self._entries[pos][0] if pos < len(self._entries) else None


def _simulate(scheme, rate: float, cycles: int, active: bool,
              backend: str = "scalar", schedule=None):
    """Run one canonical workload once; returns (stats dict, wall seconds).

    ``active=True`` is the shipped fast path (active sets + compiled
    routing); ``active=False`` is the exhaustive reference with dynamic
    routing, so the cross-check covers every hot-path optimization at
    once. ``backend="vectorized"`` runs the numpy structure-of-arrays
    core instead (``active`` is ignored: that core is always compiled).
    ``schedule`` replays pre-drawn injections so the timed region covers
    the simulator only; without one the Bernoulli source runs live.
    """
    config = NetworkConfig(num_vcs=4, buffer_depth=4, pseudo=scheme)
    topo = make_topology("mesh", 8, 8, 1)
    if backend == "vectorized":
        from ..network.vectorized import VectorNetwork
        net = VectorNetwork(topo, config, seed=_SEED)
    else:
        net = build_network(topo, config=config, seed=_SEED,
                            active_set=active, compiled_routing=active)
    if schedule is not None:
        traffic = schedule.replay()
    else:
        traffic = SyntheticTraffic("uniform", topo.num_terminals, rate, 5,
                                   seed=_SEED)
    net.stats.warmup_cycles = cycles // 5
    start = time.perf_counter()
    net.run(cycles, traffic)
    net.drain(max_cycles=500_000)
    wall = time.perf_counter() - start
    fingerprint = net.stats.fingerprint()
    fingerprint["final_cycle"] = net.cycle
    return fingerprint, wall


def time_workload(scheme, rate: float, cycles: int = DEFAULT_CYCLES,
                  repeats: int = DEFAULT_REPEATS,
                  backend: str = "scalar") -> dict:
    """Time one workload in both stepping modes and cross-check stats.

    With ``backend="vectorized"`` (or ``"auto"``/``"batched"``) the
    workload is additionally timed on the vectorized core against the
    same injection schedule, its stats fingerprint is asserted
    bit-identical to the scalar core's, and the row gains
    ``vectorized_wall_s`` / ``speedup_vectorized`` /
    ``vectorized_stats_identical`` columns. ``backend="auto"`` further
    records what ``choose_backend`` would pick for the workload
    (``recommended_backend``), which core actually measured fastest
    (``fastest_backend``), and the wall the recommendation implies
    (``auto_wall_s``) — the raw material of the auto-selector gate.
    """
    terminals = make_topology("mesh", 8, 8, 1).num_terminals
    schedule = _InjectionSchedule(rate, cycles, terminals)
    active_walls, reference_walls, vec_walls = [], [], []
    active_stats = reference_stats = vec_stats = None
    for _ in range(repeats):
        active_stats, wall = _simulate(scheme, rate, cycles, active=True,
                                       schedule=schedule)
        active_walls.append(wall)
        reference_stats, wall = _simulate(scheme, rate, cycles,
                                          active=False, schedule=schedule)
        reference_walls.append(wall)
        if backend in _VEC_BACKENDS:
            vec_stats, wall = _simulate(scheme, rate, cycles, active=True,
                                        backend="vectorized",
                                        schedule=schedule)
            vec_walls.append(wall)
    if active_stats != reference_stats:
        raise AssertionError(
            f"fast-path stats diverged from the exhaustive reference for "
            f"{scheme.label}@{rate}")
    wall_s = min(active_walls)
    reference_wall_s = min(reference_walls)
    row = {
        "scheme": scheme.label,
        "rate": rate,
        "cycles": cycles,
        "packets": active_stats["ejected_packets"],
        "wall_s": round(wall_s, 4),
        "reference_wall_s": round(reference_wall_s, 4),
        "speedup_vs_reference": round(reference_wall_s / wall_s, 3),
        "stats_identical": True,
    }
    if backend in _VEC_BACKENDS:
        if vec_stats != active_stats:
            diverged = sorted(
                k for k in set(vec_stats) | set(active_stats)
                if vec_stats.get(k) != active_stats.get(k))
            raise AssertionError(
                f"vectorized-backend stats diverged from the scalar core "
                f"for {scheme.label}@{rate}: {diverged}")
        vec_wall_s = min(vec_walls)
        row["vectorized_wall_s"] = round(vec_wall_s, 4)
        row["speedup_vectorized"] = round(wall_s / vec_wall_s, 3)
        row["vectorized_stats_identical"] = True
    if backend == "auto":
        from ..network.backend import choose_backend
        recommended = choose_backend(terminals=terminals, rate=rate,
                                     pseudo=scheme.enabled)
        row["recommended_backend"] = recommended
        row["fastest_backend"] = ("vectorized"
                                  if row["vectorized_wall_s"] < wall_s
                                  else "scalar")
        row["auto_wall_s"] = (row["vectorized_wall_s"]
                              if recommended == "vectorized" else
                              row["wall_s"])
    return row


def calibrate_selector(cycles: int = 600, show: bool = True) -> dict:
    """Measure the scalar/vectorized crossover and install it.

    Times both cores over ``CALIBRATION_RATES`` on the canonical 8x8
    mesh (replayed injections, one repeat — a probe, not a benchmark)
    and places the crossover at the midpoint of the bracketing
    offered-load points, per scheme kind. The measured block is
    installed via ``repro.network.backend.set_calibration`` — so the
    ``auto`` columns of the same bench run use it — and returned for
    recording into BENCH_core.json, where ``load_calibration`` can pick
    it up in later processes.
    """
    from ..network.backend import set_calibration
    terminals = make_topology("mesh", 8, 8, 1).num_terminals
    cross: dict[str, float] = {}
    probe: dict[str, list] = {}
    for kind, scheme in (("baseline", BASELINE), ("pseudo", PSEUDO_SB)):
        rows = []
        for rate in CALIBRATION_RATES:
            schedule = _InjectionSchedule(rate, cycles, terminals)
            _, scalar_wall = _simulate(scheme, rate, cycles, active=True,
                                       schedule=schedule)
            _, vec_wall = _simulate(scheme, rate, cycles, active=True,
                                    backend="vectorized", schedule=schedule)
            rows.append({"rate": rate,
                         "offered_flits_per_cycle": round(rate * terminals,
                                                          3),
                         "scalar_wall_s": round(scalar_wall, 4),
                         "vectorized_wall_s": round(vec_wall, 4)})
        crossover = None
        prev = None
        for row in rows:
            if row["vectorized_wall_s"] <= row["scalar_wall_s"]:
                if prev is None:
                    crossover = row["offered_flits_per_cycle"]
                else:
                    crossover = (prev["offered_flits_per_cycle"]
                                 + row["offered_flits_per_cycle"]) / 2
                break
            prev = row
        if crossover is None:
            # The vectorized core never won in the probed range: place
            # the crossover past it so ``auto`` keeps picking scalar.
            crossover = rows[-1]["offered_flits_per_cycle"] * 2
        cross[kind] = round(crossover, 2)
        probe[kind] = rows
    set_calibration({"crossover_flits_per_cycle": cross,
                     "source": "measured"})
    if show:
        print(f"{'selector calibration (flits/cyc)':32s} "
              f"baseline {cross['baseline']:g}  pseudo {cross['pseudo']:g}")
    return {"crossover_flits_per_cycle": cross, "source": "measured",
            "probe": {"cycles": cycles, "terminals": terminals,
                      "rates": list(CALIBRATION_RATES),
                      "workloads": probe}}


def time_batched_sweep(cycles: int = DEFAULT_CYCLES,
                       repeats: int = DEFAULT_REPEATS) -> dict:
    """Time a 16-point low-load sweep solo-vectorized vs lane-batched.

    Every point runs the canonical 8x8 mesh with the full Pseudo+S+B
    scheme under uniform Bernoulli traffic (rates cycle through
    ``BATCHED_SWEEP_RATES``, seeds vary per point). The solo wall sums
    16 independent ``VectorNetwork`` runs; the batched wall is one
    16-lane ``BatchNetwork`` run over byte-identical injection
    sequences (``SyntheticTraffic`` pre-draws its outcomes, so solo and
    lane consume the same stream). Every lane's stats fingerprint is
    hard-asserted identical to its solo reference before any timing is
    reported. Walls are best-of-``repeats``.
    """
    from ..network.vectorized import BatchNetwork, VectorNetwork
    config = NetworkConfig(num_vcs=4, buffer_depth=4, pseudo=PSEUDO_SB)
    topo = make_topology("mesh", 8, 8, 1)
    terminals = topo.num_terminals
    points = [(BATCHED_SWEEP_RATES[i % len(BATCHED_SWEEP_RATES)], _SEED + i)
              for i in range(BATCHED_SWEEP_LANES)]
    warmup = cycles // 5

    def traffics():
        return [SyntheticTraffic("uniform", terminals, rate, 5, seed=seed)
                for rate, seed in points]

    solo_walls, batched_walls = [], []
    for _ in range(repeats):
        solo_prints = []
        wall = 0.0
        for (rate, seed), traffic in zip(points, traffics()):
            net = VectorNetwork(topo, config, seed=seed)
            net.stats.warmup_cycles = warmup
            start = time.perf_counter()
            net.run(cycles, traffic)
            net.drain(max_cycles=500_000)
            wall += time.perf_counter() - start
            solo_prints.append(net.stats.fingerprint())
        solo_walls.append(wall)
        bnet = BatchNetwork(topo, config,
                            seeds=[seed for _, seed in points])
        batch_traffics = traffics()
        start = time.perf_counter()
        bnet.run_batch(batch_traffics, [cycles] * len(points),
                       warmups=[warmup] * len(points))
        bnet.drain(max_cycles=500_000)
        batched_walls.append(time.perf_counter() - start)
        for lane, solo in enumerate(solo_prints):
            got = bnet.lane_stats(lane).fingerprint()
            if got != solo:
                diverged = sorted(k for k in set(got) | set(solo)
                                  if got.get(k) != solo.get(k))
                raise AssertionError(
                    f"batched lane {lane} (rate "
                    f"{points[lane][0]}, seed {points[lane][1]}) diverged "
                    f"from its solo vectorized reference: {diverged}")
    solo_wall_s = min(solo_walls)
    batched_wall_s = min(batched_walls)
    return {
        "name": "mesh8x8-lowload-sweep16-pseudo_sb",
        "lanes": len(points),
        "rates": sorted(set(rate for rate, _ in points)),
        "cycles": cycles,
        "solo_vectorized_wall_s": round(solo_wall_s, 4),
        "batched_wall_s": round(batched_wall_s, 4),
        "speedup_batched": round(solo_wall_s / batched_wall_s, 3),
        "stats_identical": True,
    }


def _weighted_geomean_speedup(workloads: list[dict], baseline_key: str,
                              weights: dict[str, int]) -> float | None:
    """Weighted geometric mean of per-workload speedups vs a baseline."""
    log_sum = 0.0
    weight_sum = 0
    for row in workloads:
        base = row.get(baseline_key)
        if base is None:
            return None
        weight = weights[row["name"]]
        log_sum += weight * math.log(base / row["wall_s"])
        weight_sum += weight
    if not weight_sum:
        return None
    return round(math.exp(log_sum / weight_sum), 3)


def _vectorized_speedup(workloads: list[dict], weights: dict[str, int],
                        sat_only: bool) -> float | None:
    """Weighted geomean of scalar-vs-vectorized wall ratios.

    ``sat_only`` restricts to the saturation workloads (weight > 1) —
    the metric the backend gate enforces, because sweep wall-clock is
    saturation-dominated.
    """
    log_sum = 0.0
    weight_sum = 0
    for row in workloads:
        weight = weights[row["name"]]
        if sat_only and weight <= 1:
            continue
        vec = row.get("vectorized_wall_s")
        if vec is None:
            return None
        log_sum += weight * math.log(row["wall_s"] / vec)
        weight_sum += weight
    if not weight_sum:
        return None
    return round(math.exp(log_sum / weight_sum), 3)


def profile_vectorized(cycles: int = DEFAULT_CYCLES) -> dict:
    """One profiled vectorized repeat of the saturation pseudo workload.

    Returns the per-phase wall-time breakdown of the vectorized step
    loop (``VectorNetwork.enable_profile``: BW / VA+SA / ST+credit /
    PC maintenance / inject, plus stepped vs fast-forwarded cycles) —
    a cheap always-on complement to ``--profile``'s cProfile dump,
    recorded into the bench report so the phase mix is tracked over
    time alongside the walls. Never timed: the profiled repeat is
    separate from the rows the timing gate compares.
    """
    from ..network.vectorized import VectorNetwork
    config = NetworkConfig(num_vcs=4, buffer_depth=4, pseudo=PSEUDO_SB)
    topo = make_topology("mesh", 8, 8, 1)
    schedule = _InjectionSchedule(0.30, cycles, topo.num_terminals)
    net = VectorNetwork(topo, config, seed=_SEED)
    net.enable_profile()
    net.stats.warmup_cycles = cycles // 5
    net.run(cycles, schedule.replay())
    net.drain(max_cycles=500_000)
    doc = net.profile()
    doc["workload"] = "mesh8x8-uniform-sat-pseudo_sb"
    return doc


def profile_workloads(cycles: int = DEFAULT_CYCLES, top: int = 20) -> None:
    """Run one repeat of every canonical workload under cProfile and print
    the ``top`` cumulative-time entries."""
    profiler = cProfile.Profile()
    profiler.enable()
    for _name, scheme, rate, _weight in CANONICAL_WORKLOADS:
        _simulate(scheme, rate, cycles, active=True)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    stats.print_stats(top)


def run_bench(cycles: int = DEFAULT_CYCLES, repeats: int = DEFAULT_REPEATS,
              out_path: str | None = "BENCH_core.json",
              show: bool = True, profile: bool = False,
              gate: bool = False, check: bool = False,
              journal: str | None = None, resume: bool = False,
              backend: str = "scalar",
              min_backend_speedup: float | None = None,
              min_batched_speedup: float | None = None) -> dict:
    """Time every canonical workload; optionally write ``BENCH_core.json``.

    ``check=True`` additionally runs the monitored self-check
    (``repro.monitor.self_check``) on the same canonical rates and writes
    its metrics document next to the report (``*.metrics.json``).

    ``journal=`` checkpoints every timed workload row to a
    ``repro.store.SweepJournal`` as it lands; ``resume=True`` reuses the
    journaled rows of an interrupted earlier bench instead of re-timing
    them (the resumed rows carry the walls the interrupted run measured —
    fine for finishing a report, not for an apples-to-apples perf gate).

    ``backend="vectorized"`` (or ``"auto"``/``"batched"``) also times
    every workload on the vectorized core (scalar-parity asserted;
    per-row speedup columns, summary geomeans) plus the 16-point
    lane-batched sweep (``batched`` report section, every lane
    fingerprint hard-asserted against its solo reference), records one
    profiled vectorized repeat's per-phase wall breakdown as the
    report's ``phase_profile`` block, and — under ``gate=True`` — runs
    the vectorized overhead gate too (probes cold on a default-built
    ``VectorNetwork``; stats bit-identical with ``VectorSeriesProbe``
    plus the strict invariant checker attached). With
    ``gate=True``, ``min_backend_speedup`` sets a floor on the
    saturation speedup geomean and ``min_batched_speedup`` one on the
    batched-sweep speedup. ``backend="auto"`` additionally runs the
    selector microcalibration (recorded as the report's ``calibration``
    block), records ``recommended_backend``/``fastest_backend`` per
    workload, and — under ``gate=True`` — fails when the selector
    disagrees with the measured fastest core on more than one workload
    or its pick is over 5% slower than the best core anywhere.
    """
    previous = None
    if gate and out_path is not None and os.path.exists(out_path):
        with open(out_path, encoding="utf-8") as fh:
            previous = json.load(fh)
    bench_journal = None
    completed_rows: dict = {}
    if journal is not None:
        bench_journal = SweepJournal(journal)
        if resume:
            completed_rows = bench_journal.load()
        else:
            bench_journal.truncate()
    start_wall = time.perf_counter()
    calibration_block = None
    if backend == "auto":
        # Measure before timing the workloads so the auto columns (and
        # the gate) judge the freshly calibrated selector, not a stale
        # or default one.
        calibration_block = calibrate_selector(cycles=min(cycles, 600),
                                               show=show)
    workloads = []
    weights = {name: weight for name, _, _, weight in CANONICAL_WORKLOADS}
    at_default_scale = cycles == DEFAULT_CYCLES
    for name, scheme, rate, weight in CANONICAL_WORKLOADS:
        journal_key = (f"bench:{name}:cycles={cycles}:repeats={repeats}"
                       f":backend={backend}")
        resumed = completed_rows.get(journal_key)
        if resumed is not None:
            workloads.append(resumed)
            if show:
                print(f"{name:32s} {resumed['wall_s']:7.3f}s  (resumed "
                      f"from journal)")
            continue
        row = {"name": name, "weight": weight,
               **time_workload(scheme, rate, cycles, repeats,
                               backend=backend)}
        if at_default_scale:
            row["pre_change_wall_s"] = PRE_CHANGE_WALL_S[name]
            row["speedup_vs_pre_change"] = round(
                PRE_CHANGE_WALL_S[name] / row["wall_s"], 3)
            row["pr1_wall_s"] = PR1_WALL_S[name]
            row["speedup_vs_pr1"] = round(PR1_WALL_S[name] / row["wall_s"], 3)
        workloads.append(row)
        if bench_journal is not None:
            bench_journal.append(journal_key, row)
        if show:
            speedup = row.get("speedup_vs_pr1")
            trail = f"  {speedup}x vs PR1" if speedup is not None else ""
            vec = row.get("speedup_vectorized")
            if vec is not None:
                trail += (f"  vec {row['vectorized_wall_s']:.3f}s "
                          f"({vec}x)")
            recommended = row.get("recommended_backend")
            if recommended is not None:
                trail += f"  auto->{recommended}"
            print(f"{name:32s} {row['wall_s']:7.3f}s  "
                  f"(reference {row['reference_wall_s']:7.3f}s){trail}")
    batched_row = None
    if backend in _VEC_BACKENDS:
        journal_key = (f"bench:batched-sweep:cycles={cycles}"
                       f":repeats={repeats}")
        batched_row = completed_rows.get(journal_key)
        if batched_row is None:
            batched_row = time_batched_sweep(cycles, repeats)
            if bench_journal is not None:
                bench_journal.append(journal_key, batched_row)
        if show:
            print(f"{batched_row['name']:32s} "
                  f"{batched_row['batched_wall_s']:7.3f}s  "
                  f"(solo vec {batched_row['solo_vectorized_wall_s']:7.3f}s)"
                  f"  batched {batched_row['speedup_batched']}x")
    if bench_journal is not None:
        bench_journal.close()
    phase_profile = None
    if backend in _VEC_BACKENDS:
        phase_profile = profile_vectorized(cycles)
        if show:
            fractions = phase_profile["fractions"]
            mix = "  ".join(f"{key} {fractions[key]:.0%}"
                            for key in ("bw", "va_sa", "st_credit", "pc",
                                        "inject"))
            print(f"{'vectorized phase profile':32s} {mix}")
    summary = {}
    if backend in _VEC_BACKENDS:
        summary["speedup_vectorized_sat"] = _vectorized_speedup(
            workloads, weights, sat_only=True)
        summary["speedup_vectorized_all"] = _vectorized_speedup(
            workloads, weights, sat_only=False)
        if show and summary["speedup_vectorized_sat"] is not None:
            print(f"{'vectorized speedup (sat geomean)':32s} "
                  f"{summary['speedup_vectorized_sat']:7.3f}x")
    if batched_row is not None:
        summary["speedup_batched"] = batched_row["speedup_batched"]
    if backend == "auto":
        disagreements = [row["name"] for row in workloads
                         if row["recommended_backend"]
                         != row["fastest_backend"]]
        penalty = max(
            row["auto_wall_s"]
            / min(row["wall_s"], row["vectorized_wall_s"]) - 1.0
            for row in workloads)
        summary["recommended_backend"] = {
            row["name"]: row["recommended_backend"] for row in workloads}
        summary["auto_disagreements"] = disagreements
        summary["auto_max_penalty"] = round(penalty, 4)
        if show:
            print(f"{'auto selector':32s} {len(disagreements)} "
                  f"disagreement(s), max penalty {penalty:+.2%}")
    if at_default_scale:
        summary.update({
            "weighted_speedup_vs_pr1": _weighted_geomean_speedup(
                workloads, "pr1_wall_s", weights),
            "weighted_speedup_vs_pre_change": _weighted_geomean_speedup(
                workloads, "pre_change_wall_s", weights),
            "weight_note": ("geometric means weighted per workload "
                            "(saturation x3): sweep wall-clock is "
                            "saturation-dominated."),
        })
        if show and summary["weighted_speedup_vs_pr1"] is not None:
            print(f"{'weighted (sat x3) vs PR1':32s} "
                  f"{summary['weighted_speedup_vs_pr1']:7.3f}x")
    report = {
        "meta": {
            "generated_unix": int(time.time()),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "git_sha": git_sha(),
            "cycles": cycles,
            "repeats": repeats,
            "seed": _SEED,
            "backend": backend,
            "methodology": METHODOLOGY,
            "pre_change_note": (
                "pre_change_wall_s columns replay the measurements taken "
                "against the pre-active-set core (commit b4c3d8c), "
                "pr1_wall_s those against the PR 1 active-set core (commit "
                "78707cf), with this driver at default scale; comparable "
                "only on similar hardware."),
        },
        "summary": summary,
        "workloads": workloads,
    }
    if calibration_block is not None:
        report["calibration"] = calibration_block
    if batched_row is not None:
        report["batched"] = batched_row
    if phase_profile is not None:
        report["phase_profile"] = phase_profile
    if gate:
        # Scale-independent checks always run; the timing comparison only
        # applies against a previous report at the same cycle count and
        # timing methodology (walls across methodologies don't compare).
        gate_report = overhead_gate(cycles=min(cycles, 400), show=show)
        if backend in _VEC_BACKENDS:
            gate_report["vectorized_overhead"] = vectorized_overhead_gate(
                cycles=min(cycles, 400), show=show)
        if (previous is not None
                and previous["meta"]["cycles"] == cycles
                and previous["meta"].get("methodology") == METHODOLOGY):
            gate_report["timing"] = timing_gate(
                workloads, previous["workloads"], weights)
            if show and gate_report["timing"].get("applied"):
                print(f"timing gate: {gate_report['timing']['overhead']:+.2%}"
                      f" vs previous report (threshold "
                      f"{gate_report['timing']['threshold']:.0%})")
        elif show:
            print("timing gate: skipped (no previous report at this "
                  "scale/methodology)")
        if backend in _VEC_BACKENDS:
            # Parity already hard-asserted per workload in time_workload;
            # record it, plus the speedup floor when one was requested.
            sat = summary.get("speedup_vectorized_sat")
            gate_report["backend"] = {
                "backend": backend,
                "stats_identical": all(
                    row.get("vectorized_stats_identical", False)
                    for row in workloads),
                "speedup_vectorized_sat": sat,
                "min_backend_speedup": min_backend_speedup,
            }
            if (min_backend_speedup is not None
                    and (sat is None or sat < min_backend_speedup)):
                raise AssertionError(
                    f"vectorized-backend gate: saturation speedup geomean "
                    f"{sat} below the required {min_backend_speedup}x")
            if show:
                print(f"backend gate: vectorized parity ok, sat speedup "
                      f"{sat}x" + (f" (floor {min_backend_speedup}x)"
                                   if min_backend_speedup else ""))
        if batched_row is not None:
            gate_report["batched"] = {
                "speedup_batched": batched_row["speedup_batched"],
                "stats_identical": batched_row["stats_identical"],
                "min_batched_speedup": min_batched_speedup,
            }
            if (min_batched_speedup is not None
                    and batched_row["speedup_batched"]
                    < min_batched_speedup):
                raise AssertionError(
                    f"batched-backend gate: sweep speedup "
                    f"{batched_row['speedup_batched']} below the required "
                    f"{min_batched_speedup}x")
            if show:
                print(f"batched gate: lane parity ok, sweep speedup "
                      f"{batched_row['speedup_batched']}x"
                      + (f" (floor {min_batched_speedup}x)"
                         if min_batched_speedup else ""))
        if backend == "auto":
            # The selector is judged against the measurements of this
            # very run: one disagreement is tolerated (the crossover
            # region is noise-sensitive), two means the calibration is
            # wrong; a >5% penalty means auto's pick costs real time.
            disagreements = summary["auto_disagreements"]
            penalty = summary["auto_max_penalty"]
            gate_report["auto"] = {
                "disagreements": disagreements,
                "max_penalty": penalty,
            }
            if len(disagreements) > 1:
                raise AssertionError(
                    f"auto-selector gate: recommended backend disagrees "
                    f"with the measured fastest on {len(disagreements)} "
                    f"workloads: {disagreements}")
            if penalty > 0.05:
                raise AssertionError(
                    f"auto-selector gate: auto's pick is {penalty:.1%} "
                    f"slower than the best backend on some workload "
                    f"(allowed 5%)")
            if show:
                print(f"auto gate: {len(disagreements)} disagreement(s), "
                      f"max penalty {penalty:+.2%}")
        # Telemetry must be free when off and pure observation when on:
        # a telemetry-off sweep constructs no emitter at all, and a
        # telemetry-on sweep returns bit-identical results. Raises
        # OverheadGateError on any violation.
        from ..telemetry.overhead import telemetry_cold_check
        gate_report["telemetry"] = telemetry_cold_check()
        if show:
            tel_gate = gate_report["telemetry"]
            print(f"telemetry gate: off-by-default ok, "
                  f"{tel_gate['points']} points bit-identical with "
                  f"telemetry on ({tel_gate['stream_records']} stream "
                  f"records)")
        report["overhead_gate"] = gate_report
    if check:
        from ..monitor import metrics_path, self_check, write_metrics
        check_report = self_check(cycles=min(cycles, 600), show=show)
        report["self_check"] = {
            "runs": len(check_report["runs"]),
            "violations": sum(run["violation_count"]
                              for run in check_report["runs"]),
            "stats_identical": all(run["stats_identical"]
                                   for run in check_report["runs"]),
        }
        if out_path is not None:
            path = write_metrics(metrics_path(out_path), check_report)
            if show:
                print(f"wrote {path}")
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        manifest = run_manifest(
            {"driver": "bench", "cycles": cycles, "repeats": repeats,
             "backend": backend, "methodology": METHODOLOGY,
             "workloads": [name for name, *_ in CANONICAL_WORKLOADS]},
            seed=_SEED, wall_s=time.perf_counter() - start_wall)
        write_manifest(manifest, out_path)
        if show:
            print(f"wrote {out_path}")
    if profile:
        if show:
            print("\nprofiling one repeat of every workload (fast path):")
        profile_workloads(cycles)
    return report
