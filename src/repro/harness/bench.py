"""Core-performance benchmark and perf-trajectory tracking.

``run_bench`` times the canonical simulator workloads — an 8x8 mesh under
uniform-random traffic at a low-load and a near-saturation point, for the
baseline router and the full Pseudo+S+B scheme — in both the shipped
active-set stepping mode and the exhaustive reference mode, verifies that
the two modes produced identical ``NetworkStats``, and writes the timings
to ``BENCH_core.json``. Re-running ``python -m repro bench`` after a change
(and diffing the JSON) is how this repo tracks simulator performance over
time.

Wall-clock numbers are best-of-``repeats`` to suppress scheduler noise.
``PRE_CHANGE_WALL_S`` preserves the measurements taken against the
pre-active-set core when this benchmark was introduced, so the file always
carries the trajectory baseline with it.
"""

from __future__ import annotations

import json
import platform
import sys
import time

from ..network.config import BASELINE, PSEUDO_SB, NetworkConfig
from ..network.simulator import build_network
from ..topology import make_topology
from ..traffic.synthetic import SyntheticTraffic

#: (name, scheme, injection rate in flits/terminal/cycle). 0.02 sits in the
#: paper's low-load latency region; 0.30 is just past saturation for the
#: baseline 8x8 mesh with XY routing.
CANONICAL_WORKLOADS = (
    ("mesh8x8-uniform-low-baseline", BASELINE, 0.02),
    ("mesh8x8-uniform-low-pseudo_sb", PSEUDO_SB, 0.02),
    ("mesh8x8-uniform-sat-baseline", BASELINE, 0.30),
    ("mesh8x8-uniform-sat-pseudo_sb", PSEUDO_SB, 0.30),
)

#: Wall-clock of the pre-active-set core (commit b4c3d8c) on the canonical
#: workloads, measured with this same driver (cycles=1500, best of 2) on
#: the machine where the active-set core was developed. Kept as the fixed
#: origin of the perf trajectory; only comparable to runs with default
#: ``cycles`` on similar hardware.
PRE_CHANGE_WALL_S = {
    "mesh8x8-uniform-low-baseline": 0.497,
    "mesh8x8-uniform-low-pseudo_sb": 0.616,
    "mesh8x8-uniform-sat-baseline": 3.936,
    "mesh8x8-uniform-sat-pseudo_sb": 5.694,
}

DEFAULT_CYCLES = 1500
DEFAULT_REPEATS = 3
_SEED = 7


def _simulate(scheme, rate: float, cycles: int, active: bool):
    """Run one canonical workload once; returns (stats dict, wall seconds)."""
    config = NetworkConfig(num_vcs=4, buffer_depth=4, pseudo=scheme)
    topo = make_topology("mesh", 8, 8, 1)
    net = build_network(topo, config=config, seed=_SEED, active_set=active)
    traffic = SyntheticTraffic("uniform", topo.num_terminals, rate, 5,
                               seed=_SEED)
    net.stats.warmup_cycles = cycles // 5
    start = time.perf_counter()
    net.run(cycles, traffic)
    net.drain(max_cycles=500_000)
    wall = time.perf_counter() - start
    fingerprint = dict(vars(net.stats))
    fingerprint.pop("_lat_samples", None)
    fingerprint["final_cycle"] = net.cycle
    return fingerprint, wall


def time_workload(scheme, rate: float, cycles: int = DEFAULT_CYCLES,
                  repeats: int = DEFAULT_REPEATS) -> dict:
    """Time one workload in both stepping modes and cross-check stats."""
    active_walls, reference_walls = [], []
    active_stats = reference_stats = None
    for _ in range(repeats):
        active_stats, wall = _simulate(scheme, rate, cycles, active=True)
        active_walls.append(wall)
        reference_stats, wall = _simulate(scheme, rate, cycles, active=False)
        reference_walls.append(wall)
    if active_stats != reference_stats:
        raise AssertionError(
            f"active-set stats diverged from exhaustive stepping for "
            f"{scheme.label}@{rate}")
    wall_s = min(active_walls)
    reference_wall_s = min(reference_walls)
    return {
        "scheme": scheme.label,
        "rate": rate,
        "cycles": cycles,
        "packets": active_stats["ejected_packets"],
        "wall_s": round(wall_s, 4),
        "reference_wall_s": round(reference_wall_s, 4),
        "speedup_vs_reference": round(reference_wall_s / wall_s, 3),
        "stats_identical": True,
    }


def run_bench(cycles: int = DEFAULT_CYCLES, repeats: int = DEFAULT_REPEATS,
              out_path: str | None = "BENCH_core.json",
              show: bool = True) -> dict:
    """Time every canonical workload; optionally write ``BENCH_core.json``."""
    workloads = []
    for name, scheme, rate in CANONICAL_WORKLOADS:
        row = {"name": name,
               **time_workload(scheme, rate, cycles, repeats)}
        pre = PRE_CHANGE_WALL_S.get(name)
        if pre is not None and cycles == DEFAULT_CYCLES:
            row["pre_change_wall_s"] = pre
            row["speedup_vs_pre_change"] = round(pre / row["wall_s"], 3)
        workloads.append(row)
        if show:
            speedup = row.get("speedup_vs_pre_change")
            trail = (f"  {speedup}x vs pre-change"
                     if speedup is not None else "")
            print(f"{name:32s} {row['wall_s']:7.3f}s  "
                  f"(reference {row['reference_wall_s']:7.3f}s){trail}")
    report = {
        "meta": {
            "generated_unix": int(time.time()),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cycles": cycles,
            "repeats": repeats,
            "seed": _SEED,
            "pre_change_note": (
                "pre_change_wall_s columns replay the measurements taken "
                "against the pre-active-set core (commit b4c3d8c) with "
                "this driver at default scale; comparable only on similar "
                "hardware."),
        },
        "workloads": workloads,
    }
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        if show:
            print(f"wrote {out_path}")
    return report
