"""Trace extraction with per-process memoization.

Mirrors the paper's methodology: traces are extracted once per benchmark
from the closed-loop CMP substrate (on the paper's cmesh CMP configuration)
and then replayed against every router configuration under test.
"""

from __future__ import annotations

from ..cmp.system import CmpSystem
from ..traffic.trace import Trace

_trace_cache: dict[tuple, Trace] = {}
_cmp_cache: dict[tuple, CmpSystem] = {}


def get_cmp_run(benchmark: str, cycles: int = 2000, warmup: int = 400,
                seed: int = 1) -> CmpSystem:
    """A finished closed-loop CMP run for ``benchmark`` (memoized)."""
    key = (benchmark, cycles, warmup, seed)
    system = _cmp_cache.get(key)
    if system is None:
        system = CmpSystem(benchmark, seed=seed)
        system.run(cycles + warmup, record_trace=True, warmup=warmup)
        _cmp_cache[key] = system
    return system


def get_trace(benchmark: str, cycles: int = 2000, warmup: int = 400,
              seed: int = 1) -> Trace:
    """The injection trace of the corresponding CMP run (memoized)."""
    key = (benchmark, cycles, warmup, seed)
    trace = _trace_cache.get(key)
    if trace is None:
        trace = get_cmp_run(benchmark, cycles, warmup, seed).trace
        _trace_cache[key] = trace
    return trace


def clear_caches() -> None:
    _trace_cache.clear()
    _cmp_cache.clear()
