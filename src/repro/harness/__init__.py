"""Experiment harness: configs, runners, per-figure reproduction."""

from .bench import run_bench, time_workload
from .experiment import (ExperimentConfig, Result, build_network,
                         clear_cache, run_experiment)
from .figures import (ALL_FIGURES, fig1, fig6, fig8, fig9, fig10, fig11,
                      fig12, fig13, fig14, table1, table2)
from .parallel import derive_seed, prefetch, run_experiments
from .report import format_table, print_table, reduction
from .traces import get_cmp_run, get_trace

__all__ = [
    "ALL_FIGURES",
    "ExperimentConfig",
    "Result",
    "build_network",
    "clear_cache",
    "derive_seed",
    "prefetch",
    "run_bench",
    "run_experiments",
    "time_workload",
    "fig1",
    "fig6",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "format_table",
    "get_cmp_run",
    "get_trace",
    "print_table",
    "reduction",
    "run_experiment",
    "table1",
    "table2",
]
