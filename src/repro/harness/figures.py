"""Per-figure reproduction entry points.

Each ``figN`` function regenerates the rows/series of one paper figure or
table and returns them as plain data (list of dicts); with ``show=True`` it
also prints an aligned table. Scale parameters (benchmark list, trace
length, load points) default to values that finish quickly; pass larger
ones for a full evaluation (see ``examples/full_evaluation.py``).

Runs are memoized process-wide, so figures that share configurations
(Figs. 9, 10 and 11 use the same grid) pay for each simulation once.

The experiment-driven figures take ``max_workers``: each one enumerates
every configuration it is about to request, warms the run cache through
``parallel.prefetch`` (which fans the simulations out over worker
processes), and then executes its original serial loop against the cache.
Results are bit-identical to a serial run — parallelism only changes where
the simulations execute, never their seeds or their order in the output.

With a result store installed (``--store`` / ``$REPRO_STORE`` /
``experiment.set_default_store``), the memo is additionally backed by
the content-addressed on-disk store: a second ``figure all`` over a
warm store recomputes nothing — every point is a verified store hit
(``DESIGN.md`` §11) — and an interrupted figure run resumes for free.
"""

from __future__ import annotations

from ..cmp.config import CmpConfig
from ..energy import DEFAULT_ENERGY_MODEL
from ..network.config import (ALL_SCHEMES, BASELINE, PC_SCHEMES, PSEUDO_SB,
                              NetworkConfig, PseudoCircuitConfig)
from ..network.flit import Packet
from ..network.simulator import Network
from ..topology.mesh import Mesh
from .experiment import ExperimentConfig, run_experiment
from .parallel import prefetch
from .report import print_table, reduction
from .traces import get_cmp_run

#: Benchmarks used by the reduced (bench-suite) figure runs.
QUICK_BENCHMARKS = ("fma3d", "equake", "blackscholes", "specjbb", "fft",
                    "radix")
#: The best baseline configuration (paper Section VI.A).
BEST_BASELINE = ("o1turn", "dynamic")
#: The configuration used for the pseudo-circuit bars of Fig. 8 (the
#: best-performing combination in our Fig. 9 grid).
PSEUDO_CONFIG = ("xy", "dynamic")

ROUTINGS = ("xy", "yx", "o1turn")
VA_POLICIES = ("static", "dynamic")


def _trace_config(benchmark: str, routing: str, va: str,
                  scheme: PseudoCircuitConfig,
                  trace_cycles: int, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        topology="cmesh", kx=4, ky=4, concentration=4,
        routing=routing, vc_policy=va, scheme=scheme,
        benchmark=benchmark, trace_cycles=trace_cycles,
        trace_warmup=max(200, trace_cycles // 5), seed=seed)


# ---------------------------------------------------------------------------
# Fig. 1 — communication temporal locality
# ---------------------------------------------------------------------------

def fig1(benchmarks=QUICK_BENCHMARKS, cycles: int = 2000, seed: int = 1,
         show: bool = True) -> list[dict]:
    """End-to-end vs crossbar-connection temporal locality per benchmark."""
    rows = []
    for bench in benchmarks:
        system = get_cmp_run(bench, cycles=cycles, seed=seed)
        stats = system.network.stats
        rows.append({"benchmark": bench,
                     "e2e_locality": stats.e2e_locality,
                     "xbar_locality": stats.xbar_locality})
    avg = {"benchmark": "average",
           "e2e_locality": sum(r["e2e_locality"] for r in rows) / len(rows),
           "xbar_locality": sum(r["xbar_locality"] for r in rows) / len(rows)}
    rows.append(avg)
    if show:
        print_table("Fig. 1: communication temporal locality",
                    ["benchmark", "end-to-end", "crossbar connection"],
                    [(r["benchmark"], r["e2e_locality"], r["xbar_locality"])
                     for r in rows])
    return rows


# ---------------------------------------------------------------------------
# Fig. 6 — pipeline stages / per-hop router delay
# ---------------------------------------------------------------------------

def fig6(show: bool = True) -> list[dict]:
    """Measured per-hop latency of a warmed flow under each pipeline.

    Sends repeated single-flit packets along two east-west paths of
    different length on an otherwise idle mesh; the per-hop delay is the
    latency difference divided by the hop difference. Expected: 4 cycles
    baseline (BW | VA+SA | ST | LT), 3 with pseudo-circuits, 2 with buffer
    bypassing on top.
    """
    rows = []
    for scheme, expected in ((BASELINE, 4), (ALL_SCHEMES[1], 3),
                             (PSEUDO_SB, 2)):
        near = _warm_flow_latency(scheme, hops=2)
        far = _warm_flow_latency(scheme, hops=6)
        per_hop = (far - near) / 4
        rows.append({"scheme": scheme.label, "per_hop_cycles": per_hop,
                     "expected": expected})
    if show:
        print_table("Fig. 6: per-hop router delay (head flits, warm circuit)",
                    ["scheme", "measured cycles/hop", "paper pipeline"],
                    [(r["scheme"], r["per_hop_cycles"], r["expected"])
                     for r in rows])
    return rows


def _warm_flow_latency(scheme: PseudoCircuitConfig, hops: int) -> int:
    topo = Mesh(8, 2)
    net = Network(topo, NetworkConfig(pseudo=scheme), routing="xy",
                  vc_policy="static", seed=1)
    latency = 0
    for _ in range(3):  # first packets warm the circuits, last is measured
        packet = Packet(0, hops, 1, net.cycle)
        net.inject(packet)
        net.drain()
        latency = packet.network_latency
    return latency


# ---------------------------------------------------------------------------
# Fig. 8 — overall performance and reusability
# ---------------------------------------------------------------------------

def fig8(benchmarks=QUICK_BENCHMARKS, trace_cycles: int = 2000,
         seed: int = 1, show: bool = True,
         max_workers: int | None = None) -> list[dict]:
    """Latency reduction (vs the best baseline) and reusability for the
    four pseudo-circuit schemes, per benchmark plus average."""
    prefetch([_trace_config(bench, *BEST_BASELINE, BASELINE,
                            trace_cycles, seed)
              for bench in benchmarks]
             + [_trace_config(bench, *PSEUDO_CONFIG, scheme,
                              trace_cycles, seed)
                for bench in benchmarks for scheme in PC_SCHEMES],
             max_workers=max_workers)
    rows = []
    for bench in benchmarks:
        base = run_experiment(_trace_config(
            bench, *BEST_BASELINE, BASELINE, trace_cycles, seed))
        row = {"benchmark": bench, "baseline_latency": base.avg_latency}
        for scheme in PC_SCHEMES:
            res = run_experiment(_trace_config(
                bench, *PSEUDO_CONFIG, scheme, trace_cycles, seed))
            row[f"reduction_{scheme.label}"] = reduction(
                base.avg_latency, res.avg_latency)
            row[f"reuse_{scheme.label}"] = res.reusability
        rows.append(row)
    avg = {"benchmark": "average", "baseline_latency": float("nan")}
    for scheme in PC_SCHEMES:
        for kind in ("reduction", "reuse"):
            key = f"{kind}_{scheme.label}"
            avg[key] = sum(r[key] for r in rows) / len(rows)
    rows.append(avg)
    if show:
        labels = [s.label for s in PC_SCHEMES]
        print_table("Fig. 8(a): network latency reduction vs best baseline",
                    ["benchmark"] + labels,
                    [[r["benchmark"]]
                     + [r[f"reduction_{l}"] for l in labels] for r in rows])
        print_table("Fig. 8(b): pseudo-circuit reusability",
                    ["benchmark"] + labels,
                    [[r["benchmark"]]
                     + [r[f"reuse_{l}"] for l in labels] for r in rows])
    return rows


# ---------------------------------------------------------------------------
# Figs. 9/10 — routing x VA grid: latency reduction and reusability
# ---------------------------------------------------------------------------

def _grid(benchmarks, trace_cycles: int, seed: int,
          max_workers: int | None = None) -> list[dict]:
    """Latency reduction here is measured against the *same* routing/VA
    baseline, isolating the pseudo-circuit effect per combination."""
    prefetch([_trace_config(bench, routing, va, scheme, trace_cycles, seed)
              for bench in benchmarks for routing in ROUTINGS
              for va in VA_POLICIES
              for scheme in (BASELINE, *PC_SCHEMES)],
             max_workers=max_workers)
    rows = []
    for bench in benchmarks:
        for routing in ROUTINGS:
            for va in VA_POLICIES:
                base = run_experiment(_trace_config(
                    bench, routing, va, BASELINE, trace_cycles, seed))
                for scheme in PC_SCHEMES:
                    res = run_experiment(_trace_config(
                        bench, routing, va, scheme, trace_cycles, seed))
                    rows.append({
                        "benchmark": bench, "routing": routing, "va": va,
                        "scheme": scheme.label,
                        "latency": res.avg_latency,
                        "baseline_latency": base.avg_latency,
                        "reduction": reduction(base.avg_latency,
                                               res.avg_latency),
                        "reusability": res.reusability,
                        "result": res,
                    })
    return rows


def fig9(benchmarks=("fma3d", "specjbb", "radix"), trace_cycles: int = 2000,
         seed: int = 1, show: bool = True,
         max_workers: int | None = None) -> list[dict]:
    """Latency reduction for every routing x VA x scheme combination."""
    rows = _grid(benchmarks, trace_cycles, seed, max_workers)
    if show:
        print_table(
            "Fig. 9: latency reduction grid (vs same-configuration baseline)",
            ["benchmark", "routing", "va", "scheme", "reduction"],
            [(r["benchmark"], r["routing"], r["va"], r["scheme"],
              r["reduction"]) for r in rows])
    return rows


def fig10(benchmarks=("fma3d", "specjbb", "radix"), trace_cycles: int = 2000,
          seed: int = 1, show: bool = True,
          max_workers: int | None = None) -> list[dict]:
    """Reusability for every routing x VA x scheme combination."""
    rows = _grid(benchmarks, trace_cycles, seed, max_workers)
    if show:
        print_table(
            "Fig. 10: pseudo-circuit reusability grid",
            ["benchmark", "routing", "va", "scheme", "reusability"],
            [(r["benchmark"], r["routing"], r["va"], r["scheme"],
              r["reusability"]) for r in rows])
    return rows


# ---------------------------------------------------------------------------
# Fig. 11 — router energy consumption
# ---------------------------------------------------------------------------

def fig11(benchmarks=("fma3d", "specjbb", "radix"), trace_cycles: int = 2000,
          seed: int = 1, show: bool = True,
          max_workers: int | None = None) -> list[dict]:
    """Router energy (normalized to the same-configuration baseline) for XY
    and YX with static VA, per scheme."""
    prefetch([_trace_config(bench, routing, "static", scheme,
                            trace_cycles, seed)
              for routing in ("xy", "yx") for bench in benchmarks
              for scheme in (BASELINE, *PC_SCHEMES)],
             max_workers=max_workers)
    rows = []
    for routing in ("xy", "yx"):
        for bench in benchmarks:
            base = run_experiment(_trace_config(
                bench, routing, "static", BASELINE, trace_cycles, seed))
            base_epf = base.energy_pj / max(1, base.flit_hops)
            for scheme in PC_SCHEMES:
                res = run_experiment(_trace_config(
                    bench, routing, "static", scheme, trace_cycles, seed))
                epf = res.energy_pj / max(1, res.flit_hops)
                rows.append({
                    "routing": routing, "benchmark": bench,
                    "scheme": scheme.label,
                    "normalized_energy": epf / base_epf,
                })
    if show:
        print_table(
            "Fig. 11: normalized router energy per flit-hop (static VA)",
            ["routing", "benchmark", "scheme", "normalized energy"],
            [(r["routing"], r["benchmark"], r["scheme"],
              r["normalized_energy"]) for r in rows])
    return rows


# ---------------------------------------------------------------------------
# Fig. 12 — synthetic workloads: load-latency curves
# ---------------------------------------------------------------------------

def fig12(patterns=("uniform", "bitcomp", "transpose"),
          loads=(0.05, 0.10, 0.15, 0.25), schemes=ALL_SCHEMES,
          cycles: int = 1000, seed: int = 1, show: bool = True,
          max_workers: int | None = None) -> list[dict]:
    """Latency vs offered load on an 8x8 mesh, XY routing + static VA."""
    def _cfg(pattern, load, scheme):
        return ExperimentConfig(
            topology="mesh", kx=8, ky=8, concentration=1,
            routing="xy", vc_policy="static", scheme=scheme,
            pattern=pattern, rate=load, packet_size=5,
            synth_cycles=cycles, synth_warmup=cycles // 4, seed=seed)
    prefetch([_cfg(pattern, load, scheme) for pattern in patterns
              for load in loads for scheme in schemes],
             max_workers=max_workers)
    rows = []
    for pattern in patterns:
        for load in loads:
            for scheme in schemes:
                res = run_experiment(_cfg(pattern, load, scheme))
                rows.append({"pattern": pattern, "load": load,
                             "scheme": scheme.label,
                             "latency": res.avg_latency,
                             "reusability": res.reusability})
    if show:
        print_table("Fig. 12: synthetic workloads (8x8 mesh, XY + static VA)",
                    ["pattern", "load", "scheme", "latency", "reuse"],
                    [(r["pattern"], r["load"], r["scheme"], r["latency"],
                      r["reusability"]) for r in rows])
    return rows


# ---------------------------------------------------------------------------
# Fig. 13 — impact on various topologies
# ---------------------------------------------------------------------------

TOPOLOGY_POINTS = (
    ("mesh", 8, 8, 1),
    ("cmesh", 4, 4, 4),
    ("mecs", 4, 4, 4),
    ("fbfly", 4, 4, 4),
)


def fig13(benchmark: str = "fma3d", trace_cycles: int = 2000, seed: int = 1,
          show: bool = True, max_workers: int | None = None) -> list[dict]:
    """Latency of every scheme on mesh/cmesh/MECS/FBFLY, normalized to the
    baseline mesh (DOR XY + static VA, as in the paper)."""
    def _cfg(topo, kx, ky, conc, scheme):
        return ExperimentConfig(
            topology=topo, kx=kx, ky=ky, concentration=conc,
            routing="xy", vc_policy="static", scheme=scheme,
            benchmark=benchmark, trace_cycles=trace_cycles,
            trace_warmup=max(200, trace_cycles // 5), seed=seed)
    prefetch([_cfg(topo, kx, ky, conc, scheme)
              for topo, kx, ky, conc in TOPOLOGY_POINTS
              for scheme in ALL_SCHEMES],
             max_workers=max_workers)
    rows = []
    mesh_base = None
    for topo, kx, ky, conc in TOPOLOGY_POINTS:
        for scheme in ALL_SCHEMES:
            res = run_experiment(_cfg(topo, kx, ky, conc, scheme))
            if mesh_base is None:
                mesh_base = res.avg_latency
            rows.append({"topology": topo, "scheme": scheme.label,
                         "latency": res.avg_latency,
                         "normalized": res.avg_latency / mesh_base,
                         "reusability": res.reusability})
    if show:
        print_table(
            f"Fig. 13: topology impact on {benchmark} "
            "(normalized to baseline mesh)",
            ["topology", "scheme", "latency", "normalized", "reuse"],
            [(r["topology"], r["scheme"], r["latency"], r["normalized"],
              r["reusability"]) for r in rows])
    return rows


# ---------------------------------------------------------------------------
# Fig. 14 — comparison with express virtual channels
# ---------------------------------------------------------------------------

FIG14_POINTS = (("mesh", "mesh", 8, 8, 1), ("cmesh", "cmesh", 4, 4, 4))


def fig14(benchmark: str = "fma3d", trace_cycles: int = 2000, seed: int = 1,
          show: bool = True, max_workers: int | None = None) -> list[dict]:
    """Baseline vs EVC vs Pseudo+S+B on a mesh and a concentrated mesh."""
    def cfg(topology, kx, ky, conc, scheme):
        return ExperimentConfig(
            topology=topology, kx=kx, ky=ky, concentration=conc,
            routing="xy", vc_policy="dynamic", scheme=scheme,
            benchmark=benchmark, trace_cycles=trace_cycles,
            trace_warmup=max(200, trace_cycles // 5), seed=seed)
    prefetch([cfg(t, kx, ky, conc, scheme)
              for _, topo, kx, ky, conc in FIG14_POINTS
              for t, scheme in ((topo, BASELINE), ("evc_mesh", BASELINE),
                                (topo, PSEUDO_SB))],
             max_workers=max_workers)
    rows = []
    for label, topo_name, kx, ky, tconc in FIG14_POINTS:
        base = run_experiment(cfg(topo_name, kx, ky, tconc, BASELINE))
        evc = run_experiment(cfg("evc_mesh", kx, ky, tconc, BASELINE))
        pseudo = run_experiment(cfg(topo_name, kx, ky, tconc, PSEUDO_SB))
        for name, res in (("Baseline", base), ("EVC", evc),
                          ("Pseudo+S+B", pseudo)):
            rows.append({"topology": label, "scheme": name,
                         "latency": res.avg_latency,
                         "normalized": res.avg_latency / base.avg_latency})
    if show:
        print_table(
            f"Fig. 14: EVC comparison on {benchmark} "
            "(normalized per topology)",
            ["topology", "scheme", "latency", "normalized"],
            [(r["topology"], r["scheme"], r["latency"], r["normalized"])
             for r in rows])
    return rows


# ---------------------------------------------------------------------------
# Tables I and II
# ---------------------------------------------------------------------------

def table1(show: bool = True) -> list[tuple[str, str]]:
    rows = CmpConfig().as_table()
    if show:
        print_table("Table I: CMP configuration parameters",
                    ["parameter", "value"], rows)
    return rows


def table2(show: bool = True) -> list[dict]:
    model = DEFAULT_ENERGY_MODEL
    rows = [{"component": name, "pj_per_hop": pj, "share": share}
            for name, (pj, share) in model.component_breakdown().items()]
    if show:
        print_table("Table II: router energy per flit hop",
                    ["component", "pJ", "share"],
                    [(r["component"], r["pj_per_hop"], r["share"])
                     for r in rows])
    return rows


# ---------------------------------------------------------------------------
# Chiplet boundary-latency study (beyond the paper: ROADMAP item 2)
# ---------------------------------------------------------------------------

CHIPLET_LINK_LATENCIES = (1, 2, 4, 8)


def chiplet(link_latencies=CHIPLET_LINK_LATENCIES, chiplets: int = 4,
            kx: int = 2, ky: int = 2, rate: float = 0.05,
            cycles: int = 1500, seed: int = 1, show: bool = True,
            max_workers: int | None = None) -> list[dict]:
    """Pseudo-circuit recovery vs chiplet boundary-link latency.

    The experiment the paper could not run: on a ``chiplets`` x
    (``kx`` x ``ky``) chiplet system with weight-ordered routing and
    static VA, sweep the die<->IO boundary wire latency and measure how
    much of the added cross-die cost the pseudo-circuit scheme recovers.
    ``recovered`` is the baseline-minus-pseudo latency gap at each
    point; ``recovered_pct`` normalizes it by the baseline latency.
    """
    def _cfg(link_latency, scheme):
        return ExperimentConfig(
            topology="chiplet", kx=kx, ky=ky, concentration=1,
            chiplets=chiplets, chiplet_link_latency=link_latency,
            routing="weighted", vc_policy="static", scheme=scheme,
            pattern="uniform", rate=rate, packet_size=5,
            synth_cycles=cycles, synth_warmup=cycles // 4, seed=seed)
    prefetch([_cfg(latency, scheme) for latency in link_latencies
              for scheme in (BASELINE, PSEUDO_SB)],
             max_workers=max_workers)
    rows = []
    for latency in link_latencies:
        base = run_experiment(_cfg(latency, BASELINE))
        pseudo = run_experiment(_cfg(latency, PSEUDO_SB))
        recovered = base.avg_latency - pseudo.avg_latency
        for name, res in (("Baseline", base), ("Pseudo+S+B", pseudo)):
            rows.append({
                "link_latency": latency, "scheme": name,
                "latency": res.avg_latency,
                "network_latency": res.avg_network_latency,
                "reusability": res.reusability,
                "recovered": recovered,
                "recovered_pct": 100.0 * recovered / base.avg_latency,
            })
    if show:
        print_table(
            f"Chiplet boundary-latency study ({chiplets}x({kx}x{ky}) dies, "
            "weighted routing + static VA, uniform traffic)",
            ["link_lat", "scheme", "latency", "reuse", "recovered",
             "recovered%"],
            [(r["link_latency"], r["scheme"], r["latency"],
              r["reusability"], r["recovered"], r["recovered_pct"])
             for r in rows])
    return rows


ALL_FIGURES = {
    "fig1": fig1, "fig6": fig6, "fig8": fig8, "fig9": fig9,
    "fig10": fig10, "fig11": fig11, "fig12": fig12, "fig13": fig13,
    "fig14": fig14, "table1": table1, "table2": table2,
    "chiplet": chiplet,
}
