"""O1TURN routing (Seo et al., ISCA 2005).

Each packet randomly picks XY or YX order at injection and keeps it for its
whole flight; this is near worst-case-optimal for 2D meshes. Deadlock
freedom requires that XY packets and YX packets use disjoint VC classes, so
the VC space is split in half (paper Section V uses 4 VCs: 2 per class).
"""

from __future__ import annotations

import random

from ..network.flit import Packet
from ..topology.base import Topology
from .dor import DimensionOrderRouting


class O1TurnRouting(DimensionOrderRouting):
    name = "o1turn"
    num_vc_classes = 2

    def __init__(self, topology: Topology):
        super().__init__(topology, "xy")
        self.name = "o1turn"

    def on_inject(self, packet: Packet, rng: random.Random) -> None:
        # route_choice 0 keeps the base order (XY), 1 flips it to YX.
        packet.route_choice = rng.randrange(2)

    def vc_limits(self, packet: Packet, num_vcs: int,
                  out_port: int = -1) -> tuple[int, int]:
        return self.vc_range_for_choice(packet.route_choice, num_vcs)

    def vc_range_for_choice(self, route_choice: int,
                            num_vcs: int) -> tuple[int, int]:
        if num_vcs < 2:
            raise ValueError("O1TURN needs at least 2 VCs (one per class)")
        half = num_vcs // 2
        if route_choice == 0:
            return 0, half
        return half, num_vcs
