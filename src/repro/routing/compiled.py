"""Compiled routing tables.

At ``Network`` construction any deterministic (``tabulable``) routing
algorithm is compiled into flat per-router lookup tables, replacing the
per-flit ``route()`` call chain (topology ``isinstance`` checks, ``coords``
tuple math, string compares on order/dimension) with a single tuple index:

    entry = tables[router][route_choice][dst_terminal]
    out_port, drop, vc_lo, vc_hi = entry

The VC range is folded into the entry so the router's VA stage and the
buffer-bypass head path get routing *and* the packet's deadlock-class VC
window from one lookup. ``vc_ranges[route_choice]`` carries the same window
for call sites that already know the route (VA retries, NIC injection).

Compilation calls the algorithm's pure ``route_entry``/``vc_range_for_choice``
— the exact code the dynamic path runs — so the table cannot diverge from
``route()`` (locked in by ``tests/routing/test_compiled.py``).
"""

from __future__ import annotations

from ..topology.base import Topology
from .base import RoutingAlgorithm


class CompiledRouting:
    """Flat routing tables for one (algorithm, topology, num_vcs) triple."""

    __slots__ = ("tables", "vc_ranges", "num_route_choices", "_arrays")

    def __init__(self, tables, vc_ranges):
        #: tables[router][route_choice][dst] -> (out_port, drop, lo, hi)
        self.tables = tables
        #: vc_ranges[route_choice] -> (lo, hi)
        self.vc_ranges = vc_ranges
        self.num_route_choices = len(vc_ranges)
        self._arrays = None

    def router_table(self, router: int):
        """Per-choice destination tables for one router."""
        return self.tables[router]

    def as_arrays(self):
        """Export the tables as numpy gather arrays for the vectorized core.

        Returns ``(out, drop)`` where both are int64 arrays of shape
        ``[num_routers, num_route_choices, num_terminals]``; the per-choice
        VC windows stay in ``vc_ranges`` (they do not vary by destination).
        Requires numpy; cached after the first call.
        """
        if self._arrays is None:
            from ..network.backend import require_numpy
            np = require_numpy()
            r = len(self.tables)
            c = self.num_route_choices
            t = len(self.tables[0][0]) if r else 0
            out = np.empty((r, c, t), dtype=np.int64)
            drop = np.empty((r, c, t), dtype=np.int64)
            for router, per_choice in enumerate(self.tables):
                for choice, entries in enumerate(per_choice):
                    out[router, choice] = [e[0] for e in entries]
                    drop[router, choice] = [e[1] for e in entries]
            self._arrays = (out, drop)
        return self._arrays


def compile_routing(routing: RoutingAlgorithm, topology: Topology,
                    num_vcs: int) -> CompiledRouting | None:
    """Build lookup tables for ``routing``; None when not tabulable."""
    if not routing.tabulable:
        return None
    choices = range(routing.num_route_choices)
    vc_ranges = tuple(routing.vc_range_for_choice(c, num_vcs)
                      for c in choices)
    terminals = range(topology.num_terminals)
    tables = tuple(
        tuple(
            [(*routing.route_entry(router, dst, choice), *vc_ranges[choice])
             for dst in terminals]
            for choice in choices)
        for router in range(topology.num_routers))
    return CompiledRouting(tables, vc_ranges)
