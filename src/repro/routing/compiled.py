"""Compiled routing tables.

At ``Network`` construction any deterministic (``tabulable``) routing
algorithm is compiled into flat per-router lookup tables, replacing the
per-flit ``route()`` call chain (topology ``isinstance`` checks, ``coords``
tuple math, string compares on order/dimension) with a single tuple index:

    entry = tables[router][route_choice][dst_terminal]
    out_port, drop, vc_lo, vc_hi = entry

The VC range is folded into the entry so the router's VA stage and the
buffer-bypass head path get routing *and* the packet's deadlock-class VC
window from one lookup. ``vc_ranges[route_choice]`` carries the same window
for call sites that already know the route (VA retries, NIC injection).

Compilation calls the algorithm's pure ``route_entry``/``vc_range_for_choice``
— the exact code the dynamic path runs — so the table cannot diverge from
``route()`` (locked in by ``tests/routing/test_compiled.py``).
"""

from __future__ import annotations

from ..topology.base import Topology
from .base import RoutingAlgorithm


class CompiledRouting:
    """Flat routing tables for one (algorithm, topology, num_vcs) triple."""

    __slots__ = ("tables", "vc_ranges", "num_route_choices")

    def __init__(self, tables, vc_ranges):
        #: tables[router][route_choice][dst] -> (out_port, drop, lo, hi)
        self.tables = tables
        #: vc_ranges[route_choice] -> (lo, hi)
        self.vc_ranges = vc_ranges
        self.num_route_choices = len(vc_ranges)

    def router_table(self, router: int):
        """Per-choice destination tables for one router."""
        return self.tables[router]


def compile_routing(routing: RoutingAlgorithm, topology: Topology,
                    num_vcs: int) -> CompiledRouting | None:
    """Build lookup tables for ``routing``; None when not tabulable."""
    if not routing.tabulable:
        return None
    choices = range(routing.num_route_choices)
    vc_ranges = tuple(routing.vc_range_for_choice(c, num_vcs)
                      for c in choices)
    terminals = range(topology.num_terminals)
    tables = tuple(
        tuple(
            [(*routing.route_entry(router, dst, choice), *vc_ranges[choice])
             for dst in terminals]
            for choice in choices)
        for router in range(topology.num_routers))
    return CompiledRouting(tables, vc_ranges)
