"""Routing algorithm interface.

Routers use lookahead routing (route computation is off the critical path),
so in the simulator ``route`` is evaluated when a head flit arrives, at no
cycle cost. ``route`` returns ``(out_port, drop)`` where ``drop`` indexes the
endpoint of a multidrop channel (always 0 on point-to-point channels).

``vc_limits`` partitions the VC space into deadlock-avoidance classes: a
packet may only ever occupy VCs inside its class (O1TURN needs two classes,
one per dimension order).
"""

from __future__ import annotations

import random

from ..network.flit import Packet
from ..topology.base import Topology


class RoutingAlgorithm:
    """Base class for routing algorithms.

    Deterministic algorithms whose output depends only on ``(router, dst,
    route_choice)`` set ``tabulable = True`` and implement ``route_entry``
    (a pure variant of ``route``); the network then compiles them into flat
    per-router lookup tables at construction (``routing.compiled``) and the
    per-flit ``route`` call chain disappears from the hot path. Algorithms
    with adaptive or state-dependent decisions keep the default
    ``tabulable = False`` and run via the dynamic ``route`` path.
    """

    name = "abstract"
    num_vc_classes = 1
    #: True when route()/vc_limits() are pure in (router, dst, route_choice)
    #: and can be compiled to lookup tables.
    tabulable = False
    #: Number of distinct values ``packet.route_choice`` can take.
    num_route_choices = 1

    def __init__(self, topology: Topology):
        self.topology = topology

    def on_inject(self, packet: Packet, rng: random.Random) -> None:
        """Hook run once per packet at injection (O1TURN picks its order)."""

    def route(self, router: int, packet: Packet) -> tuple[int, int]:
        """Output port (and drop index) at ``router`` toward ``packet.dst``."""
        raise NotImplementedError

    def route_entry(self, router: int, dst: int,
                    route_choice: int) -> tuple[int, int]:
        """Pure form of ``route`` used by table compilation (tabulable
        algorithms only)."""
        raise NotImplementedError(
            f"{type(self).__name__} is not tabulable")

    def vc_limits(self, packet: Packet, num_vcs: int,
                  out_port: int = -1) -> tuple[int, int]:
        """Half-open VC range ``[lo, hi)`` this packet may use on the channel
        behind ``out_port`` (-1: the injection channel)."""
        return 0, num_vcs

    def vc_range_for_choice(self, route_choice: int,
                            num_vcs: int) -> tuple[int, int]:
        """Pure form of ``vc_limits`` keyed by route choice (tabulable
        algorithms only; their VC class never depends on the channel)."""
        return 0, num_vcs

    def _eject(self, packet: Packet) -> tuple[int, int]:
        return self.topology.ejection_port(packet.dst), 0
