"""Routing algorithm interface.

Routers use lookahead routing (route computation is off the critical path),
so in the simulator ``route`` is evaluated when a head flit arrives, at no
cycle cost. ``route`` returns ``(out_port, drop)`` where ``drop`` indexes the
endpoint of a multidrop channel (always 0 on point-to-point channels).

``vc_limits`` partitions the VC space into deadlock-avoidance classes: a
packet may only ever occupy VCs inside its class (O1TURN needs two classes,
one per dimension order).
"""

from __future__ import annotations

import random

from ..network.flit import Packet
from ..topology.base import Topology


class RoutingAlgorithm:
    """Base class for routing algorithms."""

    name = "abstract"
    num_vc_classes = 1

    def __init__(self, topology: Topology):
        self.topology = topology

    def on_inject(self, packet: Packet, rng: random.Random) -> None:
        """Hook run once per packet at injection (O1TURN picks its order)."""

    def route(self, router: int, packet: Packet) -> tuple[int, int]:
        """Output port (and drop index) at ``router`` toward ``packet.dst``."""
        raise NotImplementedError

    def vc_limits(self, packet: Packet, num_vcs: int,
                  out_port: int = -1) -> tuple[int, int]:
        """Half-open VC range ``[lo, hi)`` this packet may use on the channel
        behind ``out_port`` (-1: the injection channel)."""
        return 0, num_vcs

    def _eject(self, packet: Packet) -> tuple[int, int]:
        return self.topology.ejection_port(packet.dst), 0
