"""Routing algorithms (paper Section V: XY, YX, O1TURN) plus
weight-ordered table routing for heterogeneous graphs."""

from ..topology.base import Topology
from .base import RoutingAlgorithm
from .compiled import CompiledRouting, compile_routing
from .dor import DimensionOrderRouting, xy_routing, yx_routing
from .o1turn import O1TurnRouting
from .weighted import RoutingDeadlockError, WeightOrderedRouting

__all__ = [
    "CompiledRouting",
    "DimensionOrderRouting",
    "O1TurnRouting",
    "RoutingAlgorithm",
    "RoutingDeadlockError",
    "WeightOrderedRouting",
    "compile_routing",
    "make_routing",
    "xy_routing",
    "yx_routing",
]


def make_routing(name: str, topology: Topology) -> RoutingAlgorithm:
    """Factory keyed by algorithm name ('xy'|'yx'|'o1turn'|'weighted')."""
    if name == "xy":
        return xy_routing(topology)
    if name == "yx":
        return yx_routing(topology)
    if name == "o1turn":
        return O1TurnRouting(topology)
    if name == "weighted":
        return WeightOrderedRouting(topology)
    raise ValueError(f"unknown routing algorithm {name!r}")
