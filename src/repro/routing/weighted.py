"""Weight-ordered table routing over arbitrary heterogeneous graphs.

gem5-style link-class routing: every channel carries a routing weight
(``HeterogeneousTopology.link_weight``), a packet follows a path that
minimizes ``(sum of weights, hop count)``, and ties between equally good
next hops are broken by ``(link weight, output port)`` — lighter link
classes first, matching gem5's ``Table`` routing where lower-weight
links are preferred. On a mesh with x weight 1 / y weight 2 this
reproduces XY dimension order exactly.

The tables are pure in ``(router, dst, route_choice)``, so the algorithm
is tabulable: ``routing.compiled`` flattens it into the same per-router
lookup arrays the vectorized and batched backends consume, and none of
the cores need to know the graph is irregular.

Deadlock freedom is not assumed — it is *verified*. Tie-break
interactions on irregular graphs are subtle enough that no local
weight-monotonicity argument survives table merging, so after building
the tables the constructor walks every (source, destination) router pair,
collects the channel-dependency graph per VC class (chiplet separates
same-die from cross-die traffic into disjoint VC windows via
``topology.route_class``, exactly the O1TURN mechanism), and runs a DFS
cycle check. A cyclic class raises :class:`RoutingDeadlockError` naming
one offending channel cycle; constructing a network on such a
topology/weighting is impossible rather than silently hazardous.
"""

from __future__ import annotations

import heapq
import random

from ..network.flit import Packet
from ..topology.hetero import HeterogeneousTopology
from .base import RoutingAlgorithm


class RoutingDeadlockError(Exception):
    """The routing tables admit a cycle in a channel-dependency graph."""


class WeightOrderedRouting(RoutingAlgorithm):
    """Minimal (weight, hops) table routing with verified deadlock freedom."""

    name = "weighted"
    tabulable = True

    def __init__(self, topology):
        if not isinstance(topology, HeterogeneousTopology):
            raise TypeError(
                "weight-ordered routing needs a HeterogeneousTopology "
                f"(chiplet, kite, ...), got {type(topology).__name__}")
        super().__init__(topology)
        classes = topology.num_route_classes
        if classes < 1:
            raise ValueError("num_route_classes must be >= 1")
        self.num_vc_classes = classes
        self.num_route_choices = classes
        # _next[dst_router][router] -> out_port (-1 at the destination).
        self._next = [self._build_for_dst(d)
                      for d in range(topology.num_routers)]
        cycle = find_dependency_cycle(self)
        if cycle is not None:
            route_class, chain = cycle
            pretty = " -> ".join(f"r{r}:p{p}" for r, p in chain)
            raise RoutingDeadlockError(
                f"weight-ordered tables for topology {topology.name!r} have "
                f"a channel-dependency cycle in VC class {route_class}: "
                f"{pretty}")

    # -- table construction --------------------------------------------------

    def _build_for_dst(self, dst: int) -> list[int]:
        """Next-hop output port toward ``dst`` from every router.

        Backward Dijkstra on the reversed graph gives each router its
        distance ``(weight sum, hops)`` to ``dst``; the next hop is the
        out-channel that lies on a distance-achieving path, lowest
        ``(link weight, port)`` first.
        """
        topo = self.topology
        n = topo.num_routers
        inf = (float("inf"), float("inf"))
        dist: list[tuple[float, float]] = [inf] * n
        dist[dst] = (0, 0)
        reverse: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
        for r in range(n):
            for c in topo.out_channels(r):
                reverse[c.dst_router].append((r, c.weight, c.src_port))
        heap: list[tuple[tuple[float, float], int]] = [((0, 0), dst)]
        while heap:
            d, r = heapq.heappop(heap)
            if d > dist[r]:
                continue
            for prev, weight, _port in reverse[r]:
                cand = (d[0] + weight, d[1] + 1)
                if cand < dist[prev]:
                    dist[prev] = cand
                    heapq.heappush(heap, (cand, prev))
        table = [-1] * n
        for r in range(n):
            if r == dst:
                continue
            if dist[r] == inf:
                raise ValueError(
                    f"topology {topo.name!r} is not connected: router {dst} "
                    f"is unreachable from router {r}")
            best: tuple[int, int] | None = None
            for c in topo.out_channels(r):
                nd = dist[c.dst_router]
                if (nd[0] + c.weight, nd[1] + 1) == dist[r]:
                    key = (c.weight, c.src_port)
                    if best is None or key < best:
                        best = key
            table[r] = best[1]
        return table

    # -- RoutingAlgorithm interface ------------------------------------------

    def next_port(self, router: int, dst_router: int) -> int:
        """Table lookup: output port at ``router`` toward ``dst_router``
        (-1 when already there)."""
        return self._next[dst_router][router]

    def on_inject(self, packet: Packet, rng: random.Random) -> None:
        if self.num_route_choices == 1:
            return
        topo = self.topology
        packet.route_choice = topo.route_class(
            topo.terminal_router(packet.src), topo.terminal_router(packet.dst))

    def route(self, router: int, packet: Packet) -> tuple[int, int]:
        return self.route_entry(router, packet.dst, packet.route_choice)

    def route_entry(self, router: int, dst: int,
                    route_choice: int) -> tuple[int, int]:
        dst_router = self.topology.terminal_router(dst)
        if router == dst_router:
            return self.topology.ejection_port(dst), 0
        return self._next[dst_router][router], 0

    def vc_limits(self, packet: Packet, num_vcs: int,
                  out_port: int = -1) -> tuple[int, int]:
        return self.vc_range_for_choice(packet.route_choice, num_vcs)

    def vc_range_for_choice(self, route_choice: int,
                            num_vcs: int) -> tuple[int, int]:
        classes = self.num_route_choices
        if classes == 1:
            return 0, num_vcs
        if num_vcs < classes:
            raise ValueError(
                f"weight-ordered routing on topology "
                f"{self.topology.name!r} needs >= {classes} VCs for its "
                f"{classes} deadlock-avoidance classes, got {num_vcs}")
        if not 0 <= route_choice < classes:
            raise ValueError(f"route choice {route_choice} out of range")
        lo = route_choice * num_vcs // classes
        hi = (route_choice + 1) * num_vcs // classes
        return lo, hi


# -- deadlock analysis (also used by the property tests) ----------------------

def channel_dependency_graphs(
        routing: WeightOrderedRouting,
) -> dict[int, dict[tuple[int, int], set[tuple[int, int]]]]:
    """Per-VC-class channel-dependency graphs induced by the tables.

    A channel is identified as ``(router, out_port)``. For every ordered
    router pair the table path is walked; consecutive channels add a
    dependency edge into the class that pair's traffic travels in.
    Classes use disjoint VC windows, so cycles cannot span classes.
    """
    topo = routing.topology
    n = topo.num_routers
    graphs: dict[int, dict[tuple[int, int], set[tuple[int, int]]]] = {
        cls: {} for cls in range(topo.num_route_classes)}
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            cls = topo.route_class(src, dst)
            graph = graphs[cls]
            path = _walk(routing, src, dst)
            for a, b in zip(path, path[1:]):
                graph.setdefault(a, set()).add(b)
                graph.setdefault(b, set())
    return graphs


def _walk(routing: WeightOrderedRouting, src: int,
          dst: int) -> list[tuple[int, int]]:
    """Channel sequence the tables steer ``src -> dst`` traffic through."""
    topo = routing.topology
    path: list[tuple[int, int]] = []
    r = src
    while r != dst:
        if len(path) > topo.num_routers:
            raise RoutingDeadlockError(
                f"routing loop: {src} -> {dst} does not converge")
        port = routing.next_port(r, dst)
        path.append((r, port))
        r = topo.out_channels(r)[port].dst_router
    return path


def find_dependency_cycle(
        routing: WeightOrderedRouting,
) -> tuple[int, list[tuple[int, int]]] | None:
    """First channel-dependency cycle across all VC classes, or ``None``.

    Returns ``(route_class, [channel, ..., channel])`` with the first
    channel repeated at the end of the chain.
    """
    for cls, graph in channel_dependency_graphs(routing).items():
        cycle = _find_cycle(graph)
        if cycle is not None:
            return cls, cycle
    return None


def _find_cycle(graph: dict[tuple[int, int], set[tuple[int, int]]],
                ) -> list[tuple[int, int]] | None:
    """Iterative three-color DFS; returns one cycle if the graph has any."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    for start in graph:
        if color[start] != WHITE:
            continue
        stack: list[tuple[tuple[int, int], list[tuple[int, int]]]] = [
            (start, sorted(graph[start]))]
        color[start] = GRAY
        trail = [start]
        while stack:
            node, succs = stack[-1]
            if succs:
                nxt = succs.pop(0)
                if color[nxt] == GRAY:
                    i = trail.index(nxt)
                    return trail[i:] + [nxt]
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    trail.append(nxt)
                    stack.append((nxt, sorted(graph[nxt])))
            else:
                color[node] = BLACK
                trail.pop()
                stack.pop()
    return None
