"""Dimension-order routing (Sullivan & Bashkow, 1977) for the four
supported topologies: XY and YX variants.

For meshes a packet fully corrects one dimension a hop at a time; on
flattened-butterfly and MECS express channels one network hop corrects an
entire dimension (MECS additionally returns the multidrop index). DOR is
deadlock-free on these topologies without VC restrictions.
"""

from __future__ import annotations

from ..network.flit import Packet
from ..topology.base import Topology
from ..topology.fbfly import FlattenedButterfly
from ..topology.mecs import EAST, Mecs, NORTH, SOUTH, WEST
from ..topology.mesh import Mesh
from .base import RoutingAlgorithm


class DimensionOrderRouting(RoutingAlgorithm):
    """XY (``order='xy'``) or YX (``order='yx'``) minimal routing.

    Fully deterministic in ``(router, dst, route_choice)``, so the network
    compiles it into lookup tables (``tabulable``); ``route_choice`` 1 flips
    the dimension order, which is how O1TURN reuses this implementation.
    """

    num_vc_classes = 1
    tabulable = True
    num_route_choices = 2  # 0: configured order, 1: flipped (O1TURN)

    def __init__(self, topology: Topology, order: str = "xy"):
        super().__init__(topology)
        if order not in ("xy", "yx"):
            raise ValueError(f"order must be 'xy' or 'yx', got {order!r}")
        if not isinstance(topology, (Mesh, FlattenedButterfly, Mecs)):
            raise TypeError(
                f"DOR does not support topology {type(topology).__name__}")
        self.order = order
        self.name = order

    def route(self, router: int, packet: Packet) -> tuple[int, int]:
        return self.route_entry(router, packet.dst, packet.route_choice)

    def route_entry(self, router: int, dst: int,
                    route_choice: int) -> tuple[int, int]:
        topo = self.topology
        dst_router = topo.terminal_router(dst)
        if router == dst_router:
            return topo.ejection_port(dst), 0
        x, y = topo.coords(router)
        dx, dy = topo.coords(dst_router)
        order = self.order if route_choice == 0 else (
            "yx" if self.order == "xy" else "xy")
        if order == "xy":
            dim = "x" if dx != x else "y"
        else:
            dim = "y" if dy != y else "x"
        return self._hop(router, x, y, dx, dy, dim)

    def _hop(self, router: int, x: int, y: int, dx: int, dy: int,
             dim: str) -> tuple[int, int]:
        topo = self.topology
        if isinstance(topo, Mesh):
            if dim == "x":
                return (EAST if dx > x else WEST), 0
            return (NORTH if dy > y else SOUTH), 0
        if isinstance(topo, FlattenedButterfly):
            target = (topo.router_at(dx, y) if dim == "x"
                      else topo.router_at(x, dy))
            return topo.port_to(router, target), 0
        if isinstance(topo, Mecs):
            if dim == "x":
                direction = EAST if dx > x else WEST
                drop = abs(dx - x) - 1
            else:
                direction = NORTH if dy > y else SOUTH
                drop = abs(dy - y) - 1
            return direction, drop
        raise TypeError(f"unsupported topology {type(topo).__name__}")


def xy_routing(topology: Topology) -> DimensionOrderRouting:
    return DimensionOrderRouting(topology, "xy")


def yx_routing(topology: Topology) -> DimensionOrderRouting:
    return DimensionOrderRouting(topology, "yx")
