"""Monitor base class: a probe that accumulates structured violations.

A monitor is an online checker: it consumes the same event stream as the
tracers in ``repro.instrument`` but instead of recording it, it maintains a
shadow model of some invariant and compares it against the live network at
cycle boundaries (``on_cycle_start`` fires before any event of a cycle, so
the network state it sees is exactly the end-of-previous-cycle state).

``strict=True`` (the default) raises the first
:class:`~repro.core.violation.InvariantViolation` immediately — the mode
used by ``--check`` runs and CI. ``strict=False`` records violations in
``self.violations`` and keeps going, which is what the fault-injection
tests use to assert *which* rules fired.
"""

from __future__ import annotations

from ..core.violation import InvariantViolation
from ..instrument.probe import Probe


class Monitor(Probe):
    """Base online invariant monitor; subclasses set ``name`` and override
    the probe hooks they need."""

    name = "monitor"

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.violations: list[InvariantViolation] = []
        self._network = None

    def bind(self, network) -> None:
        self._network = network

    def violation(self, rule: str, message: str = "", **context) -> None:
        """Record a violation; raise it in strict mode."""
        err = InvariantViolation(rule, message, monitor=self.name,
                                 **context)
        self.violations.append(err)
        if self.strict:
            raise err

    def finish(self, network) -> None:
        """Run the end-of-simulation checks (network ideally drained)."""

    def snapshot(self) -> dict:
        """JSON-ready summary of what this monitor observed."""
        return {"violations": len(self.violations)}
