"""Self-checking observability: online invariant monitors.

Monitors are probes (``repro.instrument``) that maintain shadow models of
the network's invariants and verify them at cycle boundaries — the
simulator proves itself correct while it runs, at zero cost when no
monitor is attached. ``default_registry()`` bundles the full suite;
``self_check`` is the CI acceptance run; ``compare_docs`` turns two runs'
metrics documents into a regression report.
"""

from ..core.violation import InvariantViolation
from .base import Monitor
from .check import SelfCheckError, self_check
from .conservation import ConservationMonitor
from .credit import CreditMonitor
from .pc import PseudoCircuitMonitor
from .registry import (
    METRICS_SCHEMA,
    METRICS_SET_SCHEMA,
    MetricsRegistry,
    default_registry,
    metrics_path,
    metrics_set,
    write_metrics,
)
from .regression import (
    REPORT_SCHEMA,
    compare_docs,
    compare_files,
    document_backend,
    flatten,
    render_report,
)
from .watchdog import ProgressWatchdog

__all__ = [
    "METRICS_SCHEMA",
    "METRICS_SET_SCHEMA",
    "REPORT_SCHEMA",
    "ConservationMonitor",
    "CreditMonitor",
    "InvariantViolation",
    "MetricsRegistry",
    "Monitor",
    "ProgressWatchdog",
    "PseudoCircuitMonitor",
    "SelfCheckError",
    "compare_docs",
    "compare_files",
    "default_registry",
    "document_backend",
    "flatten",
    "metrics_path",
    "metrics_set",
    "render_report",
    "self_check",
    "write_metrics",
]
