"""Monitored self-check: the acceptance run behind ``--check`` in CI.

Runs the canonical 8×8 mesh PSEUDO_SB workload at a low and a saturation
injection rate, twice each: once bare and once with the full monitor
suite attached. Passing means

* every monitor stayed violation-free at both loads, and
* the monitored run's ``NetworkStats`` fingerprint is bit-identical to
  the bare run's — monitors observe, never perturb.

Returns a JSON-ready report (one entry per rate) with each registry's
metrics document, so CI can archive the self-check alongside the bench.
"""

from __future__ import annotations

from ..instrument.overhead import OverheadGateError
from ..network.config import PSEUDO_SB, NetworkConfig
from ..network.simulator import build_network
from ..topology import make_topology
from ..traffic.synthetic import SyntheticTraffic
from .registry import default_registry


class SelfCheckError(AssertionError):
    """The monitored self-check failed (violation or perturbed stats)."""


def _run(cycles: int, rate: float, seed: int, probe=None):
    config = NetworkConfig(num_vcs=4, buffer_depth=4, pseudo=PSEUDO_SB)
    topo = make_topology("mesh", 8, 8, 1)
    net = build_network(topo, config=config, seed=seed, probe=probe)
    traffic = SyntheticTraffic("uniform", topo.num_terminals, rate, 5,
                               seed=seed)
    net.stats.warmup_cycles = cycles // 5
    net.run(cycles, traffic)
    net.drain(max_cycles=500_000)
    return net


def self_check(cycles: int = 600, rates: tuple = (0.02, 0.30),
               seed: int = 7, show: bool = False) -> dict:
    """Run the monitored acceptance workloads; raise on any divergence."""
    runs = []
    for rate in rates:
        bare = _run(cycles, rate, seed)
        registry = default_registry(strict=True)
        try:
            net = _run(cycles, rate, seed, probe=registry.probe())
        except Exception as err:
            raise SelfCheckError(
                f"monitored run at rate {rate:g} failed: {err}") from err
        doc = registry.finish(net)
        if doc["violation_count"]:
            first = doc["violations"][0]
            raise SelfCheckError(
                f"rate {rate:g}: {doc['violation_count']} violations, "
                f"first: {first}")
        monitored_fp = net.stats.fingerprint()
        bare_fp = bare.stats.fingerprint()
        if monitored_fp != bare_fp:
            diff = {k: (v, monitored_fp[k]) for k, v in bare_fp.items()
                    if monitored_fp[k] != v}
            raise OverheadGateError(
                f"rate {rate:g}: stats diverged with monitors "
                f"attached: {diff}")
        runs.append({"rate": rate, "cycles": cycles,
                     "stats_identical": True, **doc})
        if show:
            run = doc["run"]
            print(f"self-check rate={rate:g}: {run['ejected_packets']} "
                  f"packets, reuse={run['reusability']:.3f}, "
                  f"0 violations, stats bit-identical")
    return {"schema": "repro.self-check/1", "seed": seed, "runs": runs}
