"""Credit-conservation monitor.

For every flow-control edge — router→router channel endpoint, NIC
injection channel, and router→NIC ejection — the upstream
``CreditCounter`` must always equal the downstream free-slot count minus
everything in flight toward or from that buffer:

    count == limit − buffered − flits on the link − credits in the return
             channel

evaluated at cycle boundaries (the only instants the phase-ordered update
is settled). Edges touched by an event are re-verified at the next
boundary; a deep sweep every ``deep_every`` executed cycles (and at
``finish``) re-derives the invariant for every edge so corruption that
bypasses the event stream is still caught.
"""

from __future__ import annotations

from .base import Monitor


class _Edge:
    """One (upstream counter, downstream buffer) pair."""

    __slots__ = ("ovc", "vc", "router", "port", "buffer_q", "link", "ep",
                 "channel", "nic")

    def __init__(self, ovc, vc, router, port, buffer_q=None, link=None,
                 ep=None, channel=None, nic=None):
        self.ovc = ovc          # upstream OutVC (credit counter side)
        self.vc = vc
        self.router = router    # downstream router (-1: NIC ejection)
        self.port = port        # downstream input port / terminal id
        self.buffer_q = buffer_q
        self.link = link
        self.ep = ep
        self.channel = channel  # downstream credit-return delay line
        self.nic = nic          # set for ejection edges


class CreditMonitor(Monitor):
    """Prove upstream credit counters mirror downstream buffer space."""

    name = "credits"

    def __init__(self, strict: bool = True, deep_every: int = 64):
        super().__init__(strict)
        self.deep_every = deep_every
        self.edge_checks = 0
        self.deep_sweeps = 0
        self._edges: list[_Edge] = []
        self._by_up: dict[tuple[int, int], list[_Edge]] = {}
        self._by_down: dict[tuple[int, int], list[_Edge]] = {}
        self._eject: dict[int, list[_Edge]] = {}
        self._inject: dict[int, list[_Edge]] = {}
        self._dirty: set[int] = set()
        self._by_id: dict[int, _Edge] = {}

    # -- edge discovery -------------------------------------------------------

    def bind(self, network):
        super().bind(network)
        routers = network.routers
        for router in routers:
            rid = router.router_id
            for out in router.out_ports:
                if not out.endpoints:
                    continue
                up_key = (rid, out.port_id)
                if out.is_ejection:
                    nic = out.sink
                    ep = out.endpoints[0]
                    for vc, ovc in enumerate(ep.ovcs):
                        edge = _Edge(ovc, vc, -1, nic.terminal, nic=nic)
                        self._add(edge, up_key)
                        self._eject.setdefault(nic.terminal,
                                               []).append(edge)
                else:
                    for ep in out.endpoints:
                        ip = routers[ep.router].in_ports[ep.in_port]
                        down_key = (ep.router, ep.in_port)
                        for vc, ovc in enumerate(ep.ovcs):
                            edge = _Edge(
                                ovc, vc, ep.router, ep.in_port,
                                buffer_q=ip.vcs[vc].buffer._q,
                                link=out.sink, ep=ep,
                                channel=ip.credit_channel._inflight)
                            self._add(edge, up_key, down_key)
        for nic in network.nics:
            inj = nic.inject_endpoint
            ip = routers[inj.router].in_ports[inj.in_port]
            down_key = (inj.router, inj.in_port)
            for vc, ovc in enumerate(nic.inject_state.ovcs):
                edge = _Edge(ovc, vc, inj.router, inj.in_port,
                             buffer_q=ip.vcs[vc].buffer._q,
                             link=nic.inject_link, ep=inj,
                             channel=ip.credit_channel._inflight)
                self._add(edge, None, down_key)
                self._inject.setdefault(nic.terminal, []).append(edge)

    def _add(self, edge, up_key, down_key=None):
        self._edges.append(edge)
        self._by_id[id(edge)] = edge
        if up_key is not None:
            self._by_up.setdefault(up_key, []).append(edge)
        if down_key is not None:
            self._by_down.setdefault(down_key, []).append(edge)

    # -- dirty marking --------------------------------------------------------

    def _mark(self, edges):
        if edges:
            dirty = self._dirty
            for edge in edges:
                dirty.add(id(edge))

    def on_traverse(self, cycle, router, in_port, vc, out_port, via, read,
                    flit):
        self._mark(self._by_down.get((router, in_port)))
        self._mark(self._by_up.get((router, out_port)))

    def on_buffer_write(self, cycle, router, in_port, vc, flit):
        self._mark(self._by_down.get((router, in_port)))

    def on_credit_restore(self, cycle, router, port, vc):
        if router >= 0:
            self._mark(self._by_down.get((router, port)))
        else:
            self._mark(self._eject.get(port))

    def on_eject(self, cycle, terminal, packet):
        self._mark(self._eject.get(terminal))

    def on_inject(self, cycle, terminal, packet):
        self._mark(self._inject.get(terminal))

    # -- verification ---------------------------------------------------------

    def _verify(self, cycle, edge):
        self.edge_checks += 1
        credits = edge.ovc.credits
        count = credits.count
        limit = credits.limit
        if not 0 <= count <= limit:
            self.violation(
                "credit_range", "credit counter out of range",
                cycle=cycle, router=edge.router, port=edge.port,
                vc=edge.vc, expected=f"0..{limit}", actual=count)
            return
        vc = edge.vc
        if edge.nic is not None:
            # Ejection edge: the NIC's ejection queue is buffer and link in
            # one; pending credits wait in _eject_credit_due.
            occupied = sum(1 for _, f in edge.nic._eject_q if f.vc == vc)
            returning = sum(1 for _, v in edge.nic._eject_credit_due
                            if v == vc)
            in_flight = 0
        else:
            occupied = len(edge.buffer_q)
            ep = edge.ep
            in_flight = 0
            for item in edge.link._q:
                # FIFO links hold (cycle, flit, ep); heap links hold
                # (cycle, seq, flit, ep).
                if item[-1] is ep and item[-2].vc == vc:
                    in_flight += 1
            returning = sum(1 for _, v in edge.channel if v == vc)
        expected = limit - occupied - in_flight - returning
        if count != expected:
            self.violation(
                "credit_conservation",
                "upstream credit counter out of sync with downstream "
                "free slots",
                cycle=cycle, router=edge.router, port=edge.port, vc=vc,
                expected=expected, actual=count)

    def on_cycle_start(self, cycle, network):
        dirty = self._dirty
        if dirty:
            by_id = self._by_id
            for key in dirty:
                self._verify(cycle, by_id[key])
            dirty.clear()
        if self.deep_every and cycle % self.deep_every == 0:
            self._deep_sweep(cycle)

    def _deep_sweep(self, cycle):
        self.deep_sweeps += 1
        for edge in self._edges:
            self._verify(cycle, edge)

    def finish(self, network):
        self._deep_sweep(network.cycle)

    def snapshot(self) -> dict:
        return {
            "edges": len(self._edges),
            "edge_checks": self.edge_checks,
            "deep_sweeps": self.deep_sweeps,
            "violations": len(self.violations),
        }
