"""Metrics registry: one JSON document per checked run.

``MetricsRegistry`` owns a set of monitors, exposes them as a single
composite probe, and at the end of a run folds every monitor's snapshot —
plus the run's ``NetworkStats`` summary — into one JSON-ready document.
Written next to the run-provenance manifest (PR 3), the document is the
input to ``python -m repro compare`` for run-to-run regression reports.
"""

from __future__ import annotations

import json

from ..instrument.probe import CompositeProbe
from ..network.backend import backend_of
from .base import Monitor
from .conservation import ConservationMonitor
from .credit import CreditMonitor
from .pc import PseudoCircuitMonitor
from .watchdog import ProgressWatchdog

#: Schema tag of a single-run metrics document.
METRICS_SCHEMA = "repro.metrics/1"
#: Schema tag of a multi-run document (one entry per labelled run).
METRICS_SET_SCHEMA = "repro.metrics-set/1"


class MetricsRegistry:
    """A set of monitors plus the machinery to snapshot them as JSON."""

    def __init__(self, monitors: list[Monitor] | None = None):
        self.monitors: list[Monitor] = list(monitors or [])

    def register(self, monitor: Monitor) -> Monitor:
        self.monitors.append(monitor)
        return monitor

    def probe(self) -> CompositeProbe:
        """The probe to attach to a network (fans out to every monitor)."""
        return CompositeProbe(*self.monitors)

    @property
    def violations(self) -> list:
        out = []
        for monitor in self.monitors:
            out.extend(monitor.violations)
        return out

    def finish(self, network) -> dict:
        """Run every monitor's end-of-run checks and snapshot the run."""
        for monitor in self.monitors:
            monitor.finish(network)
        return self.snapshot(network)

    def snapshot(self, network, backend: str | None = None) -> dict:
        """One JSON-ready document for the run ``network`` just finished.

        ``backend`` overrides the concrete-core stamp — the per-lane
        snapshot path of batched runs passes a stats shim that is not
        the live network, so it names the core explicitly.
        """
        stats = network.stats
        run = dict(stats.summary())
        run["pc_established"] = stats.pc_established
        run["pc_restored"] = stats.pc_restored
        run["pc_terminations"] = {
            reason.value: count
            for reason, count in stats.pc_terminations.items() if count}
        violations = self.violations
        return {
            "schema": METRICS_SCHEMA,
            "cycle": network.cycle,
            "backend": backend if backend is not None
            else backend_of(network),
            "run": run,
            "monitors": {m.name: m.snapshot() for m in self.monitors},
            "violations": [v.to_dict() for v in violations],
            "violation_count": len(violations),
        }


def default_registry(strict: bool = True) -> MetricsRegistry:
    """The full self-checking suite (what ``--check`` attaches)."""
    return MetricsRegistry([
        ConservationMonitor(strict=strict),
        CreditMonitor(strict=strict),
        PseudoCircuitMonitor(strict=strict),
        ProgressWatchdog(strict=strict),
    ])


def metrics_path(path: str) -> str:
    """Metrics-document path derived from a results path
    (``out.json`` -> ``out.metrics.json``)."""
    stem = path[:-5] if path.endswith(".json") else path
    return stem + ".metrics.json"


def write_metrics(path: str, doc: dict) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def metrics_set(runs: list[tuple[str, dict]]) -> dict:
    """Bundle labelled single-run documents into one multi-run document."""
    return {
        "schema": METRICS_SET_SCHEMA,
        "runs": [{"label": label, **doc} for label, doc in runs],
        "violation_count": sum(doc["violation_count"]
                               for _, doc in runs),
    }
