"""Pseudo-circuit state-machine monitor (paper Sections III–IV).

Maintains a shadow copy of every pseudo-circuit register and every output
port's holder, updated *only* from the probe event stream
(``on_pc_establish`` / ``on_pc_terminate`` / ``on_pc_restore``), and
compares it against the live router state at every cycle boundary. Any
direct corruption of the PC state — two inputs latched to one output, a
register revalidated or retargeted without an event — is therefore caught
within one cycle.

Event legality, per the paper's rules:

* an establish may only land on an output whose (shadow) holder is free or
  the establishing input itself — conflicting circuits must have emitted
  their ``CONFLICT_OUTPUT`` / ``CONFLICT_INPUT`` terminations first;
* ``CONFLICT_OUTPUT`` / ``CONFLICT_INPUT`` terminations must be followed
  by the establish that displaced them in the same cycle;
* a terminate must name a valid circuit and its actual output;
* a restore (speculation, Section IV.A) may only revalidate an
  invalidated-but-once-established register on a free output with credits
  available downstream;
* a buffer bypass (``via='buf'``) requires the VC buffer to have been
  empty, and any bypass (``via`` ≠ ``'sa'``) requires a matching valid
  circuit.

The monitor also accumulates per-router hop/bypass counters, so the
reuse and buffer-bypass rates of EXPERIMENTS.md come out of a checked
monitor; ``finish`` reconciles the aggregates against ``NetworkStats``.
"""

from __future__ import annotations

from ..core.pseudo_circuit import Termination
from .base import Monitor


class _ShadowReg:
    __slots__ = ("in_vc", "out_port", "valid")

    def __init__(self):
        self.in_vc = -1
        self.out_port = -1
        self.valid = False


class PseudoCircuitMonitor(Monitor):
    """Validate the pseudo-circuit state machine against its event stream."""

    name = "pseudo_circuit"

    def __init__(self, strict: bool = True):
        super().__init__(strict)
        self._regs: list[list[_ShadowReg]] = []
        self._holders: list[list[int]] = []
        # Same-cycle event pairing for the conflict termination rules.
        self._pending_conflicts: list[tuple] = []
        self._establishes: list[tuple] = []
        self._event_cycle = -1
        # Per-router accumulators (reuse / bypass rates).
        self.hops: list[int] = []
        self.sa_bypass: list[int] = []
        self.buf_bypass: list[int] = []
        self.established = 0
        self.refreshed = 0
        self.restored = 0
        self.terminations: dict[str, int] = {}
        self.scans = 0

    def bind(self, network):
        super().bind(network)
        self._regs = []
        self._holders = []
        for router in network.routers:
            regs = []
            for ip in router.in_ports:
                shadow = _ShadowReg()
                shadow.in_vc = ip.pc.in_vc
                shadow.out_port = ip.pc.out_port
                shadow.valid = ip.pc.valid
                regs.append(shadow)
            self._regs.append(regs)
            self._holders.append([out.pc_holder
                                  for out in router.out_ports])
        n = len(network.routers)
        self.hops = [0] * n
        self.sa_bypass = [0] * n
        self.buf_bypass = [0] * n

    # -- event legality + shadow updates --------------------------------------

    def _flush_conflicts(self, cycle):
        """Check the conflict terminations of the previous event cycle were
        each displaced by a same-cycle establish."""
        pending, establishes = self._pending_conflicts, self._establishes
        if pending:
            for (ev_cycle, router, in_port, out_port, reason) in pending:
                if reason is Termination.CONFLICT_OUTPUT:
                    displaced = any(r == router and o == out_port
                                    and p != in_port
                                    for _, r, p, o in establishes)
                else:  # CONFLICT_INPUT: same input went elsewhere
                    displaced = any(r == router and p == in_port
                                    and o != out_port
                                    for _, r, p, o in establishes)
                if not displaced:
                    self.violation(
                        "pc_orphan_conflict",
                        f"{reason.value} termination without the "
                        f"same-cycle establish that displaces it",
                        cycle=ev_cycle, router=router, port=in_port,
                        expected="a displacing establish",
                        actual="none")
            pending.clear()
        if establishes:
            establishes.clear()

    def _enter_cycle(self, cycle):
        if cycle != self._event_cycle:
            self._flush_conflicts(cycle)
            self._event_cycle = cycle

    def on_pc_establish(self, cycle, router, in_port, in_vc, out_port,
                        refreshed):
        self._enter_cycle(cycle)
        shadow = self._regs[router][in_port]
        holders = self._holders[router]
        holder = holders[out_port]
        if holder not in (-1, in_port):
            self.violation(
                "pc_establish_conflict",
                f"establish on output {out_port} still held by input "
                f"{holder} (no CONFLICT_OUTPUT termination preceded it)",
                cycle=cycle, router=router, port=in_port,
                expected=f"holder in (-1, {in_port})", actual=holder)
            holders[out_port] = -1  # resync best-effort
        if shadow.valid and shadow.out_port != out_port:
            self.violation(
                "pc_establish_conflict",
                f"input still latched to output {shadow.out_port} (no "
                f"CONFLICT_INPUT termination preceded it)",
                cycle=cycle, router=router, port=in_port,
                expected="invalid register or same output",
                actual=f"valid -> {shadow.out_port}")
        expected_refresh = (shadow.valid and shadow.in_vc == in_vc
                            and shadow.out_port == out_port)
        if refreshed != expected_refresh:
            self.violation(
                "pc_refresh_flag",
                "establish refreshed flag contradicts prior circuit state",
                cycle=cycle, router=router, port=in_port, vc=in_vc,
                expected=expected_refresh, actual=refreshed)
        shadow.in_vc = in_vc
        shadow.out_port = out_port
        shadow.valid = True
        holders[out_port] = in_port
        if refreshed:
            self.refreshed += 1
        else:
            self.established += 1
        self._establishes.append((cycle, router, in_port, out_port))

    def on_pc_terminate(self, cycle, router, in_port, out_port, reason):
        self._enter_cycle(cycle)
        if not isinstance(reason, Termination):
            self.violation(
                "pc_termination_reason", "unknown termination reason",
                cycle=cycle, router=router, port=in_port,
                expected="a Termination member", actual=repr(reason))
        else:
            key = reason.value
            self.terminations[key] = self.terminations.get(key, 0) + 1
        shadow = self._regs[router][in_port]
        if not shadow.valid:
            self.violation(
                "pc_terminate_invalid",
                "termination of a circuit that was never established "
                "or already torn down",
                cycle=cycle, router=router, port=in_port,
                expected="a valid circuit", actual="invalid register")
        elif shadow.out_port != out_port:
            self.violation(
                "pc_terminate_mismatch",
                "termination names an output the circuit does not hold",
                cycle=cycle, router=router, port=in_port,
                expected=shadow.out_port, actual=out_port)
        shadow.valid = False
        holders = self._holders[router]
        if 0 <= out_port < len(holders) and holders[out_port] == in_port:
            holders[out_port] = -1
        if reason in (Termination.CONFLICT_OUTPUT,
                      Termination.CONFLICT_INPUT):
            self._pending_conflicts.append(
                (cycle, router, in_port, out_port, reason))

    def on_pc_restore(self, cycle, router, in_port, out_port):
        self._enter_cycle(cycle)
        shadow = self._regs[router][in_port]
        holders = self._holders[router]
        if shadow.valid:
            self.violation(
                "pc_restore_valid",
                "speculative restore of a circuit that is still valid",
                cycle=cycle, router=router, port=in_port,
                expected="an invalidated register", actual="valid")
        elif shadow.in_vc < 0 or shadow.out_port != out_port:
            self.violation(
                "pc_restore_mismatch",
                "restore does not match the invalidated register contents",
                cycle=cycle, router=router, port=in_port,
                expected=(shadow.in_vc, shadow.out_port),
                actual=out_port)
        if holders[out_port] != -1:
            self.violation(
                "pc_restore_conflict",
                f"restore on output {out_port} still held by input "
                f"{holders[out_port]}",
                cycle=cycle, router=router, port=in_port,
                expected=-1, actual=holders[out_port])
        out = self._network.routers[router].out_ports[out_port]
        if not out.any_credit():
            self.violation(
                "pc_restore_no_credit",
                "speculative restore on a creditless output "
                "(Section IV.A requires credits downstream)",
                cycle=cycle, router=router, port=in_port,
                expected="credits available", actual=0)
        shadow.valid = True
        holders[out_port] = in_port
        self.restored += 1

    # -- traversal rules ------------------------------------------------------

    def on_traverse(self, cycle, router, in_port, vc, out_port, via, read,
                    flit):
        self._enter_cycle(cycle)
        self.hops[router] += 1
        if via == "sa":
            return
        self.sa_bypass[router] += 1
        shadow = self._regs[router][in_port]
        if not (shadow.valid and shadow.in_vc == vc
                and shadow.out_port == out_port):
            self.violation(
                "pc_bypass_without_circuit",
                f"'{via}' traversal without a matching valid circuit",
                cycle=cycle, router=router, port=in_port, vc=vc,
                expected=f"valid circuit vc={vc} out={out_port}",
                actual=(shadow.valid, shadow.in_vc, shadow.out_port))
        if via == "buf":
            self.buf_bypass[router] += 1
            buffer_q = (self._network.routers[router]
                        .in_ports[in_port].vcs[vc].buffer._q)
            if buffer_q:
                self.violation(
                    "pc_bypass_nonempty_buffer",
                    "buffer bypass with flits still buffered on the VC",
                    cycle=cycle, router=router, port=in_port, vc=vc,
                    expected=0, actual=len(buffer_q))

    # -- cycle-boundary scan --------------------------------------------------

    def on_cycle_start(self, cycle, network):
        self._flush_conflicts(cycle)
        self._event_cycle = cycle
        self.scans += 1
        regs_all = self._regs
        holders_all = self._holders
        for router in network.routers:
            rid = router.router_id
            shadow_regs = regs_all[rid]
            shadow_holders = holders_all[rid]
            seen: dict[int, int] = {}
            for i, ip in enumerate(router.in_ports):
                reg = ip.pc
                shadow = shadow_regs[i]
                if (reg.valid != shadow.valid
                        or reg.in_vc != shadow.in_vc
                        or reg.out_port != shadow.out_port):
                    self.violation(
                        "pc_state_drift",
                        "pseudo-circuit register diverged from the "
                        "event-stream shadow",
                        cycle=cycle, router=rid, port=i,
                        expected=(shadow.valid, shadow.in_vc,
                                  shadow.out_port),
                        actual=(reg.valid, reg.in_vc, reg.out_port))
                if reg.valid:
                    prev = seen.get(reg.out_port)
                    if prev is not None:
                        self.violation(
                            "pc_output_conflict",
                            f"inputs {prev} and {i} both latched to "
                            f"output {reg.out_port}",
                            cycle=cycle, router=rid, port=i,
                            expected="one circuit per output",
                            actual=f"inputs ({prev}, {i})")
                    seen[reg.out_port] = i
            for out in router.out_ports:
                port_id = out.port_id
                expected = shadow_holders[port_id]
                if out.pc_holder != expected:
                    self.violation(
                        "pc_holder_drift",
                        "output pc_holder diverged from the event-stream "
                        "shadow",
                        cycle=cycle, router=rid, port=port_id,
                        expected=expected, actual=out.pc_holder)

    # -- end of run -----------------------------------------------------------

    def finish(self, network):
        self._flush_conflicts(network.cycle)
        stats = network.stats
        checks = (
            ("sa_bypass_flits", stats.sa_bypass_flits,
             sum(self.sa_bypass)),
            ("buf_bypass_flits", stats.buf_bypass_flits,
             sum(self.buf_bypass)),
            ("flit_hops", stats.flit_hops, sum(self.hops)),
            ("pc_established", stats.pc_established, self.established),
            ("pc_restored", stats.pc_restored, self.restored),
        )
        for name, from_stats, from_monitor in checks:
            if from_stats != from_monitor:
                self.violation(
                    "stats_mismatch",
                    f"monitor {name} diverged from NetworkStats",
                    cycle=network.cycle, expected=from_stats,
                    actual=from_monitor)
        aggregate = {reason.value: count
                     for reason, count in stats.pc_terminations.items()
                     if count}
        if aggregate != self.terminations:
            self.violation(
                "stats_mismatch",
                "monitor termination counts diverged from NetworkStats",
                cycle=network.cycle, expected=aggregate,
                actual=self.terminations)

    def snapshot(self) -> dict:
        hops = sum(self.hops)
        per_router = []
        for rid, n in enumerate(self.hops):
            if n:
                per_router.append({
                    "router": rid,
                    "hops": n,
                    "reuse_rate": round(self.sa_bypass[rid] / n, 6),
                    "buffer_bypass_rate": round(
                        self.buf_bypass[rid] / n, 6),
                })
        return {
            "flit_hops": hops,
            "reuse_rate": round(sum(self.sa_bypass) / hops, 6)
            if hops else 0.0,
            "buffer_bypass_rate": round(sum(self.buf_bypass) / hops, 6)
            if hops else 0.0,
            "established": self.established,
            "refreshed": self.refreshed,
            "restored": self.restored,
            "terminations": dict(self.terminations),
            "scans": self.scans,
            "per_router": per_router,
            "violations": len(self.violations),
        }
