"""Flit-conservation and wormhole-ordering monitor.

Three invariants, checked online:

* **Flit conservation** — every injected flit is eventually ejected or
  still in flight; the network can never eject more than was injected, and
  a drained (quiescent) network has ejected exactly what it injected.
* **Buffer occupancy** — for every (router, port, vc), the live buffer
  depth equals writes − reads as seen through the probe events. Keys
  touched in a cycle are re-checked at the next cycle boundary (the dirty
  set); a periodic *deep sweep* every ``deep_every`` executed cycles (and
  at ``finish``) covers keys corrupted without an event.
* **Wormhole ordering** — per (router, in_port, vc), crossbar traversals
  form complete packet sequences: a head flit with index 0 opens a packet,
  body flits follow in consecutive index order, the tail (index size−1)
  closes it, and packets never interleave within a VC.
"""

from __future__ import annotations

from .base import Monitor


class ConservationMonitor(Monitor):
    """Prove flits are neither lost, duplicated nor reordered."""

    name = "conservation"

    def __init__(self, strict: bool = True, deep_every: int = 64):
        super().__init__(strict)
        self.deep_every = deep_every
        self.injected_flits = 0
        self.ejected_flits = 0
        self.injected_packets = 0
        self.ejected_packets = 0
        self.max_in_flight = 0
        self.buffer_checks = 0
        self.deep_sweeps = 0
        # (router, port, vc) -> writes - reads since bind.
        self._occ: dict[tuple[int, int, int], int] = {}
        self._dirty: set[tuple[int, int, int]] = set()
        # (router, port, vc) -> (pid, next flit index) of the open packet.
        self._open: dict[tuple[int, int, int], tuple[int, int]] = {}

    # -- terminal accounting --------------------------------------------------

    def on_inject(self, cycle, terminal, packet):
        self.injected_packets += 1
        self.injected_flits += packet.size
        in_flight = self.injected_flits - self.ejected_flits
        if in_flight > self.max_in_flight:
            self.max_in_flight = in_flight

    def on_eject(self, cycle, terminal, packet):
        self.ejected_packets += 1
        self.ejected_flits += packet.size
        if self.ejected_flits > self.injected_flits:
            self.violation(
                "flit_conservation",
                "more flits ejected than injected",
                cycle=cycle, expected=f"<= {self.injected_flits}",
                actual=self.ejected_flits)

    # -- buffer occupancy -----------------------------------------------------

    def on_buffer_write(self, cycle, router, in_port, vc, flit):
        key = (router, in_port, vc)
        self._occ[key] = self._occ.get(key, 0) + 1
        self._dirty.add(key)

    def on_traverse(self, cycle, router, in_port, vc, out_port, via, read,
                    flit):
        key = (router, in_port, vc)
        if read:
            occ = self._occ.get(key, 0) - 1
            if occ < 0:
                self.violation(
                    "buffer_underflow",
                    "buffer read without a matching write",
                    cycle=cycle, router=router, port=in_port, vc=vc,
                    expected=">= 0", actual=occ)
            self._occ[key] = occ
            self._dirty.add(key)
        self._check_order(cycle, key, flit)

    def _check_order(self, cycle, key, flit):
        open_ = self._open.get(key)
        router, port, vc = key
        pid = flit.packet.pid
        if flit.is_head:
            if open_ is not None:
                self.violation(
                    "flit_order",
                    f"head flit of packet {pid} while packet "
                    f"{open_[0]} is still open on this VC",
                    cycle=cycle, router=router, port=port, vc=vc,
                    expected=f"packet {open_[0]} flit {open_[1]}",
                    actual=f"packet {pid} head")
            if flit.index != 0:
                self.violation(
                    "flit_order", f"head flit of packet {pid} has "
                    f"index {flit.index}",
                    cycle=cycle, router=router, port=port, vc=vc,
                    expected=0, actual=flit.index)
            nxt = (pid, 1)
        elif open_ is None:
            self.violation(
                "flit_order",
                f"body/tail flit of packet {pid} with no open packet",
                cycle=cycle, router=router, port=port, vc=vc,
                expected="an open packet", actual=f"flit {flit.index}")
            nxt = (pid, flit.index + 1)
        elif open_[0] != pid or open_[1] != flit.index:
            self.violation(
                "flit_order",
                "out-of-order flit within the wormhole",
                cycle=cycle, router=router, port=port, vc=vc,
                expected=f"packet {open_[0]} flit {open_[1]}",
                actual=f"packet {pid} flit {flit.index}")
            nxt = (pid, flit.index + 1)
        else:
            nxt = (pid, flit.index + 1)
        if flit.is_tail:
            if flit.index != flit.packet.size - 1:
                self.violation(
                    "flit_order",
                    f"tail of packet {pid} at flit index {flit.index}",
                    cycle=cycle, router=router, port=port, vc=vc,
                    expected=flit.packet.size - 1, actual=flit.index)
            self._open.pop(key, None)
        else:
            self._open[key] = nxt

    # -- cycle-boundary checks ------------------------------------------------

    def on_cycle_start(self, cycle, network):
        dirty = self._dirty
        if dirty:
            for key in dirty:
                self._verify(cycle, key)
            dirty.clear()
        if self.deep_every and cycle % self.deep_every == 0:
            self._deep_sweep(cycle)

    def _verify(self, cycle, key):
        router, port, vc = key
        actual = len(self._network.routers[router]
                     .in_ports[port].vcs[vc].buffer._q)
        expected = self._occ.get(key, 0)
        self.buffer_checks += 1
        if actual != expected:
            self.violation(
                "buffer_occupancy",
                "buffer depth diverged from writes - reads",
                cycle=cycle, router=router, port=port, vc=vc,
                expected=expected, actual=actual)

    def _deep_sweep(self, cycle):
        self.deep_sweeps += 1
        occ = self._occ
        for router in self._network.routers:
            rid = router.router_id
            for ip in router.in_ports:
                port = ip.port_id
                for vc_obj in ip.vcs:
                    actual = len(vc_obj.buffer._q)
                    expected = occ.get((rid, port, vc_obj.vc_id), 0)
                    self.buffer_checks += 1
                    if actual != expected:
                        self.violation(
                            "buffer_occupancy",
                            "buffer depth diverged from writes - reads "
                            "(deep sweep)",
                            cycle=cycle, router=rid, port=port,
                            vc=vc_obj.vc_id, expected=expected,
                            actual=actual)

    # -- end of run -----------------------------------------------------------

    def finish(self, network):
        self._deep_sweep(network.cycle)
        stats = network.stats
        if (stats.injected_flits != self.injected_flits
                or stats.ejected_flits != self.ejected_flits):
            self.violation(
                "stats_mismatch",
                "monitor flit counts diverged from NetworkStats",
                cycle=network.cycle,
                expected=(stats.injected_flits, stats.ejected_flits),
                actual=(self.injected_flits, self.ejected_flits))
        if network.quiescent():
            if self.injected_flits != self.ejected_flits:
                self.violation(
                    "flit_conservation",
                    "quiescent network with flits unaccounted for",
                    cycle=network.cycle, expected=self.injected_flits,
                    actual=self.ejected_flits)
            if self._open:
                key, (pid, idx) = next(iter(self._open.items()))
                router, port, vc = key
                self.violation(
                    "flit_order",
                    f"packet {pid} never completed its wormhole "
                    f"(next flit index {idx})",
                    cycle=network.cycle, router=router, port=port, vc=vc,
                    expected="all wormholes closed",
                    actual=f"{len(self._open)} open")

    def snapshot(self) -> dict:
        return {
            "injected_packets": self.injected_packets,
            "ejected_packets": self.ejected_packets,
            "injected_flits": self.injected_flits,
            "ejected_flits": self.ejected_flits,
            "in_flight_flits": self.injected_flits - self.ejected_flits,
            "max_in_flight_flits": self.max_in_flight,
            "buffer_checks": self.buffer_checks,
            "deep_sweeps": self.deep_sweeps,
            "violations": len(self.violations),
        }
