"""Run-to-run regression reports: diff two metrics/bench documents.

``compare_docs`` flattens two JSON documents (metrics documents from
``--check`` runs, ``BENCH_core.json`` bench reports, or any JSON with
numeric leaves) into dotted-key leaves, matches keys against a built-in
threshold table, and classifies every shared metric as *ok*, *improved*
or *regressed*. The ``python -m repro compare`` CLI prints the report and
exits non-zero when anything regressed — the CI contract.

Threshold rules (first ``fnmatch`` match wins; ``--threshold
PATTERN=VALUE`` overrides the tolerance, direction stays built-in):

=====================================  =========  =======================
pattern                                tolerance  better direction
=====================================  =========  =======================
``*violation*``                        0 (abs)    lower
``*wall_s`` / ``*overhead*``           10% (rel)  lower
``*latency*``                          3% (rel)   lower
``*reusability*`` / ``*bypass_rate*``
/ ``*locality*``                       0.02 (abs) higher
``*speedup*`` / ``*points_per_s``      10% (rel)  higher
``*hit_rate*`` / ``*occupancy*``       0.02 (abs) higher
``*utilization*``                      0.05 (abs) higher
other ``*_s`` walls                    25% (rel)  lower
anything else                          exact      neutral (either way)
=====================================  =========  =======================

Sweep-report documents (``repro.sweep-report/1``, written by the harness
telemetry layer) diff through the same machinery: throughput, store hit
rate, batch occupancy and scheduler overhead fall under the rules above,
while per-pid worker blocks and error details are identity, not quality.
"""

from __future__ import annotations

import json
import math
from fnmatch import fnmatch

REPORT_SCHEMA = "repro.regression-report/1"

#: (pattern, tolerance, relative?, better: 'lower'|'higher'|'neutral')
DEFAULT_RULES: list[tuple[str, float, bool, str]] = [
    ("*violation*", 0.0, False, "lower"),
    ("*wall_s", 0.10, True, "lower"),
    ("*overhead*", 0.10, True, "lower"),
    ("*latency*", 0.03, True, "lower"),
    ("*reusability*", 0.02, False, "higher"),
    ("*bypass_rate*", 0.02, False, "higher"),
    ("*locality*", 0.02, False, "higher"),
    ("*speedup*", 0.10, True, "higher"),
    ("*points_per_s", 0.10, True, "higher"),
    ("*hit_rate*", 0.02, False, "higher"),
    ("*occupancy*", 0.02, False, "higher"),
    ("*utilization*", 0.05, False, "higher"),
    ("*_s", 0.25, True, "lower"),
    ("*", 0.0, False, "neutral"),
]

#: Keys that identify a run rather than measure it — never compared.
#: ``store.`` covers the result-store counter block metrics documents
#: carry (hits/misses vary with cache temperature, not code quality);
#: ``per_worker.`` / ``errors.`` cover sweep-report blocks keyed by pid
#: or carrying absolute timestamps, which identify a run, not its
#: quality.
_IDENTITY_KEYS = ("meta.", "manifest.", ".git_sha", ".generated_unix",
                  ".python", ".platform", ".hostname", "schema", "store.",
                  "documents.", "per_worker.", "errors.")


def flatten(doc, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> numeric leaf. Bools, NaNs, strings are skipped;
    lists of dicts index by a ``name``/``label`` member when present."""
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(value, path))
    elif isinstance(doc, list):
        for idx, value in enumerate(doc):
            tag = str(idx)
            if isinstance(value, dict):
                tag = str(value.get("name") or value.get("label") or idx)
            out.update(flatten(value, f"{prefix}.{tag}"
                               if prefix else tag))
    elif isinstance(doc, bool):
        pass
    elif isinstance(doc, (int, float)):
        if not (isinstance(doc, float) and math.isnan(doc)):
            out[prefix] = float(doc)
    return out


def _rule_for(key: str, rules) -> tuple[float, bool, str]:
    for pattern, tolerance, relative, better in rules:
        if fnmatch(key, pattern):
            return tolerance, relative, better
    return 0.0, False, "neutral"


def build_rules(overrides: dict[str, float] | None = None):
    """The default rule table with per-pattern tolerance overrides
    prepended (direction comes from the first built-in match)."""
    rules = list(DEFAULT_RULES)
    if overrides:
        extra = []
        for pattern, tolerance in overrides.items():
            _, relative, better = _rule_for(pattern, DEFAULT_RULES)
            extra.append((pattern, tolerance, relative, better))
        rules = extra + rules
    return rules


def compare_docs(old: dict, new: dict,
                 overrides: dict[str, float] | None = None) -> dict:
    """Diff two flattened documents into a regression report."""
    rules = build_rules(overrides)
    old_flat = flatten(old)
    new_flat = flatten(new)
    rows = []
    counts = {"ok": 0, "improved": 0, "regressed": 0}
    for key in sorted(old_flat.keys() & new_flat.keys()):
        if any(tag in key for tag in _IDENTITY_KEYS):
            continue
        before, after = old_flat[key], new_flat[key]
        tolerance, relative, better = _rule_for(key, rules)
        delta = after - before
        if relative:
            scale = abs(before) if before else 1.0
            exceeds = abs(delta) / scale > tolerance
        else:
            exceeds = abs(delta) > tolerance
        if not exceeds:
            status = "ok"
        elif better == "neutral":
            status = "regressed"
        elif (delta < 0) == (better == "lower"):
            status = "improved"
        else:
            status = "regressed"
        counts[status] += 1
        if status != "ok":
            rows.append({"metric": key, "before": before, "after": after,
                         "delta": round(delta, 6), "status": status,
                         "better": better})
    missing = sorted(old_flat.keys() - new_flat.keys())
    added = sorted(new_flat.keys() - old_flat.keys())
    return {
        "schema": REPORT_SCHEMA,
        "compared": sum(counts.values()),
        "ok": counts["ok"],
        "improved": counts["improved"],
        "regressed": counts["regressed"],
        "rows": rows,
        "missing_metrics": [k for k in missing
                            if not any(t in k for t in _IDENTITY_KEYS)],
        "added_metrics": [k for k in added
                          if not any(t in k for t in _IDENTITY_KEYS)],
    }


def document_backend(doc: dict) -> str | None:
    """The network backend a metrics/bench document was produced on.

    Looks where each schema records it: top-level ``backend`` (metrics
    documents), ``meta.backend`` (bench reports), or the per-run
    ``backend`` entries of a metrics-set (``mixed(...)`` when the runs
    disagree). ``None`` for documents predating the backend stamp.
    """
    backend = doc.get("backend")
    if backend is None and isinstance(doc.get("meta"), dict):
        backend = doc["meta"].get("backend")
    if backend is None and isinstance(doc.get("runs"), list):
        backends = {run.get("backend") for run in doc["runs"]
                    if isinstance(run, dict)}
        backends.discard(None)
        if len(backends) == 1:
            backend = backends.pop()
        elif backends:
            backend = "mixed(" + ",".join(sorted(backends)) + ")"
    return backend if isinstance(backend, str) else None


def compare_files(old_path: str, new_path: str,
                  overrides: dict[str, float] | None = None) -> dict:
    """Diff two JSON documents on disk into a regression report.

    Beyond ``compare_docs``, the report names both inputs in a
    ``documents`` block — path, content-addressed store key
    (``repro.store.document_key``) and the backend that produced them —
    so the header identifies exactly which stored results were
    compared. When the two documents come from different backends the
    report carries ``backend_mismatch`` and the rendered header warns:
    stats are bit-identical across backends, but walls and speedups are
    not apples-to-apples.
    """
    from ..store import document_key
    with open(old_path, encoding="utf-8") as fh:
        old = json.load(fh)
    with open(new_path, encoding="utf-8") as fh:
        new = json.load(fh)
    report = compare_docs(old, new, overrides)
    old_backend = document_backend(old)
    new_backend = document_backend(new)
    report["documents"] = {
        "old": {"path": old_path, "store_key": document_key(old),
                "backend": old_backend},
        "new": {"path": new_path, "store_key": document_key(new),
                "backend": new_backend},
    }
    report["backend_mismatch"] = bool(
        old_backend and new_backend and old_backend != new_backend)
    return report


def render_report(report: dict, show_ok: bool = False) -> str:
    """Human-readable regression report for the terminal / CI log."""
    lines = []
    documents = report.get("documents")
    if documents:
        for tag in ("old", "new"):
            doc = documents[tag]
            backend = doc.get("backend")
            trail = f" (backend {backend})" if backend else ""
            lines.append(f"{tag}: {doc['path']} "
                         f"[store key {doc['store_key'][:16]}]{trail}")
        if report.get("backend_mismatch"):
            lines.append(
                f"  warning: documents come from different backends "
                f"({documents['old']['backend']} vs "
                f"{documents['new']['backend']}); stats compare "
                f"bit-identically, but wall/speedup deltas are not "
                f"apples-to-apples")
    lines.append(f"compared {report['compared']} metrics: "
                 f"{report['ok']} ok, {report['improved']} improved, "
                 f"{report['regressed']} regressed")
    for row in report["rows"]:
        mark = "+" if row["status"] == "improved" else "!"
        lines.append(
            f"  {mark} {row['metric']}: {row['before']:g} -> "
            f"{row['after']:g} ({row['delta']:+g}, better="
            f"{row['better']})")
    if report["missing_metrics"]:
        lines.append(f"  missing in new: "
                     f"{', '.join(report['missing_metrics'][:8])}"
                     + (" ..." if len(report["missing_metrics"]) > 8
                        else ""))
    if show_ok and not report["rows"]:
        lines.append("  no metric moved beyond its threshold")
    return "\n".join(lines)
