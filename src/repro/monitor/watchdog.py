"""Progress watchdog: deadlock, livelock and per-VC starvation detection.

Global progress is any crossbar traversal or packet ejection. When flits
are in flight but no progress has happened for ``stall_limit`` executed
cycles, the network is either deadlocked (flits parked forever, e.g. a
credit loss) or livelocked (activity without delivery); both raise a
``deadlock`` violation. Per-VC starvation tracks how long each occupied
(router, port, vc) buffer has gone without a read — a flit sitting longer
than ``starve_limit`` cycles raises ``starvation``.

Quiescence fast-forwards (see ``repro.network.simulator``) jump the clock
across provably event-free stretches — every remaining event there is
time-scheduled and will fire, so skipped cycles can neither stall nor
starve. ``on_cycle_start`` detects the jump and shifts all watermarks
forward by its size, so the limits count *executed* cycles only.
"""

from __future__ import annotations

from .base import Monitor


class ProgressWatchdog(Monitor):
    """Detect deadlock/livelock and per-VC starvation online."""

    name = "watchdog"

    def __init__(self, strict: bool = True, stall_limit: int = 1000,
                 starve_limit: int = 2000, scan_every: int = 64):
        super().__init__(strict)
        self.stall_limit = stall_limit
        self.starve_limit = starve_limit
        self.scan_every = scan_every
        self.in_flight_packets = 0
        self.max_stall = 0
        self.max_wait = 0
        self.scans = 0
        self._last_progress = 0
        self._prev_cycle = -1
        # (router, port, vc) -> buffered flit count.
        self._occ: dict[tuple[int, int, int], int] = {}
        # (router, port, vc) -> cycle of the last read (or first write
        # while empty) — the waiting clock for starvation.
        self._last_seen: dict[tuple[int, int, int], int] = {}

    def bind(self, network):
        super().bind(network)
        self._last_progress = network.cycle
        self._prev_cycle = network.cycle - 1

    # -- progress tracking ----------------------------------------------------

    def on_inject(self, cycle, terminal, packet):
        self.in_flight_packets += 1

    def on_eject(self, cycle, terminal, packet):
        self.in_flight_packets -= 1
        self._last_progress = cycle

    def on_traverse(self, cycle, router, in_port, vc, out_port, via, read,
                    flit):
        self._last_progress = cycle
        if read:
            key = (router, in_port, vc)
            occ = self._occ.get(key, 0) - 1
            if occ > 0:
                self._occ[key] = occ
                self._last_seen[key] = cycle
            else:
                self._occ.pop(key, None)
                self._last_seen.pop(key, None)

    def on_buffer_write(self, cycle, router, in_port, vc, flit):
        key = (router, in_port, vc)
        occ = self._occ.get(key, 0)
        self._occ[key] = occ + 1
        if occ == 0:
            self._last_seen[key] = cycle

    # -- cycle-boundary checks ------------------------------------------------

    def on_cycle_start(self, cycle, network):
        prev = self._prev_cycle
        self._prev_cycle = cycle
        jump = cycle - prev - 1
        if jump > 0:
            # Fast-forwarded cycles are provably event-free: shift every
            # watermark so they count for nothing.
            self._last_progress += jump
            if self._last_seen:
                for key in self._last_seen:
                    self._last_seen[key] += jump
        if self.in_flight_packets > 0:
            stall = cycle - self._last_progress
            if stall > self.max_stall:
                self.max_stall = stall
            if stall > self.stall_limit:
                self.violation(
                    "deadlock",
                    f"{self.in_flight_packets} packets in flight but no "
                    f"traversal or ejection for {stall} cycles",
                    cycle=cycle, expected=f"<= {self.stall_limit}",
                    actual=stall)
                self._last_progress = cycle  # re-arm (non-strict mode)
        if self.scan_every and cycle % self.scan_every == 0:
            self._scan(cycle)

    def _scan(self, cycle):
        self.scans += 1
        last_seen = self._last_seen
        if not last_seen:
            return
        limit = self.starve_limit
        max_wait = self.max_wait
        starved = None
        for key, seen in last_seen.items():
            wait = cycle - seen
            if wait > max_wait:
                max_wait = wait
                if wait > limit:
                    starved = (key, wait)
        self.max_wait = max_wait
        if starved is not None:
            (router, port, vc), wait = starved
            self._last_seen[(router, port, vc)] = cycle  # re-arm
            self.violation(
                "starvation",
                f"buffered flit not read for {wait} cycles",
                cycle=cycle, router=router, port=port, vc=vc,
                expected=f"<= {limit}", actual=wait)

    def finish(self, network):
        if network.quiescent() and self.in_flight_packets > 0:
            self.violation(
                "deadlock",
                f"quiescent network with {self.in_flight_packets} "
                f"packets never ejected",
                cycle=network.cycle, expected=0,
                actual=self.in_flight_packets)

    def snapshot(self) -> dict:
        return {
            "in_flight_packets": self.in_flight_packets,
            "max_stall_cycles": self.max_stall,
            "max_wait_cycles": self.max_wait,
            "stall_limit": self.stall_limit,
            "starve_limit": self.starve_limit,
            "scans": self.scans,
            "violations": len(self.violations),
        }
