"""Miss Status Holding Registers (Kroft, ISCA 1981).

A lockup-free cache keeps serving hits while misses are outstanding, but
only ``capacity`` misses may be in flight; further misses stall the core.
This is the self-throttling mechanism of the paper's CMP network (Section
V): cores with 4 MSHRs stop injecting when the memory system backs up.
Accesses to a block that already has an MSHR merge into it instead of
issuing a duplicate request.
"""

from __future__ import annotations


class MshrFile:
    """Outstanding-miss tracking for one core."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("MSHR capacity must be >= 1")
        self.capacity = capacity
        # block -> list of merged accesses (is_write flags).
        self._entries: dict[int, list[bool]] = {}
        self.merges = 0
        self.stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def outstanding(self, block: int) -> bool:
        return block in self._entries

    def allocate(self, block: int, is_write: bool) -> bool:
        """Try to track a miss on ``block``.

        Returns True when the access is covered (new entry or merged into an
        existing one); False when every register is busy (core must stall).
        """
        entry = self._entries.get(block)
        if entry is not None:
            entry.append(is_write)
            self.merges += 1
            return True
        if self.full:
            self.stalls += 1
            return False
        self._entries[block] = [is_write]
        return True

    def release(self, block: int) -> list[bool]:
        """Miss completed: return the merged accesses it satisfied."""
        if block not in self._entries:
            raise KeyError(f"no MSHR allocated for block {block:#x}")
        return self._entries.pop(block)
