"""Core and L2-bank endpoints of the CMP coherence substrate.

Cores run a profile-shaped address stream through a real L1 model; misses
and write-throughs become network transactions bounded by a 4-entry MSHR
file (self-throttling). L2 banks hold the directory (sharer sets) and run
the simplified MSI protocol the paper uses: write-through with
write-invalidation.
"""

from __future__ import annotations

import heapq
import itertools
import random

from .address_stream import AddressStream
from .cache import SetAssociativeCache
from .config import CmpConfig
from .messages import (INV_ACK, INVAL, READ_REQ, READ_RESP, WRITE_ACK,
                       WRITE_REQ)
from .mshr import MshrFile

_seq = itertools.count()


def _mshr_key(block: int, is_write: bool) -> int:
    """Reads and writes to the same block occupy distinct registers."""
    return (block << 1) | int(is_write)


class Core:
    """One out-of-order core: L1 + MSHRs + synthetic instruction stream."""

    def __init__(self, core_id: int, terminal: int, config: CmpConfig,
                 stream: AddressStream, rng: random.Random):
        self.core_id = core_id
        self.terminal = terminal
        self.config = config
        self.stream = stream
        self.rng = rng
        self.l1 = SetAssociativeCache(config.l1d_size, config.l1d_assoc,
                                      config.block_size)
        self.mshrs = MshrFile(config.mshrs_per_core)
        self._stalled: tuple[int, bool] | None = None
        # Statistics.
        self.accesses = 0
        self.reads = 0
        self.writes = 0
        self.l1_hits = 0
        self.stall_cycles = 0

    # -- per-cycle behaviour --------------------------------------------------

    def tick(self, system, cycle: int) -> None:
        if self._stalled is not None:
            block, is_write = self._stalled
            self._stalled = None
            self._issue(system, cycle, block, is_write)
            if self._stalled is not None:
                self.stall_cycles += 1
                return  # still blocked: the core cannot run ahead
        if self.rng.random() < self.stream.profile.access_rate:
            block, is_write = self.stream.next_access()
            self._issue(system, cycle, block, is_write)

    def _issue(self, system, cycle: int, block: int, is_write: bool) -> None:
        self.accesses += 1
        if is_write:
            self.writes += 1
            # Write-through: every store reaches the home L2 bank. The core
            # tells the bank whether it keeps an L1 copy (updated in place)
            # so the directory stays precise. Stores to a block with an
            # outstanding write coalesce into the same MSHR.
            key = _mshr_key(block, True)
            if self.mshrs.outstanding(key):
                self.mshrs.allocate(key, True)  # coalesce
                return
            if not self.mshrs.allocate(key, True):
                self._retract(block, is_write)
                return
            keeps_copy = self.l1.contains(block)
            system.send(self.terminal, system.bank_terminal_for(block),
                        WRITE_REQ, block, cycle, payload=(block, keeps_copy))
        else:
            self.reads += 1
            if self.l1.lookup(block):
                self.l1_hits += 1
                return
            key = _mshr_key(block, False)
            if self.mshrs.outstanding(key):
                self.mshrs.allocate(key, False)  # merge
                return
            if not self.mshrs.allocate(key, False):
                self._retract(block, is_write)
                return
            system.send(self.terminal, system.bank_terminal_for(block),
                        READ_REQ, block, cycle)

    def _retract(self, block: int, is_write: bool) -> None:
        """All MSHRs busy: remember the access and stall (self-throttling)."""
        self._stalled = (block, is_write)
        self.accesses -= 1
        if is_write:
            self.writes -= 1
        else:
            self.reads -= 1

    # -- message handling -----------------------------------------------------

    def on_message(self, system, packet, cycle: int) -> None:
        msg = packet.msg_type
        block = packet.payload if isinstance(packet.payload, int) else \
            packet.payload[0]
        if msg == READ_RESP:
            self.l1.fill(block)
            self.mshrs.release(_mshr_key(block, False))
        elif msg == WRITE_ACK:
            self.mshrs.release(_mshr_key(block, True))
        elif msg == INVAL:
            self.l1.invalidate(block)
            system.send(self.terminal, packet.src, INV_ACK, block, cycle)
        else:
            raise ValueError(f"core {self.core_id}: unexpected {msg!r}")


class L2Bank:
    """One S-NUCA L2 bank with its slice of the directory."""

    def __init__(self, bank_id: int, terminal: int, config: CmpConfig,
                 l2_miss_rate: float, rng: random.Random):
        self.bank_id = bank_id
        self.terminal = terminal
        self.config = config
        self.l2_miss_rate = l2_miss_rate
        self.rng = rng
        self.directory: dict[int, set[int]] = {}
        # In-flight write transactions: block -> [writer_terminal, acks_left].
        self._pending_writes: dict[int, list] = {}
        # Requests serialized behind a busy block.
        self._waiting: dict[int, list] = {}
        # Delayed actions (bank access / memory latency).
        self._due: list[tuple[int, int, tuple]] = []
        # Statistics.
        self.read_reqs = 0
        self.write_reqs = 0
        self.invals_sent = 0
        self.l2_misses = 0

    # -- message handling -----------------------------------------------------

    def on_message(self, system, packet, cycle: int) -> None:
        msg = packet.msg_type
        if msg == READ_REQ:
            block = packet.payload
            if block in self._pending_writes:
                self._waiting.setdefault(block, []).append(
                    (READ_REQ, packet.src, block))
            else:
                self._start_read(system, cycle, packet.src, block)
        elif msg == WRITE_REQ:
            block, keeps_copy = packet.payload
            if block in self._pending_writes:
                self._waiting.setdefault(block, []).append(
                    (WRITE_REQ, packet.src, (block, keeps_copy)))
            else:
                self._start_write(system, cycle, packet.src, block,
                                  keeps_copy)
        elif msg == INV_ACK:
            block = packet.payload
            self._ack(system, cycle, block)
        else:
            raise ValueError(f"bank {self.bank_id}: unexpected {msg!r}")

    def _start_read(self, system, cycle: int, requester: int,
                    block: int) -> None:
        self.read_reqs += 1
        delay = self.config.l2_bank_latency
        if self.rng.random() < self.l2_miss_rate:
            self.l2_misses += 1
            delay += self.config.memory_latency
        self.directory.setdefault(block, set()).add(requester)
        self._schedule(cycle + delay, (READ_RESP, requester, block))

    def _start_write(self, system, cycle: int, writer: int, block: int,
                     keeps_copy: bool) -> None:
        self.write_reqs += 1
        sharers = self.directory.get(block, set()) - {writer}
        self.directory[block] = {writer} if keeps_copy else set()
        if sharers:
            self._pending_writes[block] = [writer, len(sharers)]
            for sharer in sharers:
                self.invals_sent += 1
                system.send(self.terminal, sharer, INVAL, block, cycle)
        else:
            self._schedule(cycle + self.config.l2_bank_latency,
                           (WRITE_ACK, writer, block))

    def _ack(self, system, cycle: int, block: int) -> None:
        pending = self._pending_writes.get(block)
        if pending is None:
            raise RuntimeError(
                f"bank {self.bank_id}: stray INV_ACK for block {block:#x}")
        pending[1] -= 1
        if pending[1] == 0:
            writer = pending[0]
            del self._pending_writes[block]
            self._schedule(cycle + self.config.l2_bank_latency,
                           (WRITE_ACK, writer, block))
            self._drain_waiters(system, cycle, block)

    def _drain_waiters(self, system, cycle: int, block: int) -> None:
        waiters = self._waiting.pop(block, [])
        while waiters:
            kind, src, payload = waiters.pop(0)
            if kind == READ_REQ:
                self._start_read(system, cycle, src, payload)
            else:
                blk, keeps = payload
                self._start_write(system, cycle, src, blk, keeps)
                if blk in self._pending_writes:
                    # Busy again: the rest stays queued behind the new write.
                    self._waiting.setdefault(block, []).extend(waiters)
                    return

    # -- delayed actions ------------------------------------------------------

    def _schedule(self, when: int, action: tuple) -> None:
        heapq.heappush(self._due, (when, next(_seq), action))

    def tick(self, system, cycle: int) -> None:
        due = self._due
        while due and due[0][0] <= cycle:
            _, _, (msg, dst, block) = heapq.heappop(due)
            system.send(self.terminal, dst, msg, block, cycle)

    @property
    def idle(self) -> bool:
        return not self._due and not self._pending_writes
