"""Set-associative cache model with LRU replacement.

Operates on *block addresses* (byte address // block size); data values are
not modeled, only presence, which is all the coherence traffic generation
needs. Used for the L1s; L2 banks are modeled with the directory plus a
profile-driven miss rate (a full 16MB L2 content model would dominate the
simulation without changing the traffic shape the paper's technique sees).
"""

from __future__ import annotations

from collections import OrderedDict


class SetAssociativeCache:
    """LRU set-associative cache over block addresses."""

    def __init__(self, size_bytes: int, assoc: int, block_size: int):
        if size_bytes % (assoc * block_size):
            raise ValueError("cache size must be a multiple of way size")
        self.assoc = assoc
        self.block_size = block_size
        self.num_sets = size_bytes // (assoc * block_size)
        if self.num_sets < 1:
            raise ValueError("cache has no sets")
        # Each set maps block -> None in LRU order (leftmost = LRU).
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_for(self, block: int) -> OrderedDict:
        return self._sets[block % self.num_sets]

    def lookup(self, block: int) -> bool:
        """Probe (updates LRU and hit/miss counters)."""
        way = self._set_for(block)
        if block in way:
            way.move_to_end(block)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, block: int) -> bool:
        """Probe without side effects."""
        return block in self._set_for(block)

    def fill(self, block: int) -> int | None:
        """Insert ``block``; returns the evicted block, if any."""
        way = self._set_for(block)
        if block in way:
            way.move_to_end(block)
            return None
        victim = None
        if len(way) >= self.assoc:
            victim, _ = way.popitem(last=False)
        way[block] = None
        return victim

    def invalidate(self, block: int) -> bool:
        """Drop ``block``; returns True when it was present."""
        way = self._set_for(block)
        if block in way:
            del way[block]
            return True
        return False

    @property
    def occupancy(self) -> int:
        return sum(len(way) for way in self._sets)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
