"""CMP configuration (paper Table I).

32 out-of-order cores and 32 L2 cache banks (S-NUCA, address-interleaved)
share a 4x4 concentrated-mesh on-chip network; each router connects 2 cores
and 2 L2 banks. Each core has 32KB L1 caches and 4 MSHRs (lockup-free,
self-throttling). The coherence protocol is directory-based MSI simplified
to write-through + write-invalidation, exactly as in Section V.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CmpConfig:
    """Table I parameters (sizes in bytes, latencies in cycles)."""

    num_cores: int = 32
    num_l2_banks: int = 32
    l1i_size: int = 32 * 1024
    l1i_assoc: int = 1
    l1d_size: int = 32 * 1024
    l1d_assoc: int = 4
    l1_latency: int = 1
    block_size: int = 64
    l2_size: int = 16 * 1024 * 1024   # unified, 16-way, 512KB per bank
    l2_assoc: int = 16
    l2_bank_latency: int = 10
    memory_latency: int = 300
    mshrs_per_core: int = 4
    clock_ghz: float = 5.0
    # Network packet sizes (Section V): address-only = 1 flit; address +
    # 64B data block over a 128-bit link = 5 flits.
    ctrl_packet_flits: int = 1
    data_packet_flits: int = 5
    # S-NUCA address interleaving granularity in blocks (log2). 6 means
    # 64-block (4KB page) interleaving: a sequential run stays on one home
    # bank for a page, which is what gives CMP traffic the pairwise
    # temporal locality Fig. 1 measures.
    interleave_shift: int = 6

    def __post_init__(self):
        if self.num_cores < 1 or self.num_l2_banks < 1:
            raise ValueError("need at least one core and one L2 bank")
        if self.block_size & (self.block_size - 1):
            raise ValueError("block_size must be a power of two")

    @property
    def l2_bank_size(self) -> int:
        return self.l2_size // self.num_l2_banks

    def as_table(self) -> list[tuple[str, str]]:
        """Rows of Table I, for the bench that regenerates it."""
        return [
            ("# Cores", f"{self.num_cores} out-of-order"),
            ("# L2 Banks",
             f"{self.num_l2_banks} x {self.l2_bank_size // 1024}KB bank"),
            ("L1I Cache", f"{self.l1i_assoc}-way {self.l1i_size // 1024}KB"),
            ("L1D Cache", f"{self.l1d_assoc}-way {self.l1d_size // 1024}KB"),
            ("L1 Latency", f"{self.l1_latency} cycle"),
            ("Cache Block Size", f"{self.block_size}B"),
            ("Unified L2 Cache",
             f"{self.l2_assoc}-way {self.l2_size // (1024 * 1024)}MB"),
            ("L2 Bank Latency", f"{self.l2_bank_latency} cycles"),
            ("Memory Latency", f"{self.memory_latency} cycles"),
            ("MSHRs / core", str(self.mshrs_per_core)),
            ("Clock Frequency", f"{self.clock_ghz:g}GHz"),
        ]
