"""CMP coherence-traffic substrate (substitution for the paper's Simics
traces; see DESIGN.md §3)."""

from .address_stream import AddressStream
from .cache import SetAssociativeCache
from .config import CmpConfig
from .endpoints import Core, L2Bank
from .messages import (ALL_TYPES, INV_ACK, INVAL, READ_REQ, READ_RESP,
                       WRITE_ACK, WRITE_REQ, message_flits)
from .mshr import MshrFile
from .system import CmpSystem

__all__ = [
    "ALL_TYPES",
    "AddressStream",
    "CmpConfig",
    "CmpSystem",
    "Core",
    "INVAL",
    "INV_ACK",
    "L2Bank",
    "MshrFile",
    "READ_REQ",
    "READ_RESP",
    "SetAssociativeCache",
    "WRITE_ACK",
    "WRITE_REQ",
    "message_flits",
]
