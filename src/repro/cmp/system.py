"""The CMP: cores + L2 banks wired to the on-chip network.

Default configuration mirrors the paper (Fig. 7): a 4x4 concentrated mesh
where each router connects 2 cores and 2 L2 banks (terminal local indices
0-1 are cores, 2-3 are banks). On concentration-1 topologies (used for the
Fig. 13 topology study) cores and banks are placed in a checkerboard.

``CmpSystem.run`` advances cores, banks and the network in lockstep; with
``record_trace=True`` every injected message is also recorded so the run
doubles as the paper's trace-extraction step.
"""

from __future__ import annotations

import random

from ..network.config import NetworkConfig
from ..network.flit import Packet
from ..network.simulator import Network
from ..topology.base import Topology
from ..topology.mesh import ConcentratedMesh
from ..traffic.benchmarks import BenchmarkProfile, get_profile
from ..traffic.trace import Trace, TraceRecord
from .address_stream import AddressStream
from .config import CmpConfig
from .endpoints import Core, L2Bank
from .messages import message_flits


class CmpSystem:
    """Closed-loop CMP driving an on-chip network with coherence traffic."""

    def __init__(self, benchmark: str | BenchmarkProfile,
                 network: Network | None = None,
                 cmp_config: CmpConfig | None = None, seed: int = 1):
        self.profile = (benchmark if isinstance(benchmark, BenchmarkProfile)
                        else get_profile(benchmark))
        self.config = cmp_config if cmp_config is not None else CmpConfig()
        if network is None:
            network = Network(ConcentratedMesh(4, 4, 4), NetworkConfig(),
                              routing="o1turn", vc_policy="dynamic",
                              seed=seed)
        self.network = network
        self._check_capacity()
        self.rng = random.Random(seed)
        self._map_terminals()
        self.cores = [
            Core(i, self.core_terminals[i], self.config,
                 AddressStream(self.profile, i, self.config.num_l2_banks,
                               seed, self.config.interleave_shift),
                 random.Random((seed << 16) ^ i))
            for i in range(self.config.num_cores)]
        self.banks = [
            L2Bank(j, self.bank_terminals[j], self.config,
                   self.profile.l2_miss_rate,
                   random.Random((seed << 20) ^ j))
            for j in range(self.config.num_l2_banks)]
        self._endpoint_by_terminal = {}
        for core in self.cores:
            self._endpoint_by_terminal[core.terminal] = core
        for bank in self.banks:
            self._endpoint_by_terminal[bank.terminal] = bank
        for terminal, endpoint in self._endpoint_by_terminal.items():
            self.network.nics[terminal].on_packet = self._make_handler(
                endpoint)
        self.trace: Trace | None = None
        self._record_from = 0
        self.messages_sent = 0

    def _check_capacity(self) -> None:
        needed = self.config.num_cores + self.config.num_l2_banks
        have = self.network.topology.num_terminals
        if have < needed:
            raise ValueError(
                f"topology has {have} terminals but the CMP needs {needed}")

    def _map_terminals(self) -> None:
        """Assign cores and banks to terminals."""
        topo: Topology = self.network.topology
        cores, banks = [], []
        if topo.concentration >= 2:
            # Paper layout: the first half of each router's terminals are
            # cores, the second half L2 banks.
            half = topo.concentration // 2
            for t in range(topo.num_terminals):
                if t % topo.concentration < half:
                    cores.append(t)
                else:
                    banks.append(t)
        else:
            # Checkerboard on concentration-1 grids.
            for t in range(topo.num_terminals):
                x, y = topo.coords(topo.terminal_router(t))
                (cores if (x + y) % 2 == 0 else banks).append(t)
        if (len(cores) < self.config.num_cores
                or len(banks) < self.config.num_l2_banks):
            raise ValueError(
                f"placement found {len(cores)} core / {len(banks)} bank "
                f"slots; need {self.config.num_cores}/"
                f"{self.config.num_l2_banks}")
        self.core_terminals = cores[:self.config.num_cores]
        self.bank_terminals = banks[:self.config.num_l2_banks]

    def _make_handler(self, endpoint):
        def handler(packet: Packet, cycle: int) -> None:
            endpoint.on_message(self, packet, cycle)
        return handler

    # -- messaging ------------------------------------------------------------

    def bank_terminal_for(self, block: int) -> int:
        """Home bank terminal of a block (address-interleaved S-NUCA)."""
        bank = ((block >> self.config.interleave_shift)
                % self.config.num_l2_banks)
        return self.bank_terminals[bank]

    def send(self, src: int, dst: int, msg_type: str, block: int,
             cycle: int, payload=None) -> None:
        size = message_flits(msg_type, self.config)
        packet = Packet(src, dst, size, cycle, msg_type=msg_type,
                        payload=payload if payload is not None else block)
        self.network.inject(packet)
        self.messages_sent += 1
        if self.trace is not None and cycle >= self._record_from:
            self.trace.records.append(
                TraceRecord(cycle - self._record_from, src, dst, size,
                            msg_type))

    # -- simulation -----------------------------------------------------------

    def run(self, cycles: int, record_trace: bool = False,
            warmup: int = 0) -> "CmpSystem":
        """Advance the CMP by ``cycles`` cycles.

        ``warmup`` cycles at the start run the system without recording
        (caches fill, queues reach steady state).
        """
        if record_trace and self.trace is None:
            self.trace = Trace(self.network.topology.num_terminals,
                               benchmark=self.profile.name)
        self._record_from = self.network.cycle + warmup
        self.network.stats.warmup_cycles = self._record_from
        end = self.network.cycle + cycles
        while self.network.cycle < end:
            self._step_endpoints(self.network.cycle)
            self.network.step()
        return self

    def _step_endpoints(self, cycle: int) -> None:
        for core in self.cores:
            core.tick(self, cycle)
        for bank in self.banks:
            bank.tick(self, cycle)

    # -- reporting ------------------------------------------------------------

    def l1_miss_rate(self) -> float:
        hits = sum(c.l1.hits for c in self.cores)
        misses = sum(c.l1.misses for c in self.cores)
        total = hits + misses
        return misses / total if total else 0.0

    def summary(self) -> dict:
        return {
            "benchmark": self.profile.name,
            "messages": self.messages_sent,
            "l1_miss_rate": self.l1_miss_rate(),
            "mshr_stalls": sum(c.mshrs.stalls for c in self.cores),
            "invals": sum(b.invals_sent for b in self.banks),
            "l2_misses": sum(b.l2_misses for b in self.banks),
            "avg_latency": self.network.stats.avg_latency,
        }
