"""Per-core synthetic address streams driven by a benchmark profile.

A stream produces block-level accesses with controllable:

* word-granularity spatial locality — each 64B block is touched several
  times (mean ``ACCESSES_PER_BLOCK``) before the stream moves on, so
  streaming code still hits in the L1 on all but the first touch;
* block-granularity spatial locality — sequential runs of ``run_len``
  blocks (one home bank per page under S-NUCA page interleaving);
* temporal locality — with probability ``reuse_prob`` the stream revisits
  one of the last ``reuse_window`` blocks;
* sharing — a fraction of accesses lands in a region visited by every core
  (cross-core reuse and invalidation traffic);
* bank skew — Zipf-distributed popularity across L2 banks for SPECjbb-style
  network hotspots.

Address layout: the shared region occupies low block addresses; each core's
private region starts at ``(core_id + 1) * PRIVATE_STRIDE``. The home bank
of a block is ``(block >> interleave_shift) % num_banks``.
"""

from __future__ import annotations

import math
import random

from ..traffic.benchmarks import BenchmarkProfile

PRIVATE_STRIDE = 1 << 24   # blocks between per-core private regions
ACCESSES_PER_BLOCK = 8.0   # mean word-level touches per 64B block


class AddressStream:
    """Deterministic, profile-shaped stream of (block, is_write) accesses."""

    def __init__(self, profile: BenchmarkProfile, core_id: int,
                 num_banks: int, seed: int, interleave_shift: int = 6):
        self.profile = profile
        self.core_id = core_id
        self.num_banks = num_banks
        self.interleave_shift = interleave_shift
        self.rng = random.Random((seed << 8) ^ core_id)
        self._block = -1
        self._block_left = 0   # remaining touches of the current block
        self._run_left = 0     # remaining blocks of the current run
        self._recent: list[int] = []
        self._bank_weights = self._make_bank_weights()

    def _make_bank_weights(self) -> list[float] | None:
        skew = self.profile.bank_skew
        if skew <= 0.0:
            return None
        # Zipf popularity over banks; ranks permuted by a benchmark-level
        # hash so the hot banks are fixed per benchmark, not per core.
        ranks = list(range(self.num_banks))
        random.Random(sum(map(ord, self.profile.name))).shuffle(ranks)
        return [1.0 / (rank + 1) ** skew for rank in ranks]

    # -- address generation ---------------------------------------------------

    def next_access(self) -> tuple[int, bool]:
        """Return (block address, is_write)."""
        rng = self.rng
        is_write = rng.random() >= self.profile.read_frac
        if self._block_left > 0:
            self._block_left -= 1
        elif self._run_left > 0:
            self._run_left -= 1
            self._block += 1
            self._touch_block()
        elif self._recent and rng.random() < self.profile.reuse_prob:
            self._block = rng.choice(self._recent)
            self._touch_block()
        else:
            self._block = self._new_block()
            self._run_left = self._run_blocks()
            self._touch_block()
        self._remember(self._block)
        return self._block, is_write

    def _touch_block(self) -> None:
        self._block_left = rng_geometric(self.rng, ACCESSES_PER_BLOCK) - 1

    def _run_blocks(self) -> int:
        mean = self.profile.run_len
        if mean <= 1.0:
            return 0
        return min(64, rng_geometric(self.rng, mean) - 1)

    def _new_block(self) -> int:
        rng = self.rng
        ws = self.profile.working_set_blocks
        if rng.random() < self.profile.shared_frac:
            return self._shared_block(ws)
        return (self.core_id + 1) * PRIVATE_STRIDE + rng.randrange(ws)

    def _shared_block(self, ws: int) -> int:
        if self._bank_weights is None:
            return self.rng.randrange(ws)
        # Pick a hot bank, then a shared-region block homed at that bank.
        bank = self.rng.choices(range(self.num_banks),
                                weights=self._bank_weights)[0]
        page_blocks = 1 << self.interleave_shift
        pages = max(1, ws // (page_blocks * self.num_banks))
        page = self.rng.randrange(pages)
        offset = self.rng.randrange(page_blocks)
        return ((page * self.num_banks + bank) << self.interleave_shift) \
            + offset

    def _remember(self, block: int) -> None:
        recent = self._recent
        if not recent or recent[-1] != block:
            recent.append(block)
            if len(recent) > self.profile.reuse_window:
                recent.pop(0)

    def home_bank(self, block: int) -> int:
        return (block >> self.interleave_shift) % self.num_banks


def rng_geometric(rng: random.Random, mean: float) -> int:
    """Geometric variate on {1, 2, ...} with the given mean."""
    if mean <= 1.0:
        return 1
    p = 1.0 / mean
    u = rng.random()
    return max(1, int(math.ceil(math.log(1.0 - u) / math.log(1.0 - p))))
