"""Coherence message vocabulary (paper Section V).

Three transaction types: read (L1 read miss), write (write-through store)
and coherence management (invalidations keeping shared copies coherent).
Address-only messages are 1 flit; messages carrying a 64B data block are 5
flits.
"""

from __future__ import annotations

from .config import CmpConfig

READ_REQ = "read_req"      # core -> home bank, address only
READ_RESP = "read_resp"    # bank -> core, address + data block
WRITE_REQ = "write_req"    # core -> home bank, address + store data (word)
WRITE_ACK = "write_ack"    # bank -> core, address only
INVAL = "inval"            # bank -> sharer core, address only
INV_ACK = "inv_ack"        # sharer core -> bank, address only

ALL_TYPES = (READ_REQ, READ_RESP, WRITE_REQ, WRITE_ACK, INVAL, INV_ACK)


def message_flits(msg_type: str, config: CmpConfig) -> int:
    """Packet size in flits for a message type."""
    if msg_type == READ_RESP:
        return config.data_packet_flits
    if msg_type in ALL_TYPES:
        return config.ctrl_packet_flits
    raise ValueError(f"unknown message type {msg_type!r}")
