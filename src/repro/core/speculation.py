"""Pseudo-circuit speculation (paper Section IV.A).

Crossbar connections that are currently unallocated may well be claimed by
near-future flits. Speculation re-establishes, per output port, the pseudo-
circuit that *most recently* used that output, predicting the repetition of
the previous communication. Each output port keeps a history register with
the input port of the most recently terminated pseudo-circuit; conflicts
between several inputs whose registers point at the same output are resolved
in favour of the one the history register names.

Restoration conditions (both required):
* the output port is free — no valid pseudo-circuit and no SA grant is
  using it this cycle, and
* the downstream router is not congested (credits are available), so a
  restored circuit still guarantees credit availability.

A wrong speculation costs nothing: the comparator simply does not match and
the flit arbitrates normally while the speculative circuit is torn down.
"""

from __future__ import annotations

from .pseudo_circuit import PseudoCircuitRegister


class OutputHistory:
    """Per-output-port history register."""

    __slots__ = ("last_input",)

    def __init__(self):
        self.last_input = -1

    def record_termination(self, in_port: int) -> None:
        self.last_input = in_port

    def clear(self) -> None:
        self.last_input = -1


def try_restore(out_port: int, history: OutputHistory,
                pc_registers: list[PseudoCircuitRegister],
                output_is_free: bool, credits_available: bool) -> int | None:
    """Re-establish a speculative pseudo-circuit on ``out_port`` if possible.

    Candidates are the input ports that are free (register invalid) and
    whose stored route still points at ``out_port``. A single candidate is
    restored directly; among several, the history register picks the input
    of the most recently terminated circuit (the paper's conflict-resolution
    rule). Returns the restored input port, or None.
    """
    if not output_is_free or not credits_available:
        return None
    candidates = [i for i, reg in enumerate(pc_registers)
                  if not reg.valid and reg.in_vc >= 0
                  and reg.out_port == out_port]
    if not candidates:
        return None
    if len(candidates) == 1:
        chosen = candidates[0]
    elif history.last_input in candidates:
        chosen = history.last_input
    else:
        return None
    pc_registers[chosen].restore()
    return chosen
