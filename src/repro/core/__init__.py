"""The paper's primary contribution: pseudo-circuit state and policies.

The router (:mod:`repro.network.router`) wires these pieces into its
switch-allocation stage; this package holds the scheme-specific state
machines and pure decision logic so they can be tested in isolation.
"""

from .buffer_bypass import can_bypass
from .pseudo_circuit import PseudoCircuitRegister, Termination
from .speculation import OutputHistory, try_restore

__all__ = [
    "OutputHistory",
    "PseudoCircuitRegister",
    "Termination",
    "can_bypass",
    "try_restore",
]
