"""Pseudo-circuit registers and comparator logic (paper Section III).

A *pseudo-circuit* is a crossbar connection (input port -> output port) left
connected after a flit traversal so that a subsequent flit taking the same
connection can skip switch arbitration (SA). Each input port owns one
pseudo-circuit register holding the most recent arbitration result:

* the input VC that was granted (the comparator's VC mux selects it),
* the output port of the connection,
* a valid bit.

Termination clears only the valid bit; the registers keep their values so
that pseudo-circuit *speculation* can later restore the connection (Section
IV.A). The hardware cost is two small registers, a flag, a mux and one
comparator per input port — 37ps in the authors' 45nm HSPICE analysis, which
fits inside the 250ps ST stage, so reuse costs no extra cycle.
"""

from __future__ import annotations

from enum import Enum


class Termination(Enum):
    """Why a pseudo-circuit was torn down (used by stats and tests)."""

    CONFLICT_OUTPUT = "conflict_output"  # SA gave the output to another input
    CONFLICT_INPUT = "conflict_input"      # this input was granted elsewhere
    ROUTE_MISMATCH = "route_mismatch"      # arriving head wants another output
    NO_CREDIT = "no_credit"                # downstream congestion
    SPECULATION_EVICT = "speculation_evict"


class PseudoCircuitRegister:
    """Per-input-port pseudo-circuit state."""

    __slots__ = ("in_vc", "out_port", "valid")

    def __init__(self):
        self.in_vc = -1
        self.out_port = -1
        self.valid = False

    def establish(self, in_vc: int, out_port: int) -> None:
        """Record the arbitration result of a flit traversal (always done,
        whether the traversal came from SA or from a reuse)."""
        self.in_vc = in_vc
        self.out_port = out_port
        self.valid = True

    def invalidate(self) -> None:
        """Terminate: clear the valid bit, keep register contents."""
        self.valid = False

    def restore(self) -> None:
        """Speculatively revalidate the stored connection (Section IV.A)."""
        if self.out_port < 0 or self.in_vc < 0:
            raise RuntimeError("cannot restore a never-established register")
        self.valid = True

    # -- comparator ----------------------------------------------------------

    def matches_head(self, vc: int, out_port: int) -> bool:
        """Head flits must match both the stored VC and the routing info."""
        return self.valid and self.in_vc == vc and self.out_port == out_port

    def matches_body(self, vc: int) -> bool:
        """Body/tail flits carry no routing info; matching the VC suffices
        (the header already validated the route for this circuit)."""
        return self.valid and self.in_vc == vc

    def conflicts_with_route(self, vc: int, out_port: int) -> bool:
        """A head flit on the circuit's VC that wants a *different* output:
        the comparator mismatch terminates the circuit."""
        return self.valid and self.in_vc == vc and self.out_port != out_port

    def __repr__(self) -> str:
        flag = "valid" if self.valid else "invalid"
        return f"PC(vc={self.in_vc}, out={self.out_port}, {flag})"
