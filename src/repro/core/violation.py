"""Structured invariant violations (shared by flow control and monitors).

``InvariantViolation`` is the one exception type every self-check in the
stack raises: the credit counters in ``network.credits``, the online
monitors in ``repro.monitor``, and the registry's strict mode. It carries
the full location of the failure — (cycle, router, port, vc, and, for
batched runs, the lane) plus the
expected/actual values — so a violation deep inside a 500k-cycle run names
the exact state to inspect instead of a bare message.

This module must stay dependency-free: ``network.credits`` imports it on
the hot path and ``repro.monitor`` re-exports it, so anything heavier here
would create an import cycle through the simulator.
"""

from __future__ import annotations


def _rebuild(cls, rule, message, monitor, cycle, router, port, vc, lane,
             expected, actual):
    return cls(rule, message, monitor=monitor, cycle=cycle, router=router,
               port=port, vc=vc, lane=lane, expected=expected, actual=actual)


class InvariantViolation(RuntimeError):
    """A simulator invariant was violated.

    ``rule`` is a short machine-readable identifier (e.g.
    ``credit_underflow``, ``buffer_occupancy``); the location fields are
    ``None`` when unknown at raise time — call sites that know the cycle
    enrich it on the way out (see ``Router.deliver_credits``).
    """

    def __init__(self, rule: str, message: str = "", *,
                 monitor: str | None = None, cycle: int | None = None,
                 router: int | None = None, port: int | None = None,
                 vc: int | None = None, lane: int | None = None,
                 expected=None, actual=None):
        super().__init__(message)
        self.rule = rule
        self.message = message
        self.monitor = monitor
        self.cycle = cycle
        self.router = router
        self.port = port
        self.vc = vc
        self.lane = lane
        self.expected = expected
        self.actual = actual

    def __reduce__(self):
        # Default exception pickling would re-call __init__ with only the
        # formatted message; rebuild from the raw fields so violations
        # survive the trip back from sweep worker processes.
        return (_rebuild, (type(self), self.rule, self.message,
                           self.monitor, self.cycle, self.router, self.port,
                           self.vc, self.lane, self.expected, self.actual))

    def _context(self) -> str:
        parts = []
        for name in ("cycle", "lane", "router", "port", "vc"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        if self.expected is not None or self.actual is not None:
            parts.append(f"expected={self.expected!r}")
            parts.append(f"actual={self.actual!r}")
        return ", ".join(parts)

    def __str__(self) -> str:
        label = self.rule if self.monitor is None \
            else f"{self.monitor}:{self.rule}"
        text = f"[{label}] {self.message}" if self.message else f"[{label}]"
        context = self._context()
        return f"{text} ({context})" if context else text

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the metrics registry)."""
        return {
            "rule": self.rule,
            "monitor": self.monitor,
            "message": self.message,
            "cycle": self.cycle,
            "router": self.router,
            "port": self.port,
            "vc": self.vc,
            "lane": self.lane,
            "expected": self.expected,
            "actual": self.actual,
        }
