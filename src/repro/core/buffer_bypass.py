"""Buffer bypassing (paper Section IV.B).

Flits traversing a pseudo-circuit would normally still spend one cycle being
written into the input VC buffer. When the pseudo-circuit is already
connected as a flit *arrives*, the flit can instead pass through a bypass
latch straight to the crossbar, removing the buffer-write stage as well
(per-hop router delay 3 -> 1 cycle) and skipping the buffer write+read
energy. Implemented with write-through input buffers: the flit is latched,
and because the buffer pointer never moves the buffer slot is never held —
the credit returns immediately.

``can_bypass`` is the pure eligibility predicate; occupancy of the crossbar
ports and same-cycle SA-request conflicts are checked by the router, which
owns that state.
"""

from __future__ import annotations

from ..network.flit import Flit
from .pseudo_circuit import PseudoCircuitRegister


def can_bypass(reg: PseudoCircuitRegister, flit: Flit, vc: int,
               out_port: int, buffer_empty: bool) -> bool:
    """Is ``flit``, arriving on input VC ``vc`` and routed to ``out_port``,
    allowed to skip the buffer write through the bypass latch?

    Requirements per the paper: the pseudo-circuit must be valid and match
    the flit (VC + routing info for heads, VC only for bodies/tails), and
    the VC buffer must be empty — earlier flits must drain first or flit
    order inside the VC would break.
    """
    if not buffer_empty:
        return False
    if flit.is_head:
        return reg.matches_head(vc, out_port)
    return reg.matches_body(vc)
