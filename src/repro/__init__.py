"""repro — reproduction of "Pseudo-Circuit: Accelerating Communication for
On-Chip Interconnection Networks" (Ahn & Kim, MICRO 2010).

Public API quick tour::

    from repro import (Mesh, NetworkConfig, Network, SyntheticTraffic,
                       PSEUDO_SB)

    topo = Mesh(8, 8)
    net = Network(topo, NetworkConfig(pseudo=PSEUDO_SB),
                  routing="xy", vc_policy="static")
    net.run(10_000, SyntheticTraffic("uniform", topo.num_terminals, 0.1))
    print(net.stats.avg_latency, net.stats.reusability)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure and table.
"""

from .network import (ALL_SCHEMES, BASELINE, PC_SCHEMES, PSEUDO, PSEUDO_B,
                      PSEUDO_S, PSEUDO_SB, Network, NetworkConfig, Packet,
                      PseudoCircuitConfig, build_network)
from .topology import (ConcentratedMesh, FlattenedButterfly, Mecs, Mesh,
                       make_topology)
from .traffic import SyntheticTraffic

__version__ = "1.0.0"

__all__ = [
    "ALL_SCHEMES",
    "BASELINE",
    "ConcentratedMesh",
    "FlattenedButterfly",
    "Mecs",
    "Mesh",
    "Network",
    "NetworkConfig",
    "PC_SCHEMES",
    "PSEUDO",
    "PSEUDO_B",
    "PSEUDO_S",
    "PSEUDO_SB",
    "Packet",
    "PseudoCircuitConfig",
    "SyntheticTraffic",
    "build_network",
    "make_topology",
    "__version__",
]
