"""Per-benchmark workload profiles.

The paper extracts traces from SPEComp2001 (fma3d, equake, mgrid), PARSEC
(blackscholes, streamcluster, swaptions), the NAS Parallel Benchmarks,
SPECjbb, and SPLASH-2 (FFT, LU, radix) running on a 32-core Simics system.
Without that proprietary toolchain we characterize each benchmark by the
properties that shape its on-chip traffic and drive a synthetic address
stream per core (see DESIGN.md §3 for the substitution rationale):

* ``access_rate`` — probability a core issues a memory access per cycle
  (memory intensity; with the L1 filter this sets injection pressure),
* ``read_frac`` — load/store split (stores are write-through and always
  create network traffic),
* ``working_set_blocks`` — per-core footprint (sets the L1 miss rate),
* ``shared_frac`` — fraction of accesses into globally shared data
  (creates invalidation traffic and cross-core reuse),
* ``run_len`` — mean sequential run length (spatial locality),
* ``reuse_prob``/``reuse_window`` — short-term temporal locality,
* ``bank_skew`` — Zipf exponent over L2 banks (SPECjbb's hot banks),
* ``l2_miss_rate`` — probability an L2 bank must fetch from memory.

Values are plausible characterizations chosen to reproduce the *shapes* the
paper reports (self-throttled moderate loads, 20-35% crossbar locality,
jbb's hotspot asymmetry), not measurements of the original binaries.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkProfile:
    name: str
    suite: str
    access_rate: float
    read_frac: float
    working_set_blocks: int
    shared_frac: float
    run_len: float
    reuse_prob: float
    reuse_window: int
    bank_skew: float
    l2_miss_rate: float

    def __post_init__(self):
        if not 0.0 < self.access_rate <= 1.0:
            raise ValueError(f"{self.name}: access_rate out of range")
        if not 0.0 <= self.read_frac <= 1.0:
            raise ValueError(f"{self.name}: read_frac out of range")
        if self.working_set_blocks < 64:
            raise ValueError(f"{self.name}: working set too small")


def _p(name, suite, rate, rd, ws, sh, run, reuse, window, skew, l2m):
    return BenchmarkProfile(name, suite, rate, rd, ws, sh, run, reuse,
                            window, skew, l2m)


#: The paper's benchmark set (Section V). Run lengths reflect each code's
#: streaming behaviour at 64B-block granularity; under 4KB-page S-NUCA
#: interleaving a long run keeps a core's misses on one home bank, which is
#: what produces the request/response burstiness real traces exhibit.
PROFILES: dict[str, BenchmarkProfile] = {p.name: p for p in [
    # SPEComp 2001 — FP codes, large regular footprints, long streams.
    _p("fma3d", "specomp", 0.30, 0.75, 8192, 0.20, 40.0, 0.30, 16, 0.0, 0.05),
    _p("equake", "specomp", 0.32, 0.80, 16384, 0.30, 24.0, 0.35, 16,
       0.0, 0.08),
    _p("mgrid", "specomp", 0.35, 0.85, 32768, 0.15, 56.0, 0.20, 8, 0.0, 0.10),
    # PARSEC — small kernels (blackscholes/swaptions) to streaming
    # (streamcluster).
    _p("blackscholes", "parsec", 0.15, 0.70, 2048, 0.05, 16.0, 0.50, 16,
       0.0, 0.02),
    _p("streamcluster", "parsec", 0.30, 0.90, 16384, 0.50, 40.0, 0.30, 16,
       0.0, 0.08),
    _p("swaptions", "parsec", 0.12, 0.65, 1024, 0.05, 12.0, 0.50, 16,
       0.0, 0.02),
    # NAS Parallel Benchmarks — cg/is are sparse/scatter, mg streams.
    _p("nas_cg", "nas", 0.30, 0.80, 16384, 0.40, 8.0, 0.30, 16, 0.0, 0.08),
    _p("nas_mg", "nas", 0.33, 0.85, 32768, 0.30, 48.0, 0.25, 8, 0.0, 0.10),
    _p("nas_is", "nas", 0.28, 0.60, 16384, 0.35, 6.0, 0.20, 8, 0.0, 0.08),
    # SPECjbb — transactional, skewed bank popularity (network hotspots).
    _p("specjbb", "specjbb", 0.22, 0.75, 32768, 0.25, 8.0, 0.30, 16,
       0.9, 0.10),
    # SPLASH-2.
    _p("fft", "splash2", 0.28, 0.70, 8192, 0.30, 32.0, 0.30, 16, 0.0, 0.05),
    _p("lu", "splash2", 0.30, 0.75, 4096, 0.35, 32.0, 0.40, 16, 0.0, 0.04),
    _p("radix", "splash2", 0.35, 0.60, 16384, 0.40, 4.0, 0.15, 8, 0.0, 0.08),
]}

#: Order used in the paper's per-benchmark bar charts.
BENCHMARKS = tuple(PROFILES)


def get_profile(name: str) -> BenchmarkProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; known: {', '.join(PROFILES)}"
        ) from None
