"""Trace capture and replay (the paper's trace-driven methodology).

A trace is a time-ordered list of injections ``(cycle, src, dst, size,
msg_type)`` extracted from a CMP run. ``TraceReplayTraffic`` feeds a trace
into any network configuration; combined with NIC-level MSHR throttling
(``NetworkConfig(mshrs=4)``) this reproduces the paper's "traces on a
self-throttling CMP network with 4 MSHRs per core" setup. Traces
serialize to a simple text format so extraction and evaluation can be
separate steps.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.flit import Packet


@dataclass(frozen=True)
class TraceRecord:
    cycle: int
    src: int
    dst: int
    size: int
    msg_type: str

    def __post_init__(self):
        if self.cycle < 0 or self.size < 1 or self.src == self.dst:
            raise ValueError(f"malformed trace record {self}")


class Trace:
    """An injection trace plus the terminal count it was captured on."""

    def __init__(self, num_terminals: int, benchmark: str = "",
                 records: list[TraceRecord] | None = None):
        self.num_terminals = num_terminals
        self.benchmark = benchmark
        self.records: list[TraceRecord] = records if records is not None \
            else []

    def __len__(self) -> int:
        return len(self.records)

    @property
    def duration(self) -> int:
        return self.records[-1].cycle + 1 if self.records else 0

    def flits(self) -> int:
        return sum(r.size for r in self.records)

    def offered_load(self) -> float:
        """Average offered load in flits/terminal/cycle."""
        if not self.records:
            return 0.0
        return self.flits() / (self.duration * self.num_terminals)

    def sorted(self) -> "Trace":
        return Trace(self.num_terminals, self.benchmark,
                     sorted(self.records, key=lambda r: r.cycle))

    # -- serialization --------------------------------------------------------

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(f"# repro-trace v1 benchmark={self.benchmark} "
                     f"terminals={self.num_terminals}\n")
            for r in self.records:
                fh.write(f"{r.cycle} {r.src} {r.dst} {r.size} "
                         f"{r.msg_type}\n")

    @classmethod
    def load(cls, path) -> "Trace":
        with open(path, encoding="utf-8") as fh:
            header = fh.readline().strip()
            if not header.startswith("# repro-trace v1"):
                raise ValueError(f"{path}: not a repro trace file")
            meta = dict(field.split("=", 1)
                        for field in header.split()[3:])
            trace = cls(int(meta["terminals"]), meta.get("benchmark", ""))
            for line in fh:
                cycle, src, dst, size, msg_type = line.split()
                trace.records.append(TraceRecord(
                    int(cycle), int(src), int(dst), int(size), msg_type))
        return trace


class TraceReplayTraffic:
    """Replays a trace into a network at the recorded injection times.

    The recorded cycle is an *earliest* injection time: if the network under
    test is slower, packets accumulate in the NIC source queues and the
    NIC-level MSHR limit throttles injection, like the original cores would.
    """

    def __init__(self, trace: Trace, repeat: int = 1):
        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        self.trace = trace.sorted()
        self.repeat = repeat
        self._idx = 0
        self._round = 0
        self._offset = 0
        self.injected = 0

    @property
    def exhausted(self) -> bool:
        return self._round >= self.repeat

    def next_injection_cycle(self, cycle: int) -> int | None:
        """Next cycle at which ``tick`` may inject (fast-forward protocol).

        Returns ``None`` once the trace is exhausted. Always at least
        ``cycle + 1``: callers invoke this after ticking cycle ``cycle``,
        when every record due so far has already been injected.
        """
        if self.exhausted:
            return None
        records = self.trace.records
        if self._idx >= len(records):
            return cycle + 1  # rollover resolves on the next tick
        return max(cycle + 1, records[self._idx].cycle + self._offset)

    def tick(self, network, cycle: int) -> None:
        records = self.trace.records
        while not self.exhausted:
            if self._idx >= len(records):
                self._round += 1
                self._idx = 0
                self._offset = cycle + 1
                continue
            record = records[self._idx]
            when = record.cycle + self._offset
            if when > cycle:
                break
            network.inject(Packet(record.src, record.dst, record.size,
                                  cycle, msg_type=record.msg_type))
            self.injected += 1
            self._idx += 1
