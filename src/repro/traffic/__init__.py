"""Traffic models: synthetic patterns, benchmark profiles, trace replay."""

from .benchmarks import BENCHMARKS, PROFILES, BenchmarkProfile, get_profile
from .synthetic import PAPER_PATTERNS, SyntheticTraffic, destination_function
from .trace import Trace, TraceRecord, TraceReplayTraffic

__all__ = [
    "BENCHMARKS",
    "BenchmarkProfile",
    "PAPER_PATTERNS",
    "PROFILES",
    "SyntheticTraffic",
    "Trace",
    "TraceRecord",
    "TraceReplayTraffic",
    "destination_function",
    "get_profile",
]
