"""Synthetic workload traffic (paper Section VI.B).

The paper evaluates three patterns on an 8x8 mesh with 5-flit packets:

* **uniform random (UR)** — every injection picks a fresh uniformly random
  destination, giving equal utilization of all links;
* **bit complement (BC)** — node ``s`` always sends to ``~s``; longer
  average Manhattan distance, so the network saturates earlier;
* **bit permutation (BP)** — matrix transpose; same average distance as UR
  but all traffic crosses the diagonal, saturating earliest under DOR.

Injection is open-loop Bernoulli: each terminal starts a packet with
probability ``rate / packet_size`` per cycle so that ``rate`` is the offered
load in flits/node/cycle. A few extra classic patterns (tornado, shuffle,
hotspot, neighbor) are provided beyond the paper's set.
"""

from __future__ import annotations

import random

from ..network.flit import Packet


class SyntheticTraffic:
    """Open-loop Bernoulli injection with a fixed destination pattern."""

    def __init__(self, pattern: str, num_terminals: int, rate: float,
                 packet_size: int = 5, seed: int = 42):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0,1] flits/node/cycle: {rate}")
        if num_terminals < 2:
            raise ValueError("need at least two terminals")
        if packet_size < 1:
            raise ValueError("packet_size must be >= 1")
        self.pattern = pattern
        self.num_terminals = num_terminals
        self.rate = rate
        self.packet_size = packet_size
        self.rng = random.Random(seed)
        self._dest_fn = destination_function(pattern, num_terminals)
        self.generated = 0
        # Injections drawn ahead of the tick clock (cycle -> [(src,
        # dst), ...], keys ascending). ``next_injection_cycle``
        # pre-draws future cycles in the exact tick order (cycle-major,
        # terminal-minor), so the injection sequence is bit-identical
        # whether the driver ticks every cycle or fast-forwards over
        # the empty ones.
        self._drawn: dict[int, list] = {}
        self._drawn_until = -1

    def _draw_cycle(self) -> None:
        """Draw the Bernoulli outcomes of the next undrawn cycle."""
        c = self._drawn_until + 1
        prob = self.rate / self.packet_size
        rng = self.rng
        row = None
        for src in range(self.num_terminals):
            if rng.random() >= prob:
                continue
            dst = self._dest_fn(src, rng)
            if dst is None or dst == src:
                continue
            if row is None:
                row = self._drawn[c] = []
            row.append((src, dst))
        self._drawn_until = c

    def tick(self, network, cycle: int) -> None:
        while self._drawn_until < cycle:
            self._draw_cycle()
        row = self._drawn.pop(cycle, None)
        if row is None:
            return
        for src, dst in row:
            network.inject(Packet(src, dst, self.packet_size, cycle))
        self.generated += len(row)

    def next_injection_cycle(self, cycle: int,
                             lookahead: int = 4096) -> int | None:
        """Earliest cycle >= the next pending injection, or ``None``.

        Lets fast-forwarding drivers skip idle stretches at low load
        instead of paying the full per-cycle pipeline for an empty
        chip. The contract is one-sided: the returned cycle is never
        *later* than the true next injection, but may be earlier (the
        ``lookahead`` horizon caps how far ahead outcomes are drawn per
        call; the driver simply asks again from there). ``None`` means
        no injection will ever arrive (rate 0).
        """
        if self.rate == 0.0:
            return None
        while self._drawn_until < cycle:
            self._draw_cycle()
        limit = cycle + lookahead
        while not self._drawn and self._drawn_until < limit:
            self._draw_cycle()
        if self._drawn:
            return next(iter(self._drawn))
        return self._drawn_until + 1


def _bits_for(n: int) -> int:
    bits = (n - 1).bit_length()
    if 1 << bits != n:
        raise ValueError(
            f"bit-based patterns need a power-of-two terminal count, got {n}")
    return bits


def destination_function(pattern: str, num_terminals: int):
    """Return ``f(src, rng) -> dst | None`` for a named pattern."""
    n = num_terminals

    if pattern in ("uniform", "ur", "uniform_random"):
        def uniform(src: int, rng: random.Random) -> int:
            dst = rng.randrange(n - 1)
            return dst if dst < src else dst + 1
        return uniform

    if pattern in ("bitcomp", "bc", "bit_complement"):
        mask = n - 1
        _bits_for(n)
        return lambda src, rng: (~src) & mask

    if pattern in ("transpose", "bp", "bit_permutation"):
        bits = _bits_for(n)
        if bits % 2:
            raise ValueError("transpose needs an even number of id bits")
        half = bits // 2
        lo_mask = (1 << half) - 1

        def transpose(src: int, rng: random.Random) -> int | None:
            dst = ((src & lo_mask) << half) | (src >> half)
            return None if dst == src else dst
        return transpose

    if pattern == "tornado":
        def tornado(src: int, rng: random.Random) -> int:
            return (src + (n // 2 - 1)) % n
        return tornado

    if pattern == "shuffle":
        bits = _bits_for(n)
        mask = n - 1

        def shuffle(src: int, rng: random.Random) -> int | None:
            dst = ((src << 1) | (src >> (bits - 1))) & mask
            return None if dst == src else dst
        return shuffle

    if pattern == "neighbor":
        def neighbor(src: int, rng: random.Random) -> int:
            return (src + 1) % n
        return neighbor

    if pattern == "hotspot":
        # 50% of traffic targets a small set of hot terminals.
        hot = [0, n // 2]

        def hotspot(src: int, rng: random.Random) -> int:
            if rng.random() < 0.5:
                dst = rng.choice(hot)
            else:
                dst = rng.randrange(n)
            return None if dst == src else dst
        return hotspot

    raise ValueError(f"unknown traffic pattern {pattern!r}")


PAPER_PATTERNS = ("uniform", "bitcomp", "transpose")
