"""Mesh with express virtual channels (Kumar et al., ISCA 2007).

EVC lets packets virtually bypass the pipelines of intermediate routers
within one dimension. We model the dynamic-EVC configuration the paper
compares against (l_max = 2): alongside each mesh channel there are express
paths that jump ``span`` routers in one dimension, passing through the
intermediate router's bypass latch. In the model the express path is an
extra channel whose wire latency covers both hops plus the one-cycle latch
(span * link + 1 cycles of occupancy folded into the channel latency), and
whose flits therefore skip the intermediate router's pipeline entirely —
the intermediate crossbar is modeled as contention-free for express flits,
a simplification that, if anything, favours EVC.

Output/input port layout: E,W,N,S normal (0-3), then the express ports
E2,W2,N2,S2 (4-7), then terminals.
"""

from __future__ import annotations

from ..topology.base import Channel, Endpoint
from ..topology.mesh import Mesh

EXPRESS_SPAN = 2  # l_max of the paper's dynamic-EVC configuration


class EvcMesh(Mesh):
    """Mesh augmented with span-2 express channels."""

    name = "evc_mesh"

    def __init__(self, kx: int, ky: int, concentration: int = 1,
                 span: int = EXPRESS_SPAN):
        super().__init__(kx, ky, concentration)
        if span < 2:
            raise ValueError("express span must be >= 2")
        self.span = span

    def num_network_inports(self, router: int) -> int:
        return 8

    def num_network_outports(self, router: int) -> int:
        return 8

    def express_port(self, direction: int) -> int:
        """Express output/input port for a normal direction (0-3)."""
        if not 0 <= direction < 4:
            raise ValueError(f"bad direction {direction}")
        return 4 + direction

    def express_neighbor(self, router: int, direction: int) -> int | None:
        """Router ``span`` hops away in ``direction``, or None at the edge."""
        node = router
        for _ in range(self.span):
            nxt = self.neighbor(node, direction)
            if nxt is None:
                return None
            node = nxt
        return node

    def channels(self) -> list[Channel]:
        out = super().channels()
        for r in range(self.num_routers):
            for d in range(4):
                n = self.express_neighbor(r, d)
                if n is None:
                    continue
                # span wire hops + 1 cycle in the intermediate bypass latch.
                out.append(Channel(
                    src_router=r,
                    src_port=self.express_port(d),
                    endpoints=(Endpoint(
                        router=n,
                        in_port=self.express_port(self.opposite(d)),
                        latency=self.span + 1),)))
        return out
