"""Express Virtual Channels baseline (paper Section VII.B, Fig. 14)."""

from ..network.config import NetworkConfig
from ..network.simulator import Network
from .routing import EvcRouting
from .topology import EXPRESS_SPAN, EvcMesh

__all__ = ["EXPRESS_SPAN", "EvcMesh", "EvcRouting", "build_evc_network"]


def build_evc_network(kx: int, ky: int, concentration: int = 1,
                      config: NetworkConfig | None = None,
                      vc_policy: str = "dynamic", seed: int = 1,
                      span: int = EXPRESS_SPAN) -> Network:
    """An EVC mesh network (always runs the baseline router pipeline)."""
    topo = EvcMesh(kx, ky, concentration, span=span)
    cfg = config if config is not None else NetworkConfig()
    if cfg.pseudo.enabled:
        raise ValueError(
            "the EVC comparison point uses the baseline router; combine "
            "pseudo-circuits with a plain mesh instead (Fig. 14)")
    return Network(topo, cfg, routing=EvcRouting(topo), vc_policy=vc_policy,
                   seed=seed)
