"""Routing and VC partitioning for the EVC mesh.

Dynamic EVC with l_max = 2: whenever at least ``span`` hops remain in the
dimension currently being corrected (XY order), the packet takes the express
channel; otherwise the normal channel. Half of the VCs are reserved as
express VCs (EVCs) — only flits on express channels may use them — and the
other half are the normal VCs (NVCs). This reservation is what the paper
identifies as EVC's weakness on low-diameter topologies: normal traffic is
squeezed into half the VCs while the EVCs sit underused.
"""

from __future__ import annotations

from ..network.flit import Packet
from ..routing.base import RoutingAlgorithm
from ..topology.mesh import EAST, NORTH, SOUTH, WEST
from .topology import EvcMesh


class EvcRouting(RoutingAlgorithm):
    """XY dimension-order routing over normal + express channels."""

    name = "evc_xy"
    num_vc_classes = 2

    def __init__(self, topology: EvcMesh):
        if not isinstance(topology, EvcMesh):
            raise TypeError("EvcRouting requires an EvcMesh topology")
        super().__init__(topology)

    def route(self, router: int, packet: Packet) -> tuple[int, int]:
        topo: EvcMesh = self.topology
        dst_router = topo.terminal_router(packet.dst)
        if router == dst_router:
            return self._eject(packet)
        x, y = topo.coords(router)
        dx, dy = topo.coords(dst_router)
        if dx != x:
            direction = EAST if dx > x else WEST
            remaining = abs(dx - x)
        else:
            direction = NORTH if dy > y else SOUTH
            remaining = abs(dy - y)
        if (remaining >= topo.span
                and topo.express_neighbor(router, direction) is not None):
            return topo.express_port(direction), 0
        return direction, 0

    def vc_limits(self, packet: Packet, num_vcs: int,
                  out_port: int = -1) -> tuple[int, int]:
        if num_vcs < 2:
            raise ValueError("EVC needs at least 2 VCs (one per class)")
        half = num_vcs // 2
        if 4 <= out_port < 8:  # express channel -> express VCs
            return half, num_vcs
        return 0, half         # normal channels, injection, ejection -> NVCs
