"""Render a telemetry stream as a Chrome ``trace_event`` document.

Reuses the PR 3 exporter envelope (``instrument.tracer``), so a sweep's
execution trace opens in Perfetto / ``chrome://tracing`` exactly like a
core-level flit trace — but here the *processes are real*: the
scheduler and each worker get their own track (``pid``), point spans
render as duration slices on them, and scheduler lifecycle events
(retries, degradation, failed attempts) render as instants. Batched
units render as an enclosing slice with their lanes fanned out on
per-lane threads.

Timestamps are wall-clock microseconds relative to the first record of
the sweep (``time_unit`` says so in ``otherData``); point spans are
emitted at completion carrying their duration, so each slice starts at
``t - dur`` — consistent across processes because every emitter stamps
``time.time()``.
"""

from __future__ import annotations

import json

from ..instrument.tracer import chrome_trace_envelope
from .report import latest_sweep

#: Events rendered as instant markers on their emitting process.
_INSTANT_EVENTS = ("retry", "degrade", "point_failed", "point_error",
                   "batch_groups", "dispatch", "worker_store")


def telemetry_chrome_trace(records: list[dict]) -> dict:
    """Build the Chrome trace document for the stream's last sweep."""
    records = latest_sweep(records)
    stamps = [r["t"] for r in records if "t" in r]
    t0 = min(stamps) if stamps else 0.0
    begin = next((r for r in records if r.get("ev") == "sweep_begin"),
                 None)
    scheduler_pid = begin.get("pid") if begin else None

    def us(t: float) -> float:
        return round((t - t0) * 1e6, 1)

    events: list[dict] = []
    named: set = set()

    def track(pid) -> None:
        if pid in named:
            return
        named.add(pid)
        role = "scheduler" if pid == scheduler_pid else "worker"
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": f"{role} {pid}"}})

    for record in records:
        ev = record.get("ev")
        pid = record.get("pid", 0)
        t = record.get("t", t0)
        track(pid)
        if ev == "point":
            dur = float(record.get("dur_s") or 0.0)
            lane = record.get("lane")
            args = {key: value for key, value in record.items()
                    if key not in ("ev", "t", "pid", "sweep")}
            events.append({
                "name": f"point:{record.get('tier')}", "cat": "point",
                "ph": "X", "ts": us(t - dur), "dur": round(dur * 1e6, 1),
                "pid": pid, "tid": (lane + 1) if lane is not None else 0,
                "args": args})
        elif ev == "unit":
            dur = float(record.get("dur_s") or 0.0)
            events.append({
                "name": f"unit[{record.get('lanes')}]", "cat": "unit",
                "ph": "X", "ts": us(t - dur), "dur": round(dur * 1e6, 1),
                "pid": pid, "tid": 0,
                "args": {"lanes": record.get("lanes"),
                         "status": record.get("status")}})
        elif ev == "chunk":
            dur = float(record.get("turnaround_s") or 0.0)
            events.append({
                "name": "chunk", "cat": "dispatch",
                "ph": "X", "ts": us(t - dur), "dur": round(dur * 1e6, 1),
                "pid": pid, "tid": 1,
                "args": {"points": record.get("points")}})
        elif ev == "sweep_end" and begin is not None:
            events.append({
                "name": "sweep", "cat": "sweep",
                "ph": "X", "ts": us(begin.get("t", t0)),
                "dur": round((t - begin.get("t", t0)) * 1e6, 1),
                "pid": pid, "tid": 2,
                "args": {"status": record.get("status"),
                         "completed": record.get("completed"),
                         "points": begin.get("points")}})
        elif ev in _INSTANT_EVENTS:
            args = {key: value for key, value in record.items()
                    if key not in ("ev", "t", "pid", "sweep")}
            events.append({
                "name": ev, "cat": "scheduler", "ph": "i", "s": "t",
                "ts": us(t), "pid": pid, "tid": 0, "args": args})
    return chrome_trace_envelope(
        events, time_unit="wall-clock us from sweep start")


def write_chrome_trace(records: list[dict], path: str) -> str:
    """Write the Chrome trace JSON for ``records``; returns ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(telemetry_chrome_trace(records), fh)
        fh.write("\n")
    return path
