"""Checksummed JSONL telemetry stream: append-only writer, tailing reader.

The stream uses the exact durability discipline of the PR 5 checkpoint
journal (``repro.store.journal``): one JSON object per line, each line
carrying a SHA-256 over its own body, flushed as it is written. A
writer killed mid-append (SIGKILL, OOM) leaves at worst one torn final
line; readers skip lines that fail to parse or fail their checksum and
trust everything before them.

Two things differ from the journal, both because telemetry is *shared*
rather than owned:

* The file is opened in append mode by every writer — POSIX ``O_APPEND``
  makes small single-``write`` lines atomic, so the scheduler process
  and its forked workers interleave whole lines, never torn ones.
* Lines are flushed but not fsync'd per record (a sweep emits a few
  lines per point; fsync each would serialize workers on the disk).
  Flushing hands the bytes to the kernel, which survives the *process*
  being SIGKILLed — the crash contract telemetry needs — just not a
  kernel panic, which is the journal's stronger, costlier guarantee.

:class:`TailReader` is the consuming half: it follows a file that
another process may still be appending to, consuming only complete
(newline-terminated) lines and buffering a trailing partial line until
its newline arrives, so a concurrent reader never misparses a torn
write. It is schema-agnostic via the ``parse`` callback — ``repro top``
uses it to follow checkpoint journals too.
"""

from __future__ import annotations

import json
import os

from ..store.result_store import payload_checksum

#: Line schema tag; bump when the record fields change meaning.
SCHEMA = "repro.telemetry/1"


def parse_telemetry_line(line: str) -> dict | None:
    """Validate one stream line; the record body, or ``None`` if bad.

    Bad means: unparseable JSON (torn line), a different schema tag, or
    a checksum that does not match the body — exactly the journal's
    load discipline. The returned dict is the record *body* (schema and
    checksum envelope stripped).
    """
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict) or record.get("schema") != SCHEMA:
        return None
    body = {key: value for key, value in record.items()
            if key not in ("schema", "sha256")}
    if record.get("sha256") != payload_checksum(body):
        return None
    return body


class TelemetryWriter:
    """Append checksummed records to one stream file, a line at a time.

    The file handle opens lazily in append mode on the first
    :meth:`write` (so constructing a writer is free and multiple
    processes can hold writers on one path), and every line is flushed
    before ``write`` returns — a record either made it to the kernel
    whole or its line is torn and readers will skip it.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._fh = None

    def write(self, record: dict) -> None:
        """Durably append one record (checksum envelope added here)."""
        if self._fh is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        line = {"schema": SCHEMA, "sha256": payload_checksum(record)}
        line.update(record)
        self._fh.write(json.dumps(line, sort_keys=True, default=str) + "\n")
        self._fh.flush()

    def sync(self) -> None:
        """fsync the stream (sweep boundaries want the stronger promise)."""
        if self._fh is not None:
            os.fsync(self._fh.fileno())

    def truncate(self) -> None:
        """Start the stream over (a fresh, non-resumed sweep)."""
        self.close()
        if os.path.exists(self.path):
            os.remove(self.path)

    def close(self) -> None:
        """Close the append handle (safe to call repeatedly)."""
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TelemetryWriter":
        """Context-manager entry: the writer itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the append handle."""
        self.close()


class TailReader:
    """Incrementally follow a stream file another process is appending.

    Each :meth:`poll` reads everything appended since the last poll and
    returns the newly completed, valid records. Only complete
    (newline-terminated) lines are consumed; a trailing partial line is
    buffered until its newline shows up, so following a live writer
    never misparses a torn append. A file that shrinks (truncated and
    restarted by a fresh sweep) resets the reader to the top.

    ``parse`` maps one line to a record or ``None`` (skip); the default
    understands :data:`SCHEMA` lines. Pass a different callback to
    follow other line-oriented formats (``repro top`` follows
    checkpoint journals this way).
    """

    def __init__(self, path: str, parse=parse_telemetry_line):
        self.path = str(path)
        self.parse = parse
        self._offset = 0
        self._partial = b""

    def poll(self) -> list[dict]:
        """Records newly completed since the last poll (maybe empty)."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                if size < self._offset:
                    self._offset, self._partial = 0, b""  # fresh stream
                fh.seek(self._offset)
                data = fh.read()
        except OSError:
            return []  # not created yet (sweep hasn't started)
        self._offset += len(data)
        buffer = self._partial + data
        records: list[dict] = []
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                break
            line, buffer = buffer[:newline], buffer[newline + 1:]
            record = self.parse(line.decode("utf-8", "replace"))
            if record is not None:
                records.append(record)
        self._partial = buffer
        return records


def read_stream(path: str) -> list[dict]:
    """Every valid record currently in a stream file (one-shot read)."""
    return TailReader(path).poll()
