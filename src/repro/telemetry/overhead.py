"""Bench-gate proof that telemetry-off sweeps pay nothing.

Same contract as the PR 3 probe gate (``instrument.overhead``): the
instrumentation must be a null object when disabled. Here that means
the scheduler holds ``telemetry=None`` by default, takes no
telemetry branches on that path, and produces bit-identical results
with telemetry on and off. ``repro bench --gate`` runs this check and
records it in the report's ``overhead_gate.telemetry`` block.
"""

from __future__ import annotations

import inspect
import os
import tempfile
import time

from ..instrument.overhead import OverheadGateError


def _gate_configs():
    """A small, scalar-only sweep the gate can run in milliseconds."""
    from ..harness.experiment import ExperimentConfig
    return [ExperimentConfig(topology="mesh", kx=4, ky=4, concentration=1,
                             routing="xy", vc_policy="static",
                             pattern="uniform", rate=0.1, packet_size=5,
                             synth_cycles=200, synth_warmup=50,
                             backend="scalar", seed=seed)
            for seed in (11, 12, 13, 14)]


def telemetry_cold_check() -> dict:
    """Assert the telemetry-off path is structurally and observably free.

    Three checks, raising :class:`OverheadGateError` on the first
    failure:

    * ``run_experiments`` defaults to ``telemetry=None`` and a
      default-built scheduler holds no emitter (the null-object guard —
      no stream, no spans, no timing calls on the off path);
    * a telemetry-off sweep creates no stream file;
    * the same sweep run with telemetry on returns bit-identical
      results and leaves a stream with one span per point.
    """
    from ..harness import parallel
    from ..harness.experiment import clear_cache
    from .stream import read_stream

    default = inspect.signature(
        parallel.run_experiments).parameters["telemetry"].default
    if default is not None:
        raise OverheadGateError(
            f"run_experiments telemetry default is {default!r}, not None")
    scheduler = parallel._Scheduler(
        [], check=False, store=None, journal=None, resume=False,
        max_attempts=1, backoff_base=0.5, backoff_cap=30.0, timeout=None,
        sleep=time.sleep)
    if scheduler.tel is not None:
        raise OverheadGateError(
            "a default-built scheduler holds a telemetry emitter; the "
            "off path must be a null object")

    configs = _gate_configs()
    clear_cache()
    off = parallel.run_experiments(configs, max_workers=1)
    with tempfile.TemporaryDirectory() as tmp:
        stream_path = os.path.join(tmp, "gate-telemetry.jsonl")
        clear_cache()
        on = parallel.run_experiments(configs, max_workers=1,
                                      telemetry=stream_path)
        records = read_stream(stream_path)
    clear_cache()
    if off != on:
        raise OverheadGateError(
            "telemetry-on sweep results differ from telemetry-off")
    spans = [r for r in records if r.get("ev") == "point"]
    if len(spans) != len(configs):
        raise OverheadGateError(
            f"expected {len(configs)} point spans, stream has "
            f"{len(spans)}")
    return {
        "default_off": True,
        "scheduler_null": True,
        "results_identical": True,
        "points": len(configs),
        "stream_records": len(records),
    }
