"""Fold a telemetry stream into a ``repro.sweep-report/1`` document.

The sweep-report is the execution-layer counterpart of the monitor
suite's metrics documents: one JSON summary per sweep with the metrics
a regression gate should watch — resolution-tier mix, store hit rate
aggregated across *every* process that touched the store, batch
occupancy, retry/backoff totals, scheduler overhead fraction, points
per second. It flows through the same ``repro compare`` machinery as
metrics and bench documents (``monitor/regression.py`` carries
threshold rules for its keys), so a sweep can be gated on "did the
store stop hitting" or "did batching stop filling lanes" exactly like
it is gated on latency.

Built by re-reading the whole stream (the parent process never sees
worker-emitted records in memory), tolerant of in-flight streams: a
report built mid-sweep simply has ``status: "in-flight"`` and the
counts so far. When one file holds several sweeps (resumed runs append)
the *last* sweep's records are summarized.
"""

from __future__ import annotations

import json
import sys

from .stream import read_stream

#: Document schema tag; bump when the summary fields change meaning.
SWEEP_REPORT_SCHEMA = "repro.sweep-report/1"


def report_path(telemetry_path: str) -> str:
    """The sweep-report path written next to a telemetry stream."""
    base = str(telemetry_path)
    if base.endswith(".jsonl"):
        base = base[:-len(".jsonl")]
    return base + ".sweep-report.json"


def latest_sweep(records: list[dict]) -> list[dict]:
    """The records of the last sweep in a stream (resumes append)."""
    begins = [r for r in records if r.get("ev") == "sweep_begin"]
    if not begins:
        return list(records)
    sweep = begins[-1].get("sweep")
    return [r for r in records if r.get("sweep") == sweep]


def _span_accumulators(records):
    """Walk one sweep's records into the raw aggregation state."""
    state = {
        "begin": None, "end": None,
        "points": {},            # idx -> last point span (last wins)
        "errors": [],            # terminal point_error records
        "retries": 0, "backoff_s": 0.0,
        "tiers": {}, "backends": {},
        "units_ok": 0, "unit_lanes": 0, "batch_failures": 0,
        "groups": None, "dispatch": None,
        "chunks": 0, "turnaround_s": 0.0,
        "persist_store_s": 0.0, "persist_journal_s": 0.0,
        "degrades": [],
        "store_by_pid": {},      # pid -> last cumulative counter delta
        "per_worker": {},        # pid -> {points, busy_s}
    }
    for record in records:
        ev = record.get("ev")
        if ev == "sweep_begin":
            state["begin"] = record
        elif ev == "sweep_end":
            state["end"] = record
        elif ev == "point":
            state["points"][record.get("idx")] = record
        elif ev == "point_error":
            state["errors"].append(record)
        elif ev == "retry":
            state["retries"] += 1
            state["backoff_s"] += float(record.get("delay_s") or 0.0)
        elif ev == "unit":
            if record.get("status") == "ok":
                state["units_ok"] += 1
                state["unit_lanes"] += int(record.get("lanes") or 0)
            else:
                state["batch_failures"] += 1
        elif ev == "batch_groups":
            state["groups"] = record
        elif ev == "dispatch":
            state["dispatch"] = record
        elif ev == "chunk":
            state["chunks"] += 1
            state["turnaround_s"] += float(record.get("turnaround_s")
                                           or 0.0)
        elif ev == "degrade":
            state["degrades"].append(record.get("reason"))
        elif ev == "persist":
            state["persist_store_s"] += float(record.get("store_s") or 0.0)
            state["persist_journal_s"] += float(record.get("journal_s")
                                                or 0.0)
        elif ev == "worker_store":
            # Cumulative per process: the last event per pid wins.
            state["store_by_pid"][record.get("pid")] = record.get("stats")
    for span in state["points"].values():
        tier = span.get("tier")
        state["tiers"][tier] = state["tiers"].get(tier, 0) + 1
        backend = span.get("backend")
        if backend:
            state["backends"][backend] = (
                state["backends"].get(backend, 0) + 1)
        pid = span.get("pid")
        worker = state["per_worker"].setdefault(
            pid, {"points": 0, "busy_s": 0.0})
        worker["points"] += 1
        worker["busy_s"] = round(
            worker["busy_s"] + float(span.get("dur_s") or 0.0), 6)
    return state


def build_sweep_report(records: list[dict]) -> dict:
    """Summarize one sweep's telemetry records into the report document.

    ``records`` is a full stream read (``read_stream``); when the file
    holds several sweeps the last one is reported. Works on in-flight
    streams: absent a ``sweep_end`` the status is ``in-flight`` and
    wall-clock is estimated from the record timestamps.
    """
    records = latest_sweep(records)
    state = _span_accumulators(records)
    begin = state["begin"] or {}
    end = state["end"]
    spans = state["points"]
    completed = len(spans)
    total = begin.get("points")

    if end is not None and end.get("wall_s") is not None:
        wall_s = float(end["wall_s"])
    else:
        stamps = [r["t"] for r in records if "t" in r]
        wall_s = round(max(stamps) - min(stamps), 6) if stamps else 0.0
    sim_spans = [s for s in spans.values() if s.get("tier") == "simulate"]
    busy_s = round(sum(float(s.get("dur_s") or 0.0) for s in sim_spans), 6)
    worker_pids = {s.get("pid") for s in sim_spans}
    processes = max(1, len(worker_pids))
    utilization = (busy_s / (processes * wall_s)) if wall_s > 0 else 0.0

    store_totals: dict[str, int] = {}
    for stats in state["store_by_pid"].values():
        if isinstance(stats, dict):
            for key, value in stats.items():
                if isinstance(value, (int, float)):
                    store_totals[key] = (store_totals.get(key, 0)
                                         + int(value))
    looked = store_totals.get("hits", 0) + store_totals.get("misses", 0)

    groups = state["groups"] or {}
    batch_size = begin.get("batch_size")
    multi_units = groups.get("multi_lane_units")
    occupancy = None
    if state["units_ok"] and batch_size:
        occupancy = round(
            state["unit_lanes"] / (state["units_ok"] * batch_size), 4)

    report = {
        "schema": SWEEP_REPORT_SCHEMA,
        "sweep": begin.get("sweep"),
        "status": (end.get("status") if end is not None else "in-flight"),
        "points": total,
        "completed": completed,
        "failed": len(state["errors"]),
        "wall_s": wall_s,
        "points_per_s": (round(completed / wall_s, 3) if wall_s > 0
                         else None),
        "tiers": dict(sorted(state["tiers"].items())),
        "backends": dict(sorted(state["backends"].items())),
        "retries": {
            "scheduled": state["retries"],
            "backoff_s": round(state["backoff_s"], 6),
            "attempts_total": sum(int(s.get("attempts") or 0)
                                  for s in spans.values()),
        },
        "batch": {
            "batch_size": batch_size,
            "units": groups.get("units"),
            "multi_lane_units": multi_units,
            "completed_units": state["units_ok"],
            "lanes": state["unit_lanes"],
            "occupancy": occupancy,
            "batch_failures": state["batch_failures"],
        },
        "scheduler": {
            "workers": begin.get("workers"),
            "worker_processes": processes,
            "busy_s": busy_s,
            "utilization": round(utilization, 4),
            "overhead_fraction": round(max(0.0, 1.0 - utilization), 4),
            "chunks": state["chunks"],
            "dispatch_turnaround_s": round(state["turnaround_s"], 6),
            "persist_store_s": round(state["persist_store_s"], 6),
            "persist_journal_s": round(state["persist_journal_s"], 6),
            "degraded": state["degrades"],
        },
        "errors": [{"idx": e.get("idx"), "label": e.get("label"),
                    "reason": e.get("reason"),
                    "attempts": e.get("attempts")}
                   for e in state["errors"][:8]],
        "per_worker": {str(pid): stats for pid, stats
                       in sorted(state["per_worker"].items(),
                                 key=lambda item: str(item[0]))},
    }
    if end is not None and end.get("error"):
        report["error"] = end["error"]
    if store_totals:
        report["store"] = dict(sorted(store_totals.items()))
        report["store"]["processes"] = len(state["store_by_pid"])
        report["store_hit_rate"] = (round(store_totals.get("hits", 0)
                                          / looked, 4)
                                    if looked else None)
    backends = set(state["backends"])
    if len(backends) == 1:
        report["backend"] = backends.pop()
    return report


def write_sweep_report(telemetry_path: str,
                       out_path: str | None = None) -> str:
    """Read a stream, build its report, write it next door; the path.

    ``out_path`` overrides the default sibling path
    (:func:`report_path`). The caller decides when — the scheduler
    writes one automatically at ``sweep_end`` when telemetry was given
    as a path.
    """
    report = build_sweep_report(read_stream(telemetry_path))
    out = out_path or report_path(telemetry_path)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return out


def try_write_sweep_report(telemetry_path: str) -> str | None:
    """``write_sweep_report`` that must never break the sweep it records.

    Telemetry is observation: a failure to summarize (unwritable
    sibling path, for instance) warns on stderr and returns ``None``
    instead of raising into the scheduler's finally block.
    """
    try:
        return write_sweep_report(telemetry_path)
    except Exception as exc:
        print(f"warning: sweep-report not written for {telemetry_path}: "
              f"{exc}", file=sys.stderr)
        return None
