"""The span/event emitter the sweep scheduler drives.

One :class:`Telemetry` instance belongs to one process. The parent
scheduler opens one against the stream path; forked workers open their
own against the same path (append mode interleaves whole lines).
Every record carries the emitting ``pid``, a wall-clock timestamp ``t``
(``time.time()`` — comparable across the processes of one machine,
unlike ``perf_counter``), and the ``sweep`` id minting the stream's
span tree, so one file can hold several (resumed) sweeps and followers
can attribute every record.

Record vocabulary (the ``ev`` field):

========================  ==================================================
``sweep_begin``           sweep id, point count, workers, batch size, knobs
``point``                 one *closed* span per completed point: idx, label,
                          store key, resolution tier (``journal-replay`` /
                          ``memo`` / ``store`` / ``simulate``), backend
                          chosen and the selector inputs that chose it,
                          attempt count, backoff history, duration
``point_error``           terminal failure of one point (retry budget spent)
``point_failed``          one failed attempt inside a worker (parent retries)
``retry``                 one scheduled retry: attempt number, backoff delay
``unit``                  one batched multi-lane unit: lanes, wall, status
``batch_groups``          how the todo list grouped into execution units
``dispatch``              pool geometry: chunks, chunk size, workers
``chunk``                 one chunk round-trip through the pool (turnaround)
``degrade``               scheduler degradation: pool-unusable /
                          worker-failure / stall-timeout
``persist``               store write-through + journal append walls
``worker_store``          one process's ResultStore counter delta
``sweep_end``             status (ok/error), completed count, total wall
========================  ==================================================

Spans are emitted *closed* (one record at completion, carrying its
duration) rather than as begin/end pairs: the stream stays one line per
fact, a SIGKILL can never strand a half-open span, and the invariant
the CI round-trip asserts — every journaled point has exactly one
closed span — holds by construction because the span is written and
flushed before the point is journaled.
"""

from __future__ import annotations

import itertools
import os
import time

from .stream import TelemetryWriter

_sweep_counter = itertools.count(1)


def new_sweep_id() -> str:
    """Mint a sweep id unique across processes and within this process."""
    return (f"{int(time.time() * 1000):x}-{os.getpid():x}-"
            f"{next(_sweep_counter):x}")


class Telemetry:
    """One process's handle on a telemetry stream: typed emit helpers.

    ``sweep`` names the span tree records belong to; the parent mints
    one (:func:`new_sweep_id`) and hands ``(path, sweep)`` to workers so
    their records join the same tree.
    """

    def __init__(self, path: str, sweep: str | None = None):
        self.writer = TelemetryWriter(path)
        self.path = str(path)
        self.sweep = sweep or new_sweep_id()

    # -- core -------------------------------------------------------------

    def emit(self, ev: str, **fields) -> None:
        """Append one record, stamped with time, pid and sweep id."""
        record = {"ev": ev, "t": round(time.time(), 6),
                  "pid": os.getpid(), "sweep": self.sweep}
        record.update(fields)
        self.writer.write(record)

    # -- typed helpers ----------------------------------------------------

    def point(self, idx: int, config, key: str, tier: str, dur_s: float,
              **fields) -> None:
        """Emit the closed span of one completed point."""
        self.emit("point", idx=idx, label=config.label, key=key, tier=tier,
                  dur_s=round(dur_s, 6), **fields)

    def point_error(self, idx: int, config, reason: str, attempts: int = 1,
                    backoff_s=()) -> None:
        """Emit the terminal failure span of one point (budget spent)."""
        self.emit("point_error", idx=idx, label=config.label, reason=reason,
                  attempts=attempts,
                  backoff_s=[round(delay, 6) for delay in backoff_s])

    # -- lifecycle --------------------------------------------------------

    def truncate(self) -> None:
        """Start the stream file over (fresh, non-resumed sweep)."""
        self.writer.truncate()

    def close(self) -> None:
        """fsync and close the stream handle (safe to call repeatedly)."""
        self.writer.close()

    def __enter__(self) -> "Telemetry":
        """Context-manager entry: the emitter itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the stream handle."""
        self.close()
