"""``repro top``: live progress of an in-flight sweep from its stream.

Follows a telemetry stream (or a PR 5 checkpoint journal) that another
process may still be appending to, and renders a refreshing snapshot:
points/s, resolution-tier mix, backend mix, retry/backoff totals,
per-worker utilization and an ETA. Terminal failures and scheduler
degradation surface immediately — a stalled sweep's stream explains
itself instead of sitting silent.

Reading is strictly passive (``TailReader`` on a read-only handle), so
``repro top`` can watch a sweep owned by any process, and ``--once``
prints a single snapshot — the post-mortem mode for a SIGKILL'd sweep's
leftover stream.
"""

from __future__ import annotations

import json
import time

from ..store import journal as journal_mod
from .report import build_sweep_report, latest_sweep
from .stream import SCHEMA, TailReader, parse_telemetry_line
from .trace_export import write_chrome_trace


def parse_journal_line(line: str) -> dict | None:
    """One checkpoint-journal line as a synthetic progress record.

    Valid journal lines (``store.journal.parse_line`` — the exact
    discipline ``SweepJournal.load`` trusts) map to
    ``{"ev": "journal_point", "key": ...}`` so the same follower
    machinery counts them; everything else is skipped.
    """
    parsed = journal_mod.parse_line(line)
    if parsed is None:
        return None
    return {"ev": "journal_point", "key": parsed[0]}


def sniff_stream_kind(path: str) -> str | None:
    """``"telemetry"``, ``"journal"``, or ``None`` (nothing valid yet).

    Decided by the first parseable line's schema tag, so a follower
    started before the sweep (empty or absent file) keeps sniffing
    until the first record lands.
    """
    try:
        with open(path, "rb") as fh:
            head = fh.read(1 << 16)
    except OSError:
        return None
    for raw in head.split(b"\n"):
        line = raw.decode("utf-8", "replace").strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if not isinstance(record, dict):
            continue
        schema = record.get("schema")
        if schema == SCHEMA:
            return "telemetry"
        if schema == journal_mod.SCHEMA:
            return "journal"
    return None


class SweepProgress:
    """Aggregated live view of one sweep, fed one record at a time.

    Understands both telemetry records and the synthetic
    ``journal_point`` records of journal mode. A fresh ``sweep_begin``
    resets the view (one stream file can hold several sweeps).
    """

    def __init__(self):
        self._reset()
        self.kind = "journal"  # flips on the first telemetry record

    def _reset(self) -> None:
        self.begin = None
        self.end = None
        self.spans: dict = {}
        self.tiers: dict = {}
        self.backends: dict = {}
        self.per_worker: dict = {}
        self.retries = 0
        self.backoff_s = 0.0
        self.failures: list[dict] = []
        self.degrades: list[str] = []
        self.journal_keys: set = set()
        self.first_t = None
        self.last_t = None

    def feed(self, record: dict) -> None:
        """Fold one stream record into the view."""
        ev = record.get("ev")
        if ev == "journal_point":
            self.journal_keys.add(record.get("key"))
            return
        self.kind = "telemetry"
        if ev == "sweep_begin":
            self._reset()
            self.kind = "telemetry"
            self.begin = record
        t = record.get("t")
        if t is not None:
            self.first_t = t if self.first_t is None else self.first_t
            self.last_t = t
        if ev == "sweep_end":
            self.end = record
        elif ev == "point":
            self.spans[record.get("idx")] = record
            tier = record.get("tier")
            self.tiers[tier] = self.tiers.get(tier, 0) + 1
            backend = record.get("backend")
            if backend:
                self.backends[backend] = self.backends.get(backend, 0) + 1
            worker = self.per_worker.setdefault(
                record.get("pid"), {"points": 0, "busy_s": 0.0})
            worker["points"] += 1
            worker["busy_s"] += float(record.get("dur_s") or 0.0)
        elif ev == "point_error":
            self.failures.append(record)
        elif ev == "retry":
            self.retries += 1
            self.backoff_s += float(record.get("delay_s") or 0.0)
        elif ev == "degrade":
            self.degrades.append(str(record.get("reason")))

    # -- derived ----------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether the followed sweep has emitted its terminal record."""
        return self.end is not None

    @property
    def completed(self) -> int:
        """Points resolved so far (spans, or journal lines in journal
        mode)."""
        if self.kind == "journal":
            return len(self.journal_keys)
        return len(self.spans)

    def render(self, now: float | None = None) -> str:
        """The multi-line progress snapshot for the terminal."""
        if self.kind == "journal":
            return (f"journal: {len(self.journal_keys)} points "
                    f"checkpointed (no telemetry stream; totals unknown)")
        begin = self.begin or {}
        total = begin.get("points")
        done = len(self.spans)
        now = time.time() if now is None else now
        start = begin.get("t", self.first_t)
        wall = (self.end.get("t", now) if self.end is not None
                else now) - (start or now)
        wall = max(0.0, wall)
        rate = done / wall if wall > 0 else 0.0
        status = (self.end.get("status") if self.end is not None
                  else "running")
        head = f"sweep {begin.get('sweep', '?')} [{status}]"
        if total:
            head += f" {done}/{total} points ({done / total:.0%})"
        else:
            head += f" {done} points"
        head += f" · {rate:.2f}/s · wall {wall:.1f}s"
        if total and rate > 0 and self.end is None and done < total:
            head += f" · ETA {(total - done) / rate:.1f}s"
        lines = [head]
        if self.tiers:
            mix = " · ".join(f"{tier} {count}" for tier, count
                             in sorted(self.tiers.items()))
            lines.append(f"  tiers: {mix}")
        if self.backends:
            mix = " · ".join(f"{name} {count}" for name, count
                             in sorted(self.backends.items()))
            lines.append(f"  backends: {mix}")
        busy = sum(w["busy_s"] for w in self.per_worker.values())
        procs = max(1, len(self.per_worker))
        util = busy / (procs * wall) if wall > 0 else 0.0
        lines.append(f"  workers: {procs} · busy {busy:.1f}s · "
                     f"utilization {util:.0%} · retries {self.retries} "
                     f"(backoff {self.backoff_s:g}s)")
        for reason in self.degrades:
            lines.append(f"  DEGRADED: {reason}")
        for failure in self.failures[-4:]:
            lines.append(f"  FAILED point {failure.get('idx')} "
                         f"[{failure.get('label')}] after "
                         f"{failure.get('attempts')} attempt(s): "
                         f"{failure.get('reason')}")
        if (self.end is not None and self.end.get("status") == "error"
                and self.end.get("error")):
            lines.append(f"  SWEEP FAILED: {self.end['error']}")
        return "\n".join(lines)


def run_top(path: str, *, once: bool = False, interval: float = 2.0,
            trace_out: str | None = None, report_out: str | None = None,
            out=print, sleep=time.sleep, max_polls: int | None = None)\
        -> int:
    """Follow a telemetry/journal stream; render snapshots until done.

    ``once`` prints a single snapshot of the stream as it stands
    (mid-sweep or post-mortem) and exits. Otherwise the stream is
    re-polled every ``interval`` seconds until the sweep's terminal
    record arrives (``max_polls`` bounds the loop for tests; journal
    streams have no terminal record, so follow mode runs until
    interrupted). ``trace_out``/``report_out`` additionally write the
    Perfetto export and the sweep-report from everything read —
    telemetry streams only. Returns a process exit code.
    """
    kind = sniff_stream_kind(path)
    parse = parse_journal_line if kind == "journal" else \
        parse_telemetry_line
    reader = TailReader(path, parse=parse)
    progress = SweepProgress()
    if kind == "journal":
        progress.kind = "journal"
    records: list[dict] = []
    polls = 0
    while True:
        new = reader.poll()
        records.extend(new)
        for record in new:
            progress.feed(record)
        out(progress.render())
        polls += 1
        if once or progress.finished:
            break
        if max_polls is not None and polls >= max_polls:
            break
        sleep(interval)
    if kind != "journal":
        if trace_out is not None:
            out(f"wrote {write_chrome_trace(records, trace_out)}")
        if report_out is not None:
            report = build_sweep_report(latest_sweep(records))
            with open(report_out, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True,
                          default=str)
                fh.write("\n")
            out(f"wrote {report_out}")
    elif trace_out is not None or report_out is not None:
        out("note: --trace-out/--report-out need a telemetry stream, "
            "not a journal")
    if kind is None:
        out(f"note: no valid records in {path} yet")
    return 0
