"""Harness telemetry: span-structured tracing of sweep execution.

The simulator core became observable in PRs 3/4/8 (probes, monitors,
the per-phase profiler); this package gives the *execution layer* the
same treatment. Every sweep run can emit an append-only JSONL telemetry
stream — the same torn-line-tolerant, checksummed discipline as the
PR 5 checkpoint journal — of structured spans (sweep → batched unit →
point) and scheduler lifecycle events (pool degradation, timeout
stalls, batch-group formation, solo fallback, retries with their
backoff schedule).

Layers on top of the stream:

* :mod:`repro.telemetry.report` — fold a stream into a
  ``repro.sweep-report/1`` summary document that ``repro compare``
  regression-gates on *execution* metrics (store hit rate, batch
  occupancy, scheduler overhead fraction);
* :mod:`repro.telemetry.trace_export` — render the stream as a Chrome
  ``trace_event`` document (workers as tracks; opens in Perfetto next
  to a core-level flit trace);
* :mod:`repro.telemetry.top` — ``repro top``, a live follower that
  tails the stream of an in-flight sweep, possibly owned by another
  process;
* :mod:`repro.telemetry.overhead` — the bench-gate check that
  telemetry-off sweeps pay nothing (null-object contract, same as the
  PR 3 probes).

The scheduler (``repro.harness.parallel``) holds ``telemetry=None`` by
default and emits nothing on that path; pass a path (or a
:class:`Telemetry`) to ``run_experiments`` / ``repro sweep
--telemetry`` to switch the stream on.
"""

from .report import (SWEEP_REPORT_SCHEMA, build_sweep_report, report_path,
                     write_sweep_report)
from .spans import Telemetry, new_sweep_id
from .stream import (SCHEMA, TailReader, TelemetryWriter,
                     parse_telemetry_line, read_stream)
from .top import SweepProgress, run_top
from .trace_export import telemetry_chrome_trace, write_chrome_trace

__all__ = [
    "SCHEMA",
    "SWEEP_REPORT_SCHEMA",
    "SweepProgress",
    "TailReader",
    "Telemetry",
    "TelemetryWriter",
    "build_sweep_report",
    "new_sweep_id",
    "parse_telemetry_line",
    "read_stream",
    "report_path",
    "run_top",
    "telemetry_chrome_trace",
    "write_chrome_trace",
    "write_sweep_report",
]
