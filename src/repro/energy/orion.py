"""Orion-style router energy model (paper Section V, Table II).

The paper uses Orion (Wang et al., MICRO 2002) at 45nm and reports the
per-component energy split of Table II: buffers 23.4%, crossbar 76.22%,
arbiters 0.24% of the energy of one flit hop. We charge per-event energies
chosen to reproduce exactly that breakdown for a baseline flit hop (one
buffer write, one buffer read, one crossbar traversal, one arbitration):

* buffer write / read: 0.98 pJ each (1.96 pJ per hop -> 23.4%)
* crossbar traversal: 6.38 pJ (the value Table II prints -> 76.22%)
* switch arbitration: 0.02 pJ (-> 0.24%)

Pseudo-circuit comparators are ignored, as the paper assumes ("the amount
of energy consumed in pseudo-circuit comparators can be negligible").
Energy drops therefore come from skipped arbitrations (tiny) and, with
buffer bypassing, skipped buffer writes+reads (the real saving) — exactly
the Fig. 11 structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.stats import NetworkStats


@dataclass(frozen=True)
class EnergyModel:
    """Per-event router energies in picojoules."""

    buffer_write_pj: float = 0.98
    buffer_read_pj: float = 0.98
    crossbar_pj: float = 6.38
    arbiter_pj: float = 0.02

    def per_hop_baseline_pj(self) -> float:
        """Energy of one baseline flit hop (write+read+crossbar+arbiter)."""
        return (self.buffer_write_pj + self.buffer_read_pj
                + self.crossbar_pj + self.arbiter_pj)

    def component_breakdown(self) -> dict[str, tuple[float, float]]:
        """Table II: component -> (pJ per flit hop, share of hop energy)."""
        total = self.per_hop_baseline_pj()
        buffer = self.buffer_write_pj + self.buffer_read_pj
        return {
            "buffer": (buffer, buffer / total),
            "crossbar": (self.crossbar_pj, self.crossbar_pj / total),
            "arbiter": (self.arbiter_pj, self.arbiter_pj / total),
        }

    def router_energy(self, stats: NetworkStats) -> dict[str, float]:
        """Total router energy (pJ) from a simulation's event counts."""
        buffer = (stats.buffer_writes * self.buffer_write_pj
                  + stats.buffer_reads * self.buffer_read_pj)
        crossbar = stats.flit_hops * self.crossbar_pj
        arbiter = stats.sa_arbitrations * self.arbiter_pj
        return {
            "buffer": buffer,
            "crossbar": crossbar,
            "arbiter": arbiter,
            "total": buffer + crossbar + arbiter,
        }

    def energy_per_flit_hop(self, stats: NetworkStats) -> float:
        if not stats.flit_hops:
            return 0.0
        return self.router_energy(stats)["total"] / stats.flit_hops


DEFAULT_ENERGY_MODEL = EnergyModel()
