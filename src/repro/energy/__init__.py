"""Router energy accounting (Orion-style, paper Table II / Fig. 11)."""

from .orion import DEFAULT_ENERGY_MODEL, EnergyModel

__all__ = ["DEFAULT_ENERGY_MODEL", "EnergyModel"]
