"""Durable, verifiable execution: result store + sweep checkpoints.

This package gives the harness crash-safe memory (``DESIGN.md`` §11):

* :class:`~repro.store.result_store.ResultStore` — a content-addressed
  on-disk store keyed by ``sha256(config_sha256 : code_version : seed)``,
  with atomic write-rename, checksum-verified reads and quarantine of
  corrupt entries;
* :class:`~repro.store.journal.SweepJournal` — the append-only, torn-line
  tolerant checkpoint file behind ``--resume``;
* :mod:`~repro.store.serialize` — exact (bit-identical) JSON round-trips
  of ``Result`` dataclasses;
* :mod:`~repro.store.cli` — the ``repro store ls|verify|gc|export``
  maintenance commands.

The fault-tolerant scheduler that drives these lives in
``repro.harness.parallel``; ``repro.harness.experiment`` wires the
in-process run memo through a process-wide default store.
"""

from .journal import SweepJournal
from .result_store import (CODE_VERSION, ResultStore, code_version,
                           document_key, key_from_hash, payload_checksum,
                           store_key)
from .serialize import (config_to_payload, payload_to_config,
                        payload_to_result, result_to_payload)

__all__ = [
    "CODE_VERSION",
    "ResultStore",
    "SweepJournal",
    "code_version",
    "config_to_payload",
    "document_key",
    "key_from_hash",
    "payload_checksum",
    "payload_to_config",
    "payload_to_result",
    "result_to_payload",
    "store_key",
]
