"""Append-only sweep checkpoint journal (the ``--resume`` file).

The scheduler journals every completed point *as it lands*: one JSON
line per point, flushed and fsync'd, carrying the point's store key, its
serialized result payload, and a SHA-256 over the payload. A process
killed mid-sweep (SIGKILL, OOM) therefore leaves a journal whose last
line is at worst torn — and ``load`` tolerates exactly that: lines that
fail to parse or fail their checksum are skipped, everything before them
is trusted.

Resume is deterministic because keys are content-addressed (config hash
+ code-version salt + seed): a journaled point is *the* result its
config produces, so merging journal entries with freshly simulated ones
is bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os

from .result_store import payload_checksum

#: Line schema tag; bump when the journal line fields change meaning.
SCHEMA = "repro.sweep-journal/1"


def parse_line(line: str) -> tuple[str, dict] | None:
    """Validate one journal line; ``(key, payload)`` or ``None`` if bad.

    This is the single definition of "a trustworthy journal line" —
    parseable JSON, the right schema tag, a checksum matching the
    payload. ``SweepJournal.load`` applies it to whole files; the
    ``repro top`` follower applies it line-by-line while another
    process is still appending.
    """
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None  # torn or garbled line
    if (not isinstance(record, dict)
            or record.get("schema") != SCHEMA
            or "key" not in record or "payload" not in record):
        return None
    if record.get("sha256") != payload_checksum(record["payload"]):
        return None
    return record["key"], record["payload"]


class SweepJournal:
    """One checkpoint file: append completed points, load them on resume."""

    def __init__(self, path: str):
        self.path = str(path)
        self._fh = None

    def load(self) -> dict[str, dict]:
        """Parse the journal into ``{key: payload}``, skipping bad lines.

        Torn trailing lines (a writer killed mid-append) and lines whose
        checksum does not match their payload are dropped silently — a
        resumed sweep recomputes those points. Duplicate keys keep the
        last occurrence.
        """
        completed: dict[str, dict] = {}
        if not os.path.exists(self.path):
            return completed
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                parsed = parse_line(line)
                if parsed is not None:
                    completed[parsed[0]] = parsed[1]
        return completed

    def append(self, key: str, payload: dict) -> None:
        """Durably append one completed point (flush + fsync)."""
        if self._fh is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        record = {"schema": SCHEMA, "key": key,
                  "sha256": payload_checksum(payload), "payload": payload}
        self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def truncate(self) -> None:
        """Start the journal over (a fresh, non-resumed run)."""
        self.close()
        if os.path.exists(self.path):
            os.remove(self.path)

    def close(self) -> None:
        """Close the append handle (safe to call repeatedly)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        """Context-manager entry: the journal itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the append handle."""
        self.close()
