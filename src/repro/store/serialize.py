"""Exact JSON round-tripping of experiment results for the store.

A stored result must come back *bit-identical* to the ``Result`` the
simulator produced — the resume guarantee of the sweep scheduler and the
cache-hit guarantee of the store both reduce to dataclass equality. JSON
is exact for this payload: python floats survive a dump/load round trip
(``repr`` round-tripping), ints stay ints, and the config dataclasses are
rebuilt field-for-field (including the nested ``PseudoCircuitConfig``).

Checked-run extras never enter the store: ``Result.monitor_report`` is
dropped on serialization because checked runs bypass the cache entirely —
a stored report would misrepresent a replayed run as having been
monitored. The provenance ``manifest`` *is* kept (it describes the run
that actually produced the numbers, which is exactly what a cache hit
replays), and it is excluded from ``Result`` equality anyway.

The harness imports are deferred to call time so the store package can be
imported by ``harness.experiment`` without a cycle.
"""

from __future__ import annotations

from dataclasses import asdict

#: Payload schema tag; bump when the serialized field set changes.
PAYLOAD_SCHEMA = "repro.result-payload/1"

#: Scalar ``Result`` fields copied verbatim into/out of the payload.
_METRIC_FIELDS = (
    "avg_latency", "avg_network_latency", "avg_hops", "reusability",
    "buffer_bypass_rate", "e2e_locality", "xbar_locality", "packets",
    "flit_hops", "energy_pj", "pc_restored",
)


def config_to_payload(config) -> dict:
    """Flatten an ``ExperimentConfig`` to a plain JSON-able dict."""
    return asdict(config)


def payload_to_config(payload: dict):
    """Rebuild an ``ExperimentConfig`` (with its nested scheme) exactly."""
    from ..harness.experiment import ExperimentConfig
    from ..network.config import PseudoCircuitConfig
    fields = dict(payload)
    fields["scheme"] = PseudoCircuitConfig(**fields["scheme"])
    return ExperimentConfig(**fields)


def result_to_payload(result) -> dict:
    """Serialize a ``Result`` to the JSON payload stored on disk."""
    payload = {
        "schema": PAYLOAD_SCHEMA,
        "config": config_to_payload(result.config),
        "energy_breakdown": dict(result.energy_breakdown),
        "manifest": result.manifest,
    }
    for name in _METRIC_FIELDS:
        payload[name] = getattr(result, name)
    return payload


def payload_to_result(payload: dict):
    """Rebuild the ``Result`` a payload was serialized from.

    The returned dataclass is field-equal to the original (bit-identical
    metrics); ``monitor_report`` is always ``None`` because checked runs
    are never stored.
    """
    from ..harness.experiment import Result
    if payload.get("schema") != PAYLOAD_SCHEMA:
        raise ValueError(
            f"unknown result payload schema: {payload.get('schema')!r}")
    metrics = {name: payload[name] for name in _METRIC_FIELDS}
    return Result(
        config=payload_to_config(payload["config"]),
        energy_breakdown=dict(payload["energy_breakdown"]),
        manifest=payload.get("manifest"),
        monitor_report=None,
        **metrics,
    )
