"""The ``python -m repro store`` maintenance subcommand.

Four actions over one store directory (``--dir``, default from the
``REPRO_STORE`` environment variable or ``.repro_store``):

* ``ls`` — list valid entries (key, kind, age, label);
* ``verify`` — checksum every entry, quarantine the bad ones (exit 1 if
  any were found, the CI contract);
* ``gc`` — reclaim stale-salt/expired entries, temp debris, quarantine;
* ``export`` — bundle entries into one portable JSON document.
"""

from __future__ import annotations

import os
import time

from .result_store import ResultStore, code_version


def add_store_parser(sub) -> None:
    """Register the ``store`` subcommand on a subparsers action."""
    store_p = sub.add_parser(
        "store", help="inspect / maintain the content-addressed result "
                      "store (ls, verify, gc, export)")
    store_p.add_argument(
        "--dir", default=os.environ.get("REPRO_STORE", ".repro_store"),
        help="store directory (default: $REPRO_STORE or .repro_store)")
    actions = store_p.add_subparsers(dest="store_command", required=True)
    actions.add_parser("ls", help="list valid entries")
    actions.add_parser(
        "verify", help="checksum every entry, quarantine corrupt ones "
                       "(exit 1 if any)")
    gc_p = actions.add_parser(
        "gc", help="remove stale-salt entries, temp debris and quarantine")
    gc_p.add_argument("--older-than-days", type=float, default=None,
                      help="also remove entries older than this many days")
    export_p = actions.add_parser(
        "export", help="bundle entries into one JSON document")
    export_p.add_argument("bundle", help="output path of the bundle JSON")
    export_p.add_argument("keys", nargs="*",
                          help="restrict to these keys (default: all)")


def cmd_store(args) -> int:
    """Dispatch one ``repro store`` action; returns the exit code."""
    store = ResultStore(args.dir)
    if args.store_command == "ls":
        return _ls(store)
    if args.store_command == "verify":
        return _verify(store)
    if args.store_command == "gc":
        return _gc(store, args.older_than_days)
    return _export(store, args.bundle, args.keys)


def _ls(store: ResultStore) -> int:
    """Print one line per valid entry plus a totals line."""
    entries = store.entries()
    now = time.time()
    for entry in entries:
        age_h = (now - entry["created_unix"]) / 3600.0
        stale = ("" if entry["code_version"] == code_version()
                 else " [stale salt]")
        print(f"{entry['key'][:16]}  {entry['kind']:8s} "
              f"{age_h:8.1f}h  {entry.get('label') or '-'}{stale}")
    print(f"{len(entries)} entries in {store.root}")
    return 0


def _verify(store: ResultStore) -> int:
    """Checksum-verify the whole store; exit 1 when anything was bad."""
    report = store.verify()
    print(f"verified {report['checked']} entries: {report['ok']} ok, "
          f"{len(report['quarantined'])} quarantined")
    for key in report["quarantined"]:
        print(f"  quarantined {key}")
    return 1 if report["quarantined"] else 0


def _gc(store: ResultStore, older_than_days: float | None) -> int:
    """Reclaim space; prints the per-category removal counts."""
    older_than_s = (None if older_than_days is None
                    else older_than_days * 86400.0)
    removed = store.gc(older_than_s=older_than_s)
    print(f"gc: removed {removed['stale_version']} stale-salt, "
          f"{removed['expired']} expired, {removed['tmp']} tmp, "
          f"{removed['quarantine']} quarantined files")
    return 0


def _export(store: ResultStore, bundle: str, keys: list[str]) -> int:
    """Write the export bundle and report how many entries it carries."""
    path = store.export(bundle, keys or None)
    print(f"wrote {path}")
    return 0
