"""Content-addressed on-disk store for experiment results.

Every simulation point is a pure function of its config + seed, so its
result can be cached *durably* under a key derived from the PR 3
provenance hash::

    key = sha256(config_sha256 : code_version : seed)

The code-version salt (:data:`CODE_VERSION`, overridable via the
``REPRO_STORE_SALT`` environment variable) invalidates every entry at
once when the simulator's semantics change — bump it in the same commit
that changes what a config produces. Entries from older salts simply
stop being addressable and are reclaimed by ``gc``.

Durability and trust model:

* **Atomic writes** — payloads are written to a unique temp file and
  ``os.replace``-d into place, so readers (including concurrent writers
  racing on one key) only ever observe complete entries.
* **Verified reads** — every entry embeds a SHA-256 over its canonical
  payload JSON. ``get`` recomputes it on read; a mismatch (truncated
  write after power loss, bit rot, manual tampering) *quarantines* the
  entry — moved aside into ``quarantine/``, never trusted, never
  silently deleted — and reports a miss so the caller recomputes.
* **First writer wins** — ``put`` on an existing key is a no-op; two
  processes computing the same point deterministically produce the same
  payload, so there is nothing to reconcile.

``python -m repro store ls|verify|gc|export`` exposes the maintenance
surface (see ``repro.store.cli``).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time

#: Salt mixed into every store key; bump when simulation semantics change
#: so stale results stop being addressable. ``REPRO_STORE_SALT`` in the
#: environment overrides it (useful to force a cold store in CI).
CODE_VERSION = "pc-sim-1"

#: On-disk entry schema; bump when the envelope fields change meaning.
ENTRY_SCHEMA = "repro.store-entry/1"

#: Bundle schema written by :meth:`ResultStore.export`.
EXPORT_SCHEMA = "repro.store-export/1"


def code_version() -> str:
    """The active code-version salt (env ``REPRO_STORE_SALT`` wins)."""
    return os.environ.get("REPRO_STORE_SALT") or CODE_VERSION


def canonical_json(payload) -> str:
    """The canonical JSON form checksums are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)


def payload_checksum(payload) -> str:
    """SHA-256 hex digest of a payload's canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def key_from_hash(config_sha256: str, seed) -> str:
    """Store key from an already-computed config hash and a seed."""
    text = f"{config_sha256}:{code_version()}:{seed}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def store_key(config) -> str:
    """Store key for a config (dataclass or dict): provenance hash + salt.

    The config hash already covers the seed; it is salted in a second
    time explicitly so the key derivation matches its documented
    definition even for config types that keep the seed elsewhere.
    """
    from ..instrument.provenance import config_dict, config_hash
    cfg = config_dict(config)
    return key_from_hash(config_hash(cfg), cfg.get("seed"))


def document_key(doc) -> str:
    """Store key identifying an arbitrary result/metrics JSON document.

    Documents that carry a run manifest (or are one) get the same
    manifest-derived key their stored result would have; anything else
    falls back to a content hash of the document, which is still a
    stable, content-addressed identity for report headers.
    """
    if isinstance(doc, dict):
        manifest = doc if "config_sha256" in doc else doc.get("manifest")
        if isinstance(manifest, dict) and "config_sha256" in manifest:
            return key_from_hash(manifest["config_sha256"],
                                 manifest.get("seed"))
    return payload_checksum(doc)


class ResultStore:
    """Content-addressed result store rooted at one directory.

    Layout::

        <root>/objects/<key[:2]>/<key>.json   one JSON entry per result
        <root>/tmp/                           in-flight atomic writes
        <root>/quarantine/                    entries that failed checksum

    Thread- and process-safe for concurrent writers: writes are atomic
    renames and first-writer-wins, reads verify checksums. Hit/miss/put
    counters accumulate on :attr:`stats` (per instance, not persisted).
    """

    def __init__(self, root: str):
        self.root = str(root)
        self.objects_dir = os.path.join(self.root, "objects")
        self.tmp_dir = os.path.join(self.root, "tmp")
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        for path in (self.objects_dir, self.tmp_dir, self.quarantine_dir):
            os.makedirs(path, exist_ok=True)
        self.stats = {"hits": 0, "misses": 0, "puts": 0, "redundant": 0,
                      "quarantined": 0}

    # -- paths ------------------------------------------------------------

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.objects_dir, key[:2], key + ".json")

    # -- core API ---------------------------------------------------------

    def put(self, key: str, payload: dict, kind: str = "result",
            label: str | None = None) -> str:
        """Store ``payload`` under ``key``; returns the entry path.

        First writer wins: if the entry already exists the write is
        skipped (counted under ``stats['redundant']``) — identical keys
        imply identical payloads by construction.
        """
        path = self._entry_path(key)
        if os.path.exists(path):
            self.stats["redundant"] += 1
            return path
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": key,
            "kind": kind,
            "label": label,
            "code_version": code_version(),
            "created_unix": int(time.time()),
            "payload_sha256": payload_checksum(payload),
            "payload": payload,
        }
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = os.path.join(
            self.tmp_dir,
            f"{key}.{os.getpid()}.{threading.get_ident()}.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True, default=str)
            fh.write("\n")
        os.replace(tmp, path)
        self.stats["puts"] += 1
        return path

    def get(self, key: str) -> dict | None:
        """Fetch the payload stored under ``key``, verifying its checksum.

        Returns ``None`` on a miss *and* on corruption — a corrupt entry
        is moved to ``quarantine/`` (never trusted, never deleted) so
        the caller transparently recomputes.
        """
        path = self._entry_path(key)
        entry = self._load_entry(path, expected_key=key)
        if entry is None:
            if os.path.exists(path):
                self._quarantine(path)
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return entry["payload"]

    def __contains__(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` (checksum unverified)."""
        return os.path.exists(self._entry_path(key))

    def _load_entry(self, path: str, expected_key: str | None = None):
        """Parse + validate one entry file; ``None`` if absent or bad."""
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != ENTRY_SCHEMA:
            return None
        if expected_key is not None and entry.get("key") != expected_key:
            return None
        if entry.get("payload_sha256") != payload_checksum(
                entry.get("payload")):
            return None
        return entry

    def _quarantine(self, path: str) -> str:
        """Move a bad entry file aside; returns its quarantine path."""
        target = os.path.join(self.quarantine_dir, os.path.basename(path))
        try:
            os.replace(path, target)
        except OSError:
            pass  # racing reader already moved it
        self.stats["quarantined"] += 1
        return target

    # -- maintenance ------------------------------------------------------

    def keys(self) -> list[str]:
        """Every key with an entry file, sorted (checksums unverified)."""
        out = []
        for shard in sorted(os.listdir(self.objects_dir)):
            shard_dir = os.path.join(self.objects_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            out.extend(name[:-5] for name in sorted(os.listdir(shard_dir))
                       if name.endswith(".json"))
        return out

    def entries(self) -> list[dict]:
        """Envelope metadata (no payload) of every *valid* entry."""
        out = []
        for key in self.keys():
            entry = self._load_entry(self._entry_path(key), expected_key=key)
            if entry is not None:
                meta = {k: v for k, v in entry.items() if k != "payload"}
                out.append(meta)
        return out

    def verify(self) -> dict:
        """Checksum every entry; quarantine the bad ones.

        Returns ``{"checked", "ok", "quarantined": [keys]}`` — the
        maintenance counterpart of the per-read verification ``get``
        already performs.
        """
        quarantined = []
        checked = 0
        for key in self.keys():
            checked += 1
            path = self._entry_path(key)
            if self._load_entry(path, expected_key=key) is None:
                self._quarantine(path)
                quarantined.append(key)
        return {"checked": checked, "ok": checked - len(quarantined),
                "quarantined": quarantined}

    def gc(self, older_than_s: float | None = None,
           now: float | None = None) -> dict:
        """Reclaim space: stale salts, expired entries, debris.

        Removes entries whose ``code_version`` no longer matches the
        active salt (they can never be addressed again), entries older
        than ``older_than_s`` when given, leftover temp files, and
        quarantined files (already both distrusted and preserved long
        enough to have been inspected). Returns removal counts.
        """
        now = time.time() if now is None else now
        removed = {"stale_version": 0, "expired": 0, "tmp": 0,
                   "quarantine": 0}
        for key in self.keys():
            path = self._entry_path(key)
            entry = self._load_entry(path, expected_key=key)
            if entry is None:
                continue  # verify()'s job, not gc's
            if entry["code_version"] != code_version():
                os.remove(path)
                removed["stale_version"] += 1
            elif (older_than_s is not None
                  and now - entry["created_unix"] > older_than_s):
                os.remove(path)
                removed["expired"] += 1
        for name in os.listdir(self.tmp_dir):
            os.remove(os.path.join(self.tmp_dir, name))
            removed["tmp"] += 1
        for name in os.listdir(self.quarantine_dir):
            os.remove(os.path.join(self.quarantine_dir, name))
            removed["quarantine"] += 1
        return removed

    def export(self, out_path: str, keys: list[str] | None = None) -> str:
        """Bundle entries into one portable JSON document at ``out_path``.

        Only checksum-valid entries are exported; ``keys`` restricts the
        bundle (default: everything).
        """
        wanted = self.keys() if not keys else keys
        entries = []
        for key in wanted:
            entry = self._load_entry(self._entry_path(key), expected_key=key)
            if entry is not None:
                entries.append(entry)
        bundle = {"schema": EXPORT_SCHEMA, "code_version": code_version(),
                  "entry_count": len(entries), "entries": entries}
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(bundle, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        return out_path

    # -- introspection ----------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the per-instance hit/miss/put counters."""
        for key in self.stats:
            self.stats[key] = 0

    def stats_dict(self) -> dict:
        """Counter snapshot plus the store directory, for metrics docs."""
        return {"dir": self.root, **self.stats}

    def stats_delta(self, baseline: dict) -> dict:
        """Counter movement since a ``dict(store.stats)`` snapshot.

        Forked sweep workers inherit the parent's counter values, so a
        worker's own store traffic is its current counters minus the
        snapshot taken when the worker first ran — the quantity harness
        telemetry aggregates across processes into the sweep-report.
        """
        return {key: self.stats[key] - baseline.get(key, 0)
                for key in self.stats}
