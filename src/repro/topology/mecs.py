"""Multidrop Express Cube (MECS) topology (Grot et al., HPCA 2009).

Like the flattened butterfly, every router can reach every router in its row
and column in one network hop — but through *multidrop* channels: a router
drives only four output channels (one per direction), and each channel passes
every router in that direction, any of which can be the drop point. This
keeps crossbar complexity low (4 network output ports) while input taps grow
with the row/column length, exactly the "no replicated channels" MECS
configuration the paper evaluates.

Output ports: E=0, W=1, N=2, S=3. Input ports: one tap per possible source
router, ordered row peers by x then column peers by y (same layout as the
flattened butterfly input side).
"""

from __future__ import annotations

from .base import Channel, Endpoint, GridTopology

EAST, WEST, NORTH, SOUTH = 0, 1, 2, 3


class Mecs(GridTopology):
    name = "mecs"

    def __init__(self, kx: int, ky: int, concentration: int = 4):
        super().__init__(kx, ky, concentration)

    def num_network_inports(self, router: int) -> int:
        return (self.kx - 1) + (self.ky - 1)

    def num_network_outports(self, router: int) -> int:
        return 4

    def inport_from(self, router: int, source: int) -> int:
        """Input tap of ``router`` fed by the channel from ``source``."""
        x, y = self.coords(router)
        sx, sy = self.coords(source)
        if sy == y and sx != x:
            return sx if sx < x else sx - 1
        if sx == x and sy != y:
            base = self.kx - 1
            return base + (sy if sy < y else sy - 1)
        raise ValueError(
            f"router {source} cannot reach {router} on one channel")

    def drops(self, router: int, direction: int) -> list[int]:
        """Routers reachable on ``router``'s channel in ``direction``,
        nearest first (drop index 0 is the adjacent router)."""
        x, y = self.coords(router)
        if direction == EAST:
            return [self.router_at(i, y) for i in range(x + 1, self.kx)]
        if direction == WEST:
            return [self.router_at(i, y) for i in range(x - 1, -1, -1)]
        if direction == NORTH:
            return [self.router_at(x, j) for j in range(y + 1, self.ky)]
        if direction == SOUTH:
            return [self.router_at(x, j) for j in range(y - 1, -1, -1)]
        raise ValueError(f"bad direction {direction}")

    def channels(self) -> list[Channel]:
        out = []
        for r in range(self.num_routers):
            for d in range(4):
                drops = self.drops(r, d)
                if not drops:
                    continue
                endpoints = tuple(
                    Endpoint(router=t, in_port=self.inport_from(t, r),
                             latency=i + 1)
                    for i, t in enumerate(drops))
                out.append(Channel(src_router=r, src_port=d,
                                   endpoints=endpoints))
        return out

    def min_hops(self, src_router: int, dst_router: int) -> int:
        sx, sy = self.coords(src_router)
        dx, dy = self.coords(dst_router)
        return (sx != dx) + (sy != dy)
