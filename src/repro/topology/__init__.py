"""Topologies for the on-chip network (paper Sections V and VII.A)."""

from .base import Channel, Endpoint, GridTopology, Topology
from .fbfly import FlattenedButterfly
from .mecs import Mecs
from .mesh import ConcentratedMesh, Mesh

__all__ = [
    "Channel",
    "ConcentratedMesh",
    "Endpoint",
    "FlattenedButterfly",
    "GridTopology",
    "Mecs",
    "Mesh",
    "Topology",
    "make_topology",
]


def make_topology(name: str, kx: int, ky: int,
                  concentration: int = 1) -> Topology:
    """Factory keyed by topology name ('mesh'|'cmesh'|'fbfly'|'mecs')."""
    if name == "mesh":
        return Mesh(kx, ky, concentration)
    if name == "cmesh":
        return ConcentratedMesh(kx, ky, concentration)
    if name == "fbfly":
        return FlattenedButterfly(kx, ky, concentration)
    if name == "mecs":
        return Mecs(kx, ky, concentration)
    raise ValueError(f"unknown topology {name!r}")
