"""Topologies for the on-chip network (paper Sections V and VII.A).

``TOPOLOGY_REGISTRY`` is the machine-readable catalogue behind
docs/TOPOLOGIES.md: every constructible topology name with its CLI
constructor flags and routing/backend support matrix. The drift test in
tests/docs/test_topologies_doc.py walks it, so adding a topology here
without documenting it (or vice versa) fails CI.
"""

from dataclasses import dataclass

from .base import Channel, Endpoint, GridTopology, Topology
from .chiplet import ChipletTopology
from .fbfly import FlattenedButterfly
from .hetero import HeterogeneousTopology, OutChannel
from .kite import KiteMesh
from .mecs import Mecs
from .mesh import ConcentratedMesh, Mesh

__all__ = [
    "Channel",
    "ChipletTopology",
    "ConcentratedMesh",
    "Endpoint",
    "FlattenedButterfly",
    "GridTopology",
    "HeterogeneousTopology",
    "KiteMesh",
    "Mecs",
    "Mesh",
    "OutChannel",
    "TOPOLOGY_REGISTRY",
    "Topology",
    "TopologyInfo",
    "make_topology",
]


@dataclass(frozen=True)
class TopologyInfo:
    """Registry entry: how a topology is built and what supports it."""

    name: str
    summary: str
    #: CLI flags that parameterize the constructor.
    flags: tuple[str, ...]
    #: Routing algorithm names (make_routing) that accept the topology.
    routings: tuple[str, ...]
    #: Backends (network cores) that accept it with a tabulable routing.
    backends: tuple[str, ...]
    #: True when channels reach several routers (vectorized core refuses).
    multidrop: bool = False


_GRID_FLAGS = ("--kx", "--ky", "--concentration")
_ALL_BACKENDS = ("scalar", "vectorized", "batched")

TOPOLOGY_REGISTRY: dict[str, TopologyInfo] = {
    info.name: info for info in (
        TopologyInfo(
            name="mesh",
            summary="kx x ky 2D mesh, one terminal block per router",
            flags=_GRID_FLAGS,
            routings=("xy", "yx", "o1turn"),
            backends=_ALL_BACKENDS,
        ),
        TopologyInfo(
            name="cmesh",
            summary="concentrated mesh: mesh wiring, >1 terminal per router",
            flags=_GRID_FLAGS,
            routings=("xy", "yx", "o1turn"),
            backends=_ALL_BACKENDS,
        ),
        TopologyInfo(
            name="fbfly",
            summary="flattened butterfly: full row/column express links",
            flags=_GRID_FLAGS,
            routings=("xy", "yx", "o1turn"),
            backends=_ALL_BACKENDS,
        ),
        TopologyInfo(
            name="mecs",
            summary="multidrop express cubes: one multidrop channel per "
                    "direction",
            flags=_GRID_FLAGS,
            routings=("xy", "yx", "o1turn"),
            backends=("scalar",),
            multidrop=True,
        ),
        TopologyInfo(
            name="chiplet",
            summary="K kx x ky mesh chiplets around a central IO die, slow "
                    "boundary links",
            flags=_GRID_FLAGS + ("--chiplets", "--chiplet-link-latency"),
            routings=("weighted",),
            backends=_ALL_BACKENDS,
        ),
        TopologyInfo(
            name="kite",
            summary="gem5 Kite-style irregular mesh with skip-2 express "
                    "channels",
            flags=_GRID_FLAGS,
            routings=("weighted",),
            backends=_ALL_BACKENDS,
        ),
    )
}


def make_topology(name: str, kx: int, ky: int, concentration: int = 1,
                  *, chiplets: int = 4,
                  chiplet_link_latency: int = 4) -> Topology:
    """Factory keyed by topology name (see ``TOPOLOGY_REGISTRY``)."""
    if name == "mesh":
        return Mesh(kx, ky, concentration)
    if name == "cmesh":
        return ConcentratedMesh(kx, ky, concentration)
    if name == "fbfly":
        return FlattenedButterfly(kx, ky, concentration)
    if name == "mecs":
        return Mecs(kx, ky, concentration)
    if name == "chiplet":
        return ChipletTopology(kx, ky, concentration, chiplets=chiplets,
                               chiplet_link_latency=chiplet_link_latency)
    if name == "kite":
        return KiteMesh(kx, ky, concentration)
    raise ValueError(f"unknown topology {name!r}")
