"""2D mesh and concentrated mesh topologies.

Directional ports use the fixed order E=0, W=1, N=2, S=3 ("north" is +y).
Edge routers still have four network ports; ports without a channel are
simply never selected by routing. The concentrated mesh (Balfour & Dally,
2006) attaches ``concentration`` terminals per router; the paper's CMP uses
a 4x4 cmesh with 2 cores + 2 L2 banks per router.
"""

from __future__ import annotations

from .base import Channel, Endpoint, GridTopology

EAST, WEST, NORTH, SOUTH = 0, 1, 2, 3
DIRECTION_NAMES = ("E", "W", "N", "S")


class Mesh(GridTopology):
    """kx-by-ky 2D mesh with ``concentration`` terminals per router."""

    name = "mesh"

    def __init__(self, kx: int, ky: int, concentration: int = 1):
        super().__init__(kx, ky, concentration)

    def num_network_inports(self, router: int) -> int:
        return 4

    def num_network_outports(self, router: int) -> int:
        return 4

    def neighbor(self, router: int, direction: int) -> int | None:
        """Adjacent router in ``direction`` or None at the mesh edge."""
        x, y = self.coords(router)
        if direction == EAST:
            return self.router_at(x + 1, y) if x + 1 < self.kx else None
        if direction == WEST:
            return self.router_at(x - 1, y) if x - 1 >= 0 else None
        if direction == NORTH:
            return self.router_at(x, y + 1) if y + 1 < self.ky else None
        if direction == SOUTH:
            return self.router_at(x, y - 1) if y - 1 >= 0 else None
        raise ValueError(f"bad direction {direction}")

    @staticmethod
    def opposite(direction: int) -> int:
        return {EAST: WEST, WEST: EAST, NORTH: SOUTH, SOUTH: NORTH}[direction]

    def channels(self) -> list[Channel]:
        out = []
        for r in range(self.num_routers):
            for d in range(4):
                n = self.neighbor(r, d)
                if n is None:
                    continue
                # A flit leaving r toward d arrives at n on the port facing r.
                out.append(Channel(
                    src_router=r, src_port=d,
                    endpoints=(Endpoint(router=n,
                                        in_port=self.opposite(d),
                                        latency=1),)))
        return out

    def min_hops(self, src_router: int, dst_router: int) -> int:
        sx, sy = self.coords(src_router)
        dx, dy = self.coords(dst_router)
        return abs(sx - dx) + abs(sy - dy)


class ConcentratedMesh(Mesh):
    """Mesh with >1 terminals per router (paper: 4x4, concentration 4)."""

    name = "cmesh"

    def __init__(self, kx: int, ky: int, concentration: int = 4):
        if concentration < 2:
            raise ValueError(
                "a concentrated mesh needs concentration >= 2; use Mesh")
        super().__init__(kx, ky, concentration)
