"""Heterogeneous topology base: an explicit router graph with per-channel
latency and weight.

Regular topologies (mesh, cmesh, fbfly, mecs) derive their channel lists
from closed-form grid math. Chiplet systems and gem5-style irregular
meshes cannot: their link set is an explicit graph where every channel
carries its own wire latency (the ``Endpoint.latency`` seam the scalar
and vectorized cores already honour per channel) and its own routing
*weight* (the gem5 link-class notion that weight-ordered routing
minimizes over).

``HeterogeneousTopology`` holds that graph. Channels are registered with
:meth:`add_channel`; the output port on the source router and the input
port on the destination router are assigned in registration order, so
the port numbering of a concrete subclass is exactly its construction
order (documented per topology in docs/TOPOLOGIES.md). All channels are
point-to-point — multidrop stays a MECS-only concept.

Subclasses that need deadlock-avoidance VC classes (chiplet separates
intra-die from cross-die traffic) override ``num_route_classes`` and
:meth:`route_class`; weight-ordered routing maps route classes onto
``packet.route_choice`` and disjoint VC windows, mirroring O1TURN.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Channel, Endpoint, Topology


@dataclass(frozen=True)
class OutChannel:
    """One outgoing point-to-point channel of a router."""

    src_port: int
    dst_router: int
    dst_port: int
    latency: int
    weight: int


class HeterogeneousTopology(Topology):
    """Arbitrary directed router graph with per-channel latency/weight."""

    name = "hetero"
    #: Deadlock-avoidance classes weight-ordered routing must separate
    #: (1 = a single VC window spanning all VCs).
    num_route_classes = 1

    def __init__(self, num_routers: int, concentration: int = 1):
        if num_routers < 1:
            raise ValueError("need at least one router")
        if concentration < 1:
            raise ValueError("concentration must be >= 1")
        self._num_routers = num_routers
        self._concentration = concentration
        self._out: list[list[OutChannel]] = [[] for _ in range(num_routers)]
        self._in_count = [0] * num_routers
        self._hops_cache: dict[int, list[int]] = {}

    # -- construction --------------------------------------------------------

    def add_channel(self, src: int, dst: int, *, latency: int = 1,
                    weight: int = 1) -> OutChannel:
        """Register a unidirectional channel ``src -> dst``.

        Returns the :class:`OutChannel` record carrying the assigned
        ports. Latency is the wire delay in cycles; weight is the
        routing cost weight-ordered routing minimizes.
        """
        for router in (src, dst):
            if not 0 <= router < self._num_routers:
                raise ValueError(f"router {router} out of range "
                                 f"(<{self._num_routers})")
        if src == dst:
            raise ValueError("self-channels are not allowed")
        if latency < 1:
            raise ValueError("channel latency must be >= 1")
        if weight < 1:
            raise ValueError("channel weight must be >= 1")
        chan = OutChannel(src_port=len(self._out[src]), dst_router=dst,
                          dst_port=self._in_count[dst], latency=latency,
                          weight=weight)
        self._out[src].append(chan)
        self._in_count[dst] += 1
        self._hops_cache.clear()
        return chan

    def add_duplex(self, a: int, b: int, *, latency: int = 1,
                   weight: int = 1) -> tuple[OutChannel, OutChannel]:
        """Register the channel pair ``a -> b`` and ``b -> a``."""
        return (self.add_channel(a, b, latency=latency, weight=weight),
                self.add_channel(b, a, latency=latency, weight=weight))

    # -- sizes ---------------------------------------------------------------

    @property
    def num_routers(self) -> int:
        return self._num_routers

    @property
    def concentration(self) -> int:
        return self._concentration

    def num_network_inports(self, router: int) -> int:
        return self._in_count[router]

    def num_network_outports(self, router: int) -> int:
        return len(self._out[router])

    # -- channels ------------------------------------------------------------

    def channels(self) -> list[Channel]:
        return [Channel(src_router=r, src_port=c.src_port,
                        endpoints=(Endpoint(router=c.dst_router,
                                            in_port=c.dst_port,
                                            latency=c.latency),))
                for r in range(self._num_routers)
                for c in self._out[r]]

    def out_channels(self, router: int) -> list[OutChannel]:
        """Outgoing channels of ``router`` in output-port order."""
        if not 0 <= router < self._num_routers:
            raise ValueError(f"router {router} out of range")
        return list(self._out[router])

    def link_weight(self, router: int, out_port: int) -> int:
        """Routing weight of the channel behind ``(router, out_port)``."""
        return self._out[router][out_port].weight

    # -- routing hooks -------------------------------------------------------

    def route_class(self, src_router: int, dst_router: int) -> int:
        """Deadlock-avoidance class of traffic ``src_router -> dst_router``
        (always < ``num_route_classes``)."""
        return 0

    # -- distances -----------------------------------------------------------

    def min_hops(self, src_router: int, dst_router: int) -> int:
        for router in (src_router, dst_router):
            if not 0 <= router < self._num_routers:
                raise ValueError(f"router {router} out of range")
        hops = self._hops_cache.get(src_router)
        if hops is None:
            hops = self._bfs(src_router)
            self._hops_cache[src_router] = hops
        h = hops[dst_router]
        if h < 0:
            raise ValueError(f"router {dst_router} unreachable from "
                             f"{src_router}")
        return h

    def _bfs(self, src: int) -> list[int]:
        hops = [-1] * self._num_routers
        hops[src] = 0
        frontier = [src]
        while frontier:
            nxt = []
            for r in frontier:
                for c in self._out[r]:
                    if hops[c.dst_router] < 0:
                        hops[c.dst_router] = hops[r] + 1
                        nxt.append(c.dst_router)
            frontier = nxt
        return hops
