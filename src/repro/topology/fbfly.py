"""Flattened butterfly topology (Kim, Balfour & Dally, MICRO 2007).

Every router connects directly to every other router in its row and in its
column, so any destination is at most 2 network hops away (one per
dimension). Network port layout per router: first the row peers in
increasing x (excluding self), then the column peers in increasing y.
Express channel wire latency scales with the grid distance spanned.
"""

from __future__ import annotations

from .base import Channel, Endpoint, GridTopology


class FlattenedButterfly(GridTopology):
    name = "fbfly"

    def __init__(self, kx: int, ky: int, concentration: int = 4):
        super().__init__(kx, ky, concentration)

    def num_network_inports(self, router: int) -> int:
        return (self.kx - 1) + (self.ky - 1)

    def num_network_outports(self, router: int) -> int:
        return (self.kx - 1) + (self.ky - 1)

    def port_to(self, router: int, other: int) -> int:
        """Network port of ``router`` on the channel to/from ``other``.

        Symmetric: the same index serves the outgoing channel toward
        ``other`` and the incoming channel from ``other``.
        """
        x, y = self.coords(router)
        ox, oy = self.coords(other)
        if oy == y and ox != x:
            return ox if ox < x else ox - 1
        if ox == x and oy != y:
            base = self.kx - 1
            return base + (oy if oy < y else oy - 1)
        raise ValueError(
            f"routers {router} and {other} are not directly connected")

    def row_peers(self, router: int) -> list[int]:
        x, y = self.coords(router)
        return [self.router_at(i, y) for i in range(self.kx) if i != x]

    def col_peers(self, router: int) -> list[int]:
        x, y = self.coords(router)
        return [self.router_at(x, j) for j in range(self.ky) if j != y]

    def channels(self) -> list[Channel]:
        out = []
        for r in range(self.num_routers):
            rx, ry = self.coords(r)
            for peer in self.row_peers(r) + self.col_peers(r):
                px, py = self.coords(peer)
                dist = abs(px - rx) + abs(py - ry)
                out.append(Channel(
                    src_router=r,
                    src_port=self.port_to(r, peer),
                    endpoints=(Endpoint(router=peer,
                                        in_port=self.port_to(peer, r),
                                        latency=dist),)))
        return out

    def min_hops(self, src_router: int, dst_router: int) -> int:
        sx, sy = self.coords(src_router)
        dx, dy = self.coords(dst_router)
        return (sx != dx) + (sy != dy)
