"""Chiplet topology: K sub-meshes around a central IO die.

Models a Zen-3-style package: ``chiplets`` compute dies, each an
``kx`` x ``ky`` mesh of routers, plus one IO-die router in the middle.
Each chiplet's corner router (local ``(0, 0)``, the *gateway*) connects
to the IO router by a duplex boundary channel whose wire latency is
``chiplet_link_latency`` — the slow die-to-die SerDes hop this topology
exists to study. All other channels are ordinary latency-1 mesh wires.

Routing weights follow the gem5 link-class convention that
weight-ordered routing ([routing.weighted]) minimizes: intra-die x links
weight 1, intra-die y links weight 2, boundary links weight 3. With
those weights a minimal-weight path never crosses a boundary channel
unless source and destination sit on different dies, so intra-die
traffic stays intra-die.

Deadlock avoidance needs two VC classes here. A single class is cyclic:
die A's up-link feeds die B's down-link through B's internal channels
and back, a ring through the IO hub. Splitting traffic into class 0
(same-die) and class 1 (cross-die, via :meth:`route_class`) gives each
class an acyclic channel-dependency graph — class 0 never touches
boundary channels, and class 1's path structure through the corner
gateways is a tree around the IO router. Weight-ordered routing verifies
both claims at table-construction time.

Port numbering is registration order (see ``HeterogeneousTopology``):
within each die, routers in local-id order register their +x duplex
link then their +y duplex link; after all dies, the gateway<->IO duplex
pairs are registered in die order. ``out_channels(router)`` is the
authoritative per-router map.
"""

from __future__ import annotations

from .hetero import HeterogeneousTopology

X_WEIGHT = 1
Y_WEIGHT = 2
BOUNDARY_WEIGHT = 3


class ChipletTopology(HeterogeneousTopology):
    """K ``kx`` x ``ky`` mesh chiplets star-connected to a central IO die."""

    name = "chiplet"
    num_route_classes = 2

    def __init__(self, kx: int = 2, ky: int = 2, concentration: int = 1,
                 chiplets: int = 4, chiplet_link_latency: int = 4):
        if kx < 1 or ky < 1:
            raise ValueError("chiplet sub-mesh needs kx >= 1 and ky >= 1")
        if chiplets < 1:
            raise ValueError("need at least one chiplet")
        if chiplet_link_latency < 1:
            raise ValueError("chiplet link latency must be >= 1")
        self.sub_kx = kx
        self.sub_ky = ky
        self.chiplets = chiplets
        self.chiplet_link_latency = chiplet_link_latency
        routers_per_die = kx * ky
        super().__init__(chiplets * routers_per_die + 1, concentration)

        for die in range(chiplets):
            for y in range(ky):
                for x in range(kx):
                    r = self.router_id(die, x, y)
                    if x + 1 < kx:
                        self.add_duplex(r, self.router_id(die, x + 1, y),
                                        latency=1, weight=X_WEIGHT)
                    if y + 1 < ky:
                        self.add_duplex(r, self.router_id(die, x, y + 1),
                                        latency=1, weight=Y_WEIGHT)
        for die in range(chiplets):
            self.add_duplex(self.gateway(die), self.io_router,
                            latency=chiplet_link_latency,
                            weight=BOUNDARY_WEIGHT)

    # -- structure -----------------------------------------------------------

    @property
    def io_router(self) -> int:
        """Router id of the central IO die (the highest id)."""
        return self.num_routers - 1

    def router_id(self, die: int, x: int, y: int) -> int:
        if not 0 <= die < self.chiplets:
            raise ValueError(f"die {die} out of range (<{self.chiplets})")
        if not (0 <= x < self.sub_kx and 0 <= y < self.sub_ky):
            raise ValueError(f"local coordinates ({x},{y}) out of range")
        return die * self.sub_kx * self.sub_ky + y * self.sub_kx + x

    def gateway(self, die: int) -> int:
        """The die's corner router holding its boundary link."""
        return self.router_id(die, 0, 0)

    def die_of(self, router: int) -> int | None:
        """Die index of ``router``, or ``None`` for the IO router."""
        if not 0 <= router < self.num_routers:
            raise ValueError(f"router {router} out of range")
        if router == self.io_router:
            return None
        return router // (self.sub_kx * self.sub_ky)

    def local_coords(self, router: int) -> tuple[int, int]:
        """Coordinates of ``router`` within its die (IO router rejected)."""
        if self.die_of(router) is None:
            raise ValueError("the IO router has no die-local coordinates")
        local = router % (self.sub_kx * self.sub_ky)
        return local % self.sub_kx, local // self.sub_kx

    # -- routing hooks -------------------------------------------------------

    def route_class(self, src_router: int, dst_router: int) -> int:
        """0 for same-die traffic, 1 for traffic crossing the IO die."""
        return 0 if self.die_of(src_router) == self.die_of(dst_router) else 1
