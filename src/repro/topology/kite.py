"""Kite irregular mesh: a grid with skip-2 express channels.

Mirrors the gem5 Kite-family configs (``KiteLarge_EWMC.py``): a regular
``kx`` x ``ky`` mesh augmented with express channels that skip every
other router, each express link carrying its own latency and routing
weight override. Express wires are physically longer, so they cost
latency 2 instead of 1 — the per-channel latency heterogeneity this
topology exercises.

Weights are chosen so that weight-ordered routing degenerates to
x-then-y dimension order, with express links preferred whenever they
are aligned:

* base x links: weight 1, express x (span 2): weight 2 — the same
  weight per column crossed, so the minimum-weight distance stays the
  Manhattan metric and the hop-count tie-break picks express links;
* base y links: weight 2, express y (span 2): weight 4 — likewise, and
  strictly heavier than any x link, so the per-router (weight, port)
  selection exhausts x progress before turning.

Express channels exist in *every* row and column (when the dimension is
long enough to span), so taking one never requires a detour; the routing
tables therefore keep the x-before-y phase structure whose
channel-dependency graph is acyclic with a single VC class —
weight-ordered routing re-verifies this at construction.

Port numbering is registration order: routers in id order each register
their +x duplex link, +x express duplex (from even x), +y duplex, then
+y express duplex (from even y). ``out_channels(router)`` is the
authoritative per-router map.
"""

from __future__ import annotations

from .hetero import HeterogeneousTopology

X_WEIGHT = 1
X_EXPRESS_WEIGHT = 2
Y_WEIGHT = 2
Y_EXPRESS_WEIGHT = 4
EXPRESS_SPAN = 2
EXPRESS_LATENCY = 2


class KiteMesh(HeterogeneousTopology):
    """``kx`` x ``ky`` mesh plus skip-2 express channels."""

    name = "kite"

    def __init__(self, kx: int = 4, ky: int = 4, concentration: int = 1):
        if kx < 2 or ky < 2:
            raise ValueError("kite needs at least a 2x2 base mesh")
        self.kx = kx
        self.ky = ky
        super().__init__(kx * ky, concentration)
        for r in range(kx * ky):
            x, y = self.coords(r)
            if x + 1 < kx:
                self.add_duplex(r, self.router_at(x + 1, y),
                                latency=1, weight=X_WEIGHT)
            if x % 2 == 0 and x + EXPRESS_SPAN < kx:
                self.add_duplex(r, self.router_at(x + EXPRESS_SPAN, y),
                                latency=EXPRESS_LATENCY,
                                weight=X_EXPRESS_WEIGHT)
            if y + 1 < ky:
                self.add_duplex(r, self.router_at(x, y + 1),
                                latency=1, weight=Y_WEIGHT)
            if y % 2 == 0 and y + EXPRESS_SPAN < ky:
                self.add_duplex(r, self.router_at(x, y + EXPRESS_SPAN),
                                latency=EXPRESS_LATENCY,
                                weight=Y_EXPRESS_WEIGHT)

    def coords(self, router: int) -> tuple[int, int]:
        if not 0 <= router < self.num_routers:
            raise ValueError(f"router {router} out of range")
        return router % self.kx, router // self.kx

    def router_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.kx and 0 <= y < self.ky):
            raise ValueError(f"coordinates ({x},{y}) out of range")
        return y * self.kx + x
