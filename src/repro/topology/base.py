"""Topology abstraction.

A topology describes routers, the terminals attached to each router, and the
channels between routers. Channels are point-to-multipoint to support MECS
(Multidrop Express Cubes); ordinary topologies use a single endpoint per
channel.

Port numbering convention (both input and output sides):

* ports ``0 .. num_network_{in,out}ports-1`` are network ports,
* ports ``num_network_ports .. +concentration-1`` are terminal (local)
  injection/ejection ports, one per attached terminal.

Input and output port counts may differ (MECS has 4 directional output ports
but one input tap per upstream router).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Endpoint:
    """One drop point of a channel: (router, input port, wire latency)."""

    router: int
    in_port: int
    latency: int


@dataclass(frozen=True)
class Channel:
    """A unidirectional channel from one router output port."""

    src_router: int
    src_port: int
    endpoints: tuple[Endpoint, ...]

    def __post_init__(self):
        if not self.endpoints:
            raise ValueError("channel must have at least one endpoint")


class Topology:
    """Base class; subclasses fill in the structural queries."""

    name = "abstract"

    # -- sizes --------------------------------------------------------------

    @property
    def num_routers(self) -> int:
        raise NotImplementedError

    @property
    def concentration(self) -> int:
        """Terminals attached to each router."""
        raise NotImplementedError

    @property
    def num_terminals(self) -> int:
        return self.num_routers * self.concentration

    def num_network_inports(self, router: int) -> int:
        raise NotImplementedError

    def num_network_outports(self, router: int) -> int:
        raise NotImplementedError

    def num_inports(self, router: int) -> int:
        return self.num_network_inports(router) + self.concentration

    def num_outports(self, router: int) -> int:
        return self.num_network_outports(router) + self.concentration

    # -- terminals ----------------------------------------------------------

    def terminal_router(self, terminal: int) -> int:
        self._check_terminal(terminal)
        return terminal // self.concentration

    def terminal_local_index(self, terminal: int) -> int:
        self._check_terminal(terminal)
        return terminal % self.concentration

    def injection_port(self, terminal: int) -> int:
        """Input port of the terminal's router used by its NIC."""
        router = self.terminal_router(terminal)
        return (self.num_network_inports(router)
                + self.terminal_local_index(terminal))

    def ejection_port(self, terminal: int) -> int:
        """Output port of the terminal's router that reaches its NIC."""
        router = self.terminal_router(terminal)
        return (self.num_network_outports(router)
                + self.terminal_local_index(terminal))

    def _check_terminal(self, terminal: int) -> None:
        if not 0 <= terminal < self.num_terminals:
            raise ValueError(
                f"terminal {terminal} out of range (<{self.num_terminals})")

    # -- channels -----------------------------------------------------------

    def channels(self) -> list[Channel]:
        """All inter-router channels."""
        raise NotImplementedError

    # -- geometry (grid topologies) ------------------------------------------

    def coords(self, router: int) -> tuple[int, int]:
        raise NotImplementedError

    def router_at(self, x: int, y: int) -> int:
        raise NotImplementedError

    def average_hops(self) -> float:
        """Average minimal router-to-router hop count over terminal pairs.

        Used for reporting (paper Sec. 7.A: T = H_avg * t_router + ...).
        Subclasses provide ``min_hops``.
        """
        total = 0
        count = 0
        for s in range(self.num_terminals):
            rs = self.terminal_router(s)
            for d in range(self.num_terminals):
                if s == d:
                    continue
                total += self.min_hops(rs, self.terminal_router(d))
                count += 1
        return total / count if count else 0.0

    def min_hops(self, src_router: int, dst_router: int) -> int:
        raise NotImplementedError


class GridTopology(Topology):
    """Shared machinery for kx-by-ky grid-based topologies."""

    def __init__(self, kx: int, ky: int, concentration: int):
        if kx < 2 or ky < 2:
            raise ValueError("grid topologies need at least 2x2 routers")
        if concentration < 1:
            raise ValueError("concentration must be >= 1")
        self.kx = kx
        self.ky = ky
        self._concentration = concentration
        # id -> (x, y), precomputed once so per-flit routing paths never
        # redo the divmod.
        self._coords = [(r % kx, r // kx) for r in range(kx * ky)]

    @property
    def num_routers(self) -> int:
        return self.kx * self.ky

    @property
    def concentration(self) -> int:
        return self._concentration

    def coords(self, router: int) -> tuple[int, int]:
        if not 0 <= router < self.num_routers:
            raise ValueError(f"router {router} out of range")
        return self._coords[router]

    def router_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.kx and 0 <= y < self.ky):
            raise ValueError(f"coordinates ({x},{y}) out of range")
        return y * self.kx + x
