"""Command-line interface: ``python -m repro <command>``.

Commands (full reference with every flag: ``docs/CLI.md``):

* ``fig1 .. fig14, table1, table2`` — regenerate one paper figure/table;
* ``all`` — regenerate everything (reduced scale);
* ``run`` — one ad-hoc experiment, e.g.::

      python -m repro run --topology mesh --kx 8 --ky 8 \\
          --routing xy --va static --scheme pseudo_sb \\
          --pattern uniform --rate 0.1

* ``sweep`` — sensitivity sweeps (``--kind vcs|buffers|load``);
* ``bench`` — time the canonical simulator workloads and write
  ``BENCH_core.json`` (the perf trajectory file, see README);
  ``--gate`` additionally runs the instrumentation-overhead gate;
* ``compare`` — diff two metrics/bench JSON documents into a regression
  report (exit 1 when any metric regressed past its threshold), e.g.::

      python -m repro compare old.metrics.json new.metrics.json

* ``trace`` — run one experiment with the full instrumentation stack and
  write the flit-lifecycle trace (JSONL + Chrome ``trace_event`` JSON,
  loadable in Perfetto), the windowed per-router time series (CSV +
  JSON + spatial heatmap) and the run manifest;
* ``store`` — inspect / maintain the content-addressed result store
  (``ls``, ``verify``, ``gc``, ``export``);
* ``top`` — follow a sweep's telemetry stream (or checkpoint journal)
  live: points/s, tier mix, per-worker utilization, retries, ETA;
  ``--once`` snapshots, ``--trace-out``/``--report-out`` export the
  Perfetto trace and the sweep-report.

``run``, ``sweep`` and ``bench`` accept ``--check`` to attach the full
online-monitor suite (``repro.monitor``): invariant violations abort the
run, and a ``*.metrics.json`` document is written next to ``--out`` for
later ``compare`` calls.

Figure and sweep commands accept ``--workers N`` to fan the underlying
simulations out over N worker processes; results are bit-identical to a
serial run. Figure, sweep and run commands accept ``--out PATH`` to also
persist their rows as JSON with a provenance manifest sidecar.

Resilient execution (``DESIGN.md`` §11): ``--store DIR`` (default from
``$REPRO_STORE``) backs the run cache with the content-addressed result
store, so re-running figures or sweeps over a warm store is near-free;
``sweep --journal PATH`` checkpoints every completed point and
``--resume`` continues an interrupted sweep bit-identically;
``--retries``/``--timeout`` govern worker retries and pool-stall
recovery; ``sweep --telemetry PATH`` records the span/event stream
``repro top`` follows (see ``repro.telemetry``).
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys

from .harness.bench import run_bench
from .harness.experiment import (ExperimentConfig, default_store,
                                 run_experiment, set_default_store)
from .harness.figures import ALL_FIGURES
from .harness.report import print_table, write_results
from .harness.sweep import sweep_buffer_depth, sweep_load, sweep_vcs
from .instrument import (CompositeProbe, FlitTracer, TimeSeriesProbe,
                         run_manifest, write_manifest)
from .network.backend import BACKENDS, set_default_backend
from .network.config import (ALL_SCHEMES, BASELINE, PSEUDO, PSEUDO_B,
                             PSEUDO_S, PSEUDO_SB)
from .store.cli import add_store_parser, cmd_store

SCHEMES = {"baseline": BASELINE, "pseudo": PSEUDO, "pseudo_s": PSEUDO_S,
           "pseudo_b": PSEUDO_B, "pseudo_sb": PSEUDO_SB}


def _figure_kwargs(fn, workers: int | None) -> dict:
    """Pass --workers through to figures that can parallelize."""
    if workers is None:
        return {}
    if "max_workers" in inspect.signature(fn).parameters:
        return {"max_workers": workers}
    return {}


def _persist(out: str | None, command: dict, rows) -> None:
    """Write rows + provenance manifest when the command asked for --out."""
    if out is None:
        return
    write_results(out, rows, run_manifest(command))
    print(f"wrote {out}")


def _activate_store(args) -> None:
    """Install the result store requested by --store / $REPRO_STORE."""
    store_dir = getattr(args, "store", None)
    if store_dir:
        from .store import ResultStore
        set_default_store(ResultStore(store_dir))
    if getattr(args, "resume", False) and not getattr(args, "journal", None):
        if default_store() is None:
            raise SystemExit(
                "error: --resume without --journal needs --store (or "
                "$REPRO_STORE) to replay completed points from")


def _store_summary() -> None:
    """Print one line of cache-hit accounting when a store is active."""
    store = default_store()
    if store is None:
        return
    stats = store.stats_dict()
    print(f"store: {stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['puts']} new results ({stats['dir']})")


def _cmd_figure(args) -> int:
    fn = ALL_FIGURES[args.command]
    rows = fn(**_figure_kwargs(fn, args.workers))
    _store_summary()
    _persist(args.out, {"command": args.command, "workers": args.workers},
             rows)
    return 0


def _cmd_all(args) -> int:
    for name in ALL_FIGURES:
        fn = ALL_FIGURES[name]
        fn(**_figure_kwargs(fn, args.workers))
    _store_summary()
    return 0


def _experiment_config(args) -> ExperimentConfig:
    common = dict(topology=args.topology, kx=args.kx, ky=args.ky,
                  concentration=args.concentration, chiplets=args.chiplets,
                  chiplet_link_latency=args.chiplet_link_latency,
                  routing=args.routing, vc_policy=args.va, seed=args.seed)
    if args.benchmark:
        return ExperimentConfig(benchmark=args.benchmark,
                                trace_cycles=args.cycles, **common)
    return ExperimentConfig(pattern=args.pattern, rate=args.rate,
                            synth_cycles=args.cycles,
                            synth_warmup=args.cycles // 4, **common)


def _series_probe(args) -> TimeSeriesProbe:
    """The time-series probe matching the requested backend.

    Non-scalar backends get the array-native ``VectorSeriesProbe`` — it
    produces the identical row schema, and binds to the scalar core too
    (so an ``auto`` run that resolves to scalar still records).
    """
    if args.backend in ("vectorized", "batched", "auto"):
        from .network.vectorized import VectorSeriesProbe
        return VectorSeriesProbe(window=args.window)
    return TimeSeriesProbe(window=args.window)


def _cmd_run(args) -> int:
    cfg = _experiment_config(args)
    tracing = args.trace is not None or args.series is not None
    if tracing and args.scheme == "all":
        print("error: --trace/--series need a single --scheme",
              file=sys.stderr)
        return 2
    if args.trace is not None and args.backend in ("vectorized", "batched"):
        print("error: --trace records per-flit events, which only the "
              "scalar core emits; use --backend scalar (or drop --trace "
              "and keep --series)", file=sys.stderr)
        return 2
    rows = []
    out_rows = []
    checked = []
    schemes = (ALL_SCHEMES if args.scheme == "all"
               else [SCHEMES[args.scheme]])
    for scheme in schemes:
        probe = tracer = series = None
        if tracing:
            probes = []
            if args.trace is not None:
                tracer = FlitTracer(max_events=args.max_events)
                probes.append(tracer)
            if args.series is not None:
                series = _series_probe(args)
                probes.append(series)
            probe = (probes[0] if len(probes) == 1
                     else CompositeProbe(*probes))
        res = run_experiment(cfg.with_scheme(scheme), probe=probe,
                             check=args.check,
                             check_stride=args.check_stride)
        if tracer is not None and args.trace is not None:
            _write_trace(tracer, args.trace, res.manifest)
        if series is not None and args.series is not None:
            series.flush()
            _write_series(series, args.series)
        if res.monitor_report is not None:
            checked.append((scheme.label, res.monitor_report))
        rows.append((scheme.label, res.avg_latency, res.reusability,
                     res.buffer_bypass_rate,
                     res.energy_pj / max(1, res.flit_hops)))
        out_rows.append({"scheme": scheme.label,
                         "avg_latency": res.avg_latency,
                         "reusability": res.reusability,
                         "buffer_bypass_rate": res.buffer_bypass_rate,
                         "energy_pj": res.energy_pj,
                         "manifest": res.manifest})
    print_table(cfg.label,
                ["scheme", "latency", "reuse", "buf bypass", "pJ/hop"], rows)
    _store_summary()
    if checked:
        _report_checked(checked, args.out)
    _persist(args.out, {"command": "run", "label": cfg.label}, out_rows)
    return 0


def _report_checked(checked, out: str | None) -> None:
    """Print the monitor verdict; write the metrics-set next to --out."""
    from .monitor import metrics_path, metrics_set, write_metrics
    for label, doc in checked:
        monitors = doc["monitors"]
        watchdog = monitors.get("watchdog", {})
        print(f"monitors [{label}]: {doc['violation_count']} violations, "
              f"{len(monitors)} monitors, "
              f"max stall {watchdog.get('max_stall_cycles', 0)} cycles "
              f"(backend {doc.get('backend', 'scalar')})")
        profile = doc.get("phase_profile")
        if profile:
            fractions = profile["fractions"]
            mix = "  ".join(f"{key} {fractions[key]:.0%}"
                            for key in sorted(fractions))
            print(f"phase profile [{label}]: {mix} over "
                  f"{profile['stepped_cycles']} stepped cycles")
    if out is not None:
        doc = metrics_set(checked)
        store = default_store()
        if store is not None:
            # Checked runs bypass the cache, so these counters record the
            # bypass (zero hits) rather than cache temperature.
            doc["store"] = store.stats_dict()
        path = write_metrics(metrics_path(out), doc)
        print(f"wrote {path}")


def _write_trace(tracer: FlitTracer, prefix: str,
                 manifest: dict | None) -> None:
    print(f"wrote {tracer.to_jsonl(prefix + '.jsonl')}")
    print(f"wrote {tracer.to_chrome_trace(prefix + '.trace.json')}")
    if manifest is not None:
        print(f"wrote {write_manifest(manifest, prefix + '.jsonl')}")


def _write_series(series: TimeSeriesProbe, prefix: str) -> None:
    print(f"wrote {series.to_csv(prefix + '.series.csv')}")
    print(f"wrote {series.to_json(prefix + '.series.json')}")
    try:
        print(f"wrote {series.write_heatmap(prefix + '.heatmap.json')}")
    except ValueError:
        pass  # non-grid topology: no spatial layout to plot


def _cmd_trace(args) -> int:
    cfg = _experiment_config(args).with_scheme(SCHEMES[args.scheme])
    tracer = FlitTracer(max_events=args.max_events)
    series = TimeSeriesProbe(window=args.window)
    res = run_experiment(cfg, probe=CompositeProbe(tracer, series))
    series.flush()
    _write_trace(tracer, args.out, res.manifest)
    _write_series(series, args.out)
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(f"{sum(tracer.counts.values())} events over "
          f"{len(series.samples)} windows{dropped}; "
          f"avg latency {res.avg_latency:.2f}")
    return 0


def _cmd_sweep(args) -> int:
    sweeps = {"vcs": (sweep_vcs, "num_vcs"),
              "buffers": (sweep_buffer_depth, "buffer_depth"),
              "load": (sweep_load, "load")}
    fn, key = sweeps[args.kind]
    overrides = {}
    if args.cycles is not None:
        overrides["synth_cycles"] = args.cycles
        overrides["synth_warmup"] = args.cycles // 4
    if args.batch_size is not None:
        overrides["batch_size"] = args.batch_size
    rows = fn(max_workers=args.workers, check=args.check,
              check_stride=args.check_stride,
              journal=args.journal, resume=args.resume,
              retries=args.retries, backoff_base=args.backoff,
              timeout=args.timeout, telemetry=args.telemetry,
              **overrides)
    if args.telemetry is not None:
        from .telemetry import report_path
        print(f"telemetry: {args.telemetry} "
              f"(report {report_path(args.telemetry)})")
    if args.check:
        print(f"monitors: all {2 * len(rows)} sweep points "
              f"violation-free")
    print_table(f"sensitivity sweep: {args.kind}",
                [key, "baseline", "Pseudo+S+B", "reduction", "reuse"],
                [(r[key], r["baseline_latency"], r["latency"],
                  r["reduction"], r["reusability"]) for r in rows])
    _store_summary()
    _persist(args.out, {"command": "sweep", "kind": args.kind}, rows)
    return 0


def _cmd_top(args) -> int:
    from .telemetry import run_top
    try:
        return run_top(args.stream, once=args.once,
                       interval=args.interval, trace_out=args.trace_out,
                       report_out=args.report_out)
    except KeyboardInterrupt:
        print()  # leave the last snapshot on its own line
        return 130


def _cmd_compare(args) -> int:
    from .monitor import compare_files, render_report
    overrides = {}
    for spec in args.threshold or ():
        pattern, _, value = spec.partition("=")
        if not value:
            print(f"error: --threshold expects PATTERN=VALUE, got {spec!r}",
                  file=sys.stderr)
            return 2
        overrides[pattern] = float(value)
    report = compare_files(args.old, args.new, overrides or None)
    print(render_report(report, show_ok=args.show_ok))
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 1 if report["regressed"] else 0


def _add_store_arg(p) -> None:
    """--store DIR: back the run cache with the on-disk result store."""
    p.add_argument("--store", default=os.environ.get("REPRO_STORE"),
                   metavar="DIR",
                   help="content-addressed result store directory backing "
                        "the run cache (default: $REPRO_STORE)")


def _add_backend_arg(p) -> None:
    """--backend NAME: pick the network core for every simulation."""
    p.add_argument("--backend", default=None, choices=list(BACKENDS),
                   help="network core: scalar (default), the numpy "
                        "structure-of-arrays core (vectorized), batched "
                        "(groups compatible sweep points into multi-lane "
                        "runs), or auto (calibrated per-point choice); "
                        "all bit-identical stats; non-scalar cores need "
                        "repro[fast]")


def build_parser() -> argparse.ArgumentParser:
    """Construct the full ``repro`` argument parser.

    Exposed as a function (rather than built inline in ``main``) so the
    documentation drift test can walk every subcommand and option string
    and assert ``docs/CLI.md`` covers them.
    """
    parser = argparse.ArgumentParser(
        prog="repro", description="Pseudo-Circuit reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ALL_FIGURES:
        fig_p = sub.add_parser(name, help=f"regenerate {name}")
        fig_p.add_argument("--workers", type=int, default=None)
        fig_p.add_argument("--out", default=None,
                           help="also write rows + manifest to this JSON")
        _add_store_arg(fig_p)
        _add_backend_arg(fig_p)
        fig_p.add_argument("--resume", action="store_true",
                           help="serve completed points from the warm "
                                "store of an interrupted run (needs "
                                "--store)")
    all_p = sub.add_parser("all", help="regenerate every figure and table")
    all_p.add_argument("--workers", type=int, default=None)
    _add_store_arg(all_p)
    _add_backend_arg(all_p)
    all_p.add_argument("--resume", action="store_true",
                       help="serve completed points from the warm store "
                            "of an interrupted run (needs --store)")

    def add_experiment_args(p, scheme_default: str,
                            scheme_choices: list[str]) -> None:
        p.add_argument("--topology", default="mesh",
                       choices=["mesh", "cmesh", "fbfly", "mecs",
                                "chiplet", "kite", "evc_mesh"])
        p.add_argument("--kx", type=int, default=8)
        p.add_argument("--ky", type=int, default=8)
        p.add_argument("--concentration", type=int, default=1)
        p.add_argument("--chiplets", type=int, default=4,
                       help="chiplet topology: number of compute dies "
                            "(default 4; --kx/--ky size each die)")
        p.add_argument("--chiplet-link-latency", type=int, default=4,
                       help="chiplet topology: wire latency of each "
                            "die<->IO boundary link (default 4)")
        p.add_argument("--routing", default="xy",
                       choices=["xy", "yx", "o1turn", "weighted"])
        p.add_argument("--va", default="dynamic",
                       choices=["dynamic", "static"])
        p.add_argument("--scheme", default=scheme_default,
                       choices=scheme_choices)
        p.add_argument("--pattern", default="uniform")
        p.add_argument("--rate", type=float, default=0.1)
        p.add_argument("--benchmark", default=None)
        p.add_argument("--cycles", type=int, default=1500)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--window", type=int, default=64,
                       help="time-series window in cycles (default 64)")
        p.add_argument("--max-events", type=int, default=None,
                       help="cap stored trace events (drops past the cap)")
        _add_backend_arg(p)

    run_p = sub.add_parser("run", help="run one experiment")
    add_experiment_args(run_p, "all", ["all"] + sorted(SCHEMES))
    run_p.add_argument("--trace", default=None, metavar="PREFIX",
                       help="write PREFIX.jsonl + PREFIX.trace.json "
                            "(needs a single --scheme)")
    run_p.add_argument("--series", default=None, metavar="PREFIX",
                       help="write PREFIX.series.{csv,json} "
                            "(needs a single --scheme)")
    run_p.add_argument("--out", default=None,
                       help="also write rows + manifest to this JSON")
    run_p.add_argument("--check", action="store_true",
                       help="attach the online invariant monitors (scalar "
                            "core: the full monitor suite; vectorized/"
                            "batched cores: whole-array invariant sweeps); "
                            "write a *.metrics.json doc next to --out")
    run_p.add_argument("--check-stride", type=int, default=1, metavar="N",
                       help="with --check on a vectorized/batched core: "
                            "sweep the array invariants every N cycles "
                            "instead of every cycle (default 1)")
    _add_store_arg(run_p)

    trace_p = sub.add_parser(
        "trace", help="run one experiment fully instrumented; write trace, "
                      "time series, heatmap and manifest")
    add_experiment_args(trace_p, "pseudo_sb", sorted(SCHEMES))
    trace_p.add_argument("--out", default="repro_trace", metavar="PREFIX",
                         help="output prefix (default repro_trace)")

    sweep_p = sub.add_parser("sweep", help="sensitivity sweeps")
    sweep_p.add_argument("--kind", default="load",
                         choices=["vcs", "buffers", "load"])
    sweep_p.add_argument("--workers", type=int, default=None)
    sweep_p.add_argument("--out", default=None,
                         help="also write rows + manifest to this JSON")
    sweep_p.add_argument("--check", action="store_true",
                         help="attach the online invariant monitors to "
                              "every sweep point (array sweeps on "
                              "vectorized/batched points; checked points "
                              "batch normally)")
    sweep_p.add_argument("--check-stride", type=int, default=1,
                         metavar="N",
                         help="with --check on vectorized/batched points: "
                              "sweep the array invariants every N cycles "
                              "(default 1)")
    sweep_p.add_argument("--cycles", type=int, default=None,
                         help="cycles per sweep point (default 1000; "
                              "warmup is cycles/4)")
    _add_store_arg(sweep_p)
    _add_backend_arg(sweep_p)
    sweep_p.add_argument("--journal", default=None, metavar="PATH",
                         help="checkpoint every completed point to this "
                              "journal file as it lands")
    sweep_p.add_argument("--resume", action="store_true",
                         help="skip points already in --journal (or the "
                              "--store) from an interrupted run; the "
                              "merged result is bit-identical to an "
                              "uninterrupted sweep")
    sweep_p.add_argument("--retries", type=int, default=0,
                         help="extra attempts per failed/timed-out point "
                              "(default 0)")
    sweep_p.add_argument("--backoff", type=float, default=0.5,
                         help="base seconds of the deterministic "
                              "exponential retry backoff (default 0.5)")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         help="seconds without any completed chunk before "
                              "the worker pool is abandoned and the sweep "
                              "degrades to serial execution")
    sweep_p.add_argument("--batch-size", type=int, default=None,
                         metavar="N",
                         help="max sweep points grouped into one "
                              "multi-lane batched run (default 16; 1 "
                              "disables batching; only points with "
                              "--backend batched or auto group)")
    sweep_p.add_argument("--telemetry", default=None, metavar="PATH",
                         help="append the span/event telemetry stream "
                              "(one closed span per point: tier, "
                              "backend, retries, walls) to this JSONL "
                              "file; a repro.sweep-report/1 summary is "
                              "written next to it when the sweep ends; "
                              "follow live with 'repro top PATH'")

    bench_p = sub.add_parser(
        "bench", help="time canonical workloads, write BENCH_core.json")
    bench_p.add_argument("--cycles", type=int, default=None,
                         help="cycles per workload (default 1500)")
    bench_p.add_argument("--repeats", type=int, default=None,
                         help="timing repetitions, best-of (default 3)")
    bench_p.add_argument("--out", default="BENCH_core.json",
                         help="output path ('-' to skip writing)")
    bench_p.add_argument("--profile", action="store_true",
                         help="also run one repeat under cProfile and "
                              "print the top-20 cumulative entries")
    bench_p.add_argument("--gate", action="store_true",
                         help="run the instrumentation-overhead gate: "
                              "probes cold, stats bit-identical, walls "
                              "within 2%% of the previous report")
    bench_p.add_argument("--check", action="store_true",
                         help="run the monitored self-check and write its "
                              "metrics doc next to the report")
    _add_backend_arg(bench_p)
    bench_p.add_argument("--min-backend-speedup", type=float, default=None,
                         metavar="X",
                         help="with --gate --backend vectorized: fail "
                              "unless the saturation-workload speedup "
                              "geomean over the scalar core reaches X")
    bench_p.add_argument("--min-batched-speedup", type=float, default=None,
                         metavar="X",
                         help="with --gate and a vectorized-capable "
                              "--backend: fail unless the 16-point "
                              "batched sweep beats per-point vectorized "
                              "execution by at least X times")
    _add_store_arg(bench_p)
    bench_p.add_argument("--journal", default=None, metavar="PATH",
                         help="checkpoint every timed workload row to "
                              "this journal file as it lands")
    bench_p.add_argument("--resume", action="store_true",
                         help="reuse workload rows already in --journal "
                              "from an interrupted bench")

    compare_p = sub.add_parser(
        "compare", help="regression report between two metrics/bench JSON "
                        "documents (exit 1 on regression)")
    compare_p.add_argument("old", help="baseline document (JSON)")
    compare_p.add_argument("new", help="candidate document (JSON)")
    compare_p.add_argument("--out", default=None,
                           help="also write the report JSON here")
    compare_p.add_argument("--threshold", action="append", default=None,
                           metavar="PATTERN=VALUE",
                           help="override the tolerance for metrics "
                                "matching fnmatch PATTERN (repeatable)")
    compare_p.add_argument("--show-ok", action="store_true",
                           help="note explicitly when nothing moved")

    top_p = sub.add_parser(
        "top", help="live progress of a running (or finished) sweep from "
                    "its telemetry stream or checkpoint journal")
    top_p.add_argument("stream",
                       help="telemetry stream (sweep --telemetry) or "
                            "checkpoint journal (sweep --journal) to "
                            "follow; the kind is sniffed from the file")
    top_p.add_argument("--once", action="store_true",
                       help="print a single snapshot and exit (works "
                            "mid-sweep and on a dead sweep's leftover "
                            "stream)")
    top_p.add_argument("--interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="seconds between refreshes in follow mode "
                            "(default 2.0)")
    top_p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="also write a Chrome trace_event JSON of "
                            "everything read (workers as tracks; open "
                            "in Perfetto); telemetry streams only")
    top_p.add_argument("--report-out", default=None, metavar="PATH",
                       help="also write the repro.sweep-report/1 summary "
                            "built from everything read; telemetry "
                            "streams only")

    add_store_parser(sub)
    return parser


def main(argv=None) -> int:
    """Parse one CLI invocation and dispatch it; returns the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "store":
        return cmd_store(args)
    if args.command == "top":
        return _cmd_top(args)
    _activate_store(args)
    # Install the backend before any ExperimentConfig is constructed:
    # configs freeze the process default into their cache/store keys.
    if getattr(args, "backend", None):
        set_default_backend(args.backend)
    if args.command in ALL_FIGURES:
        return _cmd_figure(args)
    if args.command == "all":
        return _cmd_all(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        kwargs = {}
        if args.cycles is not None:
            kwargs["cycles"] = args.cycles
        if args.repeats is not None:
            kwargs["repeats"] = args.repeats
        run_bench(out_path=None if args.out == "-" else args.out,
                  profile=args.profile, gate=args.gate, check=args.check,
                  journal=args.journal, resume=args.resume,
                  backend=args.backend or "scalar",
                  min_backend_speedup=args.min_backend_speedup,
                  min_batched_speedup=args.min_batched_speedup, **kwargs)
        return 0
    if args.command == "compare":
        return _cmd_compare(args)
    return _cmd_sweep(args)


if __name__ == "__main__":
    sys.exit(main())
