"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``fig1 .. fig14, table1, table2`` — regenerate one paper figure/table;
* ``all`` — regenerate everything (reduced scale);
* ``run`` — one ad-hoc experiment, e.g.::

      python -m repro run --topology mesh --kx 8 --ky 8 \\
          --routing xy --va static --scheme pseudo_sb \\
          --pattern uniform --rate 0.1

* ``sweep`` — sensitivity sweeps (``--kind vcs|buffers|load``);
* ``bench`` — time the canonical simulator workloads and write
  ``BENCH_core.json`` (the perf trajectory file, see README).

Figure and sweep commands accept ``--workers N`` to fan the underlying
simulations out over N worker processes; results are bit-identical to a
serial run.
"""

from __future__ import annotations

import argparse
import inspect
import sys

from .harness.bench import run_bench
from .harness.experiment import ExperimentConfig, run_experiment
from .harness.figures import ALL_FIGURES
from .harness.report import print_table
from .harness.sweep import sweep_buffer_depth, sweep_load, sweep_vcs
from .network.config import (ALL_SCHEMES, BASELINE, PSEUDO, PSEUDO_B,
                             PSEUDO_S, PSEUDO_SB)

SCHEMES = {"baseline": BASELINE, "pseudo": PSEUDO, "pseudo_s": PSEUDO_S,
           "pseudo_b": PSEUDO_B, "pseudo_sb": PSEUDO_SB}


def _figure_kwargs(fn, workers: int | None) -> dict:
    """Pass --workers through to figures that can parallelize."""
    if workers is None:
        return {}
    if "max_workers" in inspect.signature(fn).parameters:
        return {"max_workers": workers}
    return {}


def _cmd_figure(name: str, workers: int | None) -> int:
    fn = ALL_FIGURES[name]
    fn(**_figure_kwargs(fn, workers))
    return 0


def _cmd_all(workers: int | None) -> int:
    for name in ALL_FIGURES:
        fn = ALL_FIGURES[name]
        fn(**_figure_kwargs(fn, workers))
    return 0


def _cmd_run(args) -> int:
    common = dict(topology=args.topology, kx=args.kx, ky=args.ky,
                  concentration=args.concentration, routing=args.routing,
                  vc_policy=args.va, seed=args.seed)
    if args.benchmark:
        cfg = ExperimentConfig(benchmark=args.benchmark,
                               trace_cycles=args.cycles, **common)
    else:
        cfg = ExperimentConfig(pattern=args.pattern, rate=args.rate,
                               synth_cycles=args.cycles,
                               synth_warmup=args.cycles // 4, **common)
    rows = []
    schemes = (ALL_SCHEMES if args.scheme == "all"
               else [SCHEMES[args.scheme]])
    for scheme in schemes:
        res = run_experiment(cfg.with_scheme(scheme))
        rows.append((scheme.label, res.avg_latency, res.reusability,
                     res.buffer_bypass_rate,
                     res.energy_pj / max(1, res.flit_hops)))
    print_table(cfg.label,
                ["scheme", "latency", "reuse", "buf bypass", "pJ/hop"], rows)
    return 0


def _cmd_sweep(args) -> int:
    sweeps = {"vcs": (sweep_vcs, "num_vcs"),
              "buffers": (sweep_buffer_depth, "buffer_depth"),
              "load": (sweep_load, "load")}
    fn, key = sweeps[args.kind]
    rows = fn(max_workers=args.workers)
    print_table(f"sensitivity sweep: {args.kind}",
                [key, "baseline", "Pseudo+S+B", "reduction", "reuse"],
                [(r[key], r["baseline_latency"], r["latency"],
                  r["reduction"], r["reusability"]) for r in rows])
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Pseudo-Circuit reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ALL_FIGURES:
        fig_p = sub.add_parser(name, help=f"regenerate {name}")
        fig_p.add_argument("--workers", type=int, default=None)
    all_p = sub.add_parser("all", help="regenerate every figure and table")
    all_p.add_argument("--workers", type=int, default=None)

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("--topology", default="mesh",
                       choices=["mesh", "cmesh", "fbfly", "mecs",
                                "evc_mesh"])
    run_p.add_argument("--kx", type=int, default=8)
    run_p.add_argument("--ky", type=int, default=8)
    run_p.add_argument("--concentration", type=int, default=1)
    run_p.add_argument("--routing", default="xy",
                       choices=["xy", "yx", "o1turn"])
    run_p.add_argument("--va", default="dynamic",
                       choices=["dynamic", "static"])
    run_p.add_argument("--scheme", default="all",
                       choices=["all"] + sorted(SCHEMES))
    run_p.add_argument("--pattern", default="uniform")
    run_p.add_argument("--rate", type=float, default=0.1)
    run_p.add_argument("--benchmark", default=None)
    run_p.add_argument("--cycles", type=int, default=1500)
    run_p.add_argument("--seed", type=int, default=1)

    sweep_p = sub.add_parser("sweep", help="sensitivity sweeps")
    sweep_p.add_argument("--kind", default="load",
                         choices=["vcs", "buffers", "load"])
    sweep_p.add_argument("--workers", type=int, default=None)

    bench_p = sub.add_parser(
        "bench", help="time canonical workloads, write BENCH_core.json")
    bench_p.add_argument("--cycles", type=int, default=None,
                         help="cycles per workload (default 1500)")
    bench_p.add_argument("--repeats", type=int, default=None,
                         help="timing repetitions, best-of (default 3)")
    bench_p.add_argument("--out", default="BENCH_core.json",
                         help="output path ('-' to skip writing)")
    bench_p.add_argument("--profile", action="store_true",
                         help="also run one repeat under cProfile and "
                              "print the top-20 cumulative entries")

    args = parser.parse_args(argv)
    if args.command in ALL_FIGURES:
        return _cmd_figure(args.command, args.workers)
    if args.command == "all":
        return _cmd_all(args.workers)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "bench":
        kwargs = {}
        if args.cycles is not None:
            kwargs["cycles"] = args.cycles
        if args.repeats is not None:
            kwargs["repeats"] = args.repeats
        run_bench(out_path=None if args.out == "-" else args.out,
                  profile=args.profile, **kwargs)
        return 0
    return _cmd_sweep(args)


if __name__ == "__main__":
    sys.exit(main())
