"""Backend selection for the network core.

Three interchangeable cores implement the same cycle-level contract
(see ARCHITECTURE.md "Backends"): the scalar object-per-router core in
``network/simulator.py``, the vectorized structure-of-arrays core in
``network/vectorized/``, and the batched multi-lane core in
``network/vectorized/batch.py`` (several independent simulations
stepped as one chip). All produce bit-identical ``NetworkStats``
fingerprints for every supported configuration; the parity suites under
``tests/network/test_vectorized_parity.py`` and
``tests/network/test_batched_parity.py`` lock this in.

``backend="auto"`` defers the choice to ``choose_backend``: points
grouped into a batch take the batched core, single points take the
vectorized core above a calibrated offered-load crossover (in flits per
cycle per chip — whole-chip array ops amortize only with enough work in
flight) and the scalar core below it. The crossover ships with a
measured default and is re-measured by the ``repro bench``
microcalibration probe, which records it into BENCH_core.json;
``load_calibration`` installs a recorded block.

The vectorized cores need numpy, which is an *optional* runtime
dependency (``pip install repro[fast]``). ``require_numpy`` converts the
bare ImportError into an actionable message; ``BackendUnsupportedError``
marks configurations the vectorized core deliberately refuses (probes,
non-tabulable routing, multidrop channels) so callers fall back to the
scalar core explicitly instead of getting silently-different semantics —
``auto`` is the one sanctioned fallback path: its documented policy is
to pick scalar wherever the vectorized core refuses.
"""

from __future__ import annotations

BACKENDS = ("scalar", "vectorized", "batched", "auto")

#: Backends that name a concrete simulation core ("auto" resolves to
#: one of these per point; "batched" runs single points on the
#: vectorized core and groups of points on the batched core).
CONCRETE_BACKENDS = ("scalar", "vectorized", "batched")

#: Process-wide default used when a config leaves ``backend`` unset.
_default_backend = "scalar"

#: Selector calibration: offered load (flits per cycle per chip,
#: ``rate * terminals``) above which the vectorized core beats the
#: scalar core, per scheme kind. Defaults measured on the canonical
#: 8x8-mesh workloads; ``repro bench`` re-measures and records the
#: block into BENCH_core.json.
DEFAULT_CALIBRATION = {
    "crossover_flits_per_cycle": {"baseline": 6.0, "pseudo": 8.0},
    "source": "default",
}

_calibration = dict(DEFAULT_CALIBRATION)


class BackendUnsupportedError(RuntimeError):
    """A feature the selected network backend deliberately does not support."""


def resolve_backend(name: str | None) -> str:
    """Validate ``name`` and substitute the process default for None."""
    if name is None:
        return _default_backend
    if name not in BACKENDS:
        raise ValueError(
            f"unknown network backend {name!r}; expected one of {BACKENDS}")
    return name


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous one."""
    global _default_backend
    if name not in BACKENDS:
        raise ValueError(
            f"unknown network backend {name!r}; expected one of {BACKENDS}")
    previous = _default_backend
    _default_backend = name
    return previous


def default_backend() -> str:
    """The backend used when configs leave ``backend`` unset."""
    return _default_backend


def backend_of(network) -> str:
    """The concrete backend name of a live network object.

    Duck-typed on the class name so this module stays import-light (no
    numpy, no simulator imports); used to stamp provenance manifests
    and metrics documents with the core that actually ran.
    """
    name = type(network).__name__
    if name == "BatchNetwork":
        return "batched"
    if name == "VectorNetwork":
        return "vectorized"
    return "scalar"


# -- the "auto" selector ------------------------------------------------------

def calibration() -> dict:
    """The selector calibration currently in effect (a copy)."""
    cal = dict(_calibration)
    cal["crossover_flits_per_cycle"] = dict(
        _calibration["crossover_flits_per_cycle"])
    return cal


def set_calibration(cal: dict) -> dict:
    """Install a measured selector calibration; returns the previous.

    Missing keys keep their defaults, so a partial block (e.g. only the
    baseline crossover) is fine.
    """
    global _calibration
    previous = calibration()
    merged = dict(DEFAULT_CALIBRATION)
    cross = dict(DEFAULT_CALIBRATION["crossover_flits_per_cycle"])
    merged.update(cal)
    cross.update(cal.get("crossover_flits_per_cycle", {}))
    merged["crossover_flits_per_cycle"] = cross
    _calibration = merged
    return previous


def load_calibration(path) -> bool:
    """Install the ``calibration`` block of a BENCH_core.json, if any.

    Returns True when a block was found and installed; a missing or
    unreadable file (or one without the block) leaves the calibration
    untouched and returns False — with a one-line warning on stderr
    naming the path and reason, so a typo'd path doesn't silently run
    with the default crossovers.
    """
    import json
    import sys
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"warning: backend calibration not loaded from {path}: "
              f"{exc}; keeping default crossovers", file=sys.stderr)
        return False
    cal = doc.get("calibration")
    if not isinstance(cal, dict):
        print(f"warning: backend calibration not loaded from {path}: "
              f"no 'calibration' block; keeping default crossovers",
              file=sys.stderr)
        return False
    set_calibration(cal)
    return True


def choose_backend(*, terminals: int, rate: float | None,
                   pseudo: bool = False, batch: int = 1) -> str:
    """Pick a concrete core for one point (the ``auto`` policy).

    The decision variable is offered load in flits per cycle per chip
    (``rate * terminals``): whole-chip array ops amortize above the
    calibrated crossover, python-object dispatch wins below it —
    ``pseudo`` selects the slightly higher pseudo-circuit crossover
    (the vectorized pseudo-circuit pipeline has more fixed per-cycle
    stages). Points grouped into a ``batch`` of two or more always
    take the batched core: lane batching amortizes the dispatch cost
    whatever the load. ``rate=None`` (trace replay, offered load
    unknown and self-throttled by MSHRs) picks scalar.
    """
    if batch > 1:
        return "batched"
    if rate is None or terminals <= 0:
        return "scalar"
    cross = _calibration["crossover_flits_per_cycle"]
    threshold = cross["pseudo" if pseudo else "baseline"]
    return "vectorized" if rate * terminals >= threshold else "scalar"


def explain_choice(*, terminals: int, rate: float | None,
                   pseudo: bool = False, batch: int = 1) -> dict:
    """``choose_backend`` plus the inputs that produced the decision.

    Harness telemetry stamps every simulated point with this record so
    a sweep's stream says not just *which* core ran each point but
    *why*: the offered load, the calibrated crossover it was compared
    against, and where that calibration came from (``default`` or a
    ``repro bench`` measurement).
    """
    chosen = choose_backend(terminals=terminals, rate=rate, pseudo=pseudo,
                            batch=batch)
    cross = _calibration["crossover_flits_per_cycle"]
    if batch > 1:
        reason = "batched-unit"
    elif rate is None or terminals <= 0:
        reason = "no-offered-load"
    else:
        reason = "offered-load-crossover"
    return {
        "chosen": chosen,
        "reason": reason,
        "terminals": terminals,
        "rate": rate,
        "offered_flits_per_cycle": (None if rate is None
                                    else round(rate * terminals, 3)),
        "crossover_flits_per_cycle": cross["pseudo" if pseudo
                                           else "baseline"],
        "calibration_source": _calibration.get("source"),
        "batch": batch,
    }


def require_numpy():
    """Import and return numpy, or raise an actionable ImportError."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise ImportError(
            "the vectorized network backend requires numpy, which is an "
            "optional dependency; install it with `pip install repro[fast]` "
            "(or `pip install numpy`), or rerun with --backend scalar"
        ) from exc
    return numpy
