"""Backend selection for the network core.

Two interchangeable cores implement the same cycle-level contract (see
ARCHITECTURE.md "Backends"): the scalar object-per-router core in
``network/simulator.py`` and the vectorized structure-of-arrays core in
``network/vectorized/``. Both produce bit-identical ``NetworkStats``
fingerprints for every supported configuration; the parity suite under
``tests/network/test_vectorized_parity.py`` locks this in.

The vectorized core needs numpy, which is an *optional* runtime
dependency (``pip install repro[fast]``). ``require_numpy`` converts the
bare ImportError into an actionable message; ``BackendUnsupportedError``
marks configurations the vectorized core deliberately refuses (probes,
non-tabulable routing, multidrop channels) so callers fall back to the
scalar core explicitly instead of getting silently-different semantics.
"""

from __future__ import annotations

BACKENDS = ("scalar", "vectorized")

#: Process-wide default used when a config leaves ``backend`` unset.
_default_backend = "scalar"


class BackendUnsupportedError(RuntimeError):
    """A feature the selected network backend deliberately does not support."""


def resolve_backend(name: str | None) -> str:
    """Validate ``name`` and substitute the process default for None."""
    if name is None:
        return _default_backend
    if name not in BACKENDS:
        raise ValueError(
            f"unknown network backend {name!r}; expected one of {BACKENDS}")
    return name


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous one."""
    global _default_backend
    if name not in BACKENDS:
        raise ValueError(
            f"unknown network backend {name!r}; expected one of {BACKENDS}")
    previous = _default_backend
    _default_backend = name
    return previous


def default_backend() -> str:
    """The backend used when configs leave ``backend`` unset."""
    return _default_backend


def require_numpy():
    """Import and return numpy, or raise an actionable ImportError."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise ImportError(
            "the vectorized network backend requires numpy, which is an "
            "optional dependency; install it with `pip install repro[fast]` "
            "(or `pip install numpy`), or rerun with --backend scalar"
        ) from exc
    return numpy
