"""Array-native observability for the vectorized backends.

The scalar instrumentation layer (PR 3) is an event stream: every flit
movement calls a probe method. Replaying that per-event protocol from the
vectorized core would serialize exactly the loops the core exists to
avoid, so the vectorized cores emit *batched* hooks instead — one call
per array operation, carrying the index arrays the operation already
computed. The hook vocabulary (``VectorHooks``) is deliberately tiny:

========================  ==================================================
``on_cycle_start``        shared with the scalar probe protocol (window
                          probes close boundaries here, before any event)
``vec_cycle_end``         the cycle's last event has been applied (the
                          invariant checker sweeps here)
``vec_inject``            one packet left its source queue (global terminal)
``vec_ejects``            packets fully reassembled (global terminal array)
``vec_buffer_writes``     flits written into input VC buffers (ivc array)
``vec_traversals``        a crossbar traversal batch (ivc array; ``via`` and
                          ``popped`` as in the scalar ``on_traverse``)
``vec_traversal1``        one write-through buffer bypass (scalar ivc)
========================  ==================================================

Consumers implement the hooks as numpy reductions:

* :class:`VectorSeriesProbe` — the ``TimeSeriesProbe`` row schema
  (per-router occupancy + activity windows) computed with ``np.add.at``
  scatters; rows are bit-identical to the scalar probe on the parity
  workloads and feed the inherited CSV/JSON/heatmap exporters unchanged.
  On a ``BatchNetwork``, :meth:`VectorSeriesProbe.lane_view` slices the
  recorded samples into an ordinary per-lane ``TimeSeriesProbe``.
* :class:`VectorInvariantChecker` — flit conservation, credit
  conservation and pseudo-circuit legality as whole-array assertions,
  swept every cycle (or every ``stride`` cycles); failures raise the same
  structured :class:`~repro.core.violation.InvariantViolation` as the
  scalar monitors, with batched-lane attribution.

No module-level numpy import: numpy is an optional dependency and is
taken from the bound network (``network._np``) at bind time.
"""

from __future__ import annotations

from ...instrument.series import ACTIVITY_KEYS, TimeSeriesProbe
from ...monitor.base import Monitor


class VectorHooks:
    """No-op implementations of the vectorized hook vocabulary.

    ``vector_hooks`` is the capability flag ``VectorNetwork.bind_probe``
    duck-types on: probes without it (per-flit tracers) are refused
    loudly instead of silently observing nothing.
    """

    vector_hooks = True

    def vec_cycle_end(self, cycle: int, network) -> None:
        pass

    def vec_inject(self, cycle: int, terminal: int) -> None:
        pass

    def vec_ejects(self, cycle: int, terminals) -> None:
        pass

    def vec_buffer_writes(self, cycle: int, aivc) -> None:
        pass

    def vec_traversals(self, cycle: int, via: str, popped: bool,
                       ivcs) -> None:
        pass

    def vec_traversal1(self, cycle: int, aivc: int) -> None:
        pass


class _LaneShim:
    """Minimal network stand-in behind a :meth:`lane_view` probe: the
    exporters only touch ``topology`` (heatmap grid) and ``cycle``."""

    def __init__(self, topology, cycle: int):
        self.topology = topology
        self.cycle = cycle


class VectorSeriesProbe(VectorHooks, TimeSeriesProbe):
    """``TimeSeriesProbe`` computed as windowed numpy reductions.

    Binding to a scalar ``Network`` falls back to the inherited
    per-event accumulation, so one probe instance serves every backend —
    including the ``auto`` path that may resolve to scalar after a
    ``BackendUnsupportedError`` fallback. Binding to a
    ``VectorNetwork``/``BatchNetwork`` switches to array accumulators
    driven by the ``vec_*`` hooks.

    On a ``BatchNetwork`` the samples span every lane (router ids are
    global, lane-major); windows share the one global clock. Use
    :meth:`lane_view` for per-lane rows and heatmaps — the whole-batch
    ``heatmap()`` is refused by the grid-shape check already.
    """

    def __init__(self, window: int = 64, capacity: int | None = 4096):
        super().__init__(window=window, capacity=capacity)
        self._vec = None  # numpy module when vector-bound, else None

    def bind(self, network) -> None:
        if hasattr(network, "routers"):  # scalar core: inherited path
            self._vec = None
            super().bind(network)
            return
        np = network._np
        self._vec = np
        self._network = network
        lay = network._lay
        self._num = lay.R
        self._pv = network._Pi * network._V
        self._inj_router = lay.inj_ipid // network._Pi
        self._ej_router = lay.ej_opid // network._Po
        self._acc = {key: np.zeros(lay.R, dtype=np.int64)
                     for key in ACTIVITY_KEYS}
        self._win_start = network.cycle
        self._boundary = network.cycle + self.window

    # -- vectorized accumulation ----------------------------------------------

    def vec_inject(self, cycle, terminal):
        self._acc["injected"][self._inj_router[terminal]] += 1

    def vec_ejects(self, cycle, terminals):
        self._vec.add.at(self._acc["ejected"],
                         self._ej_router[terminals], 1)

    def vec_buffer_writes(self, cycle, aivc):
        self._vec.add.at(self._acc["buffer_writes"], aivc // self._pv, 1)

    def vec_traversals(self, cycle, via, popped, ivcs):
        np = self._vec
        acc = self._acc
        routers = ivcs // self._pv
        np.add.at(acc["hops"], routers, 1)
        if via != "sa":
            np.add.at(acc["sa_bypass"], routers, 1)
            if via == "buf":
                np.add.at(acc["buf_bypass"], routers, 1)
        if popped:
            np.add.at(acc["buffer_reads"], routers, 1)

    def vec_traversal1(self, cycle, aivc):
        acc = self._acc
        r = aivc // self._pv
        acc["hops"][r] += 1
        acc["sa_bypass"][r] += 1
        acc["buf_bypass"][r] += 1

    # -- window management ----------------------------------------------------

    def _occupancy(self):
        if self._vec is None:
            return super()._occupancy()
        return self._network._r_buffered.tolist()

    def _close(self, end):
        if self._vec is None:
            return super()._close(end)
        acc = self._acc
        row = {"start": self._win_start, "end": end,
               "occupancy": self._occupancy()}
        for key in ACTIVITY_KEYS:
            row[key] = acc[key].tolist()
            acc[key].fill(0)
        self.samples.append(row)
        self._win_start = end
        self._boundary = end + self.window

    # -- per-lane views -------------------------------------------------------

    def lane_view(self, lane: int) -> TimeSeriesProbe:
        """An ordinary ``TimeSeriesProbe`` holding one lane's rows.

        ``BatchNetwork`` router ids are lane-major, so lane ``k`` owns
        the contiguous id block ``[k * solo, (k + 1) * solo)``; slicing
        every recorded sample there yields rows identical to a solo run
        of that lane, and the view's exporters (CSV/JSON/heatmap) work
        unchanged against the batch's solo topology. Call
        :meth:`flush` first so the open window is included. The final
        window's ``end`` may exceed a solo run's (the shared chip drains
        to its slowest lane; the extra cycles are idle for this lane, so
        every count and occupancy column still matches solo exactly).
        """
        net = self._network
        lanes = getattr(net, "lanes", None) or getattr(net, "_lanes", 1)
        if not 0 <= lane < lanes:
            raise ValueError(f"lane {lane} out of range (lanes={lanes})")
        solo = self._num // lanes
        view = TimeSeriesProbe(window=self.window, capacity=self.capacity)
        view._num = solo
        view._network = _LaneShim(net.topology, net.cycle)
        lo, hi = lane * solo, (lane + 1) * solo
        for sample in self.samples:
            row = {"start": sample["start"], "end": sample["end"],
                   "occupancy": sample["occupancy"][lo:hi]}
            for key in ACTIVITY_KEYS:
                row[key] = sample[key][lo:hi]
            view.samples.append(row)
        return view


class VectorInvariantChecker(VectorHooks, Monitor):
    """Whole-array invariant sweeps over the vectorized core's state.

    Three invariant families, matching the scalar monitor suite:

    * **conservation** — every VC's occupancy equals its shadow
      writes − reads count, the per-router and whole-chip occupancy
      caches agree with ``buf_len``;
    * **credit** — every credit counter equals its limit minus the flits
      buffered downstream, in flight toward it, and credit returns still
      in the pipeline; counters stay within ``[0, limit]``;
    * **pseudo-circuit** — valid circuits have pairwise-distinct
      outputs and the output holder registers mirror them exactly.

    A sweep runs at the bottom of every ``stride``-th stepped cycle
    (``--check-stride``) and once more at :meth:`finish`. Violations
    carry lane-local (router, port, vc) coordinates plus the ``lane``
    index on batched networks.
    """

    name = "vector_invariants"

    def __init__(self, strict: bool = True, stride: int = 1):
        super().__init__(strict=strict)
        if stride < 1:
            raise ValueError("check stride must be >= 1 cycle")
        self.stride = stride
        self.sweeps = 0
        self._tick = 0

    def bind(self, network) -> None:
        super().bind(network)
        np = network._np
        self._np = np
        lay = network._lay
        self._lay = lay
        # Shadow flit-conservation counters; seeded from the live
        # occupancy so attaching mid-run stays sound.
        self._w = network.buf_len.copy()
        self._r = np.zeros(lay.NIVC, dtype=np.int64)
        # ivc -> the upstream credit index its buffered flits consumed
        # (-1 for unwired ports, which can never hold flits).
        ramp = np.arange(lay.NIVC, dtype=np.int64)
        up = lay.ip_upbase[ramp // lay.V]
        self._ivc_ci = np.where(up >= 0, up + ramp % lay.V, -1)

    # -- shadow accumulation --------------------------------------------------

    def vec_buffer_writes(self, cycle, aivc):
        self._np.add.at(self._w, aivc, 1)

    def vec_traversals(self, cycle, via, popped, ivcs):
        if popped:
            self._r[ivcs] += 1  # ivcs duplicate-free per traversal batch

    def vec_cycle_end(self, cycle, network):
        self._tick += 1
        if self._tick >= self.stride:
            self._tick = 0
            self.sweep(cycle)

    def finish(self, network) -> None:
        self.sweep(network.cycle)

    def snapshot(self) -> dict:
        return {"violations": len(self.violations),
                "sweeps": self.sweeps, "stride": self.stride}

    # -- localization ---------------------------------------------------------

    def _lane(self, lane: int):
        return lane if self._network._lanes > 1 else None

    def _loc_ivc(self, idx: int) -> dict:
        net = self._network
        lane, local = divmod(int(idx), self._lay.NIVC // net._lanes)
        return {"lane": self._lane(lane),
                "router": local // (net._Pi * net._V),
                "port": (local // net._V) % net._Pi,
                "vc": local % net._V}

    def _loc_op(self, opid: int) -> dict:
        net = self._network
        lane, local = divmod(int(opid), self._lay.NOP // net._lanes)
        return {"lane": self._lane(lane), "router": local // net._Po,
                "port": local % net._Po}

    def _loc_cred(self, ci: int) -> dict:
        net, lay = self._network, self._lay
        ci = int(ci)
        if ci < lay.NOVC:
            loc = self._loc_op(ci // net._V)
            loc["vc"] = ci % net._V
            return loc
        # NIC injection side: locate via the terminal's injection port.
        t = (ci - lay.NOVC) // net._V
        lane = t // net._T_local
        local = int(lay.inj_ipid[t]) % (lay.NIP // net._lanes)
        return {"lane": self._lane(lane), "router": local // net._Pi,
                "port": local % net._Pi, "vc": (ci - lay.NOVC) % net._V}

    # -- the sweep ------------------------------------------------------------

    def sweep(self, cycle: int) -> None:
        """Run every whole-array check against the live state."""
        self.sweeps += 1
        self._check_conservation(cycle)
        self._check_credit(cycle)
        if self._network._pc_enabled:
            self._check_pc(cycle)

    def _check_conservation(self, cycle: int) -> None:
        np = self._np
        net = self._network
        expect = self._w - self._r
        if not np.array_equal(net.buf_len, expect):
            i = int((net.buf_len != expect).nonzero()[0][0])
            self.violation(
                "conservation",
                "VC occupancy diverged from shadow writes - reads",
                cycle=cycle, expected=int(expect[i]),
                actual=int(net.buf_len[i]), **self._loc_ivc(i))
        per_router = net.buf_len.reshape(self._lay.R, -1).sum(axis=1)
        if not np.array_equal(per_router, net._r_buffered):
            r = int((per_router != net._r_buffered).nonzero()[0][0])
            lane, local = divmod(r, self._lay.R // net._lanes)
            self.violation(
                "occupancy_sync",
                "per-router buffered-flit cache out of sync with buf_len",
                cycle=cycle, lane=self._lane(lane), router=local,
                expected=int(per_router[r]),
                actual=int(net._r_buffered[r]))
        total = int(per_router.sum())
        if total != net._buffered:
            self.violation(
                "occupancy_total",
                "whole-chip buffered-flit count out of sync with buf_len",
                cycle=cycle, expected=total, actual=int(net._buffered))

    def _check_credit(self, cycle: int) -> None:
        np = self._np
        net, lay = self._network, self._lay
        limit = lay.cred_init
        if bool(((net.cred < 0) | (net.cred > limit)).any()):
            bad = ((net.cred < 0) | (net.cred > limit)).nonzero()[0]
            ci = int(bad[0])
            self.violation(
                "credit_range",
                "credit counter outside [0, limit]",
                cycle=cycle, expected=int(limit[ci]),
                actual=int(net.cred[ci]), **self._loc_cred(ci))
        expect = limit.copy()
        occ = (net.buf_len > 0).nonzero()[0]
        if len(occ):
            ci = self._ivc_ci[occ]
            wired = ci >= 0
            np.subtract.at(expect, ci[wired], net.buf_len[occ[wired]])
        for batches in net._arr_bucket.values():
            for links, dests, fids in batches:
                np.subtract.at(expect,
                               lay.ip_upbase[dests] + net.f_vc[fids], 1)
        for batches in net._ej_bucket.values():
            for terms, fids in batches:
                np.subtract.at(expect,
                               lay.ej_opid[terms] * net._V
                               + net.f_vc[fids], 1)
        for batches in net._cred_bucket.values():
            for idx in batches:
                np.subtract.at(expect, idx, 1)
        if not np.array_equal(net.cred, expect):
            ci = int((net.cred != expect).nonzero()[0][0])
            self.violation(
                "credit_count",
                "credit counter diverged from limit - buffered - "
                "in-flight - returning",
                cycle=cycle, expected=int(expect[ci]),
                actual=int(net.cred[ci]), **self._loc_cred(ci))

    def _check_pc(self, cycle: int) -> None:
        np = self._np
        net = self._network
        valid = net.pc_valid.nonzero()[0]
        outs = (valid // net._Pi) * net._Po + net.pc_out_port[valid]
        if len(outs) > 1:
            so = np.sort(outs)
            dup = (so[1:] == so[:-1]).nonzero()[0]
            if len(dup):
                opid = int(so[int(dup[0])])
                self.violation(
                    "pc_output_shared",
                    "two valid pseudo-circuits share one output port",
                    cycle=cycle, **self._loc_op(opid))
        expected = np.full(self._lay.NOP, -1, dtype=np.int64)
        expected[outs] = valid % net._Pi
        if not np.array_equal(expected, net.op_holder):
            opid = int((expected != net.op_holder).nonzero()[0][0])
            self.violation(
                "pc_holder_sync",
                "output holder register out of sync with circuit "
                "registers",
                cycle=cycle, expected=int(expected[opid]),
                actual=int(net.op_holder[opid]), **self._loc_op(opid))
