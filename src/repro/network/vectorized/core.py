"""Vectorized structure-of-arrays network core.

``VectorNetwork`` implements the same cycle-level contract as the scalar
``network.simulator.Network`` (see ARCHITECTURE.md "Backends") but steps
the *whole chip* per cycle as batched numpy array operations instead of
per-object method dispatch. All per-(router, port, vc) state lives in
flat int64/bool arrays indexed by the id spaces of ``layout.Layout``;
routing is an array gather over the compiled tables; round-robin
arbitration is the same rotate-and-isolate bit math as
``network.arbiters.RoundRobinArbiter``, evaluated for many arbiters at
once. Every supported configuration produces bit-identical
``NetworkStats`` fingerprints to the scalar core (locked in by
``tests/network/test_vectorized_parity.py``).

Event flow between cycles uses bucketed queues (dict keyed by cycle,
values are lists of index arrays): flit arrivals, credit returns and
ejections are appended as whole batches at traversal time and drained
in one concatenation when their cycle comes. Arrival batches are
stable-sorted by link id, reproducing the scalar phase-3 ascending
link-id tick order exactly.

Observability is array-native (see ``vectorized/obs.py``): probes and
monitors that implement the batched ``vector_hooks`` vocabulary
(``VectorSeriesProbe``, ``VectorInvariantChecker``) attach through
``bind_probe``/``attach_checker`` and receive whole index arrays at the
emission sites below; ``enable_profile`` accumulates per-phase wall time
inside the step loop. Deliberately unsupported (raising
``BackendUnsupportedError``): per-flit event probes (``FlitTracer`` and
other scalar-protocol instrumentation), non-tabulable routing
algorithms, multidrop (MECS) channels, non-roundrobin arbiters, and VC
policies other than dynamic/static — use the scalar backend for those.
"""

from __future__ import annotations

import math
import random
from time import perf_counter

from ...core.pseudo_circuit import Termination
from ...metrics.stats import NetworkStats
from ...routing import compile_routing, make_routing
from ...topology.base import Topology
from ...vcalloc import make_vc_policy
from ..buffers import BufferOverflowError
from ..config import NetworkConfig
from ..flit import Packet
from ..router import ProtocolError
from .layout import build_layout

from ..backend import BackendUnsupportedError, require_numpy


class VectorNetwork:
    """A complete simulated on-chip network, stepped as array ops."""

    def __init__(self, topology: Topology, config: NetworkConfig,
                 routing="xy", vc_policy="dynamic", seed: int = 1,
                 stats: NetworkStats | None = None,
                 active_set: bool = True, compiled_routing: bool = True,
                 probe=None, lanes: int = 1, lane_seeds=None):
        np = require_numpy()
        self._np = np
        if not compiled_routing:
            raise BackendUnsupportedError(
                f"the vectorized backend requires compiled routing tables "
                f"(compiled_routing=True) on topology {topology.name!r}; "
                f"use --backend scalar")
        if config.arbiter_kind != "roundrobin":
            raise BackendUnsupportedError(
                f"the vectorized backend supports only roundrobin "
                f"arbiters, not {config.arbiter_kind!r} (topology "
                f"{topology.name!r}); use --backend scalar")
        self.topology = topology
        self.config = config
        if isinstance(routing, str):
            routing = make_routing(routing, topology)
        if isinstance(vc_policy, str):
            vc_policy = make_vc_policy(vc_policy)
        self.routing = routing
        self.vc_policy = vc_policy
        if vc_policy.name not in ("dynamic", "static"):
            raise BackendUnsupportedError(
                f"the vectorized backend supports only the dynamic and "
                f"static VC policies, not {vc_policy.name!r} (topology "
                f"{topology.name!r}); use --backend scalar")
        self._static_vc = vc_policy.name == "static"
        for channel in topology.channels():
            if len(channel.endpoints) != 1:
                raise BackendUnsupportedError(
                    f"the vectorized backend supports only point-to-point "
                    f"channels (one endpoint); topology {topology.name!r} "
                    f"has multidrop channels — use --backend scalar")
        self.compiled_routing = compile_routing(routing, topology,
                                                config.num_vcs)
        if self.compiled_routing is None:
            raise BackendUnsupportedError(
                f"the vectorized backend requires a tabulable routing "
                f"algorithm; {type(routing).__name__} is dynamic-only on "
                f"topology {topology.name!r} — use --backend scalar")
        self.stats = stats if stats is not None else NetworkStats()
        self.rng = random.Random(seed)
        self.cycle = 0

        lay = build_layout(topology, config, self.compiled_routing,
                           lanes=lanes)
        self._lay = lay
        R, T, V, D = lay.R, lay.T, lay.V, lay.D
        Pi, Po = lay.Pi, lay.Po
        self._R, self._T, self._V, self._D = R, T, V, D
        self._lanes = lanes
        self._T_local = T // lanes
        self._Pi, self._Po = Pi, Po
        NIP, NIVC = lay.NIP, lay.NIVC
        NOP, NOVC = lay.NOP, lay.NOVC
        self._NIP, self._NIVC = NIP, NIVC
        self._NOP, self._NOVC = NOP, NOVC
        i64 = np.int64
        self._arV = np.arange(V, dtype=i64)

        # Input VC state (vc.VCState: 0 idle, 1 va, 2 active).
        self.vc_state = np.zeros(NIVC, dtype=i64)
        self.vc_out_port = np.full(NIVC, -1, dtype=i64)   # local out port
        self.vc_out_opid = np.full(NIVC, -1, dtype=i64)   # global out port
        self.vc_out_vc = np.full(NIVC, -1, dtype=i64)
        self.vc_out_cred = np.zeros(NIVC, dtype=i64)      # credit index
        # Input buffers: fixed-capacity rings of flit pool ids.
        self.buf_fid = np.zeros((NIVC, D), dtype=i64)
        self.buf_head = np.zeros(NIVC, dtype=i64)
        self.buf_len = np.zeros(NIVC, dtype=i64)
        # Pseudo-circuit registers (per input port) and output holders.
        self.pc_in_vc = np.full(NIP, -1, dtype=i64)
        self.pc_out_port = np.full(NIP, -1, dtype=i64)
        self.pc_valid = np.zeros(NIP, dtype=bool)
        self.ip_st = np.full(NIP, -1, dtype=i64)          # st_busy_cycle
        self.ip_last_out = np.full(NIP, -1, dtype=i64)
        self.ip_last_pair = np.full(NIP, -1, dtype=i64)   # src*T + dst
        self.op_st = np.full(NOP, -1, dtype=i64)
        self.op_holder = np.full(NOP, -1, dtype=i64)      # local in port
        self.op_hist = np.full(NOP, -1, dtype=i64)        # history register
        # Arbiter rotation state.
        self.in_arb_next = np.zeros(NIP, dtype=i64)
        self.out_arb_next = np.zeros(NOP, dtype=i64)
        # Unified credit space: router output VCs then NIC inject VCs.
        self.cred = lay.cred_init.copy()
        self.cred_free = np.ones(lay.NCRED, dtype=bool)   # owner is None
        self._credview = self.cred[:NOVC].reshape(NOP, V)

        # Flit pool (grown on demand).
        self._fcap = 1024
        self.f_pkt = np.zeros(self._fcap, dtype=i64)
        self.f_head = np.zeros(self._fcap, dtype=bool)
        self.f_tail = np.zeros(self._fcap, dtype=bool)
        self.f_vc = np.full(self._fcap, -1, dtype=i64)
        self.f_ready = np.zeros(self._fcap, dtype=i64)
        self._nflits = 0
        # Packet pool.
        self._pcap = 512
        self.p_src = np.zeros(self._pcap, dtype=i64)
        self.p_dst = np.zeros(self._pcap, dtype=i64)
        self.p_size = np.zeros(self._pcap, dtype=i64)
        self.p_choice = np.zeros(self._pcap, dtype=i64)
        self.p_create = np.zeros(self._pcap, dtype=i64)
        self.p_inject = np.full(self._pcap, -1, dtype=i64)
        self.p_hops = np.zeros(self._pcap, dtype=i64)
        self.p_sa = np.zeros(self._pcap, dtype=i64)
        self.p_buf = np.zeros(self._pcap, dtype=i64)
        self.p_rx = np.zeros(self._pcap, dtype=i64)
        # src * T + dst, precomputed at inject: the e2e-repeat stat
        # compares one gather per traversal instead of two.
        self.p_pair = np.zeros(self._pcap, dtype=i64)
        self.p_obj: list[Packet] = []

        # NIC send state: one in-progress transmission per inject VC.
        self.snd_pid = np.full((T, V), -1, dtype=i64)
        self.snd_next = np.zeros((T, V), dtype=i64)
        self.snd_left = np.zeros((T, V), dtype=i64)
        self.send_rr = np.zeros(T, dtype=i64)
        self.outstanding = np.zeros(T, dtype=i64)
        from collections import deque
        self._queues = [deque() for _ in range(T)]
        self.hq_valid = np.zeros(T, dtype=bool)
        self.hq_choice = np.zeros(T, dtype=i64)
        self.hq_dst = np.zeros(T, dtype=i64)
        self._num_queued = 0
        self._sending_count = 0
        # Per-terminal injection RNGs, drawn in the same order as
        # Network._build_nics so o1turn route choices match bit-for-bit.
        # With lane_seeds each lane draws its block from its own seed,
        # reproducing the solo network seeded the same way.
        if lane_seeds is None:
            self.nic_rngs = [random.Random(self.rng.getrandbits(32))
                             for _ in range(T)]
        else:
            if len(lane_seeds) != lanes:
                raise ValueError("lane_seeds must give one seed per lane")
            self.nic_rngs = [
                random.Random(lane_rng.getrandbits(32))
                for lane_rng in (random.Random(s) for s in lane_seeds)
                for _ in range(self._T_local)]

        # Bucketed event queues: cycle -> list of index-array batches.
        self._arr_bucket: dict[int, list] = {}
        self._cred_bucket: dict[int, list] = {}
        self._ej_bucket: dict[int, list] = {}
        self._ej_pending = 0
        self._buffered = 0
        self._r_buffered = np.zeros(R, dtype=i64)
        # Scratch arrays reused across cycles (reset after each use).
        self._smap = np.zeros(NIP, dtype=i64)       # port -> stage1 ivc
        self._port_mask = np.zeros(NIP, dtype=i64)  # SA request VC masks
        self._omask = np.zeros(NOP, dtype=i64)      # stage2 request masks
        self._iscand = np.zeros(NIVC, dtype=bool)

        # Hoisted config flags.
        self._pc_enabled = config.pseudo.enabled
        self._pc_speculation = config.pseudo.speculation
        self._pc_bypass = config.pseudo.buffer_bypass
        self._cd = max(config.credit_delay, 1)
        self._mshrs = config.mshrs
        self._iq = config.inject_queue
        # Uniform channel latency (the common case): traversal batches
        # can compute one scalar arrival cycle instead of per-flit.
        vlat = lay.op_latency[lay.op_valid]
        self._unilat = (int(vlat[0])
                        if vlat.size and bool((vlat == vlat[0]).all())
                        else None)
        # Every route choice spanning the full VC window lets the VC
        # policies skip the per-row range masking.
        self._fullrange = bool((lay.route_lo == 0).all()
                               and (lay.route_hi == self._V).all())
        # Per-terminal count of in-progress transmissions (fast row scan
        # for the NIC send phase) and a shared empty index array.
        self._snd_cnt = np.zeros(T, dtype=i64)
        self._empty_i64 = np.empty(0, dtype=i64)
        # Shared identity ramp: hot helpers slice this instead of
        # allocating a fresh arange per call (views are read-only
        # by convention there).
        self._ramp = np.arange(max(lay.NIVC, lay.NCRED), dtype=i64)
        # Largest possible credit count anywhere (ejection buffers can
        # be deeper than router buffers): bounds the VA sort keys.
        self._credmax = int(lay.cred_init.max())
        # Port-space base maps: crossing between the input and output
        # port id spaces of one router becomes a single gather.
        self._ip_opbase = (np.arange(NIP, dtype=i64) // Pi) * Po
        self._op_ipbase = (np.arange(NOP, dtype=i64) // Po) * Pi
        # Round-robin grant table: when every arbiter is small enough,
        # grants for all (size, mask, next) triples are precomputed with
        # the exact RoundRobinArbiter formula, turning ``_rr_pick`` into
        # one gather.
        S = max(V, Pi)
        if S <= 8:
            tab = np.zeros((S + 1) * 256 * 8, dtype=i64)
            for size in range(1, S + 1):
                full = (1 << size) - 1
                for mask in range(1, full + 1):
                    for nx in range(size):
                        rot = ((mask >> nx) | (mask << (size - nx))) & full
                        cand = (rot & -rot).bit_length() - 1 + nx
                        if cand >= size:
                            cand -= size
                        tab[(size * 256 + mask) * 8 + nx] = cand
            self._rr_tab = tab
        else:
            self._rr_tab = None

        # Observability (see vectorized/obs.py): an optional window
        # probe and/or invariant checker consume the batched hooks at
        # the emission sites; ``_vhooks`` holds the attached consumers,
        # so the cold path costs one truthiness test per site. The
        # probe binds last — its hooks read the arrays built above.
        self.probe = None
        self._vprobe = None
        self._checker = None
        self._vhooks = ()
        self._prof = None
        if probe is not None:
            self.bind_probe(probe)

    # -- pools ----------------------------------------------------------------

    def _grow_flits(self, need: int) -> None:
        np = self._np
        cap = self._fcap
        while cap < need:
            cap *= 2
        for name in ("f_pkt", "f_head", "f_tail", "f_vc", "f_ready"):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=old.dtype)
            new[:self._fcap] = old
            setattr(self, name, new)
        self._fcap = cap

    def _grow_packets(self, need: int) -> None:
        np = self._np
        cap = self._pcap
        while cap < need:
            cap *= 2
        for name in ("p_src", "p_dst", "p_size", "p_choice", "p_create",
                     "p_inject", "p_hops", "p_sa", "p_buf", "p_rx",
                     "p_pair"):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=old.dtype)
            new[:self._pcap] = old
            setattr(self, name, new)
        self._pcap = cap

    # -- driving --------------------------------------------------------------

    def inject(self, packet: Packet, lane: int = 0) -> None:
        """Hand a packet to its source NIC (mirrors Nic.enqueue).

        ``packet.src``/``dst`` are lane-local terminal ids; ``lane``
        selects the replicated block (always 0 on a solo network).
        ``p_src`` stores the *global* terminal so the outstanding
        scatter and per-lane ejection attribution need no extra map,
        while ``p_dst``/``p_pair`` stay lane-local — routing tables and
        the static VC designation hash are indexed by local dst, which
        keeps every lane bit-identical to its solo run.
        """
        t = packet.src + lane * self._T_local
        q = self._queues[t]
        if 0 < self._iq <= len(q):
            raise RuntimeError(
                f"NIC {t}: source queue overflow ({self._iq})")
        self.routing.on_inject(packet, self.nic_rngs[t])
        pk = len(self.p_obj)
        if pk >= self._pcap:
            self._grow_packets(pk + 1)
        self.p_obj.append(packet)
        self.p_src[pk] = t
        self.p_dst[pk] = packet.dst
        self.p_pair[pk] = packet.src * self._T_local + packet.dst
        self.p_size[pk] = packet.size
        self.p_choice[pk] = packet.route_choice
        self.p_create[pk] = packet.create_cycle
        if not q:
            self.hq_valid[t] = True
            self.hq_choice[t] = packet.route_choice
            self.hq_dst[t] = packet.dst
        q.append(pk)
        self._num_queued += 1

    def step(self) -> None:
        """Advance the whole network by one cycle."""
        np = self._np
        c = self.cycle
        hooks = self._vhooks
        if hooks:
            for h in hooks:
                h.on_cycle_start(c, self)
        prof = self._prof
        if prof is not None:
            t0 = perf_counter()
        batch = self._cred_bucket.pop(c, None)
        if batch is not None:
            idx = batch[0] if len(batch) == 1 else np.concatenate(batch)
            np.add.at(self.cred, idx, 1)
        ej = self._ej_bucket.pop(c, None)
        if ej is not None:
            if len(ej) == 1:
                terms, fids = ej[0]
            else:
                terms = np.concatenate([b[0] for b in ej])
                fids = np.concatenate([b[1] for b in ej])
            self._eject(c, terms, fids)
        arr = self._arr_bucket.pop(c, None)
        arrivals = None
        if arr is not None:
            if len(arr) == 1:
                links, dests, fids = arr[0]
            else:
                links = np.concatenate([b[0] for b in arr])
                dests = np.concatenate([b[1] for b in arr])
                fids = np.concatenate([b[2] for b in arr])
            if len(links) > 1:
                order = links.argsort(kind="stable")
                dests = dests[order]
                fids = fids[order]
            arrivals = (dests, fids)
        if prof is not None:
            prof["st_credit"] += perf_counter() - t0
            prof["stepped_cycles"] += 1
        if self._buffered or arrivals is not None:
            self._step_routers(c, arrivals)
        if self._num_queued or self._sending_count:
            if prof is not None:
                t0 = perf_counter()
                self._tick_inject(c)
                prof["inject"] += perf_counter() - t0
            else:
                self._tick_inject(c)
        if hooks:
            for h in hooks:
                h.vec_cycle_end(c, self)
        self.cycle = c + 1

    def _next_event_cycle(self) -> float:
        nxt = math.inf
        for bucket in (self._arr_bucket, self._cred_bucket,
                       self._ej_bucket):
            if bucket:
                k = min(bucket)
                if k < nxt:
                    nxt = k
        return nxt

    def _try_fast_forward(self, bound: int,
                          traffic_next: int | None) -> None:
        if self._buffered or self._num_queued or self._sending_count:
            return
        nxt = self._next_event_cycle()
        if traffic_next is not None and traffic_next < nxt:
            nxt = traffic_next
        target = bound if nxt == math.inf else min(bound, int(nxt))
        if target > self.cycle:
            if self._prof is not None:
                self._prof["ff_cycles"] += target - self.cycle
            self.cycle = target

    def fast_forward(self, bound: int,
                     traffic_next: int | None = None) -> None:
        """Skip to the next scheduled event if nothing acts per-cycle."""
        self._try_fast_forward(bound, traffic_next)

    def run(self, cycles: int, traffic=None) -> NetworkStats:
        """Run for ``cycles`` cycles, ticking ``traffic`` once per cycle."""
        end = self.cycle + cycles
        next_injection = (getattr(traffic, "next_injection_cycle", None)
                          if traffic is not None else None)
        while self.cycle < end:
            if traffic is not None:
                traffic.tick(self, self.cycle)
            self.step()
            if traffic is None:
                self._try_fast_forward(end, None)
            elif next_injection is not None:
                self._try_fast_forward(end, next_injection(self.cycle))
        return self.stats

    def drain(self, max_cycles: int = 1_000_000) -> NetworkStats:
        """Run without new traffic until every packet is delivered."""
        deadline = self.cycle + max_cycles
        while not self.quiescent():
            if self.cycle >= deadline:
                raise RuntimeError(
                    f"network failed to drain within {max_cycles} cycles "
                    f"({self.in_flight_packets()} packets left)")
            self.step()
            if not self.quiescent():
                self._try_fast_forward(deadline, None)
        return self.stats

    # -- queries --------------------------------------------------------------

    def in_flight_packets(self) -> int:
        return self._num_queued + (self.stats.injected_packets
                                   - self.stats.ejected_packets)

    def quiescent(self) -> bool:
        if self._num_queued or self._sending_count or self._ej_pending:
            return False
        stats = self.stats
        return stats.injected_packets == stats.ejected_packets

    def bind_probe(self, probe) -> None:
        """Attach a vector-aware probe (``vector_hooks`` protocol).

        Probes that need the scalar per-event stream (``FlitTracer``,
        the plain ``TimeSeriesProbe``) are refused loudly: replaying
        per-flit events from array batches would serialize the core.
        """
        if not getattr(probe, "vector_hooks", False):
            raise BackendUnsupportedError(
                f"the vectorized backend cannot drive "
                f"{type(probe).__name__}: per-flit event instrumentation "
                f"(e.g. Chrome tracing) needs the scalar core (topology "
                f"{self.topology.name!r}) — use --backend scalar, or a "
                f"vector-aware probe such as VectorSeriesProbe")
        probe.bind(self)
        self.probe = probe
        self._vprobe = probe
        self._rebuild_hooks()

    def attach_checker(self, checker) -> None:
        """Attach a vector-aware invariant checker (``--check``)."""
        checker.bind(self)
        self._checker = checker
        self._rebuild_hooks()

    def _rebuild_hooks(self) -> None:
        self._vhooks = tuple(h for h in (self._vprobe, self._checker)
                             if h is not None)

    def enable_profile(self) -> dict:
        """Switch on the per-phase wall-time profiler (see ``profile``)."""
        if self._prof is None:
            self._prof = {"bw": 0.0, "va_sa": 0.0, "st_credit": 0.0,
                          "pc": 0.0, "inject": 0.0,
                          "stepped_cycles": 0, "ff_cycles": 0}
        return self._prof

    def profile(self) -> dict | None:
        """JSON-ready per-phase profile since ``enable_profile``.

        Phase attribution follows the step loop's block structure:
        ``bw`` is arrival processing (buffer writes and bypass
        attempts), ``va_sa`` covers VC allocation, SA request
        collection and switch allocation (including the ST of granted
        flits), ``st_credit`` covers the bucket drains (credit returns,
        ejections, arrival assembly) plus circuit-reuse traversals,
        ``pc`` covers pseudo-circuit candidate scan and maintenance,
        and ``inject`` is the NIC send phase. ``ff_cycles`` counts
        cycles skipped by quiescence fast-forward (zero wall time).
        """
        prof = self._prof
        if prof is None:
            return None
        phases = {k: prof[k]
                  for k in ("bw", "va_sa", "st_credit", "pc", "inject")}
        total = sum(phases.values())
        return {
            "phases": {k: round(v, 6) for k, v in phases.items()},
            "fractions": {k: round(v / total, 4) if total else 0.0
                          for k, v in phases.items()},
            "total_seconds": round(total, 6),
            "stepped_cycles": prof["stepped_cycles"],
            "ff_cycles": prof["ff_cycles"],
        }

    # -- stats attribution hooks ----------------------------------------------
    # Every NetworkStats update flows through one of these methods so the
    # batched subclass (vectorized/batch.py) can redirect each event to
    # the lane it belongs to; the index arguments (ivc/port/opid spaces)
    # carry the lane via integer division by the solo extent.

    def _count_injection(self, t: int, size: int) -> None:
        stats = self.stats
        stats.injected_packets += 1
        stats.injected_flits += size

    def _count_ejections(self, c: int, tpk, sizes) -> None:
        stats = self.stats
        stats.ejected_packets += len(tpk)
        stats.ejected_flits += int(sizes.sum())
        if c >= stats.warmup_cycles:
            lats = c - self.p_create[tpk]
            stats.measured_packets += len(tpk)
            stats.total_latency += int(lats.sum())
            stats.total_network_latency += int(
                (c - self.p_inject[tpk]).sum())
            stats.total_hops += int(self.p_hops[tpk].sum())
            hist = stats.latency_histogram
            for lat in lats.tolist():
                hist[lat] = hist.get(lat, 0) + 1

    def _count_va(self, wivc) -> None:
        self.stats.va_allocations += len(wivc)

    def _count_va1(self, ip_: int) -> None:
        self.stats.va_allocations += 1

    def _count_traversals(self, via: str, popped: bool, ports, hports,
                          e2e_rep, xbar_rep) -> None:
        stats = self.stats
        n = len(ports)
        if via == "sa":
            stats.sa_arbitrations += n
        else:
            stats.sa_bypass_flits += n
            if via == "buf":
                stats.buf_bypass_flits += n
        stats.flit_hops += n
        stats.xbar_flits += n
        if popped:
            stats.buffer_reads += n
        stats.xbar_repeats += int(xbar_rep.sum())
        if hports is not None:
            stats.e2e_packets += len(hports)
            stats.e2e_repeats += int(e2e_rep.sum())

    def _count_traversal1(self, ip_: int, e2e_rep, xbar_rep) -> None:
        stats = self.stats
        if e2e_rep is not None:
            stats.e2e_packets += 1
            if e2e_rep:
                stats.e2e_repeats += 1
        stats.sa_bypass_flits += 1
        stats.buf_bypass_flits += 1
        stats.flit_hops += 1
        stats.xbar_flits += 1
        if xbar_rep:
            stats.xbar_repeats += 1

    def _count_terminations(self, pps, reason: Termination) -> None:
        self.stats.pc_terminations[reason] += len(pps)

    def _count_termination1(self, ip_: int, reason: Termination) -> None:
        self.stats.pc_terminations[reason] += 1

    def _count_established(self, g_port, refreshed) -> None:
        self.stats.pc_established += len(g_port) - int(refreshed.sum())

    def _count_restored(self, uo) -> None:
        self.stats.pc_restored += len(uo)

    def _count_buffer_writes(self, aivc) -> None:
        self.stats.buffer_writes += len(aivc)

    def check_invariants(self) -> None:
        """Assert pseudo-circuit and credit invariants (tests only)."""
        np = self._np
        lay = self._lay
        valid = (self.pc_valid).nonzero()[0]
        outs = (valid // self._Pi) * self._Po + self.pc_out_port[valid]
        if len(np.unique(outs)) != len(outs):
            raise AssertionError("two valid circuits share an output")
        expected = np.full(self._NOP, -1, dtype=np.int64)
        expected[outs] = valid % self._Pi
        if not np.array_equal(expected, self.op_holder):
            raise AssertionError("pc_holder out of sync with registers")
        limit = lay.cred_init
        if ((self.cred < 0) | (self.cred > limit)).any():
            raise AssertionError("credit counter out of range")
        occ = (self.buf_len > 0).reshape(self._R, -1).any(axis=1)
        if not np.array_equal(occ, self._r_buffered > 0):
            raise AssertionError("router occupancy counters out of sync")

    # -- ejection (NIC receive side) ------------------------------------------

    def _eject(self, c: int, terms, fids) -> None:
        """Process ejection arrivals due this cycle (Nic.tick_eject)."""
        np = self._np
        n = len(fids)
        self._ej_pending -= n
        # Free the reassembly buffer immediately; the credit lands at the
        # router's ejection port after the configured delay.
        ci = self._lay.ej_opid[terms] * self._V + self.f_vc[fids]
        self._cred_bucket.setdefault(c + self._cd, []).append(ci)
        # At most one flit per packet per cycle (a packet's flits cross
        # their final link on distinct cycles), so plain fancy indexing
        # replaces the scatter-add.
        pks = self.f_pkt[fids]
        rx = self.p_rx[pks] + 1
        self.p_rx[pks] = rx
        tidx = (self.f_tail[fids]).nonzero()[0]
        if not len(tidx):
            return
        tpk = pks[tidx]
        sizes = self.p_size[tpk]
        if (rx[tidx] != sizes).any():
            raise RuntimeError(
                "NIC: tail arrived before all flits of its packet")
        self._count_ejections(c, tpk, sizes)
        np.subtract.at(self.outstanding, self.p_src[tpk], 1)
        hooks = self._vhooks
        if hooks:
            for h in hooks:
                h.vec_ejects(c, terms[tidx])
        objs = self.p_obj
        for k in tpk.tolist():
            pkt = objs[k]
            pkt.eject_cycle = c
            pkt.inject_cycle = int(self.p_inject[k])
            pkt.hops = int(self.p_hops[k])
            pkt.sa_bypass_hops = int(self.p_sa[k])
            pkt.buf_bypass_hops = int(self.p_buf[k])

    # -- injection (NIC send side) --------------------------------------------

    def _tick_inject(self, c: int) -> None:
        """Per-NIC: start the head-of-queue packet, then send one flit."""
        np = self._np
        if self._num_queued:
            can = self.hq_valid
            if self._mshrs > 0:
                can = can & (self.outstanding < self._mshrs)
            starters = (can).nonzero()[0]
            if len(starters):
                bases = self._NOVC + starters * self._V
                choice = (None if self._fullrange
                          else self.hq_choice[starters])
                dsts = (self.hq_dst[starters] if self._static_vc
                        else None)
                picks = self._policy_pick(bases, choice, dsts, None)
                okidx = (picks >= 0).nonzero()[0]
                for t, vc in zip(starters[okidx].tolist(),
                                 picks[okidx].tolist()):
                    self._start_packet(c, t, vc)
        if not self._sending_count:
            return
        rows = (self._snd_cnt).nonzero()[0]
        bases = self._NOVC + rows * self._V
        slots = bases[:, None] + self._arV[None, :]
        elig = (self.snd_left[rows] > 0) & (self.cred[slots] > 0)
        if self._V <= 8:
            masks = np.packbits(elig, axis=1,
                                bitorder="little")[:, 0].astype(np.int64)
        else:
            masks = (elig.astype(np.int64)
                     << self._arV[None, :]).sum(axis=1)
        has = masks > 0
        rows, masks, bases = rows[has], masks[has], bases[has]
        if not len(rows):
            return
        vcs = self._rr_pick(masks, self.send_rr[rows], self._V)
        self.send_rr[rows] = (vcs + 1) % self._V
        ci = bases + vcs
        fids = self.snd_next[rows, vcs]
        self.f_vc[fids] = vcs
        self.cred[ci] -= 1
        lay = self._lay
        self._arr_bucket.setdefault(c + 1, []).append(
            (lay.inj_link[rows], lay.inj_ipid[rows], fids))
        self.snd_next[rows, vcs] = fids + 1
        left = self.snd_left[rows, vcs] - 1
        self.snd_left[rows, vcs] = left
        didx = (left == 0).nonzero()[0]
        if len(didx):
            drows = rows[didx]
            self.cred_free[ci[didx]] = True
            self.snd_pid[drows, vcs[didx]] = -1
            self._snd_cnt[drows] -= 1
            self._sending_count -= len(didx)

    def _start_packet(self, c: int, t: int, vc: int) -> None:
        """Pop the queue head into a per-VC transmission (sender VA).

        Scalar on purpose: a couple of starts per cycle is the norm,
        and python-scalar indexing beats fixed-overhead vector ops at
        that size."""
        q = self._queues[t]
        pk = q.popleft()
        self._num_queued -= 1
        if q:
            head = q[0]
            self.hq_choice[t] = self.p_choice[head]
            self.hq_dst[t] = self.p_dst[head]
        else:
            self.hq_valid[t] = False
        self.cred_free[self._NOVC + t * self._V + vc] = False
        self.p_inject[pk] = c
        size = int(self.p_size[pk])
        self._count_injection(t, size)
        hooks = self._vhooks
        if hooks:
            for h in hooks:
                h.vec_inject(c, t)
        self.outstanding[t] += 1
        fid0 = self._nflits
        if fid0 + size > self._fcap:
            self._grow_flits(fid0 + size)
        self._nflits = fid0 + size
        self.f_pkt[fid0:fid0 + size] = pk
        self.f_head[fid0] = True
        self.f_tail[fid0 + size - 1] = True
        self.snd_pid[t, vc] = pk
        self.snd_next[t, vc] = fid0
        self.snd_left[t, vc] = size
        self._snd_cnt[t] += 1
        self._sending_count += 1

    # -- shared vectorized helpers --------------------------------------------

    def _rr_pick(self, masks, nxt, sizes):
        """Vectorized RoundRobinArbiter.grant_mask: one grant per row.

        ``sizes`` is a scalar or per-row array of arbiter sizes; callers
        update the rotation state themselves (``cand + 1 mod size``).
        """
        tab = self._rr_tab
        if tab is not None:
            return tab[(sizes * 256 + masks) * 8 + nxt]
        np = self._np
        full = (np.int64(1) << sizes) - 1
        rot = ((masks >> nxt) | (masks << (sizes - nxt))) & full
        low = rot & -rot
        off = np.bitwise_count(low - 1).astype(np.int64)
        cand = off + nxt
        return np.where(cand >= sizes, cand - sizes, cand)

    def _cumcount(self, keys):
        """Position of each element within its run of equal ``keys``
        (keys must be grouped; order within groups is preserved)."""
        np = self._np
        n = len(keys)
        idx = self._ramp[:n]
        change = np.empty(n, dtype=bool)
        change[0] = True
        change[1:] = keys[1:] != keys[:-1]
        gstart = np.maximum.accumulate(np.where(change, idx, 0))
        return idx - gstart

    def _policy_pick(self, bases, choices, dsts, ej_mask):
        """Vectorized VC allocation over credit-space rows.

        ``bases`` are credit indices of vc 0 for each row; returns the
        chosen VC per row or -1. ``ej_mask`` marks ejection rows (None
        when no row can be an ejection port, i.e. NIC injection).
        """
        np = self._np
        slots = bases[:, None] + self._arV[None, :]
        free = self.cred_free[slots]
        if not self._fullrange:
            lay = self._lay
            lo = lay.route_lo[choices]
            hi = lay.route_hi[choices]
            free = free & ((self._arV[None, :] >= lo[:, None])
                           & (self._arV[None, :] < hi[:, None]))
        rows = self._ramp[:len(bases)]
        if not self._static_vc:
            score = np.where(free, self.cred[slots], -1)
            pick = score.argmax(axis=1)
            ok = score[rows, pick] >= 0
            return np.where(ok, pick, -1)
        # Static: destination-designated VC; ejection rows fall back to
        # the first free VC in range (StaticVCAllocation.allocate).
        desig = (dsts % self._V if self._fullrange
                 else lo + dsts % (hi - lo))
        ok = free[rows, desig]
        pick = np.where(ok, desig, -1)
        if ej_mask is not None and ej_mask.any():
            first = free.argmax(axis=1)
            ok_ej = free[rows, first]
            pick = np.where(ej_mask, np.where(ok_ej, first, -1), pick)
        return pick

    def _alloc_one(self, opid: int, choice: int, dst: int,
                   ejection: bool) -> int:
        """Scalar VC allocation for the buffer-bypass path (one packet)."""
        lay = self._lay
        lo = int(lay.route_lo[choice])
        hi = int(lay.route_hi[choice])
        base = opid * self._V
        cred_free = self.cred_free
        if not self._static_vc:
            best = -1
            best_credits = -1
            cred = self.cred
            for v in range(lo, hi):
                if cred_free[base + v]:
                    credits = int(cred[base + v])
                    if credits > best_credits:
                        best = v
                        best_credits = credits
            return best
        if ejection:
            for v in range(lo, hi):
                if cred_free[base + v]:
                    return v
            return -1
        v = lo + dst % (hi - lo)
        return v if cred_free[base + v] else -1

    # -- router pipeline ------------------------------------------------------

    def _step_routers(self, c: int, arrivals) -> None:
        """Phase 4: the per-router VA/SA/pseudo-circuit pipeline step,
        batched over every router with work this cycle.

        Routers are independent within a cycle (credits and flits they
        emit land at later cycles), so stepping each phase across the
        whole chip is equivalent to the scalar per-router sequential
        step; within a router the scalar phase order is preserved.
        """
        np = self._np
        Pi, Po, V = self._Pi, self._Po, self._V
        prof = self._prof
        if prof is not None:
            t_mark = perf_counter()
        # Work set: routers with buffered flits or arrivals staged this
        # cycle (scalar step() early-returns for all others; maintenance
        # runs only for routers that entered step).
        work_r = self._r_buffered > 0
        if arrivals is not None:
            work_r = work_r.copy()
            work_r[arrivals[0] // Pi] = True
        # With every router in the work set (the common case at load)
        # the per-state masks need no work_r filtering at all.
        wall = bool(work_r.all())
        # Occupancy scan shared by VA and SA: occupied ivcs of work
        # routers in ascending order, their front flits and readiness.
        if self._buffered:
            occm = self.buf_len > 0
            if not wall:
                occm = occm & work_r.repeat(Pi * V)
            occ_idx = (occm).nonzero()[0]
            fronts = self.buf_fid[occ_idx, self.buf_head[occ_idx]]
            fready = self.f_ready[fronts] <= c
            self._va_allocate(c, occ_idx, fronts, fready)
        else:
            occ_idx = fronts = None
            fready = None
        if prof is not None:
            t_now = perf_counter()
            prof["va_sa"] += t_now - t_mark
            t_mark = t_now
        pc_enabled = self._pc_enabled
        if pc_enabled:
            cand_ip, cand_ivc = self._pc_candidates(c, work_r, wall)
        else:
            cand_ip = cand_ivc = ()
        if prof is not None:
            t_now = perf_counter()
            prof["pc"] += t_now - t_mark
            t_mark = t_now
        order, claimed_ip, claimed_op = self._collect_requests(
            c, occ_idx, fronts, fready, cand_ivc)
        if prof is not None:
            t_now = perf_counter()
            prof["va_sa"] += t_now - t_mark
            t_mark = t_now
        # Bypass unblocked candidates; blocked ones join SA (ascending
        # input-port order, matching the scalar candidate dict). The
        # blocked decision is independent across candidates — they have
        # pairwise-distinct inputs and outputs, so one candidate's
        # claims or traversal never flips another's test — which makes
        # the whole classification one batch of mask ops.
        if len(cand_ip):
            copids = self.vc_out_opid[cand_ivc]
            in_busy = self.ip_st[cand_ip] == c
            blocked = (claimed_ip[cand_ip] | claimed_op[copids]
                       | (in_busy != (self.op_st[copids] == c)))
            bidx = (blocked).nonzero()[0]
            if len(bidx):
                bip = cand_ip[bidx]
                bivc = cand_ivc[bidx]
                fresh = self._port_mask[bip] == 0
                self._port_mask[bip] |= np.int64(1) << (bivc % V)
                claimed_ip[bip] = True
                claimed_op[copids[bidx]] = True
                fresh_ports = bip[fresh]
                if len(fresh_ports):
                    order = (np.concatenate([order, fresh_ports])
                             if len(order) else fresh_ports)
            # Unblocked candidates bypass SA in one batch; busy input
            # ports carry streamed circuits (the previous flit of the
            # same connection traverses this cycle) whose flit follows
            # through the held crossbar connection one cycle later —
            # the per-row delay mask.
            fidx = (~blocked).nonzero()[0]
            if len(fidx):
                self._traverse_batch(c, cand_ivc[fidx], "pc",
                                     in_busy[fidx])
        if prof is not None:
            t_now = perf_counter()
            prof["st_credit"] += t_now - t_mark
            t_mark = t_now
        if arrivals is not None:
            self._process_arrivals(c, arrivals, claimed_ip, claimed_op)
        if prof is not None:
            t_now = perf_counter()
            prof["bw"] += t_now - t_mark
            t_mark = t_now
        if len(order):
            self._allocate_switch(c, order)
        if prof is not None:
            t_now = perf_counter()
            prof["va_sa"] += t_now - t_mark
            t_mark = t_now
        if pc_enabled:
            self._pc_maintenance(c, work_r, wall)
        if prof is not None:
            prof["pc"] += perf_counter() - t_mark

    # -- VA stage -------------------------------------------------------------

    def _va_allocate(self, c: int, occ_idx, fronts, fready) -> None:
        """Route idle fronts and allocate output VCs, visiting ports in
        the scalar rotated order (start = cycle % num_inports)."""
        np = self._np
        Pi, Po, V = self._Pi, self._Po, self._V
        st = self.vc_state[occ_idx]
        vam = (st != 2) & fready
        if not vam.any():
            return
        rows = occ_idx[vam]
        rfronts = fronts[vam]
        iidx = (st[vam] == 0).nonzero()[0]
        if len(iidx):
            iivc = rows[iidx]
            ifronts = rfronts[iidx]
            if not self.f_head[ifronts].all():
                raise ProtocolError(
                    "body flit at the front of an idle VC")
            pk = self.f_pkt[ifronts]
            r = iivc // (Pi * V)
            out = self._lay.route_out[r, self.p_choice[pk],
                                     self.p_dst[pk]]
            self.vc_state[iivc] = 1
            self.vc_out_port[iivc] = out
            self.vc_out_opid[iivc] = r * Po + out
        opids = self.vc_out_opid[rows]
        if self._fullrange and not self._static_vc:
            # Dynamic picks never change credit *counts* during the
            # pass, only the free bits — so a pool's successive picks
            # are exactly its free VCs in (credits desc, vc asc) order,
            # and every row's pick is one gather at its service rank
            # (rank = position in the scalar rotated port/vc visit
            # order among rows of the same pool). One composite sort
            # groups rows by pool, service-ordered within it.
            ports = rows // V
            r = ports // Pi
            rotp = (ports - r * Pi - c) % self._lay.nip[r]
            svc = (r * Pi + rotp) * V + rows % V
            order = (opids * self._NIVC + svc).argsort(kind="stable")
            sop = opids[order]
            n = len(sop)
            idxn = self._ramp[:n]
            fmask = np.empty(n, dtype=bool)
            fmask[0] = True
            fmask[1:] = sop[1:] != sop[:-1]
            gstart = np.maximum.accumulate(np.where(fmask, idxn, 0))
            kraw = idxn - gstart
            gid = fmask.cumsum() - 1
            uo = sop[fmask]
            slots = uo[:, None] * V + self._arV[None, :]
            cmax = self._credmax
            big = (cmax + 1) * V
            key = ((cmax - self.cred[slots]) * V
                   + self._arV[None, :]
                   + ~self.cred_free[slots] * big)
            vorder = key.argsort(axis=1)
            skey = np.take_along_axis(key, vorder, 1)
            kpos = np.minimum(kraw, V - 1)
            good = (kraw < V) & (skey[gid, kpos] < big)
            gidx = (good).nonzero()[0]
            if len(gidx):
                wivc = rows[order[gidx]]
                wvc = vorder[gid[gidx], kpos[gidx]]
                ci = sop[gidx] * V + wvc
                self.cred_free[ci] = False
                self.vc_state[wivc] = 2
                self.vc_out_vc[wivc] = wvc
                self.vc_out_cred[wivc] = ci
                self._count_va(wivc)
            return
        sop = opids.copy()
        sop.sort()
        if not (sop[1:] == sop[:-1]).any():
            pk = self.f_pkt[rfronts]
            choices = self.p_choice[pk]
            dsts = self.p_dst[pk]
            ej = self._lay.op_eject[opids]
            picks = self._policy_pick(opids * V, choices, dsts, ej)
            widx = (picks >= 0).nonzero()[0]
            if len(widx):
                wivc = rows[widx]
                wvc = picks[widx]
                ci = opids[widx] * V + wvc
                self.cred_free[ci] = False
                self.vc_state[wivc] = 2
                self.vc_out_vc[wivc] = wvc
                self.vc_out_cred[wivc] = ci
                self._count_va(wivc)
            return
        # Contended: visit ports in the scalar rotated service order
        # (ports rotate by cycle, VCs ascend) via one composite-key
        # sort, then rank rows within their output pool.
        ports = rows // V
        r = ports // Pi
        rotp = (ports - r * Pi - c) % self._lay.nip[r]
        sidx = ((r * Pi + rotp) * V + rows % V).argsort(kind="stable")
        srows = rows[sidx]
        opids = self.vc_out_opid[srows]
        og = opids.argsort(kind="stable")
        rank = np.empty(len(srows), dtype=np.int64)
        rank[og] = self._cumcount(opids[og])
        pk = self.f_pkt[rfronts[sidx]]
        choices = self.p_choice[pk]
        dsts = self.p_dst[pk]
        ej = self._lay.op_eject[opids]
        for k in range(int(rank.max()) + 1):
            rnd = rank == k
            rr = srows[rnd]
            ropid = opids[rnd]
            picks = self._policy_pick(ropid * V, choices[rnd], dsts[rnd],
                                      ej[rnd])
            ok = picks >= 0
            if not ok.any():
                continue
            wivc = rr[ok]
            wvc = picks[ok]
            ci = ropid[ok] * V + wvc
            self.cred_free[ci] = False
            self.vc_state[wivc] = 2
            self.vc_out_vc[wivc] = wvc
            self.vc_out_cred[wivc] = ci
            self._count_va(wivc)

    # -- pseudo-circuit candidates --------------------------------------------

    def _pc_candidates(self, c: int, work_r, wall: bool):
        """Input ports whose circuit's VC has a matching ready front."""
        np = self._np
        Pi, V = self._Pi, self._V
        validm = self.pc_valid
        if not wall:
            validm = validm & work_r.repeat(Pi)
        pp = (validm).nonzero()[0]
        if not len(pp):
            return pp, pp
        civc = pp * V + self.pc_in_vc[pp]
        # Read fronts for every circuit VC unconditionally (stale ring
        # slots of empty VCs still hold valid pool indices), then apply
        # the occupied and ready filters in one pass.
        fronts = self.buf_fid[civc, self.buf_head[civc]]
        live = ((self.buf_len[civc] > 0)
                          & (self.f_ready[fronts] <= c)).nonzero()[0]
        if not len(live):
            return live, live
        pp, civc, fronts = pp[live], civc[live], fronts[live]
        heads = self.f_head[fronts]
        active = self.vc_state[civc] == 2
        if ((~heads) & (~active)).any():
            raise ProtocolError("body flit on inactive VC")
        # Route is known (the VA phase ran first this cycle).
        mismatch = heads & (self.vc_out_port[civc]
                            != self.pc_out_port[pp])
        midx = (mismatch).nonzero()[0]
        if len(midx):
            self._terminate_batch(pp[midx], Termination.ROUTE_MISMATCH)
            keep = (active & ~mismatch).nonzero()[0]
        else:
            keep = (active).nonzero()[0]
        if not len(keep):
            return keep, keep
        pp, civc = pp[keep], civc[keep]
        nidx = (self.cred[self.vc_out_cred[civc]] == 0).nonzero()[0]
        if len(nidx):
            self._terminate_batch(pp[nidx], Termination.NO_CREDIT)
            ok = np.ones(len(pp), dtype=bool)
            ok[nidx] = False
            pp, civc = pp[ok], civc[ok]
        return pp, civc

    # -- SA stage -------------------------------------------------------------

    def _collect_requests(self, c: int, occ_idx, fronts, fready,
                          cand_ivc):
        """Collect SA requests into the shared per-port VC-mask scratch;
        returns (order, claimed_ip, claimed_op)."""
        np = self._np
        V = self._V
        claimed_ip = np.zeros(self._NIP, dtype=bool)
        claimed_op = np.zeros(self._NOP, dtype=bool)
        if occ_idx is None or not len(occ_idx):
            return self._empty_i64, claimed_ip, claimed_op
        req = (self.vc_state[occ_idx] == 2) & fready
        ridx = occ_idx[req]
        if len(cand_ivc):
            iscand = self._iscand
            iscand[cand_ivc] = True
            keep = ~iscand[ridx]
            iscand[cand_ivc] = False
            ridx = ridx[keep]
        if len(ridx):
            ridx = ridx[self.cred[self.vc_out_cred[ridx]] > 0]
        if not len(ridx):
            return self._empty_i64, claimed_ip, claimed_op
        ports = ridx // V
        np.bitwise_or.at(self._port_mask, ports,
                         np.int64(1) << (ridx % V))
        claimed_ip[ports] = True
        claimed_op[self.vc_out_opid[ridx]] = True
        if len(ports) == 1:
            return ports, claimed_ip, claimed_op
        keep = np.empty(len(ports), dtype=bool)
        keep[0] = True
        keep[1:] = ports[1:] != ports[:-1]  # ridx ascending: sorted
        return ports[keep], claimed_ip, claimed_op

    def _allocate_switch(self, c: int, order_arr) -> None:
        """Separable input-first allocation, all arbiters in parallel."""
        np = self._np
        Pi, Po, V = self._Pi, self._Po, self._V
        port_mask = self._port_mask
        masks = port_mask[order_arr]
        port_mask[order_arr] = 0
        # Stage 1: one VC per requesting input port.
        nxt = self.in_arb_next[order_arr]
        cand = self._rr_pick(masks, nxt, V)
        self.in_arb_next[order_arr] = (cand + 1) % V
        givc = order_arr * V + cand
        self._smap[order_arr] = givc
        souts = self.vc_out_opid[givc]
        # Stage 2: one input per requested output, outputs visited in
        # first-seen stage-1 order (per router).
        so = souts.argsort(kind="stable")
        ss = souts[so]
        fm = np.empty(len(ss), dtype=bool)
        fm[0] = True
        fm[1:] = ss[1:] != ss[:-1]
        uo = ss[fm]
        first = so[fm]
        omask = self._omask
        np.bitwise_or.at(omask, souts, np.int64(1) << (order_arr % Pi))
        m2 = omask[uo]
        omask[uo] = 0
        sizes = self._lay.nip[uo // Po]
        w = self._rr_pick(m2, self.out_arb_next[uo], sizes)
        self.out_arb_next[uo] = (w + 1) % sizes
        go = first.argsort(kind="stable")
        g_opid = uo[go]
        g_port = self._op_ipbase[g_opid] + w[go]
        g_ivc = self._smap[g_port]
        # Tails reset vc_out_port during the batch: capture grant output
        # ports first for the establish pass below.
        g_outl = self.vc_out_port[g_ivc]
        g_invc = g_ivc % V
        self._traverse_batch(c, g_ivc, "sa", True)
        if self._pc_enabled:
            self._establish_batch(g_port, g_invc, g_outl, g_opid)

    def _establish_batch(self, g_port, g_invc, g_outl, g_opid) -> None:
        """Router._establish_pc over all SA grants at once.

        The scalar pass runs in grant order because conflict
        terminations read live state, but the only cross-grant couplings
        are (a) a grant whose target output is currently held by a
        *later* grant's port (CONFLICT_OUTPUT fires; an earlier grant
        would have cleared the holder through its own CONFLICT_INPUT
        first) and (b) a grant whose old circuit was already torn down
        by an earlier grant targeting that output (its CONFLICT_INPUT is
        then skipped). Both reduce to order-rank comparisons through
        scatter maps, and the net state writes commute: grants have
        pairwise-distinct inputs and outputs, every grant port ends
        valid with its new register, and each contested output's history
        register receives the same value whichever side records the
        termination.
        """
        np = self._np
        Pi, Po = self._Pi, self._Po
        n = len(g_port)
        g_local = g_port % Pi
        valid0 = self.pc_valid[g_port]
        in0 = self.pc_in_vc[g_port]
        out0 = self.pc_out_port[g_port]
        h0 = self.op_holder[g_opid]
        ordv = self._ramp[:n]
        ordmap = np.full(self._NIP, n, dtype=np.int64)
        ordmap[g_port] = ordv
        outmap = np.full(self._NOP, n, dtype=np.int64)
        outmap[g_opid] = ordv
        vic = h0 >= 0
        vp = self._op_ipbase[g_opid] + np.where(vic, h0, 0)
        outconf = vic & (h0 != g_local) & (ordmap[vp] > ordv)
        old_opid = self._ip_opbase[g_port] + np.where(valid0, out0, 0)
        inconf = valid0 & (out0 != g_outl) & (outmap[old_opid] >= ordv)
        oidx = (outconf).nonzero()[0]
        if len(oidx):
            self._count_terminations(vp[oidx],
                                     Termination.CONFLICT_OUTPUT)
            self.op_hist[g_opid[oidx]] = h0[oidx]
            self.pc_valid[vp[oidx]] = False
        iidx = (inconf).nonzero()[0]
        if len(iidx):
            self._count_terminations(g_port[iidx],
                                     Termination.CONFLICT_INPUT)
            io = old_opid[iidx]
            self.op_hist[io] = g_local[iidx]
            self.op_holder[io] = -1
        refreshed = valid0 & (in0 == g_invc) & (out0 == g_outl)
        self.pc_in_vc[g_port] = g_invc
        self.pc_out_port[g_port] = g_outl
        self.pc_valid[g_port] = True
        self.op_holder[g_opid] = g_local
        self._count_established(g_port, refreshed)

    # -- arrivals: buffer write or buffer bypass ------------------------------

    def _process_arrivals(self, c: int, arrivals, claimed_ip,
                          claimed_op) -> None:
        np = self._np
        V, D = self._V, self._D
        dests, fids = arrivals
        vcs = self.f_vc[fids]
        aivc = dests * V + vcs
        n = len(fids)
        buffered = None  # row mask of flits to buffer
        if self._pc_bypass:
            rows = (self.pc_valid[dests]
                              & (self.pc_in_vc[dests] == vcs)
                              & (self.buf_len[aivc] == 0)).nonzero()[0]
            if len(rows):
                # Drop side-effect-free failures early: busy or claimed
                # input port (a failing port fails for every arrival it
                # receives this cycle, so no later row misses a
                # buffered-flit update from a dropped one).
                rd = dests[rows]
                rows = rows[(self.ip_st[rd] < c) & ~claimed_ip[rd]]
            npot = len(rows)
            if npot:
                if npot > 1:
                    # Arrivals sharing a port share the circuit's one
                    # in-VC: only the first can bypass (a success busies
                    # the port, a failure fills the buffer), so exactly
                    # one attempt per port goes forward.
                    prt = dests[rows]
                    so = prt.argsort(kind="stable")
                    sp = prt[so]
                    fm = np.empty(npot, dtype=bool)
                    fm[0] = True
                    fm[1:] = sp[1:] != sp[:-1]
                    att = rows[so[fm]]
                    att.sort()
                else:
                    att = rows
                done = self._bypass_attempts(c, att, dests, vcs, fids,
                                             claimed_ip, claimed_op)
                if len(done) == n:
                    return
                buffered = np.ones(n, dtype=bool)
                buffered[done] = False
                aivc, fids = aivc[buffered], fids[buffered]
                n = len(fids)
        # Buffer writes, order-preserving per VC (a link can deliver two
        # same-circuit flits in one cycle; mostly they're all distinct,
        # where plain fancy indexing replaces the scatter-add).
        dup = False
        if n > 1:
            sp = aivc.copy()
            sp.sort()
            dup = bool((sp[1:] == sp[:-1]).any())
        lens = self.buf_len[aivc]
        if dup:
            sidx = aivc.argsort(kind="stable")
            cnt = np.empty(n, dtype=np.int64)
            cnt[sidx] = self._cumcount(aivc[sidx])
            if (lens + cnt >= D).any():
                raise BufferOverflowError(
                    f"flit buffer overflow (capacity {D})")
            self.buf_fid[aivc,
                         (self.buf_head[aivc] + lens + cnt) % D] = fids
            np.add.at(self.buf_len, aivc, 1)
        else:
            if (lens >= D).any():
                raise BufferOverflowError(
                    f"flit buffer overflow (capacity {D})")
            self.buf_fid[aivc, (self.buf_head[aivc] + lens) % D] = fids
            self.buf_len[aivc] = lens + 1
        self.f_ready[fids] = c + 1
        np.add.at(self._r_buffered, aivc // (self._Pi * V), 1)
        self._buffered += n
        self._count_buffer_writes(aivc)
        hooks = self._vhooks
        if hooks:
            for h in hooks:
                h.vec_buffer_writes(c, aivc)

    def _bypass_attempts(self, c: int, att, dests, vcs, fids,
                         claimed_ip, claimed_op):
        """Router._try_buffer_bypass over all attempt rows at once;
        returns the arrival rows whose flit bypassed. Attempts have
        pairwise-distinct input ports, so they couple only through a
        shared target output; the rare contended outputs fall back to
        the order-sensitive scalar path (each group independent).
        """
        np = self._np
        V, Pi, Po = self._V, self._Pi, self._Po
        lay = self._lay
        na = len(att)
        prt = dests[att]
        aivc = prt * V + vcs[att]
        afid = fids[att]
        heads = self.f_head[afid]
        st = self.vc_state[aivc]
        if (st != np.where(heads, 0, 2)).any():
            if (heads & (st != 0)).any():
                raise ProtocolError(
                    "head flit arrived on a still-allocated VC")
            raise ProtocolError("body flit arrived on an inactive VC")
        ok = np.ones(na, dtype=bool)
        opid = self.vc_out_opid[aivc]  # body rows: the live circuit
        outl = self.pc_out_port[prt]   # register output = bypass output
        hidx = (heads).nonzero()[0]
        if len(hidx):
            hpk = self.f_pkt[afid[hidx]]
            hr = prt[hidx] // Pi
            out = lay.route_out[hr, self.p_choice[hpk],
                                self.p_dst[hpk]]
            midx = (out != outl[hidx]).nonzero()[0]
            if len(midx):
                # conflicts_with_route: same VC, different output.
                self._terminate_batch(prt[hidx[midx]],
                                      Termination.ROUTE_MISMATCH)
                ok[hidx[midx]] = False
            opid = opid.copy()
            opid[hidx] = self._ip_opbase[prt[hidx]] + out
        ok &= ~claimed_op[opid] & (self.op_st[opid] < c)
        live = (ok).nonzero()[0]
        empty = att[:0]
        if not len(live):
            return empty
        loop_done: list[int] = []
        if len(live) > 1:
            counts = np.bincount(opid[live], minlength=self._NOP)
            dup = counts[opid[live]] > 1
            if dup.any():
                dups = live[dup]
                ok[dups] = False
                added: dict[int, int] = {}
                for k in dups.tolist():
                    if self._try_bypass_one(
                            c, int(prt[k]), int(vcs[att[k]]),
                            int(afid[k]), claimed_ip, claimed_op,
                            added):
                        loop_done.append(int(att[k]))
                live = (ok).nonzero()[0]
        lh = live[heads[live]]
        if len(lh):
            lop = opid[lh]
            pk = self.f_pkt[afid[lh]]
            picks = self._policy_pick(lop * V, self.p_choice[pk],
                                      self.p_dst[pk],
                                      lay.op_eject[lop])
            ci = lop * V + np.maximum(picks, 0)
            good = (picks >= 0) & (self.cred[ci] > 0)
            ok[lh] = good
            win = lh[good]
            if len(win):
                wivc = aivc[win]
                wci = ci[good]
                self.cred_free[wci] = False
                self.vc_state[wivc] = 2
                self.vc_out_port[wivc] = outl[win]
                self.vc_out_opid[wivc] = opid[win]
                self.vc_out_vc[wivc] = picks[good]
                self.vc_out_cred[wivc] = wci
                self._count_va(wivc)
        lb = live[~heads[live]]
        if len(lb):
            nidx = (
                self.cred[self.vc_out_cred[aivc[lb]]] == 0).nonzero()[0]
            if len(nidx):
                # Out of credit before the flit arrived: tear the
                # circuit down and buffer normally (Section IV.B).
                self._terminate_batch(prt[lb[nidx]],
                                      Termination.NO_CREDIT)
                ok[lb[nidx]] = False
        fin = (ok).nonzero()[0]
        if len(fin):
            self._traverse_batch(c, aivc[fin], "buf", False, afid[fin])
        if loop_done:
            return np.concatenate(
                [att[fin], np.array(loop_done, dtype=np.int64)])
        return att[fin]

    def _try_bypass_one(self, c: int, ip_: int, vc_: int, fid_: int,
                        claimed_ip, claimed_op, added) -> bool:
        """Scalar replication of Router._try_buffer_bypass for one flit
        (bypass successes are rare enough that python-scalar beats
        1-element array batches)."""
        aivc = ip_ * self._V + vc_
        if added.get(aivc):
            return False  # an earlier arrival buffered into this VC
        if self.ip_st[ip_] >= c or claimed_ip[ip_]:
            return False
        if self.f_head[fid_]:
            if self.vc_state[aivc] != 0:
                raise ProtocolError(
                    f"head flit arrived on VC {vc_} still allocated")
            pk = int(self.f_pkt[fid_])
            choice = int(self.p_choice[pk])
            dst = int(self.p_dst[pk])
            r = ip_ // self._Pi
            out = int(self._lay.route_out[r, choice, dst])
            if self.pc_out_port[ip_] != out:
                # conflicts_with_route: same VC, different output.
                self._terminate_one(ip_, Termination.ROUTE_MISMATCH)
                return False
            opid = r * self._Po + out
            if claimed_op[opid] or self.op_st[opid] >= c:
                return False
            ovc = self._alloc_one(opid, choice, dst,
                                  bool(self._lay.op_eject[opid]))
            if ovc < 0 or self.cred[opid * self._V + ovc] == 0:
                return False
            ci = opid * self._V + ovc
            self.cred_free[ci] = False
            self.vc_state[aivc] = 2
            self.vc_out_port[aivc] = out
            self.vc_out_opid[aivc] = opid
            self.vc_out_vc[aivc] = ovc
            self.vc_out_cred[aivc] = ci
            self._count_va1(ip_)
        else:
            if self.vc_state[aivc] != 2:
                raise ProtocolError(
                    f"body flit arrived on inactive VC {vc_}")
            opid = int(self.vc_out_opid[aivc])
            if claimed_op[opid] or self.op_st[opid] >= c:
                return False
            if self.cred[self.vc_out_cred[aivc]] == 0:
                # Out of credit before the flit arrived: tear the
                # circuit down and buffer normally (Section IV.B).
                self._terminate_one(ip_, Termination.NO_CREDIT)
                return False
        self._traverse_one(c, aivc, fid_)
        return True

    # -- flit traversal -------------------------------------------------------

    def _deliver(self, arrival, opids, fids) -> None:
        """Route traversed flits into the arrival/ejection buckets.

        ``arrival`` is an int when every output the batch crosses has
        the same latency (``_unilat``, the common case) — a single
        bucket append per kind, no grouping pass.
        """
        np = self._np
        lay = self._lay
        ej = lay.op_eject[opids]
        uniform = not isinstance(arrival, np.ndarray)
        eidx = (ej).nonzero()[0]
        if len(eidx):
            et = lay.op_term[opids[eidx]]
            ef = fids[eidx]
            self._ej_pending += len(eidx)
            if uniform:
                self._ej_bucket.setdefault(arrival, []).append((et, ef))
            else:
                ea = arrival[eidx]
                for a in np.unique(ea).tolist():
                    m = ea == a
                    self._ej_bucket.setdefault(a, []).append(
                        (et[m], ef[m]))
            if len(eidx) == len(opids):
                return
            ne = ~ej
            opids, fids = opids[ne], fids[ne]
            if not uniform:
                arrival = arrival[ne]
        links = lay.op_link[opids]
        dests = lay.op_dest[opids]
        if uniform:
            self._arr_bucket.setdefault(arrival, []).append(
                (links, dests, fids))
            return
        for a in np.unique(arrival).tolist():
            m = arrival == a
            self._arr_bucket.setdefault(a, []).append(
                (links[m], dests[m], fids[m]))

    def _traverse_batch(self, c: int, ivcs, via: str, delayed: bool,
                        fids=None) -> None:
        """Move the front flit of each given VC through the crossbar
        (Router._traverse for SA grants and circuit reuses; at most one
        traversal per input port and per output port per cycle, so all
        index arrays are duplicate-free). With ``fids`` the flits are
        arriving buffer bypasses (``via == "buf"``): nothing is popped
        and no buffer read is charged."""
        np = self._np
        V, Pi = self._V, self._Pi
        n = len(ivcs)
        ports = ivcs // V
        popped = fids is None
        if popped:
            h = self.buf_head[ivcs]
            fids = self.buf_fid[ivcs, h]
            self.buf_head[ivcs] = (h + 1) % self._D
            self.buf_len[ivcs] -= 1
            np.subtract.at(self._r_buffered, ivcs // (Pi * V), 1)
            self._buffered -= n
        self._cred_bucket.setdefault(c + self._cd, []).append(
            self._lay.ip_upbase[ports] + ivcs % V)
        opids = self.vc_out_opid[ivcs]
        outl = self.vc_out_port[ivcs]
        civ = self.vc_out_cred[ivcs]
        self.cred[civ] -= 1
        hidx = (self.f_head[fids]).nonzero()[0]
        if len(hidx):
            hpk = self.f_pkt[fids[hidx]]
            self.p_hops[hpk] += 1
            if via != "sa":
                self.p_sa[hpk] += 1
                if via == "buf":
                    self.p_buf[hpk] += 1
            pair = self.p_pair[hpk]
            hports = ports[hidx]
            e2e_rep = self.ip_last_pair[hports] == pair
            self.ip_last_pair[hports] = pair
        else:
            hports = e2e_rep = None
        xbar_rep = self.ip_last_out[ports] == outl
        self.ip_last_out[ports] = outl
        self._count_traversals(via, popped, ports, hports, e2e_rep,
                               xbar_rep)
        hooks = self._vhooks
        if hooks:
            for h in hooks:
                h.vec_traversals(c, via, popped, ivcs)
        self.f_vc[fids] = self.vc_out_vc[ivcs]
        if isinstance(delayed, np.ndarray):
            # Mixed batch: each row's ST-busy stamp and arrival cycle
            # shift by its own delay; split delivery into the two
            # uniform-arrival groups.
            stc = np.where(delayed, c + 1, c)
            self.ip_st[ports] = stc
            self.op_st[opids] = stc
            nd = ~delayed
            if self._unilat is None:
                lat = self._lay.op_latency[opids]
                arrival = c + 1 + lat + delayed
                self._deliver(arrival, opids, fids)
            else:
                base = c + 1 + self._unilat
                if nd.any():
                    self._deliver(base, opids[nd], fids[nd])
                if delayed.any():
                    self._deliver(base + 1, opids[delayed],
                                  fids[delayed])
        else:
            stc = c + 1 if delayed else c
            self.ip_st[ports] = stc
            self.op_st[opids] = stc
            base = c + (2 if delayed else 1)
            if self._unilat is None:
                self._deliver(base + self._lay.op_latency[opids],
                              opids, fids)
            else:
                self._deliver(base + self._unilat, opids, fids)
        tidx = (self.f_tail[fids]).nonzero()[0]
        if len(tidx):
            tivc = ivcs[tidx]
            self.cred_free[civ[tidx]] = True
            self.vc_state[tivc] = 0
            self.vc_out_port[tivc] = -1
            self.vc_out_opid[tivc] = -1
            self.vc_out_vc[tivc] = -1

    def _traverse_one(self, c: int, aivc: int, fid: int) -> None:
        """Write-through buffer bypass of one arriving flit: like
        ``_traverse_batch`` but the flit never touches the buffer (no
        pop, no buffer read) and the circuit refresh is a guaranteed
        fast path (matching register, matching holder)."""
        np = self._np
        V = self._V
        ip_ = aivc // V
        self._cred_bucket.setdefault(c + self._cd, []).append(
            np.array([int(self._lay.ip_upbase[ip_]) + aivc % V],
                     dtype=np.int64))
        ci = int(self.vc_out_cred[aivc])
        self.cred[ci] -= 1
        opid = int(self.vc_out_opid[aivc])
        outl = int(self.vc_out_port[aivc])
        if self.f_head[fid]:
            pk = int(self.f_pkt[fid])
            self.p_hops[pk] += 1
            self.p_sa[pk] += 1
            self.p_buf[pk] += 1
            pair = int(self.p_pair[pk])
            e2e_rep = bool(self.ip_last_pair[ip_] == pair)
            self.ip_last_pair[ip_] = pair
        else:
            e2e_rep = None
        xbar_rep = bool(self.ip_last_out[ip_] == outl)
        self.ip_last_out[ip_] = outl
        self._count_traversal1(ip_, e2e_rep, xbar_rep)
        hooks = self._vhooks
        if hooks:
            for h in hooks:
                h.vec_traversal1(c, aivc)
        self.ip_st[ip_] = c
        self.op_st[opid] = c
        ovc = int(self.vc_out_vc[aivc])
        self.f_vc[fid] = ovc
        arrival = c + int(self._lay.op_latency[opid]) + 1
        if self._lay.op_eject[opid]:
            self._ej_pending += 1
            self._ej_bucket.setdefault(arrival, []).append(
                (np.array([int(self._lay.op_term[opid])], dtype=np.int64),
                 np.array([fid], dtype=np.int64)))
        else:
            self._arr_bucket.setdefault(arrival, []).append(
                (np.array([int(self._lay.op_link[opid])], dtype=np.int64),
                 np.array([int(self._lay.op_dest[opid])], dtype=np.int64),
                 np.array([fid], dtype=np.int64)))
        if self.f_tail[fid]:
            self.cred_free[ci] = True
            self.vc_state[aivc] = 0
            self.vc_out_port[aivc] = -1
            self.vc_out_opid[aivc] = -1
            self.vc_out_vc[aivc] = -1

    # -- pseudo-circuit bookkeeping -------------------------------------------

    def _terminate_one(self, ip_: int, reason: Termination) -> None:
        if not self.pc_valid[ip_]:
            return
        self.pc_valid[ip_] = False
        opid = ((ip_ // self._Pi) * self._Po
                + int(self.pc_out_port[ip_]))
        local = ip_ % self._Pi
        if self.op_holder[opid] == local:
            self.op_holder[opid] = -1
        self.op_hist[opid] = local
        self._count_termination1(ip_, reason)

    def _terminate_batch(self, pps, reason: Termination) -> None:
        """Terminate a batch of valid circuits (callers guarantee the
        valid bit; valid circuits have pairwise-distinct outputs)."""
        self.pc_valid[pps] = False
        opids = self._ip_opbase[pps] + self.pc_out_port[pps]
        local = pps % self._Pi
        held = self.op_holder[opids] == local
        self.op_holder[opids[held]] = -1
        self.op_hist[opids] = local
        self._count_terminations(pps, reason)

    def _pc_maintenance(self, c: int, work_r, wall: bool) -> None:
        """End-of-cycle upkeep: credit terminations on held outputs,
        speculative restoration on free ones (Router._pc_maintenance).
        Candidate and free-output snapshots are taken before the
        NO_CREDIT pass — its terminations only create candidates at
        their own creditless port, which cannot restore this cycle."""
        np = self._np
        Pi, Po = self._Pi, self._Po
        holder = self.op_holder
        if self._pc_speculation:
            candm = (~self.pc_valid) & (self.pc_in_vc >= 0)
            free_pre = holder == -1
        else:
            candm = None
        heldm = holder >= 0
        if not wall:
            heldm = heldm & work_r.repeat(Po)
        held = (heldm).nonzero()[0]
        if len(held):
            anyc = (self._credview[held] > 0).any(axis=1)
            dead = held[~anyc]
            if len(dead):
                self._terminate_batch(self._op_ipbase[dead] + holder[dead],
                                      Termination.NO_CREDIT)
        if candm is None:
            return
        if not wall:
            candm = candm & work_r.repeat(Pi)
        cp = (candm).nonzero()[0]
        if not len(cp):
            return
        copid = self._ip_opbase[cp] + self.pc_out_port[cp]
        sel = free_pre[copid] & self._lay.op_valid[copid]
        cp, copid = cp[sel], copid[sel]
        if not len(cp):
            return
        so = copid.argsort(kind="stable")
        sc = copid[so]
        fm = np.empty(len(sc), dtype=bool)
        fm[0] = True
        fm[1:] = sc[1:] != sc[:-1]
        uo = sc[fm]
        # Stable sort + ascending cp: first index per group is the
        # lowest register index pointing at that output.
        chosen = cp[so[fm]]
        multi = np.empty(len(sc), dtype=bool)
        multi[-1] = False
        multi[:-1] = ~fm[1:]
        multi = multi[fm]  # group has a second member right after its first
        if multi.any():
            # Several invalidated circuits point here: the history
            # register picks the most recently terminated one, or none.
            hist = self.op_hist[uo]
            histp = self._op_ipbase[uo] + np.maximum(hist, 0)
            okh = ((hist >= 0) & candm[histp]
                   & (self.pc_out_port[histp] == uo % Po))
            chosen = np.where(multi & okh, histp, chosen)
            keep = (~multi) | okh
            uo, chosen = uo[keep], chosen[keep]
            if not len(uo):
                return
        credok = (self._credview[uo] > 0).any(axis=1)
        uo, chosen = uo[credok], chosen[credok]
        if len(uo):
            self.pc_valid[chosen] = True
            self.op_holder[uo] = chosen % Pi
            self._count_restored(uo)
