"""Vectorized structure-of-arrays network backend (requires numpy)."""

from .batch import BatchNetwork
from .core import VectorNetwork
from .layout import Layout, build_layout
from .obs import VectorHooks, VectorInvariantChecker, VectorSeriesProbe

__all__ = ["BatchNetwork", "Layout", "VectorHooks",
           "VectorInvariantChecker", "VectorNetwork",
           "VectorSeriesProbe", "build_layout"]
