"""Vectorized structure-of-arrays network backend (requires numpy)."""

from .core import VectorNetwork
from .layout import Layout, build_layout

__all__ = ["Layout", "VectorNetwork", "build_layout"]
