"""Vectorized structure-of-arrays network backend (requires numpy)."""

from .batch import BatchNetwork
from .core import VectorNetwork
from .layout import Layout, build_layout

__all__ = ["BatchNetwork", "Layout", "VectorNetwork", "build_layout"]
