"""Batched multi-run execution: S independent simulations as one chip.

``BatchNetwork`` replicates the structure-of-arrays layout of one
topology S times (``layout.build_layout(..., lanes=S)``): lane ``s``
owns its own contiguous block of every id space, so the occupancy-driven
pipeline inherited from ``VectorNetwork`` steps all lanes in a single
pass of array ops. The per-cycle numpy dispatch overhead that dominates
low-load runs — ~20 fixed-cost array calls per pipeline stage whatever
the occupancy — is paid once per cycle for the whole batch instead of
once per run, which is what makes a sweep of many small low-load points
cheap (BENCH_core.json ``speedup_batched``).

Bit-identity per lane: lanes never share an index, so no array op
couples them, and each lane's packets keep lane-local src/dst ids, so
routing, static VC designation and the per-port locality registers see
exactly the solo values. The batch steps a shared global clock; a lane
stepping through cycles its solo run would have fast-forwarded over
changes nothing, because fast-forwarding is stats-preserving (locked in
by the solo parity suite) and an idle lane's routers never enter the
work set. Each lane's ``lane_stats`` is therefore fingerprint-identical
to the same point run solo (tests/network/test_batched_parity.py).

Active-lane compaction is structural rather than masked: finished or
idle lanes have no buffered flits, no queued or in-flight NIC work and
no bucketed events, so they drop out of the occupancy scans
(``_r_buffered``, ``_snd_cnt``, the cycle-keyed buckets) and cost
nothing; ``run_batch`` additionally stops ticking a lane's traffic
source once its injection window closes and fast-forwards the global
clock to the earliest next injection over still-active lanes only.
"""

from __future__ import annotations

import math
from collections import Counter

from ...metrics.stats import NetworkStats
from ...topology.base import Topology
from ..config import NetworkConfig
from .core import VectorNetwork


class _LaneSink:
    """Per-lane injection adapter handed to each lane's traffic source."""

    __slots__ = ("_net", "_lane")

    def __init__(self, net: "BatchNetwork", lane: int):
        self._net = net
        self._lane = lane

    def inject(self, packet) -> None:
        self._net.inject(packet, self._lane)

    @property
    def cycle(self) -> int:
        return self._net.cycle


class BatchNetwork(VectorNetwork):
    """S independent simulations of one topology, stepped as one chip.

    ``seeds`` gives one per-lane seed; lane ``s`` reproduces the solo
    ``VectorNetwork(..., seed=seeds[s])`` bit-for-bit. Traffic sources
    (one per lane, lane-local terminal ids) are driven by
    ``run_batch``; per-lane results come out of ``lane_stats``.
    """

    #: NetworkStats integer slots accumulated per lane.
    _COUNTERS = (
        "injected_packets", "ejected_packets",
        "injected_flits", "ejected_flits",
        "measured_packets", "total_latency", "total_network_latency",
        "total_hops", "flit_hops", "buffer_writes", "buffer_reads",
        "sa_arbitrations", "va_allocations",
        "sa_bypass_flits", "buf_bypass_flits",
        "pc_established", "pc_restored",
        "e2e_packets", "e2e_repeats", "xbar_flits", "xbar_repeats",
    )

    def __init__(self, topology: Topology, config: NetworkConfig,
                 routing="xy", vc_policy="dynamic", seeds=(1,),
                 active_set: bool = True, compiled_routing: bool = True,
                 probe=None):
        seeds = tuple(seeds)
        if not seeds:
            raise ValueError("BatchNetwork needs at least one lane seed")
        super().__init__(topology, config, routing=routing,
                         vc_policy=vc_policy, seed=seeds[0],
                         active_set=active_set,
                         compiled_routing=compiled_routing, probe=probe,
                         lanes=len(seeds), lane_seeds=seeds)
        np = self._np
        S = len(seeds)
        self.lanes = S
        self.lane_seeds = seeds
        # Solo (per-lane) extents: lane of an index = index // extent.
        self._L_T = self._T_local
        self._L_NIP = self._NIP // S
        self._L_NIVC = self._NIVC // S
        self._L_NOP = self._NOP // S
        self.lane_warmup = np.zeros(S, dtype=np.int64)
        self._ctr = {name: np.zeros(S, dtype=np.int64)
                     for name in self._COUNTERS}
        self._hist: list[dict] = [{} for _ in range(S)]
        self._terms: list[Counter] = [Counter() for _ in range(S)]

    # -- driving --------------------------------------------------------------

    def run(self, cycles, traffic=None):
        raise TypeError(
            "BatchNetwork is driven per lane: use run_batch(traffics, "
            "cycles, warmups)")

    def run_batch(self, traffics, cycles, warmups=None) -> None:
        """Tick every lane's traffic for its own cycle budget.

        ``traffics``/``cycles``/``warmups`` give one entry per lane. A
        lane stops being ticked once its budget is spent (matching the
        solo run window exactly); the global clock fast-forwards only
        over cycles where no still-active lane has a pending injection
        and no lane has in-flight work. Call ``drain`` afterwards.
        """
        S = self.lanes
        if len(traffics) != S or len(cycles) != S:
            raise ValueError(
                f"need one traffic source and cycle count per lane "
                f"({S} lanes)")
        if warmups is not None:
            if len(warmups) != S:
                raise ValueError(f"need one warmup per lane ({S} lanes)")
            for lane, w in enumerate(warmups):
                self.lane_warmup[lane] = int(w)
        ends = [self.cycle + int(n) for n in cycles]
        end_all = max(ends)
        sinks = [_LaneSink(self, lane) for lane in range(S)]
        nexts = [getattr(tr, "next_injection_cycle", None)
                 for tr in traffics]
        while self.cycle < end_all:
            c = self.cycle
            skippable = True
            for lane in range(S):
                if c < ends[lane]:
                    traffics[lane].tick(sinks[lane], c)
                    if nexts[lane] is None:
                        skippable = False
            self.step()
            if not skippable:
                continue
            c = self.cycle
            nxt = math.inf
            for lane in range(S):
                if c < ends[lane]:
                    ni = nexts[lane](c)
                    if ni is not None and ni < nxt:
                        nxt = ni
            self._try_fast_forward(
                end_all, None if nxt is math.inf else int(nxt))

    # -- queries --------------------------------------------------------------

    def in_flight_packets(self) -> int:
        ctr = self._ctr
        return self._num_queued + int(
            (ctr["injected_packets"] - ctr["ejected_packets"]).sum())

    def quiescent(self) -> bool:
        if self._num_queued or self._sending_count or self._ej_pending:
            return False
        ctr = self._ctr
        # Per-lane equality follows from the sums: ejections never
        # exceed injections in any lane.
        return int(ctr["injected_packets"].sum()) == int(
            ctr["ejected_packets"].sum())

    def lane_stats(self, lane: int) -> NetworkStats:
        """Extract one lane's counters as a solo-identical NetworkStats."""
        stats = NetworkStats(warmup_cycles=int(self.lane_warmup[lane]))
        ctr = self._ctr
        for name in self._COUNTERS:
            setattr(stats, name, int(ctr[name][lane]))
        stats.latency_histogram = dict(self._hist[lane])
        stats.pc_terminations = Counter(self._terms[lane])
        return stats

    # -- per-lane stats attribution -------------------------------------------

    def _bins(self, idx, extent):
        np = self._np
        return np.bincount(idx // extent, minlength=self.lanes)

    def _wbins(self, idx, extent, weights):
        np = self._np
        # float64 sums of int weights: exact far beyond any counter here.
        return np.bincount(idx // extent, weights=weights,
                           minlength=self.lanes).astype(np.int64)

    def _count_injection(self, t, size):
        lane = t // self._L_T
        self._ctr["injected_packets"][lane] += 1
        self._ctr["injected_flits"][lane] += size

    def _count_ejections(self, c, tpk, sizes):
        np = self._np
        ctr = self._ctr
        ln = self.p_src[tpk] // self._L_T
        ctr["ejected_packets"] += np.bincount(ln, minlength=self.lanes)
        ctr["ejected_flits"] += self._wbins(self.p_src[tpk], self._L_T,
                                            sizes)
        meas = c >= self.lane_warmup[ln]
        if not meas.any():
            return
        midx = (meas).nonzero()[0]
        mpk = tpk[midx]
        ml = ln[midx]
        lats = c - self.p_create[mpk]
        wb = np.bincount
        ctr["measured_packets"] += wb(ml, minlength=self.lanes)
        ctr["total_latency"] += wb(
            ml, weights=lats, minlength=self.lanes).astype(np.int64)
        ctr["total_network_latency"] += wb(
            ml, weights=c - self.p_inject[mpk],
            minlength=self.lanes).astype(np.int64)
        ctr["total_hops"] += wb(
            ml, weights=self.p_hops[mpk],
            minlength=self.lanes).astype(np.int64)
        for lane, lat in zip(ml.tolist(), lats.tolist()):
            hist = self._hist[lane]
            hist[lat] = hist.get(lat, 0) + 1

    def _count_va(self, wivc):
        self._ctr["va_allocations"] += self._bins(wivc, self._L_NIVC)

    def _count_va1(self, ip_):
        self._ctr["va_allocations"][ip_ // self._L_NIP] += 1

    def _count_traversals(self, via, popped, ports, hports, e2e_rep,
                          xbar_rep):
        ctr = self._ctr
        cnt = self._bins(ports, self._L_NIP)
        if via == "sa":
            ctr["sa_arbitrations"] += cnt
        else:
            ctr["sa_bypass_flits"] += cnt
            if via == "buf":
                ctr["buf_bypass_flits"] += cnt
        ctr["flit_hops"] += cnt
        ctr["xbar_flits"] += cnt
        if popped:
            ctr["buffer_reads"] += cnt
        ctr["xbar_repeats"] += self._wbins(ports, self._L_NIP, xbar_rep)
        if hports is not None:
            ctr["e2e_packets"] += self._bins(hports, self._L_NIP)
            ctr["e2e_repeats"] += self._wbins(hports, self._L_NIP,
                                              e2e_rep)

    def _count_traversal1(self, ip_, e2e_rep, xbar_rep):
        ctr = self._ctr
        lane = ip_ // self._L_NIP
        if e2e_rep is not None:
            ctr["e2e_packets"][lane] += 1
            if e2e_rep:
                ctr["e2e_repeats"][lane] += 1
        ctr["sa_bypass_flits"][lane] += 1
        ctr["buf_bypass_flits"][lane] += 1
        ctr["flit_hops"][lane] += 1
        ctr["xbar_flits"][lane] += 1
        if xbar_rep:
            ctr["xbar_repeats"][lane] += 1

    def _count_terminations(self, pps, reason):
        for lane, n in enumerate(
                self._bins(pps, self._L_NIP).tolist()):
            if n:
                self._terms[lane][reason] += n

    def _count_termination1(self, ip_, reason):
        self._terms[ip_ // self._L_NIP][reason] += 1

    def _count_established(self, g_port, refreshed):
        ctr = self._ctr
        ctr["pc_established"] += self._bins(g_port, self._L_NIP)
        ctr["pc_established"] -= self._wbins(g_port, self._L_NIP,
                                             refreshed)

    def _count_restored(self, uo):
        self._ctr["pc_restored"] += self._bins(uo, self._L_NOP)

    def _count_buffer_writes(self, aivc):
        self._ctr["buffer_writes"] += self._bins(aivc, self._L_NIVC)
