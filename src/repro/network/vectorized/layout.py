"""Static structure-of-arrays layout for the vectorized network core.

Flattens the (router, port, vc) id spaces of a topology into dense
integer indices so the per-cycle pipeline in ``core.py`` can address all
state with array gathers:

* input port   ``ipid = router * Pi + port``        (``Pi`` = max inports)
* input VC     ``ivc  = ipid * V + vc``
* output port  ``opid = router * Po + port``        (``Po`` = max outports)
* output VC    ``ovc  = opid * V + vc``

Credit counters live in one unified array: indices ``[0, NOVC)`` are the
router-side output VCs (including ejection endpoints), followed by ``T*V``
NIC injection-side counters. ``ip_upbase[ipid]`` holds the credit-space
base index (vc 0) of the upstream endpoint a port's credit returns
replenish, which makes the credit-return scatter a single ``add.at``.

Only point-to-point channels are supported (one endpoint per channel);
``core.py`` rejects multidrop topologies before building a layout.

``build_layout(..., lanes=S)`` replicates the solo layout ``S`` times
into one flat "mega-chip": lane ``s`` occupies its own contiguous block
of every id space (routers, terminals, ports, VCs, links, credits), so
the occupancy-driven pipeline in ``core.py`` steps all lanes in a
single pass of array ops with no per-lane masking — lanes never share
an index, so no array op couples them. This is what the batched
backend (``vectorized/batch.py``) runs S independent simulations on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...topology.base import Topology
from ..backend import require_numpy
from ..config import NetworkConfig


@dataclass
class Layout:
    """Wiring and routing arrays shared by every cycle of a simulation."""

    R: int          # routers
    T: int          # terminals
    V: int          # VCs per port
    D: int          # input buffer depth (ring capacity)
    C: int          # route choices
    Pi: int         # max input ports per router
    Po: int         # max output ports per router
    NIP: int        # R * Pi
    NIVC: int       # NIP * V
    NOP: int        # R * Po
    NOVC: int       # NOP * V
    NCRED: int      # NOVC + T * V
    nip: object     # [R] actual input-port count (VA rotation modulus)
    op_valid: object    # [NOP] bool: port drives a channel or the NIC
    op_latency: object  # [NOP] channel latency
    op_link: object     # [NOP] global link id (-1: ejection/invalid)
    op_dest: object     # [NOP] downstream ipid (-1: ejection/invalid)
    op_eject: object    # [NOP] bool
    op_term: object     # [NOP] terminal behind an ejection port (-1)
    ip_upbase: object   # [NIP] credit base of the upstream endpoint (-1)
    inj_ipid: object    # [T] router input port fed by the NIC
    inj_link: object    # [T] link id of the injection channel
    ej_opid: object     # [T] router ejection output port
    route_out: object   # [R, C, T_local] out_port gather table
    route_lo: object    # [C] VC window per route choice
    route_hi: object    # [C]
    cred_init: object   # [NCRED] initial credit counts
    lanes: int = 1      # replicated independent simulations


def build_layout(topology: Topology, config: NetworkConfig,
                 compiled, lanes: int = 1) -> Layout:
    """Flatten ``topology`` wiring + ``compiled`` routing into arrays.

    With ``lanes > 1`` the solo layout is tiled into that many disjoint
    index-shifted copies (see module docstring); every dimension field
    except V/D/C/Pi/Po is the solo value times ``lanes``. ``route_out``
    stays indexed by *local* destination terminal — packets keep their
    lane-local src/dst so routing is bit-identical to a solo run.
    """
    np = require_numpy()
    R = topology.num_routers
    T = topology.num_terminals
    V = config.num_vcs
    D = config.buffer_depth
    Pi = max(topology.num_inports(r) for r in range(R))
    Po = max(topology.num_outports(r) for r in range(R))
    NIP = R * Pi
    NIVC = NIP * V
    NOP = R * Po
    NOVC = NOP * V
    NCRED = NOVC + T * V

    nip = np.array([topology.num_inports(r) for r in range(R)],
                   dtype=np.int64)
    op_valid = np.zeros(NOP, dtype=bool)
    op_latency = np.zeros(NOP, dtype=np.int64)
    op_link = np.full(NOP, -1, dtype=np.int64)
    op_dest = np.full(NOP, -1, dtype=np.int64)
    op_eject = np.zeros(NOP, dtype=bool)
    op_term = np.full(NOP, -1, dtype=np.int64)
    op_depth = np.zeros(NOP, dtype=np.int64)
    ip_upbase = np.full(NIP, -1, dtype=np.int64)
    inj_ipid = np.zeros(T, dtype=np.int64)
    inj_link = np.zeros(T, dtype=np.int64)
    ej_opid = np.zeros(T, dtype=np.int64)

    channels = topology.channels()
    for link_id, channel in enumerate(channels):
        ep = channel.endpoints[0]
        opid = channel.src_router * Po + channel.src_port
        op_valid[opid] = True
        op_latency[opid] = ep.latency
        op_link[opid] = link_id
        dest = ep.router * Pi + ep.in_port
        op_dest[opid] = dest
        if ip_upbase[dest] != -1:
            raise ValueError(
                f"input port {ep.in_port} of router {ep.router} "
                f"wired twice")
        ip_upbase[dest] = opid * V
        op_depth[opid] = config.buffer_depth

    # NIC wiring mirrors Network._build_nics: ejection output port per
    # terminal, then an injection link appended after all channel links.
    for terminal in range(T):
        router = topology.terminal_router(terminal)
        eject_port = topology.ejection_port(terminal)
        inject_port = topology.injection_port(terminal)
        opid = router * Po + eject_port
        op_valid[opid] = True
        op_latency[opid] = 1
        op_eject[opid] = True
        op_term[opid] = terminal
        op_depth[opid] = config.eject_buffer_depth
        ej_opid[terminal] = opid
        ipid = router * Pi + inject_port
        if ip_upbase[ipid] != -1:
            raise ValueError(
                f"injection port {inject_port} of router {router} "
                f"wired twice")
        ip_upbase[ipid] = NOVC + terminal * V
        inj_ipid[terminal] = ipid
        inj_link[terminal] = len(channels) + terminal

    route_out, route_drop = compiled.as_arrays()
    if route_drop.size and route_drop.any():
        from ..backend import BackendUnsupportedError
        raise BackendUnsupportedError(
            f"the vectorized backend supports only point-to-point "
            f"channels (drop index 0); topology {topology.name!r} routes "
            f"over multidrop endpoints — use --backend scalar")
    route_lo = np.array([lo for lo, _ in compiled.vc_ranges],
                        dtype=np.int64)
    route_hi = np.array([hi for _, hi in compiled.vc_ranges],
                        dtype=np.int64)

    cred_init = np.zeros(NCRED, dtype=np.int64)
    cred_init[:NOVC] = np.repeat(op_depth, V)
    cred_init[NOVC:] = config.buffer_depth

    lay = Layout(
        R=R, T=T, V=V, D=D, C=compiled.num_route_choices, Pi=Pi, Po=Po,
        NIP=NIP, NIVC=NIVC, NOP=NOP, NOVC=NOVC, NCRED=NCRED, nip=nip,
        op_valid=op_valid, op_latency=op_latency, op_link=op_link,
        op_dest=op_dest, op_eject=op_eject, op_term=op_term,
        ip_upbase=ip_upbase, inj_ipid=inj_ipid, inj_link=inj_link,
        ej_opid=ej_opid, route_out=route_out, route_lo=route_lo,
        route_hi=route_hi, cred_init=cred_init)
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    return _replicate(lay, lanes) if lanes > 1 else lay


def _replicate(lay: Layout, lanes: int) -> Layout:
    """Tile a solo layout into ``lanes`` disjoint index-shifted copies.

    Every id-space reference shifts by the lane's offset in that space:
    lane ``s`` owns routers ``[s*R, (s+1)*R)``, terminals
    ``[s*T, (s+1)*T)``, links ``[s*nlinks, (s+1)*nlinks)`` (keeping the
    per-lane ascending-link arrival sort order), router-side credits
    ``[s*NOVC, (s+1)*NOVC)`` and NIC-side credits
    ``[S*NOVC + s*T*V, ...)`` — the unified credit space keeps all
    router rows first, mirroring the solo arrangement.
    """
    np = require_numpy()
    S = lanes
    T, V = lay.T, lay.V
    NIP, NOP, NOVC = lay.NIP, lay.NOP, lay.NOVC
    nlinks = int(lay.inj_link.max()) + 1 if T else 0
    lane = np.arange(S, dtype=np.int64)

    def shift(arr, stride):
        tiled = np.tile(arr, S)
        offs = np.repeat(lane * stride, len(arr))
        return np.where(tiled >= 0, tiled + offs, tiled)

    up = np.tile(lay.ip_upbase, S)
    offs = np.repeat(lane, NIP)
    ip_upbase = np.where(
        up < 0, up,
        np.where(up < NOVC, up + offs * NOVC,
                 S * NOVC + offs * (T * V) + (up - NOVC)))
    cred_init = np.concatenate([np.tile(lay.cred_init[:NOVC], S),
                                np.tile(lay.cred_init[NOVC:], S)])
    return Layout(
        R=lay.R * S, T=T * S, V=V, D=lay.D, C=lay.C, Pi=lay.Pi,
        Po=lay.Po, NIP=NIP * S, NIVC=lay.NIVC * S, NOP=NOP * S,
        NOVC=NOVC * S, NCRED=lay.NCRED * S,
        nip=np.tile(lay.nip, S),
        op_valid=np.tile(lay.op_valid, S),
        op_latency=np.tile(lay.op_latency, S),
        op_link=shift(lay.op_link, nlinks),
        op_dest=shift(lay.op_dest, NIP),
        op_eject=np.tile(lay.op_eject, S),
        op_term=shift(lay.op_term, T),
        ip_upbase=ip_upbase,
        inj_ipid=shift(lay.inj_ipid, NIP),
        inj_link=shift(lay.inj_link, nlinks),
        ej_opid=shift(lay.ej_opid, NOP),
        route_out=np.tile(lay.route_out, (S, 1, 1)),
        route_lo=lay.route_lo, route_hi=lay.route_hi,
        cred_init=cred_init, lanes=S)
