"""Router port structures: input ports, output ports, channel endpoints.

An output port drives one channel; on MECS the channel has several
*endpoints* (drop points), each with its own downstream buffer and therefore
its own per-VC credit counters and VC-allocation state. Point-to-point
channels have exactly one endpoint.
"""

from __future__ import annotations

from ..core.pseudo_circuit import PseudoCircuitRegister
from ..core.speculation import OutputHistory
from .credits import CreditChannel, CreditCounter
from .vc import VirtualChannel


class OutVC:
    """Upstream-side state of one downstream input VC: allocation + credits.

    ``where`` names the downstream ``(router, in_port, vc)`` for credit
    error context (see :class:`~repro.network.credits.CreditCounter`).
    """

    __slots__ = ("credits", "owner")

    def __init__(self, depth: int,
                 where: tuple[int, int, int] | None = None):
        self.credits = CreditCounter(depth, where)
        # (in_port, in_vc) of the packet currently allocated this VC.
        self.owner: tuple[int, int] | None = None

    @property
    def free(self) -> bool:
        return self.owner is None

    @property
    def credit_count(self) -> int:
        return self.credits.count


class OutEndpoint:
    """One drop point of an output channel, tracked by the upstream
    router."""

    __slots__ = ("router", "in_port", "latency", "ovcs")

    def __init__(self, router: int, in_port: int, latency: int,
                 num_vcs: int, buffer_depth: int):
        self.router = router
        self.in_port = in_port
        self.latency = latency
        self.ovcs = [OutVC(buffer_depth, (router, in_port, v))
                     for v in range(num_vcs)]

    def restore_credit(self, vc: int) -> None:
        self.ovcs[vc].credits.restore()

    def any_credit(self) -> bool:
        for ovc in self.ovcs:
            if ovc.credits.count > 0:
                return True
        return False


class OutputPort:
    """Output side of a router port: endpoints plus pseudo-circuit history.

    ``st_busy_cycle`` records the cycle in which the crossbar column of this
    port is occupied by a flit in ST (set one cycle ahead for SA grants,
    same-cycle for bypassing flits); ``pc_holder`` is the input port holding
    a valid pseudo-circuit to this output (-1 when none) — the "one circuit
    per output" invariant lives here.
    """

    __slots__ = ("port_id", "endpoints", "sink", "history", "pc_holder",
                 "st_busy_cycle", "is_ejection")

    def __init__(self, port_id: int, endpoints: list[OutEndpoint], sink=None,
                 is_ejection: bool = False):
        self.port_id = port_id
        self.endpoints = endpoints
        # Flit consumer behind the channel: a Network delivery queue for
        # router-to-router channels, a NIC for ejection ports.
        self.sink = sink
        self.history = OutputHistory()
        self.pc_holder = -1
        self.st_busy_cycle = -1
        self.is_ejection = is_ejection

    def any_credit(self) -> bool:
        for ep in self.endpoints:
            for ovc in ep.ovcs:
                if ovc.credits.count > 0:
                    return True
        return False


class InputPort:
    """Input side of a router port: VCs, pseudo-circuit register, credit
    return channel toward the upstream endpoint."""

    __slots__ = ("port_id", "vcs", "pc", "credit_channel", "upstream",
                 "st_busy_cycle", "last_pair", "last_out")

    def __init__(self, port_id: int, num_vcs: int, buffer_depth: int,
                 credit_delay: int):
        self.port_id = port_id
        self.vcs = [VirtualChannel(v, buffer_depth) for v in range(num_vcs)]
        self.pc = PseudoCircuitRegister()
        self.credit_channel = CreditChannel(credit_delay)
        # OutEndpoint (or NIC injection endpoint) whose credits this port's
        # returns replenish; wired by the Network at build time.
        self.upstream = None
        self.st_busy_cycle = -1
        # Temporal-locality trackers (Fig. 1).
        self.last_pair: tuple[int, int] | None = None
        self.last_out = -1

    def send_credit(self, vc: int, now: int) -> None:
        self.credit_channel.send(vc, now)

    def deliver_credits(self, now: int) -> int:
        """Deliver due credit returns upstream; returns how many landed."""
        if self.upstream is None:
            return 0
        delivered = self.credit_channel.deliver(now)
        for vc in delivered:
            self.upstream.restore_credit(vc)
        return len(delivered)
