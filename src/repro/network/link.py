"""Channel delivery queues.

A ``Link`` carries flits launched by a router output port to the input port
of the endpoint chosen at switch traversal. Arrival cycles are computed by
the sender (they depend on whether the flit went through SA or bypassed);
the link is a time-ordered queue that hands each flit to the destination
router at its arrival cycle.
"""

from __future__ import annotations

import heapq
import itertools

from .flit import Flit
from .ports import OutEndpoint

_seq = itertools.count()


class Link:
    """Time-ordered in-flight flit queue for one channel."""

    __slots__ = ("_heap",)

    def __init__(self):
        self._heap: list[tuple[int, int, Flit, OutEndpoint]] = []

    def deliver(self, flit: Flit, endpoint: OutEndpoint, cycle: int) -> None:
        """Schedule ``flit`` to arrive at ``endpoint`` at ``cycle``."""
        heapq.heappush(self._heap, (cycle, next(_seq), flit, endpoint))

    def tick(self, now: int, routers) -> None:
        """Hand over every flit whose arrival cycle has come."""
        heap = self._heap
        while heap and heap[0][0] <= now:
            _, _, flit, ep = heapq.heappop(heap)
            routers[ep.router].accept_flit(ep.in_port, flit)

    @property
    def in_flight(self) -> int:
        return len(self._heap)
