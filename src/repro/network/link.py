"""Channel delivery queues.

A ``Link`` carries flits launched by a router output port to the input port
of the endpoint chosen at switch traversal. Arrival cycles are computed by
the sender (they depend on whether the flit went through SA or bypassed);
the link is a time-ordered queue that hands each flit to the destination
router at its arrival cycle.

Point-to-point channels (one endpoint) emit non-decreasing arrival cycles:
an output port launches at most one flit per cycle and the bypass/SA
arrival deltas differ by at most the cycle gap between launches, so the
Network constructs those links with ``fifo=True`` and the queue degenerates
to a plain deque (no heap discipline per flit). Multidrop channels (MECS)
mix per-endpoint latencies and keep the default heap. FIFO links verify
the monotonicity assumption on every ``deliver`` and raise if a sender
violates it.

When the owning :class:`~repro.network.simulator.Network` runs in
active-set mode it binds each link to a live-link registry (a dict keyed by
link id); ``deliver`` then registers the link so the simulator only ticks
links that actually carry flits.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque

from .flit import Flit
from .ports import OutEndpoint

_seq = itertools.count()


class Link:
    """Time-ordered in-flight flit queue for one channel."""

    __slots__ = ("_q", "link_id", "_live", "_fifo", "_probe")

    def __init__(self, fifo: bool = False):
        # fifo=True: deque of (cycle, flit, endpoint), send order == arrival
        # order. fifo=False: heap of (cycle, seq, flit, endpoint).
        self._fifo = fifo
        self._q: deque | list = deque() if fifo else []
        # Wired by the Network in active-set mode.
        self.link_id = -1
        self._live: dict | None = None
        # Null-object probe: one attribute test on the delivery path when
        # tracing is off (set by Network.bind_probe).
        self._probe = None

    def bind(self, link_id: int, live: dict | None) -> None:
        """Attach this link to the network's live-link registry."""
        self.link_id = link_id
        self._live = live

    def deliver(self, flit: Flit, endpoint: OutEndpoint, cycle: int) -> None:
        """Schedule ``flit`` to arrive at ``endpoint`` at ``cycle``."""
        live = self._live
        if live is not None:
            live[self.link_id] = self
        q = self._q
        if self._fifo:
            if q and cycle < q[-1][0]:
                raise RuntimeError(
                    f"non-monotonic delivery on FIFO link {self.link_id}: "
                    f"{cycle} after {q[-1][0]}")
            q.append((cycle, flit, endpoint))
        else:
            heapq.heappush(q, (cycle, next(_seq), flit, endpoint))

    def tick(self, now: int, routers) -> None:
        """Hand over every flit whose arrival cycle has come."""
        q = self._q
        probe = self._probe
        if self._fifo:
            while q and q[0][0] <= now:
                _, flit, ep = q.popleft()
                routers[ep.router].accept_flit(ep.in_port, flit)
                if probe is not None:
                    probe.on_link(now, self.link_id, ep.router, ep.in_port,
                                  flit)
        else:
            while q and q[0][0] <= now:
                _, _, flit, ep = heapq.heappop(q)
                routers[ep.router].accept_flit(ep.in_port, flit)
                if probe is not None:
                    probe.on_link(now, self.link_id, ep.router, ep.in_port,
                                  flit)

    def next_arrival(self) -> int:
        """Arrival cycle of the earliest in-flight flit."""
        if not self._q:
            raise IndexError("next_arrival() on empty link")
        return self._q[0][0]

    @property
    def in_flight(self) -> int:
        return len(self._q)
