"""Channel delivery queues.

A ``Link`` carries flits launched by a router output port to the input port
of the endpoint chosen at switch traversal. Arrival cycles are computed by
the sender (they depend on whether the flit went through SA or bypassed);
the link is a time-ordered queue that hands each flit to the destination
router at its arrival cycle.

When the owning :class:`~repro.network.simulator.Network` runs in
active-set mode it binds each link to a live-link registry (a dict keyed by
link id); ``deliver`` then registers the link so the simulator only ticks
links that actually carry flits.
"""

from __future__ import annotations

import heapq
import itertools

from .flit import Flit
from .ports import OutEndpoint

_seq = itertools.count()


class Link:
    """Time-ordered in-flight flit queue for one channel."""

    __slots__ = ("_heap", "link_id", "_live")

    def __init__(self):
        self._heap: list[tuple[int, int, Flit, OutEndpoint]] = []
        # Wired by the Network in active-set mode.
        self.link_id = -1
        self._live: dict | None = None

    def bind(self, link_id: int, live: dict | None) -> None:
        """Attach this link to the network's live-link registry."""
        self.link_id = link_id
        self._live = live

    def deliver(self, flit: Flit, endpoint: OutEndpoint, cycle: int) -> None:
        """Schedule ``flit`` to arrive at ``endpoint`` at ``cycle``."""
        live = self._live
        if live is not None:
            live[self.link_id] = self
        heapq.heappush(self._heap, (cycle, next(_seq), flit, endpoint))

    def tick(self, now: int, routers) -> None:
        """Hand over every flit whose arrival cycle has come."""
        heap = self._heap
        while heap and heap[0][0] <= now:
            _, _, flit, ep = heapq.heappop(heap)
            routers[ep.router].accept_flit(ep.in_port, flit)

    def next_arrival(self) -> int:
        """Arrival cycle of the earliest in-flight flit."""
        if not self._heap:
            raise IndexError("next_arrival() on empty link")
        return self._heap[0][0]

    @property
    def in_flight(self) -> int:
        return len(self._heap)
