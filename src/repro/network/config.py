"""Network configuration shared by routers, NICs and the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PseudoCircuitConfig:
    """Which pseudo-circuit features are enabled (paper Sections III-IV).

    ``enabled`` turns on the base scheme (reuse crossbar connections to skip
    SA); ``speculation`` and ``buffer_bypass`` are the two aggressive
    extensions and require ``enabled``.
    """

    enabled: bool = False
    speculation: bool = False
    buffer_bypass: bool = False

    def __post_init__(self):
        if (self.speculation or self.buffer_bypass) and not self.enabled:
            raise ValueError(
                "speculation/buffer_bypass require the base pseudo-circuit "
                "scheme to be enabled")

    @property
    def label(self) -> str:
        if not self.enabled:
            return "Baseline"
        name = "Pseudo"
        if self.speculation:
            name += "+S"
        if self.buffer_bypass:
            name += "+B"
        return name


#: The four scheme points evaluated throughout the paper, plus baseline.
BASELINE = PseudoCircuitConfig()
PSEUDO = PseudoCircuitConfig(enabled=True)
PSEUDO_S = PseudoCircuitConfig(enabled=True, speculation=True)
PSEUDO_B = PseudoCircuitConfig(enabled=True, buffer_bypass=True)
PSEUDO_SB = PseudoCircuitConfig(enabled=True, speculation=True,
                                buffer_bypass=True)
ALL_SCHEMES = (BASELINE, PSEUDO, PSEUDO_S, PSEUDO_B, PSEUDO_SB)
PC_SCHEMES = (PSEUDO, PSEUDO_S, PSEUDO_B, PSEUDO_SB)


@dataclass(frozen=True)
class NetworkConfig:
    """Structural and policy parameters of the simulated network.

    Defaults follow the paper's evaluation setup (Section V): 4 VCs per
    input port, 4-flit buffers per VC, 1-cycle links, credit return in 1
    cycle, 4-MSHR self-throttling NICs.
    """

    num_vcs: int = 4
    buffer_depth: int = 4
    link_latency: int = 1
    credit_delay: int = 1
    arbiter_kind: str = "roundrobin"
    pseudo: PseudoCircuitConfig = field(default_factory=PseudoCircuitConfig)
    # NIC parameters.
    mshrs: int = 0          # 0 = unlimited outstanding packets per terminal
    inject_queue: int = 0   # 0 = unbounded source queue
    # Ejection side: depth of the NIC-side reassembly buffers, expressed as
    # credits granted to the router's ejection output port per VC.
    eject_buffer_depth: int = 8

    def __post_init__(self):
        if self.num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        if self.buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")
        if self.link_latency < 1:
            raise ValueError("link_latency must be >= 1")
        if self.credit_delay < 0:
            raise ValueError("credit_delay must be >= 0")
