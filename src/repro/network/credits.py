"""Credit-based virtual-channel flow control (Dally, 1992).

Each output port of a router tracks, per downstream VC, how many free buffer
slots remain at the matching downstream input VC. Sending a flit consumes one
credit; the downstream router returns a credit when the flit leaves (or
bypasses) its buffer. Credit return travels on a dedicated back channel with
a configurable delay.

Credit failures raise :class:`CreditError`, a structured
:class:`~repro.core.violation.InvariantViolation` carrying the
(router, port, vc) the counter guards — wired in at construction via
``where`` — so an under/overflow deep inside a run names the exact edge.
The cycle is filled in by the call sites that know it (routers, NICs).
"""

from __future__ import annotations

from collections import deque

from ..core.violation import InvariantViolation


class CreditError(InvariantViolation):
    """Credit under/overflow: a flow-control invariant was violated."""


class CreditCounter:
    """Credits for one (output port, VC) pair.

    ``where`` is the optional ``(router, port, vc)`` of the downstream
    input VC this counter mirrors (``router == -1`` for NIC-side edges,
    with ``port`` the terminal id); it only feeds error context and costs
    nothing on the hot path.
    """

    __slots__ = ("limit", "count", "where")

    def __init__(self, limit: int,
                 where: tuple[int, int, int] | None = None):
        if limit < 1:
            raise ValueError(f"credit limit must be >= 1, got {limit}")
        self.limit = limit
        self.count = limit
        self.where = where

    @property
    def available(self) -> bool:
        return self.count > 0

    def _violation(self, rule: str, message: str, expected,
                   actual) -> CreditError:
        router = port = vc = None
        if self.where is not None:
            router, port, vc = self.where
        return CreditError(rule, message, router=router, port=port, vc=vc,
                           expected=expected, actual=actual)

    def consume(self) -> None:
        if self.count <= 0:
            raise self._violation(
                "credit_underflow", "credit consumed with zero credits",
                expected=">= 1", actual=self.count)
        self.count -= 1

    def restore(self) -> None:
        if self.count >= self.limit:
            raise self._violation(
                "credit_overflow",
                f"credit restored beyond limit {self.limit}",
                expected=f"< {self.limit}", actual=self.count)
        self.count += 1


class CreditChannel:
    """Delay line carrying (vc,) credit returns upstream.

    ``send(vc, now)`` enqueues a credit; ``deliver(now)`` yields every vc
    whose credit has arrived by cycle ``now``.
    """

    __slots__ = ("delay", "_inflight")

    def __init__(self, delay: int = 1):
        if delay < 0:
            raise ValueError("credit delay must be >= 0")
        self.delay = delay
        self._inflight: deque[tuple[int, int]] = deque()

    def send(self, vc: int, now: int) -> None:
        self._inflight.append((now + self.delay, vc))

    def deliver(self, now: int):
        out = []
        q = self._inflight
        while q and q[0][0] <= now:
            out.append(q.popleft()[1])
        return out

    def pending(self) -> int:
        return len(self._inflight)

    def next_due(self) -> int:
        """Arrival cycle of the earliest in-flight credit."""
        if not self._inflight:
            raise IndexError("next_due() on empty credit channel")
        return self._inflight[0][0]
