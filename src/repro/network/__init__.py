"""Cycle-accurate flit-based wormhole NoC simulator (paper Section V)."""

from .arbiters import MatrixArbiter, RoundRobinArbiter, make_arbiter
from .buffers import BufferOverflowError, FlitBuffer
from .config import (ALL_SCHEMES, BASELINE, PC_SCHEMES, PSEUDO, PSEUDO_B,
                     PSEUDO_S, PSEUDO_SB, NetworkConfig, PseudoCircuitConfig)
from .credits import CreditChannel, CreditCounter, CreditError
from .flit import Flit, FlitType, Packet
from .link import Link
from .nic import Nic
from .ports import InputPort, OutEndpoint, OutputPort, OutVC
from .router import ProtocolError, Router
from .simulator import Network, build_network
from .vc import VCState, VirtualChannel

__all__ = [
    "ALL_SCHEMES",
    "BASELINE",
    "BufferOverflowError",
    "CreditChannel",
    "CreditCounter",
    "CreditError",
    "Flit",
    "FlitBuffer",
    "FlitType",
    "InputPort",
    "Link",
    "MatrixArbiter",
    "Network",
    "NetworkConfig",
    "Nic",
    "OutEndpoint",
    "OutVC",
    "OutputPort",
    "PC_SCHEMES",
    "PSEUDO",
    "PSEUDO_B",
    "PSEUDO_S",
    "PSEUDO_SB",
    "Packet",
    "ProtocolError",
    "PseudoCircuitConfig",
    "RoundRobinArbiter",
    "Router",
    "VCState",
    "VirtualChannel",
    "build_network",
    "make_arbiter",
]
