"""Input virtual-channel state machine.

Each input port has ``num_vcs`` VCs. A VC is IDLE until a head flit reaches
it, computes its route on arrival (lookahead routing keeps route computation
off the critical path, Galles 1996), waits for an output VC in VA, then is
ACTIVE until the tail flit departs.
"""

from __future__ import annotations

from enum import IntEnum

from .buffers import FlitBuffer
from .flit import Flit


class VCState(IntEnum):
    IDLE = 0
    VA = 1      # route known, waiting for an output VC
    ACTIVE = 2  # output VC allocated; flits compete in SA


class VirtualChannel:
    """State for one input VC: buffer + packet-in-progress bookkeeping."""

    __slots__ = ("vc_id", "buffer", "state", "out_port", "out_ep", "out_vc",
                 "out_ep_obj", "out_ovc_obj")

    def __init__(self, vc_id: int, buffer_depth: int):
        self.vc_id = vc_id
        self.buffer = FlitBuffer(buffer_depth)
        self.state = VCState.IDLE
        self.out_port = -1
        self.out_ep = 0  # endpoint (drop) index on multidrop channels
        self.out_vc = -1
        # Resolved downstream objects for the ACTIVE packet (the OutEndpoint
        # and OutVC behind the indices above), bound by the router at VA
        # grant time so credit checks and traversal skip the
        # out_ports[...]->endpoints[...]->ovcs[...] indexing chain.
        self.out_ep_obj = None
        self.out_ovc_obj = None

    # -- state transitions -------------------------------------------------

    def start_packet(self, out_port: int, out_ep: int = 0) -> None:
        """Head flit routed: move IDLE -> VA."""
        if self.state != VCState.IDLE:
            raise RuntimeError(
                f"head flit arrived at busy VC {self.vc_id} "
                f"(state={self.state.name})")
        self.state = VCState.VA
        self.out_port = out_port
        self.out_ep = out_ep
        self.out_vc = -1

    def grant_out_vc(self, out_vc: int) -> None:
        """VA success: VA -> ACTIVE."""
        if self.state != VCState.VA:
            raise RuntimeError(f"VA grant in state {self.state.name}")
        self.state = VCState.ACTIVE
        self.out_vc = out_vc

    def finish_packet(self) -> None:
        """Tail flit departed: ACTIVE -> IDLE."""
        if self.state != VCState.ACTIVE:
            raise RuntimeError(f"tail departure in state {self.state.name}")
        self.state = VCState.IDLE
        self.out_port = -1
        self.out_ep = 0
        self.out_vc = -1
        self.out_ep_obj = None
        self.out_ovc_obj = None

    # -- queries ------------------------------------------------------------

    @property
    def has_flit(self) -> bool:
        return bool(self.buffer)

    def front(self) -> Flit:
        return self.buffer.front()

    def ready_for_sa(self, cycle: int) -> bool:
        """True when the front flit may request the switch this cycle."""
        return (self.state == VCState.ACTIVE and bool(self.buffer)
                and self.buffer.front().ready_cycle <= cycle)

    def __repr__(self) -> str:
        return (f"VC(id={self.vc_id}, {self.state.name}, "
                f"out={self.out_port}/{self.out_vc}, buf={len(self.buffer)})")
