"""Arbiters used by the separable switch allocator.

``RoundRobinArbiter`` is the classic rotating-priority arbiter: the highest
priority is the requester just after the most recent grant, which makes it
starvation-free under persistent requests. ``MatrixArbiter`` implements a
least-recently-served policy with a triangular state matrix; it is provided
as an alternative and exercised by tests, the allocator defaults to
round-robin as in most NoC router implementations.

Both arbiters grant from an integer *request bitmask* (bit ``i`` set means
requester ``i`` wants the resource); the router's allocator collects
requests as masks so no per-cycle candidate lists are built. ``grant``
remains as an iterable-of-indices convenience wrapper over ``grant_mask``
with identical rotation state, so either entry point can be mixed freely.
"""

from __future__ import annotations

from collections.abc import Iterable


def _to_mask(requests: Iterable[int], size: int) -> int:
    mask = 0
    for r in requests:
        if not 0 <= r < size:
            raise ValueError(
                f"request {r} out of range for arbiter size {size}")
        mask |= 1 << r
    return mask


class RoundRobinArbiter:
    """Rotating-priority arbiter over ``size`` requesters."""

    __slots__ = ("size", "_next", "_full")

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("arbiter size must be >= 1")
        self.size = size
        self._next = 0
        self._full = (1 << size) - 1

    def grant_mask(self, mask: int) -> int | None:
        """Grant one set bit of ``mask``; returns None when empty.

        Priority rotates so the granted requester becomes lowest priority.
        The highest-priority requester is found by rotating the mask so the
        priority position lands on bit 0 and isolating the lowest set bit
        (``rot & -rot``) — no per-requester scan.
        """
        if not mask:
            return None
        if mask & ~self._full:
            raise ValueError(
                f"request mask {mask:#x} out of range for size {self.size}")
        size = self.size
        n = self._next
        rot = ((mask >> n) | (mask << (size - n))) & self._full
        low = rot & -rot
        cand = low.bit_length() - 1 + n
        if cand >= size:
            cand -= size
        nxt = cand + 1
        self._next = nxt if nxt < size else 0
        return cand

    def grant(self, requests: Iterable[int]) -> int | None:
        """Grant one of ``requests`` (indices); returns None if empty."""
        return self.grant_mask(_to_mask(requests, self.size))


class MatrixArbiter:
    """Least-recently-served arbiter.

    ``_prio[i][j]`` is True when requester i beats requester j. After a grant,
    the winner loses to everyone (moves to the back of the order).
    """

    __slots__ = ("size", "_prio")

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("arbiter size must be >= 1")
        self.size = size
        self._prio = [[i < j for j in range(size)] for i in range(size)]

    def grant_mask(self, mask: int) -> int | None:
        if not mask:
            return None
        if mask < 0 or mask >> self.size:
            raise ValueError(
                f"request mask {mask:#x} out of range for size {self.size}")
        req = []
        m = mask
        while m:
            low = m & -m
            m ^= low
            req.append(low.bit_length() - 1)
        for cand in req:
            if all(self._prio[cand][other]
                   for other in req if other != cand):
                for other in range(self.size):
                    if other != cand:
                        self._prio[cand][other] = False
                        self._prio[other][cand] = True
                return cand
        # The priority matrix is a total order over any subset, so one
        # candidate always dominates; reaching here means corrupted state.
        raise AssertionError("matrix arbiter found no dominating requester")

    def grant(self, requests: Iterable[int]) -> int | None:
        return self.grant_mask(_to_mask(requests, self.size))


def make_arbiter(kind: str, size: int):
    """Factory used by router configuration (kind: 'roundrobin'|'matrix')."""
    if kind == "roundrobin":
        return RoundRobinArbiter(size)
    if kind == "matrix":
        return MatrixArbiter(size)
    raise ValueError(f"unknown arbiter kind {kind!r}")
