"""Arbiters used by the separable switch allocator.

``RoundRobinArbiter`` is the classic rotating-priority arbiter: the highest
priority is the requester just after the most recent grant, which makes it
starvation-free under persistent requests. ``MatrixArbiter`` implements a
least-recently-served policy with a triangular state matrix; it is provided
as an alternative and exercised by tests, the allocator defaults to
round-robin as in most NoC router implementations.
"""

from __future__ import annotations

from collections.abc import Iterable


class RoundRobinArbiter:
    """Rotating-priority arbiter over ``size`` requesters."""

    __slots__ = ("size", "_next")

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("arbiter size must be >= 1")
        self.size = size
        self._next = 0

    def grant(self, requests: Iterable[int]) -> int | None:
        """Grant one of ``requests`` (indices); returns None if empty.

        Priority rotates so the granted requester becomes lowest priority.
        """
        req = set(requests)
        if not req:
            return None
        for offset in range(self.size):
            cand = (self._next + offset) % self.size
            if cand in req:
                self._next = (cand + 1) % self.size
                return cand
        raise ValueError(f"requests {req} out of range for size {self.size}")


class MatrixArbiter:
    """Least-recently-served arbiter.

    ``_prio[i][j]`` is True when requester i beats requester j. After a grant,
    the winner loses to everyone (moves to the back of the order).
    """

    __slots__ = ("size", "_prio")

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("arbiter size must be >= 1")
        self.size = size
        self._prio = [[i < j for j in range(size)] for i in range(size)]

    def grant(self, requests: Iterable[int]) -> int | None:
        req = [r for r in set(requests)]
        if not req:
            return None
        for r in req:
            if not 0 <= r < self.size:
                raise ValueError(f"request {r} out of range")
        for cand in req:
            if all(self._prio[cand][other]
                   for other in req if other != cand):
                for other in range(self.size):
                    if other != cand:
                        self._prio[cand][other] = False
                        self._prio[other][cand] = True
                return cand
        # The priority matrix is a total order over any subset, so one
        # candidate always dominates; reaching here means corrupted state.
        raise AssertionError("matrix arbiter found no dominating requester")


def make_arbiter(kind: str, size: int):
    """Factory used by router configuration (kind: 'roundrobin'|'matrix')."""
    if kind == "roundrobin":
        return RoundRobinArbiter(size)
    if kind == "matrix":
        return MatrixArbiter(size)
    raise ValueError(f"unknown arbiter kind {kind!r}")
