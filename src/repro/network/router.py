"""Pipelined virtual-channel router with the pseudo-circuit schemes.

The baseline follows the state-of-the-art speculative two-stage organization
(Peh & Dally, HPCA 2001) the paper uses as its starting point: buffer write
(BW), then VA and SA in one cycle (speculation modeled as VA resolving just
before SA within the cycle), then switch traversal (ST), then link traversal
(LT) — four cycles per hop for a head flit at zero load.

Pseudo-circuit extensions hook into the SA stage:

* a flit matching its input port's valid pseudo-circuit skips SA and
  traverses in the cycle it would have arbitrated (hop = 3 cycles);
* with buffer bypassing it can traverse in its arrival cycle (hop = 2);
* speculation re-establishes circuits on freed output ports.

Cycle-internal ordering of ``step``:

1. VA for head flits at the front of their VCs,
2. pseudo-circuit candidate selection (+ route-mismatch / credit
   terminations),
3. SA request collection from the remaining VCs,
4. bypass of unblocked candidates (blocked ones fall back to SA requests
   this same cycle, exactly the paper's "no additional penalty" rule),
5. arrival processing: buffer bypass or buffer write,
6. separable input-first switch allocation; grants traverse next cycle,
7. pseudo-circuit credit terminations and speculative restoration.

Hot-path representation
-----------------------

Buffer occupancy, SA requests, claimed crossbar ports and pending credit
ports are all integer bitmasks: occupancy is one input-port mask plus one
VC mask per input, visited lowest-bit-first (``mask & -mask``), which is
exactly the ascending (port, VC) order the previous set-based scans sorted
into — so no per-cycle ``sorted`` calls and no candidate list allocation,
while staying bit-identical. When the network compiled its routing
algorithm (``routing.compiled``), route computation is a single tuple index
per head flit instead of the dynamic ``route()`` call chain.
"""

from __future__ import annotations

from ..core.pseudo_circuit import Termination
from ..core.violation import InvariantViolation
from ..metrics.stats import NetworkStats
from ..routing.base import RoutingAlgorithm
from ..vcalloc.base import VCAllocationPolicy
from .arbiters import make_arbiter
from .config import NetworkConfig
from .flit import Flit
from .ports import InputPort, OutputPort
from .vc import VCState, VirtualChannel


class ProtocolError(RuntimeError):
    """A flow-control or wormhole invariant was violated."""


class Router:
    """One router; ports are wired by the Network at build time."""

    __slots__ = ("router_id", "config", "routing", "vc_policy", "stats",
                 "in_ports", "out_ports", "_in_arbs", "_out_arbs",
                 "_arrivals", "_buffered_flits",
                 "_occ_in_mask", "_occ_vc_masks", "_req_vc_masks",
                 "_in_full_mask",
                 "_route_table", "_vc_ranges",
                 "_pc_enabled", "_pc_speculation", "_pc_bypass",
                 "_pending_credits", "_credit_mask", "_registers",
                 "_work_set", "_credit_set", "_probe")

    def __init__(self, router_id: int, num_inports: int, num_outports: int,
                 config: NetworkConfig, routing: RoutingAlgorithm,
                 vc_policy: VCAllocationPolicy, stats: NetworkStats):
        self.router_id = router_id
        self.config = config
        self.routing = routing
        self.vc_policy = vc_policy
        self.stats = stats
        self.in_ports = [
            InputPort(p, config.num_vcs, config.buffer_depth,
                      config.credit_delay)
            for p in range(num_inports)]
        # Output ports are replaced by the Network once channels exist.
        self.out_ports: list[OutputPort] = [
            OutputPort(p, []) for p in range(num_outports)]
        self._in_arbs = [make_arbiter(config.arbiter_kind, config.num_vcs)
                         for _ in range(num_inports)]
        self._out_arbs = [make_arbiter(config.arbiter_kind, num_inports)
                          for _ in range(num_outports)]
        self._arrivals: list[tuple[int, Flit]] = []
        self._buffered_flits = 0
        # Buffer occupancy as bitmasks: bit i of _occ_in_mask marks an input
        # port with at least one occupied VC, _occ_vc_masks[i] marks which.
        self._occ_in_mask = 0
        self._occ_vc_masks = [0] * num_inports
        self._in_full_mask = (1 << num_inports) - 1
        # Per-input SA request VC masks, reused across cycles (reset after
        # each allocation so idle cycles never touch them).
        self._req_vc_masks = [0] * num_inports
        # Compiled routing (bound by the Network when the algorithm is
        # tabulable): per-choice destination tables and VC ranges.
        self._route_table = None
        self._vc_ranges = None
        # The per-input pseudo-circuit registers never change identity
        # after construction; speculation scans this list every step.
        self._registers = [ip.pc for ip in self.in_ports]
        # Scheme flags, flattened out of the frozen config (step() reads
        # them every cycle for every active router).
        self._pc_enabled = config.pseudo.enabled
        self._pc_speculation = config.pseudo.speculation
        self._pc_bypass = config.pseudo.buffer_bypass
        # In-flight credit returns across all input ports (drives the
        # credit-delivery active set) and which ports hold them (bitmask).
        self._pending_credits = 0
        self._credit_mask = 0
        # Active-set registries (dicts keyed by router id), bound by the
        # Network when it runs in active-set mode; None when standalone.
        self._work_set: dict | None = None
        self._credit_set: dict | None = None
        # Instrumentation probe (see ``repro.instrument``), set by
        # Network.bind_probe; None (the null object) when tracing is off,
        # so every emission site costs one attribute test.
        self._probe = None

    # -- wiring (used by Network) ---------------------------------------------

    def attach_output(self, port: int, output: OutputPort) -> None:
        self.out_ports[port] = output

    def bind_scheduler(self, work_set: dict, credit_set: dict) -> None:
        """Attach this router to the network's active-set registries."""
        self._work_set = work_set
        self._credit_set = credit_set

    def bind_route_table(self, table, vc_ranges) -> None:
        """Attach this router's compiled routing table (see
        ``routing.compiled``): ``table[route_choice][dst]`` yields
        ``(out_port, drop, vc_lo, vc_hi)``."""
        self._route_table = table
        self._vc_ranges = vc_ranges

    # -- per-cycle entry points -----------------------------------------------

    def accept_flit(self, in_port: int, flit: Flit) -> None:
        """Stage a flit delivered by an upstream channel this cycle."""
        work = self._work_set
        if work is not None:
            work[self.router_id] = self
        self._arrivals.append((in_port, flit))

    @property
    def has_work(self) -> bool:
        """True while this router can make progress (arrivals or buffers)."""
        return bool(self._arrivals) or self._buffered_flits > 0

    def deliver_credits(self, cycle: int) -> None:
        if self._pending_credits == 0:
            return
        delivered = 0
        ports = self.in_ports
        mask = self._credit_mask
        probe = self._probe
        router_id = self.router_id
        m = mask
        try:
            while m:
                low = m & -m
                m ^= low
                i = low.bit_length() - 1
                ip = ports[i]
                # Inlined InputPort.deliver_credits / CreditChannel.deliver:
                # walk the due prefix of the delay line directly.
                q = ip.credit_channel._inflight
                upstream = ip.upstream
                while q and q[0][0] <= cycle:
                    vc = q.popleft()[1]
                    upstream.ovcs[vc].credits.restore()
                    delivered += 1
                    if probe is not None:
                        probe.on_credit_restore(cycle, router_id, i, vc)
                if not q:
                    mask ^= low
        except InvariantViolation as err:
            if err.cycle is None:
                err.cycle = cycle
            raise
        self._credit_mask = mask
        self._pending_credits -= delivered

    def next_credit_cycle(self) -> int:
        """Earliest due cycle among the in-flight credit returns."""
        ports = self.in_ports
        nxt = None
        m = self._credit_mask
        while m:
            low = m & -m
            m ^= low
            due = ports[low.bit_length() - 1].credit_channel.next_due()
            if nxt is None or due < nxt:
                nxt = due
        if nxt is None:
            raise ValueError("next_credit_cycle() with no pending credits")
        return nxt

    def step(self, cycle: int) -> None:
        if not self._arrivals and self._buffered_flits == 0:
            return  # idle router: nothing can happen this cycle
        # Hoist per-cycle attribute lookups out of the phase loops.
        in_ports = self.in_ports
        out_ports = self.out_ports
        pc_enabled = self._pc_enabled
        self._va_phase(cycle)
        if pc_enabled:
            candidates = self._pc_candidates(cycle)
        else:
            candidates = {}
        order, vc_masks, req_in_mask, req_out_mask = \
            self._collect_requests(cycle, candidates)
        # The claimed masks are only consulted by the bypass paths below;
        # without pseudo-circuits they are never read.
        claimed_in = req_in_mask
        claimed_out = req_out_mask
        # Bypass unblocked pseudo-circuit candidates; blocked ones join SA.
        # _pc_candidates fills the dict in ascending input-port order, so
        # plain insertion-order iteration already matches the sorted scan.
        for i, vc in candidates.items():
            out = out_ports[vc.out_port]
            in_busy = in_ports[i].st_busy_cycle == cycle
            out_busy = out.st_busy_cycle == cycle
            if (claimed_in >> i & 1 or claimed_out >> vc.out_port & 1
                    or in_busy != out_busy):
                if vc_masks[i] == 0:
                    order.append(i)
                vc_masks[i] |= 1 << vc.vc_id
                claimed_in |= 1 << i
                claimed_out |= 1 << vc.out_port
            elif in_busy:
                # Both crossbar ports are occupied by the previous flit of
                # this same circuit (anything else would have re-established
                # or terminated the register): the stream keeps flowing
                # through the held connection, one flit per cycle, without
                # arbitration — reuse at pipeline-full throughput.
                self._traverse(cycle, i, vc, via="pc", streamed=True)
            else:
                self._traverse(cycle, i, vc, via="pc")
        self._process_arrivals(cycle, claimed_in, claimed_out)
        grants = self._allocate_switch(order, vc_masks)
        for i in order:
            vc_masks[i] = 0
        for i, vc in grants:
            self._traverse(cycle, i, vc, via="sa")
        if pc_enabled:
            self._pc_maintenance(cycle)

    # -- VA stage -------------------------------------------------------------

    def _va_phase(self, cycle: int) -> None:
        occ_in = self._occ_in_mask
        if not occ_in:
            return
        ports = self.in_ports
        occ_vc_masks = self._occ_vc_masks
        num = len(ports)
        router_id = self.router_id
        table = self._route_table
        route = self.routing.route
        va, active = VCState.VA, VCState.ACTIVE
        # Visit only VCs that hold flits, rotating the port service order
        # for fairness (same order the full port-rotation x VC scan would
        # reach them): rotate the occupancy mask so the start port lands on
        # bit 0, then peel ascending bits.
        start = cycle % num
        if start:
            rot = ((occ_in >> start) | (occ_in << (num - start))) \
                & self._in_full_mask
        else:
            rot = occ_in
        while rot:
            low = rot & -rot
            rot ^= low
            i = low.bit_length() - 1 + start
            if i >= num:
                i -= num
            ip = ports[i]
            vcs = ip.vcs
            vm = occ_vc_masks[i]
            while vm:
                lowv = vm & -vm
                vm ^= lowv
                vc = vcs[lowv.bit_length() - 1]
                state = vc.state
                if state == active:
                    continue  # VA already done for this packet
                front = vc.buffer._q[0]
                if front.ready_cycle > cycle:
                    continue
                if state != va:  # IDLE: route the new head
                    if not front.is_head:
                        raise ProtocolError(
                            f"router {router_id}: body flit at the "
                            f"front of idle VC {vc.vc_id}: {front}")
                    packet = front.packet
                    if table is not None:
                        out_port, drop, _, _ = \
                            table[packet.route_choice][packet.dst]
                    else:
                        out_port, drop = route(router_id, packet)
                    vc.start_packet(out_port, drop)
                self._try_va(cycle, ip, vc, front)

    def _try_va(self, cycle: int, ip: InputPort, vc: VirtualChannel,
                head: Flit) -> bool:
        out = self.out_ports[vc.out_port]
        endpoint = out.endpoints[vc.out_ep]
        vc_ranges = self._vc_ranges
        if vc_ranges is not None:
            lo, hi = vc_ranges[head.packet.route_choice]
        else:
            lo, hi = self.routing.vc_limits(head.packet, self.config.num_vcs,
                                            vc.out_port)
        ovc = self.vc_policy.allocate(endpoint.ovcs, head.packet, lo, hi,
                                      ejection=out.is_ejection)
        if ovc is None:
            return False
        ovc_state = endpoint.ovcs[ovc]
        ovc_state.owner = (ip.port_id, vc.vc_id)
        vc.grant_out_vc(ovc)
        vc.out_ep_obj = endpoint
        vc.out_ovc_obj = ovc_state
        self.stats.va_allocations += 1
        probe = self._probe
        if probe is not None:
            probe.on_va_grant(cycle, self.router_id, ip.port_id, vc.vc_id,
                              vc.out_port, ovc, head)
        return True

    # -- pseudo-circuit candidates --------------------------------------------

    def _pc_candidates(self, cycle: int) -> dict[int, VirtualChannel]:
        """Input ports whose circuit's VC has a matching, ready front flit."""
        candidates: dict[int, VirtualChannel] = {}
        occ_vc_masks = self._occ_vc_masks
        active = VCState.ACTIVE
        for i, ip in enumerate(self.in_ports):
            reg = ip.pc
            if not reg.valid:
                continue
            in_vc = reg.in_vc
            if not occ_vc_masks[i] >> in_vc & 1:
                continue
            vc = ip.vcs[in_vc]
            front = vc.buffer._q[0]
            if front.ready_cycle > cycle:
                continue
            if front.is_head:
                # Route is known (the VA phase ran first this cycle).
                if vc.out_port != reg.out_port:
                    self._terminate_pc(cycle, i, Termination.ROUTE_MISMATCH)
                    continue
                if vc.state != active:
                    continue  # header still waiting for an output VC
            elif vc.state != active:
                raise ProtocolError(
                    f"router {self.router_id}: body flit on inactive VC")
            if vc.out_ovc_obj.credits.count == 0:
                self._terminate_pc(cycle, i, Termination.NO_CREDIT)
                continue
            candidates[i] = vc
        return candidates

    # -- SA stage -------------------------------------------------------------

    def _collect_requests(self, cycle: int,
                          candidates: dict[int, VirtualChannel]
                          ) -> tuple[list[int], list[int], int, int]:
        """Collect SA requests as per-input VC bitmasks.

        Returns ``(order, vc_masks, in_mask, out_mask)``: the requesting
        input ports in ascending order, the shared per-input VC mask array
        (entries for ``order`` members are live until reset by ``step``),
        and bitmasks over requesting inputs / requested output ports.
        """
        order: list[int] = []
        vc_masks = self._req_vc_masks
        occ_in = self._occ_in_mask
        if not occ_in:
            return order, vc_masks, 0, 0
        in_mask = 0
        out_mask = 0
        ports = self.in_ports
        occ_vc_masks = self._occ_vc_masks
        get_candidate = candidates.get
        active = VCState.ACTIVE
        m = occ_in
        while m:
            low = m & -m
            m ^= low
            i = low.bit_length() - 1
            vcs = ports[i].vcs
            cand = get_candidate(i)
            vm = occ_vc_masks[i]
            acc = 0
            while vm:
                lowv = vm & -vm
                vm ^= lowv
                vc = vcs[lowv.bit_length() - 1]
                # Inlined ready_for_sa: membership in the occupancy mask
                # already guarantees the buffer is non-empty.
                if (vc is cand or vc.state != active
                        or vc.buffer._q[0].ready_cycle > cycle
                        or vc.out_ovc_obj.credits.count == 0):
                    continue
                acc |= lowv
                out_mask |= 1 << vc.out_port
            if acc:
                vc_masks[i] = acc
                order.append(i)
                in_mask |= low
        return order, vc_masks, in_mask, out_mask

    def _allocate_switch(self, order: list[int], vc_masks: list[int]
                         ) -> list[tuple[int, VirtualChannel]]:
        """Separable input-first allocation with round-robin arbiters."""
        if not order:
            return []
        in_arbs = self._in_arbs
        out_arbs = self._out_arbs
        ports = self.in_ports
        if len(order) == 1:
            i = order[0]
            m = vc_masks[i]
            if m & (m - 1) == 0:
                # Uncontended: both arbiters still rotate exactly as in the
                # general path, so arbiter state stays bit-identical.
                vc = ports[i].vcs[m.bit_length() - 1]
                in_arbs[i].grant_mask(m)
                out_arbs[vc.out_port].grant_mask(1 << i)
                return [(i, vc)]
        stage1: dict[int, VirtualChannel] = {}
        out_order: list[int] = []
        out_masks: dict[int, int] = {}
        for i in order:
            choice = in_arbs[i].grant_mask(vc_masks[i])
            vc = ports[i].vcs[choice]
            stage1[i] = vc
            out = vc.out_port
            prev = out_masks.get(out)
            if prev is None:
                out_order.append(out)
                out_masks[out] = 1 << i
            else:
                out_masks[out] = prev | (1 << i)
        grants = []
        for out in out_order:
            winner = out_arbs[out].grant_mask(out_masks[out])
            grants.append((winner, stage1[winner]))
        return grants

    # -- arrivals: buffer write or buffer bypass ------------------------------

    def _process_arrivals(self, cycle: int, claimed_in: int,
                          claimed_out: int) -> None:
        arrivals = self._arrivals
        if not arrivals:
            return
        bypass_on = self._pc_bypass
        in_ports = self.in_ports
        occ_vc_masks = self._occ_vc_masks
        occ_in_add = 0
        buffered = 0
        probe = self._probe
        router_id = self.router_id
        for i, flit in arrivals:
            ip = in_ports[i]
            vc = ip.vcs[flit.vc]
            if (bypass_on and ip.pc.valid and ip.pc.in_vc == flit.vc
                    and not vc.buffer._q
                    and self._try_buffer_bypass(cycle, i, ip, vc, flit,
                                                claimed_in, claimed_out)):
                continue
            flit.ready_cycle = cycle + 1
            buf = vc.buffer
            q = buf._q
            if len(q) >= buf.capacity:
                buf.append(flit)  # raises BufferOverflowError
            q.append(flit)
            vm = occ_vc_masks[i]
            if not vm:
                occ_in_add |= 1 << i
            occ_vc_masks[i] = vm | (1 << flit.vc)
            buffered += 1
            if probe is not None:
                probe.on_buffer_write(cycle, router_id, i, flit.vc, flit)
        self._occ_in_mask |= occ_in_add
        self._buffered_flits += buffered
        self.stats.buffer_writes += buffered
        arrivals.clear()

    def _try_buffer_bypass(self, cycle: int, i: int, ip: InputPort,
                           vc: VirtualChannel, flit: Flit,
                           claimed_in: int, claimed_out: int) -> bool:
        # The port must be free this cycle AND no earlier flit of this port
        # may still be scheduled for a later ST (it would be overtaken).
        if ip.st_busy_cycle >= cycle or claimed_in >> i & 1:
            return False
        if flit.is_head:
            if vc.state != VCState.IDLE:
                raise ProtocolError(
                    f"router {self.router_id}: head flit arrived on VC "
                    f"{vc.vc_id} still {vc.state.name}")
            packet = flit.packet
            table = self._route_table
            if table is not None:
                out_port, drop, lo, hi = table[packet.route_choice][
                    packet.dst]
            else:
                out_port, drop = self.routing.route(self.router_id, packet)
                lo = hi = -1  # vc_limits resolved below, after early-outs
            if not ip.pc.matches_head(flit.vc, out_port):
                if ip.pc.conflicts_with_route(flit.vc, out_port):
                    self._terminate_pc(cycle, i, Termination.ROUTE_MISMATCH)
                return False
            out = self.out_ports[out_port]
            if claimed_out >> out_port & 1 or out.st_busy_cycle >= cycle:
                return False
            endpoint = out.endpoints[drop]
            if table is None:
                lo, hi = self.routing.vc_limits(packet, self.config.num_vcs,
                                                out_port)
            ovc = self.vc_policy.allocate(endpoint.ovcs, packet, lo, hi,
                                          ejection=out.is_ejection)
            if ovc is None or endpoint.ovcs[ovc].credits.count == 0:
                return False
            vc.start_packet(out_port, drop)
            ovc_state = endpoint.ovcs[ovc]
            ovc_state.owner = (i, vc.vc_id)
            vc.grant_out_vc(ovc)
            vc.out_ep_obj = endpoint
            vc.out_ovc_obj = ovc_state
            self.stats.va_allocations += 1
            probe = self._probe
            if probe is not None:
                probe.on_va_grant(cycle, self.router_id, i, vc.vc_id,
                                  out_port, ovc, flit)
        else:
            if vc.state != VCState.ACTIVE:
                raise ProtocolError(
                    f"router {self.router_id}: body flit arrived on "
                    f"inactive VC {vc.vc_id}")
            out = self.out_ports[vc.out_port]
            if claimed_out >> vc.out_port & 1 or out.st_busy_cycle >= cycle:
                return False
            if vc.out_ovc_obj.credits.count == 0:
                # Out of credit before the flit arrived: tear the circuit
                # down and buffer normally (Section IV.B).
                self._terminate_pc(cycle, i, Termination.NO_CREDIT)
                return False
        self._traverse(cycle, i, vc, via="buf", arriving=flit)
        return True

    # -- flit traversal (common to SA grants and both bypass kinds) -----------

    def _traverse(self, cycle: int, i: int, vc: VirtualChannel, via: str,
                  arriving: Flit | None = None,
                  streamed: bool = False) -> None:
        ip = self.in_ports[i]
        stats = self.stats
        vc_id = vc.vc_id
        if arriving is None:
            q = vc.buffer._q
            flit = q.popleft()
            read = True
            if not q:
                occ_vc_masks = self._occ_vc_masks
                vm = occ_vc_masks[i] & ~(1 << vc_id)
                occ_vc_masks[i] = vm
                if not vm:
                    self._occ_in_mask &= ~(1 << i)
            self._buffered_flits -= 1
        else:
            flit = arriving  # write-through bypass: the slot is never held
            read = False
        channel = ip.credit_channel
        channel._inflight.append((cycle + channel.delay, vc_id))
        self._pending_credits += 1
        self._credit_mask |= 1 << i
        credit_set = self._credit_set
        if credit_set is not None:
            credit_set[self.router_id] = self
        out_port = vc.out_port
        out = self.out_ports[out_port]
        endpoint = vc.out_ep_obj
        ovc_state = vc.out_ovc_obj
        try:
            ovc_state.credits.consume()
        except InvariantViolation as err:
            if err.cycle is None:
                err.cycle = cycle
            raise
        packet = flit.packet
        # Temporal locality (Fig. 1) and per-hop event counters, recorded
        # inline (this is the single hottest call site of the simulator;
        # see NetworkStats.record_hop for the reference semantics).
        if flit.is_head:
            packet.hops += 1
            if via != "sa":
                packet.sa_bypass_hops += 1
                stats.sa_bypass_flits += 1
                if via == "buf":
                    packet.buf_bypass_hops += 1
                    stats.buf_bypass_flits += 1
            else:
                stats.sa_arbitrations += 1
            pair = (packet.src, packet.dst)
            stats.e2e_packets += 1
            if ip.last_pair == pair:
                stats.e2e_repeats += 1
            ip.last_pair = pair
        elif via != "sa":
            stats.sa_bypass_flits += 1
            if via == "buf":
                stats.buf_bypass_flits += 1
        else:
            stats.sa_arbitrations += 1
        stats.flit_hops += 1
        stats.xbar_flits += 1
        if read:
            stats.buffer_reads += 1
        if ip.last_out == out_port:
            stats.xbar_repeats += 1
        ip.last_out = out_port
        probe = self._probe
        if probe is not None:
            probe.on_traverse(cycle, self.router_id, i, vc_id, out_port,
                              via, read, flit)
        if self._pc_enabled:
            # Refresh fast path: a valid register already pointing at this
            # exact (in VC, output) connection is re-established unchanged
            # by _establish_pc, so skip the call entirely.
            reg = ip.pc
            if not (reg.valid and reg.in_vc == vc_id
                    and reg.out_port == out_port and out.pc_holder == i):
                self._establish_pc(cycle, i, vc_id, out_port)
            elif probe is not None:
                probe.on_pc_establish(cycle, self.router_id, i, vc_id,
                                      out_port, True)
        # Crossbar occupancy: SA grants and streamed circuit followers
        # traverse next cycle, bypasses traverse now.
        delayed = via == "sa" or streamed
        st_cycle = cycle + 1 if delayed else cycle
        ip.st_busy_cycle = st_cycle
        out.st_busy_cycle = st_cycle
        flit.vc = vc.out_vc
        arrival = cycle + endpoint.latency + (2 if delayed else 1)
        out.sink.deliver(flit, endpoint, arrival)
        if flit.is_tail:
            ovc_state.owner = None
            vc.finish_packet()

    # -- pseudo-circuit bookkeeping -------------------------------------------

    def _establish_pc(self, cycle: int, i: int, in_vc: int,
                      out_port: int) -> None:
        ip = self.in_ports[i]
        reg = ip.pc
        out = self.out_ports[out_port]
        holder = out.pc_holder
        if holder not in (-1, i):
            self._terminate_pc(cycle, holder, Termination.CONFLICT_OUTPUT)
        if reg.valid and reg.out_port != out_port:
            self._terminate_pc(cycle, i, Termination.CONFLICT_INPUT)
        refreshed = (reg.valid and reg.in_vc == in_vc
                     and reg.out_port == out_port)
        reg.establish(in_vc, out_port)
        out.pc_holder = i
        if not refreshed:
            self.stats.pc_established += 1
        probe = self._probe
        if probe is not None:
            probe.on_pc_establish(cycle, self.router_id, i, in_vc, out_port,
                                  refreshed)

    def _terminate_pc(self, cycle: int, i: int, reason: Termination) -> None:
        reg = self.in_ports[i].pc
        if not reg.valid:
            return
        reg.invalidate()
        out = self.out_ports[reg.out_port]
        if out.pc_holder == i:
            out.pc_holder = -1
        out.history.record_termination(i)
        self.stats.pc_terminations[reason] += 1
        probe = self._probe
        if probe is not None:
            probe.on_pc_terminate(cycle, self.router_id, i, reg.out_port,
                                  reason)

    def _pc_maintenance(self, cycle: int) -> None:
        """End-of-cycle pseudo-circuit upkeep, fused into one output pass:
        credit terminations on held outputs, speculative restoration on
        free ones (reference semantics: ``speculation.try_restore``).

        A NO_CREDIT termination at a port only ever creates restoration
        candidates at that *same* port — and that port is creditless, so
        it cannot be restored this cycle. The per-port fusion is therefore
        identical to running every termination and then every restoration.
        """
        registers = self._registers
        # Candidate prescan: outputs some invalidated circuit still points
        # at. Terminations made during the pass below only add candidates
        # at their own (creditless, hence unrestorable) port, so the
        # snapshot stays exact.
        cand_outs = 0
        if self._pc_speculation:
            for reg in registers:
                if not reg.valid and reg.in_vc >= 0:
                    cand_outs |= 1 << reg.out_port
        for out in self.out_ports:
            holder = out.pc_holder
            if holder != -1:
                # Inlined OutputPort.any_credit (hot: one check per held
                # output per cycle).
                for ep in out.endpoints:
                    for ovc in ep.ovcs:
                        if ovc.credits.count:
                            break
                    else:
                        continue
                    break
                else:
                    self._terminate_pc(cycle, holder, Termination.NO_CREDIT)
                continue
            port_id = out.port_id
            if not cand_outs >> port_id & 1:
                continue
            # Free output with candidates: pick the invalidated circuit
            # still pointing here; the history register resolves ties.
            hist = out.history.last_input
            chosen = -1
            count = 0
            hist_ok = False
            for i, reg in enumerate(registers):
                if (not reg.valid and reg.in_vc >= 0
                        and reg.out_port == port_id):
                    count += 1
                    if chosen == -1:
                        chosen = i
                    if i == hist:
                        hist_ok = True
            if count == 0:
                continue
            if count > 1:
                if not hist_ok:
                    continue
                chosen = hist
            for ep in out.endpoints:  # restoration needs credits downstream
                for ovc in ep.ovcs:
                    if ovc.credits.count:
                        break
                else:
                    continue
                break
            else:
                continue
            registers[chosen].restore()
            out.pc_holder = chosen
            self.stats.pc_restored += 1
            probe = self._probe
            if probe is not None:
                probe.on_pc_restore(cycle, self.router_id, chosen, port_id)

    # -- introspection (tests) ------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the pseudo-circuit and credit invariants (tests only)."""
        holders: dict[int, int] = {}
        for i, ip in enumerate(self.in_ports):
            if ip.pc.valid:
                o = ip.pc.out_port
                if o in holders:
                    raise AssertionError(
                        f"outputs {o} held by inputs {holders[o]} and {i}")
                holders[o] = i
        for out in self.out_ports:
            expected = holders.get(out.port_id, -1)
            if out.pc_holder != expected:
                raise AssertionError(
                    f"pc_holder[{out.port_id}]={out.pc_holder} but register "
                    f"scan says {expected}")
            for ep in out.endpoints:
                for ovc in ep.ovcs:
                    if not 0 <= ovc.credits.count <= ovc.credits.limit:
                        raise AssertionError("credit counter out of range")
        for ip in self.in_ports:
            for vc in ip.vcs:
                if vc.state != VCState.ACTIVE:
                    continue
                expected_ovc = self.out_ports[vc.out_port].endpoints[
                    vc.out_ep].ovcs[vc.out_vc]
                if vc.out_ovc_obj is not expected_ovc:
                    raise AssertionError(
                        f"router {self.router_id}: stale downstream cache "
                        f"on VC {vc.vc_id}")
        for i, ip in enumerate(self.in_ports):
            occupied = {v for v, vc in enumerate(ip.vcs) if vc.buffer}
            mask = self._occ_vc_masks[i]
            from_mask = {b for b in range(len(ip.vcs)) if mask >> b & 1}
            if occupied != from_mask:
                raise AssertionError(
                    f"router {self.router_id}: occupancy mask "
                    f"{from_mask} != buffers {occupied} at input {i}")
            if bool(occupied) != bool(self._occ_in_mask >> i & 1):
                raise AssertionError(
                    f"router {self.router_id}: input mask out of sync "
                    f"at input {i}")

    def __repr__(self) -> str:
        return (f"Router(id={self.router_id}, in={len(self.in_ports)}, "
                f"out={len(self.out_ports)})")
