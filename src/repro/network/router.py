"""Pipelined virtual-channel router with the pseudo-circuit schemes.

The baseline follows the state-of-the-art speculative two-stage organization
(Peh & Dally, HPCA 2001) the paper uses as its starting point: buffer write
(BW), then VA and SA in one cycle (speculation modeled as VA resolving just
before SA within the cycle), then switch traversal (ST), then link traversal
(LT) — four cycles per hop for a head flit at zero load.

Pseudo-circuit extensions hook into the SA stage:

* a flit matching its input port's valid pseudo-circuit skips SA and
  traverses in the cycle it would have arbitrated (hop = 3 cycles);
* with buffer bypassing it can traverse in its arrival cycle (hop = 2);
* speculation re-establishes circuits on freed output ports.

Cycle-internal ordering of ``step``:

1. VA for head flits at the front of their VCs,
2. pseudo-circuit candidate selection (+ route-mismatch / credit
   terminations),
3. SA request collection from the remaining VCs,
4. bypass of unblocked candidates (blocked ones fall back to SA requests
   this same cycle, exactly the paper's "no additional penalty" rule),
5. arrival processing: buffer bypass or buffer write,
6. separable input-first switch allocation; grants traverse next cycle,
7. pseudo-circuit credit terminations and speculative restoration.
"""

from __future__ import annotations

from ..core.pseudo_circuit import Termination
from ..core.speculation import try_restore
from ..metrics.stats import NetworkStats
from ..routing.base import RoutingAlgorithm
from ..vcalloc.base import VCAllocationPolicy
from .arbiters import make_arbiter
from .config import NetworkConfig
from .flit import Flit
from .ports import InputPort, OutputPort
from .vc import VCState, VirtualChannel


class ProtocolError(RuntimeError):
    """A flow-control or wormhole invariant was violated."""


_EMPTY: frozenset = frozenset()  # shared placeholder for unused claim sets


class Router:
    """One router; ports are wired by the Network at build time."""

    __slots__ = ("router_id", "config", "routing", "vc_policy", "stats",
                 "in_ports", "out_ports", "_in_arbs", "_out_arbs",
                 "_arrivals", "_buffered_flits", "_occupied",
                 "_pc_enabled", "_pc_speculation", "_pc_bypass",
                 "_pending_credits", "_credit_ports", "_registers",
                 "_work_set", "_credit_set")

    def __init__(self, router_id: int, num_inports: int, num_outports: int,
                 config: NetworkConfig, routing: RoutingAlgorithm,
                 vc_policy: VCAllocationPolicy, stats: NetworkStats):
        self.router_id = router_id
        self.config = config
        self.routing = routing
        self.vc_policy = vc_policy
        self.stats = stats
        self.in_ports = [
            InputPort(p, config.num_vcs, config.buffer_depth,
                      config.credit_delay)
            for p in range(num_inports)]
        # Output ports are replaced by the Network once channels exist.
        self.out_ports: list[OutputPort] = [
            OutputPort(p, []) for p in range(num_outports)]
        self._in_arbs = [make_arbiter(config.arbiter_kind, config.num_vcs)
                         for _ in range(num_inports)]
        self._out_arbs = [make_arbiter(config.arbiter_kind, num_inports)
                          for _ in range(num_outports)]
        self._arrivals: list[tuple[int, Flit]] = []
        self._buffered_flits = 0
        # (in_port, vc_id) pairs whose buffers hold at least one flit; the
        # VA and SA scans iterate this instead of every port x VC.
        self._occupied: set[tuple[int, int]] = set()
        # The per-input pseudo-circuit registers never change identity
        # after construction; speculation scans this list every step.
        self._registers = [ip.pc for ip in self.in_ports]
        # Scheme flags, flattened out of the frozen config (step() reads
        # them every cycle for every active router).
        self._pc_enabled = config.pseudo.enabled
        self._pc_speculation = config.pseudo.speculation
        self._pc_bypass = config.pseudo.buffer_bypass
        # In-flight credit returns across all input ports (drives the
        # credit-delivery active set) and which ports hold them.
        self._pending_credits = 0
        self._credit_ports: set[int] = set()
        # Active-set registries (dicts keyed by router id), bound by the
        # Network when it runs in active-set mode; None when standalone.
        self._work_set: dict | None = None
        self._credit_set: dict | None = None

    # -- wiring (used by Network) ---------------------------------------------

    def attach_output(self, port: int, output: OutputPort) -> None:
        self.out_ports[port] = output

    def bind_scheduler(self, work_set: dict, credit_set: dict) -> None:
        """Attach this router to the network's active-set registries."""
        self._work_set = work_set
        self._credit_set = credit_set

    # -- per-cycle entry points -----------------------------------------------

    def accept_flit(self, in_port: int, flit: Flit) -> None:
        """Stage a flit delivered by an upstream channel this cycle."""
        work = self._work_set
        if work is not None:
            work[self.router_id] = self
        self._arrivals.append((in_port, flit))

    @property
    def has_work(self) -> bool:
        """True while this router can make progress (arrivals or buffers)."""
        return bool(self._arrivals) or self._buffered_flits > 0

    def deliver_credits(self, cycle: int) -> None:
        if self._pending_credits == 0:
            return
        delivered = 0
        ports = self.in_ports
        credit_ports = self._credit_ports
        for i in sorted(credit_ports):
            ip = ports[i]
            delivered += ip.deliver_credits(cycle)
            if not ip.credit_channel.pending():
                credit_ports.discard(i)
        self._pending_credits -= delivered

    def next_credit_cycle(self) -> int:
        """Earliest due cycle among the in-flight credit returns."""
        ports = self.in_ports
        return min(ports[i].credit_channel.next_due()
                   for i in self._credit_ports)

    def step(self, cycle: int) -> None:
        if not self._arrivals and self._buffered_flits == 0:
            return  # idle router: nothing can happen this cycle
        # Hoist per-cycle attribute lookups out of the phase loops.
        in_ports = self.in_ports
        out_ports = self.out_ports
        pc_enabled = self._pc_enabled
        self._va_phase(cycle)
        if pc_enabled:
            candidates = self._pc_candidates(cycle)
        else:
            candidates = {}
        requests = self._collect_requests(cycle, candidates)
        if candidates or (self._pc_bypass and self._arrivals):
            # The claimed sets are only consulted by the bypass paths
            # below; without pseudo-circuits they are never read.
            claimed_in = {i for i, _ in requests}
            claimed_out = {vc.out_port for _, vc in requests}
        else:
            claimed_in = claimed_out = _EMPTY
        # Bypass unblocked pseudo-circuit candidates; blocked ones join SA.
        for i in sorted(candidates):
            vc = candidates[i]
            out = out_ports[vc.out_port]
            in_busy = in_ports[i].st_busy_cycle == cycle
            out_busy = out.st_busy_cycle == cycle
            if (i in claimed_in or vc.out_port in claimed_out
                    or in_busy != out_busy):
                requests.append((i, vc))
                claimed_in.add(i)
                claimed_out.add(vc.out_port)
            elif in_busy:
                # Both crossbar ports are occupied by the previous flit of
                # this same circuit (anything else would have re-established
                # or terminated the register): the stream keeps flowing
                # through the held connection, one flit per cycle, without
                # arbitration — reuse at pipeline-full throughput.
                self._traverse(cycle, i, vc, via="pc", streamed=True)
            else:
                self._traverse(cycle, i, vc, via="pc")
        self._process_arrivals(cycle, claimed_in, claimed_out)
        for i, vc in self._allocate_switch(requests):
            self._traverse(cycle, i, vc, via="sa")
        if pc_enabled:
            self._credit_terminations()
            if self._pc_speculation:
                self._speculate()

    # -- VA stage -------------------------------------------------------------

    def _va_phase(self, cycle: int) -> None:
        occupied = self._occupied
        if not occupied:
            return
        ports = self.in_ports
        num = len(ports)
        router_id = self.router_id
        route = self.routing.route
        idle, va = VCState.IDLE, VCState.VA
        start = cycle % num  # rotate service order for fairness
        # Visit only VCs that hold flits, in the same order the full
        # port-rotation x VC scan would reach them. (A single entry needs
        # no ordering at all — the common case at low load.)
        if len(occupied) == 1:
            ordered = occupied
        else:
            ordered = sorted(occupied,
                             key=lambda pv: ((pv[0] - start) % num, pv[1]))
        for i, v in ordered:
            ip = ports[i]
            vc = ip.vcs[v]
            front = vc.buffer.front()
            if front.ready_cycle > cycle:
                continue
            if vc.state == idle:
                if not front.is_head:
                    raise ProtocolError(
                        f"router {router_id}: body flit at the "
                        f"front of idle VC {vc.vc_id}: {front}")
                out_port, drop = route(router_id, front.packet)
                vc.start_packet(out_port, drop)
            if vc.state == va:
                self._try_va(ip, vc, front)

    def _try_va(self, ip: InputPort, vc: VirtualChannel, head: Flit) -> bool:
        out = self.out_ports[vc.out_port]
        endpoint = out.endpoints[vc.out_ep]
        lo, hi = self.routing.vc_limits(head.packet, self.config.num_vcs,
                                        vc.out_port)
        ovc = self.vc_policy.allocate(endpoint.ovcs, head.packet, lo, hi,
                                      ejection=out.is_ejection)
        if ovc is None:
            return False
        endpoint.ovcs[ovc].owner = (ip.port_id, vc.vc_id)
        vc.grant_out_vc(ovc)
        self.stats.va_allocations += 1
        return True

    # -- pseudo-circuit candidates --------------------------------------------

    def _pc_candidates(self, cycle: int) -> dict[int, VirtualChannel]:
        """Input ports whose circuit's VC has a matching, ready front flit."""
        candidates: dict[int, VirtualChannel] = {}
        out_ports = self.out_ports
        for i, ip in enumerate(self.in_ports):
            reg = ip.pc
            if not reg.valid:
                continue
            vc = ip.vcs[reg.in_vc]
            if not vc.buffer:
                continue
            front = vc.buffer.front()
            if front.ready_cycle > cycle:
                continue
            if front.is_head:
                # Route is known (the VA phase ran first this cycle).
                if vc.out_port != reg.out_port:
                    self._terminate_pc(i, Termination.ROUTE_MISMATCH)
                    continue
                if vc.state != VCState.ACTIVE:
                    continue  # header still waiting for an output VC
            elif vc.state != VCState.ACTIVE:
                raise ProtocolError(
                    f"router {self.router_id}: body flit on inactive VC")
            endpoint = out_ports[vc.out_port].endpoints[vc.out_ep]
            if endpoint.ovcs[vc.out_vc].credits.count == 0:
                self._terminate_pc(i, Termination.NO_CREDIT)
                continue
            candidates[i] = vc
        return candidates

    # -- SA stage -------------------------------------------------------------

    def _collect_requests(self, cycle: int,
                          candidates: dict[int, VirtualChannel]
                          ) -> list[tuple[int, VirtualChannel]]:
        requests = []
        occupied = self._occupied
        if not occupied:
            return requests
        ports = self.in_ports
        out_ports = self.out_ports
        get_candidate = candidates.get
        active = VCState.ACTIVE
        ordered = occupied if len(occupied) == 1 else sorted(occupied)
        for i, v in ordered:
            vc = ports[i].vcs[v]
            # Inlined ready_for_sa: membership in the occupied set already
            # guarantees the buffer is non-empty.
            if (vc is get_candidate(i) or vc.state != active
                    or vc.buffer.front().ready_cycle > cycle):
                continue
            endpoint = out_ports[vc.out_port].endpoints[vc.out_ep]
            if endpoint.ovcs[vc.out_vc].credits.count == 0:
                continue
            requests.append((i, vc))
        return requests

    def _allocate_switch(self, requests: list[tuple[int, VirtualChannel]]
                         ) -> list[tuple[int, VirtualChannel]]:
        """Separable input-first allocation with round-robin arbiters."""
        if not requests:
            return []
        if len(requests) == 1:
            # Uncontended: both arbiters still rotate exactly as in the
            # general path, so arbiter state stays bit-identical.
            i, vc = requests[0]
            self._in_arbs[i].grant((vc.vc_id,))
            self._out_arbs[vc.out_port].grant((i,))
            return requests
        by_input: dict[int, list[VirtualChannel]] = {}
        for i, vc in requests:
            by_input.setdefault(i, []).append(vc)
        stage1: dict[int, VirtualChannel] = {}
        for i, vcs in by_input.items():
            choice = self._in_arbs[i].grant([vc.vc_id for vc in vcs])
            stage1[i] = self.in_ports[i].vcs[choice]
        by_output: dict[int, list[int]] = {}
        for i, vc in stage1.items():
            by_output.setdefault(vc.out_port, []).append(i)
        grants = []
        for out_port, inputs in by_output.items():
            winner = self._out_arbs[out_port].grant(inputs)
            grants.append((winner, stage1[winner]))
        return grants

    # -- arrivals: buffer write or buffer bypass ------------------------------

    def _process_arrivals(self, cycle: int, claimed_in: set[int],
                          claimed_out: set[int]) -> None:
        arrivals = self._arrivals
        if not arrivals:
            return
        bypass_on = self._pc_bypass
        in_ports = self.in_ports
        occupied_add = self._occupied.add
        stats = self.stats
        buffered = 0
        for i, flit in arrivals:
            ip = in_ports[i]
            vc = ip.vcs[flit.vc]
            if (bypass_on and ip.pc.valid and ip.pc.in_vc == flit.vc
                    and vc.buffer.is_empty
                    and self._try_buffer_bypass(cycle, i, ip, vc, flit,
                                                claimed_in, claimed_out)):
                continue
            flit.ready_cycle = cycle + 1
            vc.buffer.append(flit)
            occupied_add((i, flit.vc))
            buffered += 1
        self._buffered_flits += buffered
        stats.buffer_writes += buffered
        arrivals.clear()

    def _try_buffer_bypass(self, cycle: int, i: int, ip: InputPort,
                           vc: VirtualChannel, flit: Flit,
                           claimed_in: set[int],
                           claimed_out: set[int]) -> bool:
        # The port must be free this cycle AND no earlier flit of this port
        # may still be scheduled for a later ST (it would be overtaken).
        if ip.st_busy_cycle >= cycle or i in claimed_in:
            return False
        if flit.is_head:
            if vc.state != VCState.IDLE:
                raise ProtocolError(
                    f"router {self.router_id}: head flit arrived on VC "
                    f"{vc.vc_id} still {vc.state.name}")
            out_port, drop = self.routing.route(self.router_id, flit.packet)
            if not ip.pc.matches_head(flit.vc, out_port):
                if ip.pc.conflicts_with_route(flit.vc, out_port):
                    self._terminate_pc(i, Termination.ROUTE_MISMATCH)
                return False
            out = self.out_ports[out_port]
            if out_port in claimed_out or out.st_busy_cycle >= cycle:
                return False
            endpoint = out.endpoints[drop]
            lo, hi = self.routing.vc_limits(flit.packet, self.config.num_vcs,
                                            out_port)
            ovc = self.vc_policy.allocate(endpoint.ovcs, flit.packet, lo, hi,
                                          ejection=out.is_ejection)
            if ovc is None or endpoint.ovcs[ovc].credits.count == 0:
                return False
            vc.start_packet(out_port, drop)
            endpoint.ovcs[ovc].owner = (i, vc.vc_id)
            vc.grant_out_vc(ovc)
            self.stats.va_allocations += 1
        else:
            if vc.state != VCState.ACTIVE:
                raise ProtocolError(
                    f"router {self.router_id}: body flit arrived on "
                    f"inactive VC {vc.vc_id}")
            out = self.out_ports[vc.out_port]
            if vc.out_port in claimed_out or out.st_busy_cycle >= cycle:
                return False
            endpoint = out.endpoints[vc.out_ep]
            if endpoint.ovcs[vc.out_vc].credits.count == 0:
                # Out of credit before the flit arrived: tear the circuit
                # down and buffer normally (Section IV.B).
                self._terminate_pc(i, Termination.NO_CREDIT)
                return False
        self._traverse(cycle, i, vc, via="buf", arriving=flit)
        return True

    # -- flit traversal (common to SA grants and both bypass kinds) -----------

    def _traverse(self, cycle: int, i: int, vc: VirtualChannel, via: str,
                  arriving: Flit | None = None,
                  streamed: bool = False) -> None:
        ip = self.in_ports[i]
        stats = self.stats
        if arriving is None:
            flit = vc.buffer.pop()
            if not vc.buffer:
                self._occupied.discard((i, vc.vc_id))
            self._buffered_flits -= 1
            stats.buffer_reads += 1
        else:
            flit = arriving  # write-through bypass: the slot is never held
        ip.send_credit(vc.vc_id, cycle)
        self._pending_credits += 1
        self._credit_ports.add(i)
        credit_set = self._credit_set
        if credit_set is not None:
            credit_set[self.router_id] = self
        out_port = vc.out_port
        out = self.out_ports[out_port]
        endpoint = out.endpoints[vc.out_ep]
        ovc_state = endpoint.ovcs[vc.out_vc]
        ovc_state.credits.consume()
        # Temporal locality (Fig. 1) and event counters.
        stats.flit_hops += 1
        stats.xbar_flits += 1
        if ip.last_out == out_port:
            stats.xbar_repeats += 1
        ip.last_out = out_port
        if via == "sa":
            stats.sa_arbitrations += 1
        else:
            stats.sa_bypass_flits += 1
            if via == "buf":
                stats.buf_bypass_flits += 1
        packet = flit.packet
        if flit.is_head:
            packet.hops += 1
            if via != "sa":
                packet.sa_bypass_hops += 1
            if via == "buf":
                packet.buf_bypass_hops += 1
            pair = (packet.src, packet.dst)
            stats.e2e_packets += 1
            if ip.last_pair == pair:
                stats.e2e_repeats += 1
            ip.last_pair = pair
        if self._pc_enabled:
            self._establish_pc(i, vc.vc_id, out_port)
        # Crossbar occupancy: SA grants and streamed circuit followers
        # traverse next cycle, bypasses traverse now.
        delayed = via == "sa" or streamed
        st_cycle = cycle + 1 if delayed else cycle
        ip.st_busy_cycle = st_cycle
        out.st_busy_cycle = st_cycle
        flit.vc = vc.out_vc
        arrival = cycle + endpoint.latency + (2 if delayed else 1)
        out.sink.deliver(flit, endpoint, arrival)
        if flit.is_tail:
            ovc_state.owner = None
            vc.finish_packet()

    # -- pseudo-circuit bookkeeping -------------------------------------------

    def _establish_pc(self, i: int, in_vc: int, out_port: int) -> None:
        ip = self.in_ports[i]
        reg = ip.pc
        out = self.out_ports[out_port]
        holder = out.pc_holder
        if holder not in (-1, i):
            self._terminate_pc(holder, Termination.CONFLICT_OUTPUT)
        if reg.valid and reg.out_port != out_port:
            self._terminate_pc(i, Termination.CONFLICT_INPUT)
        refreshed = (reg.valid and reg.in_vc == in_vc
                     and reg.out_port == out_port)
        reg.establish(in_vc, out_port)
        out.pc_holder = i
        if not refreshed:
            self.stats.pc_established += 1

    def _terminate_pc(self, i: int, reason: Termination) -> None:
        reg = self.in_ports[i].pc
        if not reg.valid:
            return
        reg.invalidate()
        out = self.out_ports[reg.out_port]
        if out.pc_holder == i:
            out.pc_holder = -1
        out.history.record_termination(i)
        self.stats.record_termination(reason)

    def _credit_terminations(self) -> None:
        for out in self.out_ports:
            if out.pc_holder != -1 and not out.any_credit():
                self._terminate_pc(out.pc_holder, Termination.NO_CREDIT)

    def _speculate(self) -> None:
        registers = self._registers
        # One register scan up front: only outputs some invalidated circuit
        # still points at can possibly be restored, so everything else
        # skips the credit check and the policy evaluation.
        cand_outs = {reg.out_port for reg in registers
                     if not reg.valid and reg.in_vc >= 0}
        if not cand_outs:
            return
        for out in self.out_ports:
            if out.pc_holder != -1 or out.port_id not in cand_outs:
                continue
            restored = try_restore(out.port_id, out.history, registers,
                                   output_is_free=True,
                                   credits_available=out.any_credit())
            if restored is not None:
                out.pc_holder = restored
                self.stats.pc_restored += 1

    # -- introspection (tests) ------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the pseudo-circuit and credit invariants (tests only)."""
        holders: dict[int, int] = {}
        for i, ip in enumerate(self.in_ports):
            if ip.pc.valid:
                o = ip.pc.out_port
                if o in holders:
                    raise AssertionError(
                        f"outputs {o} held by inputs {holders[o]} and {i}")
                holders[o] = i
        for out in self.out_ports:
            expected = holders.get(out.port_id, -1)
            if out.pc_holder != expected:
                raise AssertionError(
                    f"pc_holder[{out.port_id}]={out.pc_holder} but register "
                    f"scan says {expected}")
            for ep in out.endpoints:
                for ovc in ep.ovcs:
                    if not 0 <= ovc.credits.count <= ovc.credits.limit:
                        raise AssertionError("credit counter out of range")

    def __repr__(self) -> str:
        return (f"Router(id={self.router_id}, in={len(self.in_ports)}, "
                f"out={len(self.out_ports)})")
