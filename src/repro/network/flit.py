"""Flits and packets for flit-based wormhole switching.

A packet is split by the sender network interface into ``size`` flits: a head
flit carrying routing information, zero or more body flits, and a tail flit.
A single-flit packet is a combined head+tail (``HEAD_TAIL``). The paper uses
1-flit packets for address-only messages and 5-flit packets for messages that
carry a 64B data block over a 128-bit link (Section V).
"""

from __future__ import annotations

import itertools
from enum import IntEnum


class FlitType(IntEnum):
    """Position of a flit within its packet."""

    HEAD = 0
    BODY = 1
    TAIL = 2
    HEAD_TAIL = 3

    @property
    def is_head(self) -> bool:
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


_packet_ids = itertools.count()


class Packet:
    """A network message: unit of routing and of latency accounting.

    Parameters
    ----------
    src, dst:
        Terminal (node) ids, not router ids.
    size:
        Number of flits (>= 1).
    create_cycle:
        Cycle at which the message was handed to the source NIC; latency is
        measured from here (includes source queuing).
    msg_type:
        Free-form tag used by the CMP substrate (e.g. ``"read_req"``); the
        network itself never interprets it.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "size",
        "create_cycle",
        "inject_cycle",
        "eject_cycle",
        "msg_type",
        "payload",
        "route_choice",
        "hops",
        "sa_bypass_hops",
        "buf_bypass_hops",
    )

    def __init__(self, src: int, dst: int, size: int, create_cycle: int,
                 msg_type: str = "data", payload=None):
        if size < 1:
            raise ValueError(f"packet size must be >= 1, got {size}")
        if src == dst:
            raise ValueError("packet source and destination must differ")
        self.pid = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.size = size
        self.create_cycle = create_cycle
        self.inject_cycle = -1
        self.eject_cycle = -1
        self.msg_type = msg_type
        self.payload = payload
        # Set at injection by O1TURN (0 = XY, 1 = YX); DOR ignores it.
        self.route_choice = 0
        # Statistics filled in as the packet moves.
        self.hops = 0
        self.sa_bypass_hops = 0
        self.buf_bypass_hops = 0

    @property
    def latency(self) -> int:
        """Total packet latency (creation to head-flit ejection)."""
        if self.eject_cycle < 0:
            raise ValueError("packet has not been ejected yet")
        return self.eject_cycle - self.create_cycle

    @property
    def network_latency(self) -> int:
        """Latency excluding source queuing (injection to ejection)."""
        if self.eject_cycle < 0:
            raise ValueError("packet has not been ejected yet")
        return self.eject_cycle - self.inject_cycle

    def make_flits(self) -> list["Flit"]:
        """Split this packet into its flit sequence (sender NIC behaviour)."""
        if self.size == 1:
            return [Flit(self, FlitType.HEAD_TAIL, 0)]
        flits = [Flit(self, FlitType.HEAD, 0)]
        flits.extend(Flit(self, FlitType.BODY, i)
                     for i in range(1, self.size - 1))
        flits.append(Flit(self, FlitType.TAIL, self.size - 1))
        return flits

    def __repr__(self) -> str:
        return (f"Packet(pid={self.pid}, {self.src}->{self.dst}, "
                f"size={self.size}, type={self.msg_type!r})")


class Flit:
    """One link-width unit of a packet in flight."""

    __slots__ = ("packet", "ftype", "index", "vc", "ready_cycle",
                 "is_head", "is_tail")

    def __init__(self, packet: Packet, ftype: FlitType, index: int):
        self.packet = packet
        self.ftype = ftype
        self.index = index
        # Flattened from ftype at construction: the router checks these on
        # every pipeline stage and the type of a flit never changes.
        self.is_head = ftype is FlitType.HEAD or ftype is FlitType.HEAD_TAIL
        self.is_tail = ftype is FlitType.TAIL or ftype is FlitType.HEAD_TAIL
        # Input VC currently holding the flit; rewritten at every hop when the
        # upstream router picks the downstream VC (VC allocation).
        self.vc = -1
        # First cycle this flit may arbitrate at its current router (set to
        # arrival+1 on buffer write: the buffer-write stage takes one cycle).
        self.ready_cycle = 0

    @property
    def dst(self) -> int:
        return self.packet.dst

    @property
    def src(self) -> int:
        return self.packet.src

    def __repr__(self) -> str:
        return (f"Flit(pid={self.packet.pid}, {self.ftype.name}, "
                f"idx={self.index}, vc={self.vc})")
