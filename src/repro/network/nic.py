"""Network interface (NIC) attached to each terminal.

The sender NIC splits packets into flits and injects them serially through
its injection channel, performing injection-side VC allocation against the
router's local input port (paper Section III.A). The receiver NIC
reassembles flits into packets and immediately frees its buffer, returning
credits after the configured delay.

Self-throttling (Section V): with ``mshrs > 0`` a NIC stops starting new
packets while ``mshrs`` of its packets are still in flight, modeling the
4-MSHR per-core limit of the paper's CMP.
"""

from __future__ import annotations

import random
from collections import deque

from ..core.violation import InvariantViolation
from ..metrics.stats import NetworkStats
from ..routing.base import RoutingAlgorithm
from ..vcalloc.base import VCAllocationPolicy
from .config import NetworkConfig
from .flit import Flit, Packet
from .link import Link
from .ports import OutVC


class InjectEndpoint:
    """Upstream-side state of the router's local input port (the NIC is the
    'upstream router' of the injection channel)."""

    __slots__ = ("ovcs",)

    def __init__(self, num_vcs: int, buffer_depth: int,
                 terminal: int = -1):
        # where = (-1, terminal, vc): NIC-side edge convention for credit
        # error context (mirrors the ejection endpoint's router == -1).
        self.ovcs = [OutVC(buffer_depth, (-1, terminal, v))
                     for v in range(num_vcs)]

    def restore_credit(self, vc: int) -> None:
        self.ovcs[vc].credits.restore()


class Nic:
    """One terminal's network interface."""

    __slots__ = ("terminal", "config", "routing", "vc_policy", "stats",
                 "rng", "queue", "inject_state", "_sending", "_send_rr",
                 "outstanding", "inject_link", "inject_endpoint",
                 "eject_endpoint", "_eject_credit_due", "_rx_flits",
                 "_eject_q", "on_packet", "ejected", "keep_ejected",
                 "_inject_set", "_eject_set", "_vc_ranges", "_probe")

    def __init__(self, terminal: int, config: NetworkConfig,
                 routing: RoutingAlgorithm, vc_policy: VCAllocationPolicy,
                 stats: NetworkStats, rng: random.Random):
        self.terminal = terminal
        self.config = config
        self.routing = routing
        self.vc_policy = vc_policy
        self.stats = stats
        self.rng = rng
        self.queue: deque[Packet] = deque()
        self.inject_state = InjectEndpoint(config.num_vcs,
                                           config.buffer_depth, terminal)
        # In-progress transmissions, one per injection VC: vc -> [packet,
        # flits, next flit index]. The NIC interleaves them on the single
        # injection channel, one flit per cycle.
        self._sending: dict[int, list] = {}
        self._send_rr = 0
        self.outstanding = 0
        # Wired by the Network: link + endpoint into the router local port,
        # and the router-side ejection endpoint whose credits we replenish.
        self.inject_link: Link | None = None
        self.inject_endpoint = None
        self.eject_endpoint = None
        self._eject_credit_due: deque[tuple[int, int]] = deque()
        # Reassembly and delivery upcall (used by the CMP substrate). The
        # ejection queue is a FIFO: its single sender (the router's
        # ejection output port) emits non-decreasing arrival cycles.
        self._rx_flits: dict[int, int] = {}
        self._eject_q: deque[tuple[int, Flit]] = deque()
        self.on_packet = None  # callback(packet, cycle)
        self.ejected: list[Packet] = []
        self.keep_ejected = False
        # Active-set registries (dicts keyed by terminal id), bound by the
        # Network when it runs in active-set mode; None when standalone.
        self._inject_set: dict | None = None
        self._eject_set: dict | None = None
        # Per-route-choice VC ranges from the compiled routing table (bound
        # by the Network for tabulable algorithms); None -> dynamic path.
        self._vc_ranges = None
        # Null-object probe: one attribute test per inject/eject when
        # tracing is off (set by Network.bind_probe).
        self._probe = None

    def bind_scheduler(self, inject_set: dict, eject_set: dict) -> None:
        """Attach this NIC to the network's active-set registries."""
        self._inject_set = inject_set
        self._eject_set = eject_set

    def bind_vc_ranges(self, vc_ranges) -> None:
        """Attach compiled per-choice VC ranges (see ``routing.compiled``)."""
        self._vc_ranges = vc_ranges

    # -- sending --------------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        """Hand a packet to the NIC (source queuing starts here)."""
        if 0 < self.config.inject_queue <= len(self.queue):
            raise RuntimeError(
                f"NIC {self.terminal}: source queue overflow "
                f"({self.config.inject_queue})")
        inject_set = self._inject_set
        if inject_set is not None:
            inject_set[self.terminal] = self
        self.routing.on_inject(packet, self.rng)
        self.queue.append(packet)

    @property
    def can_accept(self) -> bool:
        return not (0 < self.config.inject_queue <= len(self.queue))

    def tick_inject(self, cycle: int) -> None:
        """Start the head-of-queue packet if a VC is free, then send at most
        one flit (round-robin over the in-progress VCs with credits)."""
        self._start_next_packet(cycle)
        if not self._sending:
            return
        num_vcs = self.config.num_vcs
        for offset in range(num_vcs):
            vc = (self._send_rr + offset) % num_vcs
            entry = self._sending.get(vc)
            if entry is None:
                continue
            ovc = self.inject_state.ovcs[vc]
            if ovc.credits.count == 0:
                continue
            packet, flits, idx = entry
            flit = flits[idx]
            flit.vc = vc
            try:
                ovc.credits.consume()
            except InvariantViolation as err:
                if err.cycle is None:
                    err.cycle = cycle
                raise
            self.inject_link.deliver(flit, self.inject_endpoint, cycle + 1)
            if idx + 1 == len(flits):
                ovc.owner = None
                del self._sending[vc]
            else:
                entry[2] = idx + 1
            self._send_rr = (vc + 1) % num_vcs
            return

    def _start_next_packet(self, cycle: int) -> None:
        if not self.queue:
            return
        if 0 < self.config.mshrs <= self.outstanding:
            return  # self-throttling: all MSHRs busy
        packet = self.queue[0]
        vc_ranges = self._vc_ranges
        if vc_ranges is not None:
            lo, hi = vc_ranges[packet.route_choice]
        else:
            lo, hi = self.routing.vc_limits(packet, self.config.num_vcs)
        vc = self.vc_policy.allocate(self.inject_state.ovcs, packet, lo, hi)
        if vc is None:
            return
        self.queue.popleft()
        self.inject_state.ovcs[vc].owner = (-1, self.terminal)
        packet.inject_cycle = cycle
        self.stats.record_injection(packet)
        self.outstanding += 1
        self._sending[vc] = [packet, packet.make_flits(), 0]
        probe = self._probe
        if probe is not None:
            probe.on_inject(cycle, self.terminal, packet)

    # -- receiving ------------------------------------------------------------

    def deliver(self, flit: Flit, endpoint, cycle: int) -> None:
        """Sink interface used by the router's ejection output port."""
        eject_set = self._eject_set
        if eject_set is not None:
            eject_set[self.terminal] = self
        q = self._eject_q
        if q and cycle < q[-1][0]:
            raise RuntimeError(
                f"NIC {self.terminal}: non-monotonic ejection delivery "
                f"({cycle} after {q[-1][0]})")
        q.append((cycle, flit))

    def tick_eject(self, cycle: int, network) -> None:
        # Return credits whose delay has elapsed.
        due = self._eject_credit_due
        probe = self._probe
        while due and due[0][0] <= cycle:
            _, vc = due.popleft()
            try:
                self.eject_endpoint.restore_credit(vc)
            except InvariantViolation as err:
                if err.cycle is None:
                    err.cycle = cycle
                raise
            if probe is not None:
                # router == -1 marks the NIC ejection side of the edge.
                probe.on_credit_restore(cycle, -1, self.terminal, vc)
        q = self._eject_q
        while q and q[0][0] <= cycle:
            _, flit = q.popleft()
            # The NIC drains instantly; the buffer slot frees right away.
            due.append((cycle + self.config.credit_delay, flit.vc))
            packet = flit.packet
            got = self._rx_flits.get(packet.pid, 0) + 1
            if flit.is_tail:
                if got != packet.size:
                    raise RuntimeError(
                        f"NIC {self.terminal}: tail of {packet} arrived "
                        f"after {got}/{packet.size} flits")
                self._rx_flits.pop(packet.pid, None)
                packet.eject_cycle = cycle
                self.stats.record_ejection(packet)
                network.notify_ejection(packet)
                probe = self._probe
                if probe is not None:
                    probe.on_eject(cycle, self.terminal, packet)
                if self.keep_ejected:
                    self.ejected.append(packet)
                if self.on_packet is not None:
                    self.on_packet(packet, cycle)
            else:
                self._rx_flits[packet.pid] = got

    # -- introspection --------------------------------------------------------

    @property
    def idle(self) -> bool:
        return (not self.queue and not self._sending
                and not self._eject_q)

    @property
    def inject_active(self) -> bool:
        """True while tick_inject can make progress on some cycle."""
        return bool(self.queue) or bool(self._sending)

    @property
    def eject_active(self) -> bool:
        """True while tick_eject has queued flits or credit returns."""
        return bool(self._eject_q) or bool(self._eject_credit_due)

    def next_eject_cycle(self) -> int:
        """Earliest cycle at which tick_eject has scheduled work."""
        q, due = self._eject_q, self._eject_credit_due
        if q and due:
            return min(q[0][0], due[0][0])
        if q:
            return q[0][0]
        if due:
            return due[0][0]
        raise IndexError("next_eject_cycle() on idle ejection side")
