"""Network construction and the cycle-accurate simulation loop.

``Network`` assembles routers, channels, links and NICs for a topology and
steps them in a fixed phase order each cycle:

1. credit returns reach upstream credit counters,
2. receiver NICs consume flits whose ejection completed,
3. links deliver flits arriving this cycle into router input stages,
4. every router runs its VA/SA/pseudo-circuit pipeline step,
5. sender NICs inject at most one flit each.

Traffic sources drive the network either through :meth:`Network.run` (the
``traffic`` object's ``tick`` is called once per cycle) or by calling
:meth:`Network.inject` directly (closed-loop CMP substrate).

Active-set stepping
-------------------

By default the network runs in *active-set* mode: routers, NICs and links
register into per-phase active sets when they gain work (a staged arrival,
a buffered flit, an in-flight credit, a queued packet, a scheduled
ejection) and are deregistered once drained, so each cycle only touches
components that can actually make progress. Members are visited in
ascending component-id order — the same relative order as the exhaustive
loops — so the two modes are cycle-for-cycle identical
(``tests/network/test_active_set.py`` asserts this across topologies,
router modes and traffic patterns).

On top of the active sets, :meth:`run` and :meth:`drain` *fast-forward*
across quiescent stretches: when no router or sender NIC can act on every
cycle, the remaining work is purely time-scheduled (link arrivals, credit
returns, ejection completions, trace injections), and the clock jumps
straight to the earliest such event. Construct with ``active_set=False``
to force the exhaustive reference loop.
"""

from __future__ import annotations

import math
import random

from ..metrics.stats import NetworkStats
from ..routing import RoutingAlgorithm, compile_routing, make_routing
from ..topology.base import Topology
from ..vcalloc import VCAllocationPolicy, make_vc_policy
from .config import NetworkConfig
from .flit import Packet
from .link import Link
from .nic import Nic
from .ports import OutEndpoint, OutputPort
from .router import Router


class Network:
    """A complete simulated on-chip network."""

    def __init__(self, topology: Topology, config: NetworkConfig,
                 routing: RoutingAlgorithm | str = "xy",
                 vc_policy: VCAllocationPolicy | str = "dynamic",
                 seed: int = 1, stats: NetworkStats | None = None,
                 router_cls: type[Router] = Router,
                 active_set: bool = True,
                 compiled_routing: bool = True,
                 probe=None):
        self.topology = topology
        self.config = config
        if isinstance(routing, str):
            routing = make_routing(routing, topology)
        if isinstance(vc_policy, str):
            vc_policy = make_vc_policy(vc_policy)
        self.routing = routing
        self.vc_policy = vc_policy
        self.stats = stats if stats is not None else NetworkStats()
        self.rng = random.Random(seed)
        self.cycle = 0
        self._active = active_set
        # Instrumentation null object: None unless bind_probe attaches one
        # (see repro.instrument); the step loops pay one attribute test.
        self.probe = None
        # Active sets, keyed by component id so members can be visited in
        # the same relative order as the exhaustive loops.
        self._work_routers: dict[int, Router] = {}
        self._credit_routers: dict[int, Router] = {}
        self._live_links: dict[int, Link] = {}
        self._inject_nics: dict[int, Nic] = {}
        self._eject_nics: dict[int, Nic] = {}
        self.routers = [
            router_cls(r, topology.num_inports(r), topology.num_outports(r),
                       config, routing, vc_policy, self.stats)
            for r in range(topology.num_routers)]
        self.links: list[Link] = []
        self.nics: list[Nic] = []
        self._build_channels()
        self._build_nics()
        # Compile deterministic routing into per-router lookup tables
        # (``compiled_routing=False`` keeps the dynamic route() path — the
        # differential reference the bench verifies against).
        self.compiled_routing = (
            compile_routing(routing, topology, config.num_vcs)
            if compiled_routing else None)
        if self.compiled_routing is not None:
            tables = self.compiled_routing.tables
            vc_ranges = self.compiled_routing.vc_ranges
            for router in self.routers:
                router.bind_route_table(tables[router.router_id], vc_ranges)
            for nic in self.nics:
                nic.bind_vc_ranges(vc_ranges)
        if active_set:
            for router in self.routers:
                router.bind_scheduler(self._work_routers,
                                      self._credit_routers)
            for nic in self.nics:
                nic.bind_scheduler(self._inject_nics, self._eject_nics)
            for link_id, link in enumerate(self.links):
                link.bind(link_id, self._live_links)
        if probe is not None:
            self.bind_probe(probe)

    def bind_probe(self, probe) -> None:
        """Attach an instrumentation probe (see :mod:`repro.instrument`) to
        the network and every component; call before running."""
        self.probe = probe
        for router in self.routers:
            router._probe = probe
        for link in self.links:
            link._probe = probe
        for nic in self.nics:
            nic._probe = probe
        probe.bind(self)

    # -- construction ---------------------------------------------------------

    def _build_channels(self) -> None:
        cfg = self.config
        for channel in self.topology.channels():
            # Point-to-point channels deliver in send order (see link.py);
            # multidrop channels mix endpoint latencies and need the heap.
            link = Link(fifo=len(channel.endpoints) == 1)
            self.links.append(link)
            endpoints = [
                OutEndpoint(ep.router, ep.in_port, ep.latency,
                            cfg.num_vcs, cfg.buffer_depth)
                for ep in channel.endpoints]
            port = OutputPort(channel.src_port, endpoints, sink=link)
            self.routers[channel.src_router].attach_output(
                channel.src_port, port)
            for endpoint in endpoints:
                in_port = self.routers[endpoint.router].in_ports[
                    endpoint.in_port]
                if in_port.upstream is not None:
                    raise ValueError(
                        f"input port {endpoint.in_port} of router "
                        f"{endpoint.router} wired twice")
                in_port.upstream = endpoint

    def _build_nics(self) -> None:
        cfg = self.config
        topo = self.topology
        for terminal in range(topo.num_terminals):
            # The topology lookups validate their argument on every call;
            # resolve each of them once per terminal.
            router = self.routers[topo.terminal_router(terminal)]
            eject_port = topo.ejection_port(terminal)
            inject_port = topo.injection_port(terminal)
            nic = Nic(terminal, cfg, self.routing, self.vc_policy,
                      self.stats, random.Random(self.rng.getrandbits(32)))
            # Ejection: router output port -> NIC.
            eject_ep = OutEndpoint(-1, terminal, 1, cfg.num_vcs,
                                   cfg.eject_buffer_depth)
            eject_out = OutputPort(eject_port, [eject_ep],
                                   sink=nic, is_ejection=True)
            router.attach_output(eject_port, eject_out)
            nic.eject_endpoint = eject_ep
            # Injection: NIC -> router local input port (one sender, one
            # cycle of latency: always FIFO).
            inject_link = Link(fifo=True)
            self.links.append(inject_link)
            nic.inject_link = inject_link
            nic.inject_endpoint = OutEndpoint(
                router.router_id, inject_port, 1, 1, 1)
            router.in_ports[inject_port].upstream = nic.inject_state
            self.nics.append(nic)

    # -- driving --------------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Hand a packet to its source NIC."""
        self.nics[packet.src].enqueue(packet)

    def notify_ejection(self, packet: Packet) -> None:
        self.nics[packet.src].outstanding -= 1

    def step(self) -> None:
        """Advance the whole network by one cycle."""
        if self._active:
            self._step_active()
        else:
            self._step_exhaustive()

    def _step_exhaustive(self) -> None:
        """Reference loop: touch every component every cycle."""
        cycle = self.cycle
        probe = self.probe
        if probe is not None:
            probe.on_cycle_start(cycle, self)
        routers = self.routers
        for router in routers:
            router.deliver_credits(cycle)
        for nic in self.nics:
            nic.tick_eject(cycle, self)
        for link in self.links:
            if link.in_flight:
                link.tick(cycle, routers)
        for router in routers:
            router.step(cycle)
        for nic in self.nics:
            nic.tick_inject(cycle)
        self.cycle = cycle + 1

    def _step_active(self) -> None:
        """Active-set loop: touch only components that registered work.

        Each phase snapshots its set in ascending id order (matching the
        exhaustive iteration order) and deregisters members that drained.
        Registrations made by a phase for a *later* phase of the same cycle
        (a link ticking flits into a router) are picked up because each
        phase snapshots at its own start.
        """
        cycle = self.cycle
        probe = self.probe
        if probe is not None:
            probe.on_cycle_start(cycle, self)
        routers = self.routers
        nics = self.nics
        # The drained checks inline the components' *_active/has_work
        # properties (one property call per member per cycle adds up).
        credit_set = self._credit_routers
        if credit_set:
            for rid in sorted(credit_set):
                router = routers[rid]
                router.deliver_credits(cycle)
                if router._pending_credits == 0:
                    del credit_set[rid]
        eject_set = self._eject_nics
        if eject_set:
            for nid in sorted(eject_set):
                nic = nics[nid]
                nic.tick_eject(cycle, self)
                if not (nic._eject_q or nic._eject_credit_due):
                    del eject_set[nid]
        live_links = self._live_links
        if live_links:
            links = self.links
            for lid in sorted(live_links):
                link = links[lid]
                link.tick(cycle, routers)
                if not link._q:
                    del live_links[lid]
        work_set = self._work_routers
        if work_set:
            for rid in sorted(work_set):
                router = routers[rid]
                router.step(cycle)
                if not router._arrivals and router._buffered_flits == 0:
                    del work_set[rid]
        inject_set = self._inject_nics
        if inject_set:
            for nid in sorted(inject_set):
                nic = nics[nid]
                nic.tick_inject(cycle)
                if not (nic.queue or nic._sending):
                    del inject_set[nid]
        self.cycle = cycle + 1

    # -- quiescence fast-forward ----------------------------------------------

    def _next_event_cycle(self) -> float:
        """Earliest cycle at which any time-scheduled event fires."""
        nxt = math.inf
        links = self.links
        for lid in self._live_links:
            cycle = links[lid].next_arrival()
            if cycle < nxt:
                nxt = cycle
        routers = self.routers
        for rid in self._credit_routers:
            cycle = routers[rid].next_credit_cycle()
            if cycle < nxt:
                nxt = cycle
        nics = self.nics
        for nid in self._eject_nics:
            cycle = nics[nid].next_eject_cycle()
            if cycle < nxt:
                nxt = cycle
        return nxt

    def _try_fast_forward(self, bound: int,
                          traffic_next: int | None) -> None:
        """Jump the clock to the next scheduled event, capped at ``bound``.

        Legal only when no router and no sender NIC has per-cycle work —
        everything left (link arrivals, credit returns, ejections, and the
        caller-provided next traffic injection) fires at a known future
        cycle, so the skipped cycles are provably no-ops.
        """
        if self._work_routers or self._inject_nics:
            return
        nxt = self._next_event_cycle()
        if traffic_next is not None and traffic_next < nxt:
            nxt = traffic_next
        target = bound if nxt == math.inf else min(bound, int(nxt))
        if target > self.cycle:
            self.cycle = target

    def fast_forward(self, bound: int,
                     traffic_next: int | None = None) -> None:
        """Skip to the next scheduled event if nothing acts per-cycle.

        Public hook for external drive loops (trace replay); a no-op in
        exhaustive mode or while any router or sender NIC has work.
        ``bound`` caps the jump; ``traffic_next`` is the next cycle the
        external driver needs control at.
        """
        if self._active:
            self._try_fast_forward(bound, traffic_next)

    def run(self, cycles: int, traffic=None) -> NetworkStats:
        """Run for ``cycles`` cycles, ticking ``traffic`` once per cycle.

        In active-set mode quiescent stretches are fast-forwarded. With
        a ``traffic`` object this is only done if it exposes
        ``next_injection_cycle(cycle)`` — trace replay
        (``TraceReplayTraffic``) and Bernoulli sources
        (``SyntheticTraffic``, which pre-draws outcomes in tick order
        so skipping is bit-identical to stepping).
        """
        end = self.cycle + cycles
        fast = self._active
        next_injection = (getattr(traffic, "next_injection_cycle", None)
                          if traffic is not None else None)
        while self.cycle < end:
            if traffic is not None:
                traffic.tick(self, self.cycle)
            self.step()
            if fast:
                if traffic is None:
                    self._try_fast_forward(end, None)
                elif next_injection is not None:
                    self._try_fast_forward(end, next_injection(self.cycle))
        return self.stats

    def drain(self, max_cycles: int = 1_000_000) -> NetworkStats:
        """Run without new traffic until every packet has been delivered."""
        deadline = self.cycle + max_cycles
        fast = self._active
        while not self.quiescent():
            if self.cycle >= deadline:
                raise RuntimeError(
                    f"network failed to drain within {max_cycles} cycles "
                    f"({self.in_flight_packets()} packets left)")
            self.step()
            if fast and not self.quiescent():
                self._try_fast_forward(deadline, None)
        return self.stats

    # -- queries --------------------------------------------------------------

    def in_flight_packets(self) -> int:
        queued = 0
        if self._active:
            nics = self.nics
            for nid in self._inject_nics:
                queued += len(nics[nid].queue)
        else:
            for nic in self.nics:
                queued += len(nic.queue)
        return queued + (self.stats.injected_packets
                         - self.stats.ejected_packets)

    def quiescent(self) -> bool:
        stats = self.stats
        if self._active:
            # Sender-side activity and ejection heaps map directly onto the
            # active sets; pending credit returns never block quiescence
            # (matching the exhaustive definition below).
            if self._inject_nics:
                return False
            nics = self.nics
            if any(nics[nid]._eject_q for nid in self._eject_nics):
                return False
            return stats.injected_packets == stats.ejected_packets
        if any(not nic.idle for nic in self.nics):
            return False
        return stats.injected_packets == stats.ejected_packets

    def check_invariants(self) -> None:
        for router in self.routers:
            router.check_invariants()


def build_network(topology: Topology, routing: str = "xy",
                  vc_policy: str = "dynamic",
                  config: NetworkConfig | None = None,
                  seed: int = 1, active_set: bool = True,
                  compiled_routing: bool = True, probe=None,
                  **config_overrides) -> Network:
    """Convenience constructor used by examples and the harness."""
    if config is None:
        config = NetworkConfig(**config_overrides)
    elif config_overrides:
        raise ValueError("pass either config or keyword overrides, not both")
    return Network(topology, config, routing, vc_policy, seed=seed,
                   active_set=active_set, compiled_routing=compiled_routing,
                   probe=probe)
