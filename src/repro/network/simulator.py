"""Network construction and the cycle-accurate simulation loop.

``Network`` assembles routers, channels, links and NICs for a topology and
steps them in a fixed phase order each cycle:

1. credit returns reach upstream credit counters,
2. receiver NICs consume flits whose ejection completed,
3. links deliver flits arriving this cycle into router input stages,
4. every router runs its VA/SA/pseudo-circuit pipeline step,
5. sender NICs inject at most one flit each.

Traffic sources drive the network either through :meth:`Network.run` (the
``traffic`` object's ``tick`` is called once per cycle) or by calling
:meth:`Network.inject` directly (closed-loop CMP substrate).
"""

from __future__ import annotations

import random

from ..metrics.stats import NetworkStats
from ..routing import RoutingAlgorithm, make_routing
from ..topology.base import Topology
from ..vcalloc import VCAllocationPolicy, make_vc_policy
from .config import NetworkConfig
from .flit import Packet
from .link import Link
from .nic import Nic
from .ports import OutEndpoint, OutputPort
from .router import Router


class Network:
    """A complete simulated on-chip network."""

    def __init__(self, topology: Topology, config: NetworkConfig,
                 routing: RoutingAlgorithm | str = "xy",
                 vc_policy: VCAllocationPolicy | str = "dynamic",
                 seed: int = 1, stats: NetworkStats | None = None,
                 router_cls: type[Router] = Router):
        self.topology = topology
        self.config = config
        if isinstance(routing, str):
            routing = make_routing(routing, topology)
        if isinstance(vc_policy, str):
            vc_policy = make_vc_policy(vc_policy)
        self.routing = routing
        self.vc_policy = vc_policy
        self.stats = stats if stats is not None else NetworkStats()
        self.rng = random.Random(seed)
        self.cycle = 0
        self.routers = [
            router_cls(r, topology.num_inports(r), topology.num_outports(r),
                       config, routing, vc_policy, self.stats)
            for r in range(topology.num_routers)]
        self.links: list[Link] = []
        self.nics: list[Nic] = []
        self._build_channels()
        self._build_nics()

    # -- construction -------------------------------------------------------------

    def _build_channels(self) -> None:
        cfg = self.config
        for channel in self.topology.channels():
            link = Link()
            self.links.append(link)
            endpoints = [
                OutEndpoint(ep.router, ep.in_port, ep.latency,
                            cfg.num_vcs, cfg.buffer_depth)
                for ep in channel.endpoints]
            port = OutputPort(channel.src_port, endpoints, sink=link)
            self.routers[channel.src_router].attach_output(
                channel.src_port, port)
            for endpoint in endpoints:
                in_port = self.routers[endpoint.router].in_ports[
                    endpoint.in_port]
                if in_port.upstream is not None:
                    raise ValueError(
                        f"input port {endpoint.in_port} of router "
                        f"{endpoint.router} wired twice")
                in_port.upstream = endpoint

    def _build_nics(self) -> None:
        cfg = self.config
        topo = self.topology
        for terminal in range(topo.num_terminals):
            nic = Nic(terminal, cfg, self.routing, self.vc_policy,
                      self.stats, random.Random(self.rng.getrandbits(32)))
            router = self.routers[topo.terminal_router(terminal)]
            # Ejection: router output port -> NIC.
            eject_ep = OutEndpoint(-1, terminal, 1, cfg.num_vcs,
                                   cfg.eject_buffer_depth)
            eject_out = OutputPort(topo.ejection_port(terminal), [eject_ep],
                                   sink=nic, is_ejection=True)
            router.attach_output(topo.ejection_port(terminal), eject_out)
            nic.eject_endpoint = eject_ep
            # Injection: NIC -> router local input port.
            inject_link = Link()
            self.links.append(inject_link)
            nic.inject_link = inject_link
            nic.inject_endpoint = OutEndpoint(
                router.router_id, topo.injection_port(terminal), 1, 1, 1)
            router.in_ports[topo.injection_port(terminal)].upstream = (
                nic.inject_state)
            self.nics.append(nic)

    # -- driving --------------------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Hand a packet to its source NIC."""
        self.nics[packet.src].enqueue(packet)

    def notify_ejection(self, packet: Packet) -> None:
        self.nics[packet.src].outstanding -= 1

    def step(self) -> None:
        """Advance the whole network by one cycle."""
        cycle = self.cycle
        routers = self.routers
        for router in routers:
            router.deliver_credits(cycle)
        for nic in self.nics:
            nic.tick_eject(cycle, self)
        for link in self.links:
            if link.in_flight:
                link.tick(cycle, routers)
        for router in routers:
            router.step(cycle)
        for nic in self.nics:
            nic.tick_inject(cycle)
        self.cycle = cycle + 1

    def run(self, cycles: int, traffic=None) -> NetworkStats:
        """Run for ``cycles`` cycles, ticking ``traffic`` once per cycle."""
        for _ in range(cycles):
            if traffic is not None:
                traffic.tick(self, self.cycle)
            self.step()
        return self.stats

    def drain(self, max_cycles: int = 1_000_000) -> NetworkStats:
        """Run without new traffic until every packet has been delivered."""
        deadline = self.cycle + max_cycles
        while not self.quiescent():
            if self.cycle >= deadline:
                raise RuntimeError(
                    f"network failed to drain within {max_cycles} cycles "
                    f"({self.in_flight_packets()} packets left)")
            self.step()
        return self.stats

    # -- queries ---------------------------------------------------------------------

    def in_flight_packets(self) -> int:
        queued = sum(len(nic.queue) for nic in self.nics)
        return queued + (self.stats.injected_packets
                         - self.stats.ejected_packets)

    def quiescent(self) -> bool:
        if any(not nic.idle for nic in self.nics):
            return False
        return self.stats.injected_packets == self.stats.ejected_packets

    def check_invariants(self) -> None:
        for router in self.routers:
            router.check_invariants()


def build_network(topology: Topology, routing: str = "xy",
                  vc_policy: str = "dynamic",
                  config: NetworkConfig | None = None,
                  seed: int = 1, **config_overrides) -> Network:
    """Convenience constructor used by examples and the harness."""
    if config is None:
        config = NetworkConfig(**config_overrides)
    elif config_overrides:
        raise ValueError("pass either config or keyword overrides, not both")
    return Network(topology, config, routing, vc_policy, seed=seed)
