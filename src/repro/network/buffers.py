"""Bounded FIFO flit buffer used by each input virtual channel.

The paper configures 4-flit buffers per VC. Overflow is a protocol error:
credit-based flow control must prevent a flit from ever arriving at a full
buffer, so ``append`` raises instead of dropping.
"""

from __future__ import annotations

from collections import deque

from .flit import Flit


class BufferOverflowError(RuntimeError):
    """A flit arrived at a full VC buffer (flow-control violation)."""


class FlitBuffer:
    """Fixed-capacity FIFO of flits."""

    __slots__ = ("capacity", "_q")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._q: deque[Flit] = deque()

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._q)

    @property
    def is_full(self) -> bool:
        return len(self._q) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._q

    def append(self, flit: Flit) -> None:
        q = self._q
        if len(q) >= self.capacity:
            raise BufferOverflowError(
                f"buffer write to full {self.capacity}-flit buffer: {flit}")
        q.append(flit)

    def front(self) -> Flit:
        q = self._q
        if not q:
            raise IndexError("front() on empty flit buffer")
        return q[0]

    def pop(self) -> Flit:
        q = self._q
        if not q:
            raise IndexError("pop() on empty flit buffer")
        return q.popleft()

    def __iter__(self):
        return iter(self._q)

    def __repr__(self) -> str:
        return f"FlitBuffer({len(self._q)}/{self.capacity})"
