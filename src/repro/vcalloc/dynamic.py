"""Dynamic VC allocation: pick a free downstream VC by buffer availability.

This is the conventional policy: among the free VCs in the packet's class,
prefer the one with the most credits (deepest available buffer); ties break
toward the lowest index, which keeps the policy deterministic.
"""

from __future__ import annotations

from ..network.flit import Packet
from .base import VCAllocationPolicy


class DynamicVCAllocation(VCAllocationPolicy):
    name = "dynamic"

    def allocate(self, ovc_states, packet: Packet, lo: int, hi: int,
                 ejection: bool = False) -> int | None:
        if not 0 <= lo < hi <= len(ovc_states):
            self._check_range(ovc_states, lo, hi)
        best = None
        best_credits = -1
        for vc in range(lo, hi):
            state = ovc_states[vc]
            # state.free / state.credit_count, inlined (VA runs once per
            # packet per hop, plus every retry while the class is full).
            if state.owner is None:
                credits = state.credits.count
                if credits > best_credits:
                    best = vc
                    best_credits = credits
        return best
