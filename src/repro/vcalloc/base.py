"""Virtual-channel allocation policies (paper Section V).

The VC allocator assigns a packet one VC at the downstream router's input
port. ``allocate`` receives the downstream VC states (objects exposing
``free`` and ``credit_count``), the packet, and the packet's permitted VC
class range ``[lo, hi)``; it returns the chosen VC index or None when no
allocation is possible this cycle.
"""

from __future__ import annotations

from ..network.flit import Packet


class VCAllocationPolicy:
    name = "abstract"

    def allocate(self, ovc_states, packet: Packet, lo: int, hi: int,
                 ejection: bool = False) -> int | None:
        """Pick a VC for ``packet``; ``ejection`` marks the NIC-bound port
        (its VC choice cannot influence crossbar reuse at any router)."""
        raise NotImplementedError

    @staticmethod
    def _check_range(ovc_states, lo: int, hi: int) -> None:
        if not 0 <= lo < hi <= len(ovc_states):
            raise ValueError(f"bad VC class range [{lo},{hi}) for "
                             f"{len(ovc_states)} VCs")
