"""VC allocation policies (dynamic and static, paper Section V)."""

from .base import VCAllocationPolicy
from .dynamic import DynamicVCAllocation
from .static import StaticVCAllocation

__all__ = [
    "DynamicVCAllocation",
    "StaticVCAllocation",
    "VCAllocationPolicy",
    "make_vc_policy",
]


def make_vc_policy(name: str) -> VCAllocationPolicy:
    """Factory keyed by policy name ('dynamic'|'static')."""
    if name == "dynamic":
        return DynamicVCAllocation()
    if name == "static":
        return StaticVCAllocation()
    raise ValueError(f"unknown VC allocation policy {name!r}")
