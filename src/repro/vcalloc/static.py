"""Static VC allocation: the output VC is a function of the destination.

Two flows with the same destination always share the same VC at every input
port, so flows that merge onto a common path keep reusing the same
pseudo-circuit in every shared router (paper Section V; similar in spirit to
Shim et al.'s static VC allocation but hashed on destination id only, to
maximize pseudo-circuit reusability). The packet waits if its designated VC
is occupied by another packet.
"""

from __future__ import annotations

from ..network.flit import Packet
from .base import VCAllocationPolicy


class StaticVCAllocation(VCAllocationPolicy):
    name = "static"

    def allocate(self, ovc_states, packet: Packet, lo: int, hi: int,
                 ejection: bool = False) -> int | None:
        self._check_range(ovc_states, lo, hi)
        if ejection:
            # The VC into the NIC cannot influence crossbar reuse anywhere,
            # so pinning it would only serialize delivery; fall back to a
            # free-VC choice there.
            for vc in range(lo, hi):
                if ovc_states[vc].free:
                    return vc
            return None
        vc = lo + packet.dst % (hi - lo)
        if ovc_states[vc].free:
            return vc
        return None

    @staticmethod
    def designated_vc(dst: int, lo: int, hi: int) -> int:
        """The VC a packet to ``dst`` always uses within class [lo, hi)."""
        return lo + dst % (hi - lo)
