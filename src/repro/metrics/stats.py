"""Statistics collected by the network simulator.

One ``NetworkStats`` instance is shared by every router, link and NIC of a
simulation. Counters are plain integer attributes (hot path); derived
metrics — average latency, pseudo-circuit reusability, temporal locality,
energy — are computed on demand.
"""

from __future__ import annotations

from collections import Counter

from ..core.pseudo_circuit import Termination
from ..network.flit import Packet


class NetworkStats:
    """Event counters plus per-packet latency records."""

    def __init__(self, warmup_cycles: int = 0):
        #: Packets ejected before this cycle are excluded from latency stats.
        self.warmup_cycles = warmup_cycles
        # Packet accounting.
        self.injected_packets = 0
        self.ejected_packets = 0
        self.injected_flits = 0
        self.ejected_flits = 0
        self.measured_packets = 0
        self.total_latency = 0
        self.total_network_latency = 0
        self.total_hops = 0
        self.latency_samples: list[int] = []
        # Per-flit-hop events (energy model inputs).
        self.flit_hops = 0          # crossbar traversals
        self.buffer_writes = 0
        self.buffer_reads = 0
        self.sa_arbitrations = 0    # switch-arbiter request-grant events
        self.va_allocations = 0
        # Pseudo-circuit events.
        self.sa_bypass_flits = 0    # flits that skipped SA via a circuit
        self.buf_bypass_flits = 0   # subset that also skipped the buffer
        self.pc_established = 0
        self.pc_restored = 0        # speculative restorations
        self.pc_terminations: Counter = Counter()
        # Temporal locality (Fig. 1).
        self.e2e_packets = 0
        self.e2e_repeats = 0
        self.xbar_flits = 0
        self.xbar_repeats = 0

    # -- recording ------------------------------------------------------------

    def record_injection(self, packet: Packet) -> None:
        self.injected_packets += 1
        self.injected_flits += packet.size

    def record_ejection(self, packet: Packet) -> None:
        self.ejected_packets += 1
        self.ejected_flits += packet.size
        if packet.eject_cycle >= self.warmup_cycles:
            self.measured_packets += 1
            self.total_latency += packet.latency
            self.total_network_latency += packet.network_latency
            self.total_hops += packet.hops
            self.latency_samples.append(packet.latency)

    def record_termination(self, reason: Termination) -> None:
        self.pc_terminations[reason] += 1

    # -- derived metrics ------------------------------------------------------

    @property
    def avg_latency(self) -> float:
        """Average packet latency (creation to tail ejection), cycles."""
        if not self.measured_packets:
            return float("nan")
        return self.total_latency / self.measured_packets

    @property
    def avg_network_latency(self) -> float:
        if not self.measured_packets:
            return float("nan")
        return self.total_network_latency / self.measured_packets

    @property
    def avg_hops(self) -> float:
        if not self.measured_packets:
            return float("nan")
        return self.total_hops / self.measured_packets

    @property
    def reusability(self) -> float:
        """Fraction of flit traversals that reused a pseudo-circuit
        (paper's 'pseudo-circuit reusability', Figs. 8(b) and 10)."""
        if not self.flit_hops:
            return 0.0
        return self.sa_bypass_flits / self.flit_hops

    @property
    def buffer_bypass_rate(self) -> float:
        if not self.flit_hops:
            return 0.0
        return self.buf_bypass_flits / self.flit_hops

    @property
    def e2e_locality(self) -> float:
        """End-to-end communication temporal locality (Fig. 1, left bars)."""
        if not self.e2e_packets:
            return 0.0
        return self.e2e_repeats / self.e2e_packets

    @property
    def xbar_locality(self) -> float:
        """Crossbar-connection temporal locality (Fig. 1, right bars)."""
        if not self.xbar_flits:
            return 0.0
        return self.xbar_repeats / self.xbar_flits

    def latency_percentile(self, pct: float) -> float:
        if not self.latency_samples:
            return float("nan")
        data = sorted(self.latency_samples)
        idx = min(len(data) - 1, max(0, round(pct / 100 * (len(data) - 1))))
        return float(data[idx])

    def summary(self) -> dict:
        """Flat dict for reports and EXPERIMENTS.md tables."""
        return {
            "injected_packets": self.injected_packets,
            "ejected_packets": self.ejected_packets,
            "avg_latency": self.avg_latency,
            "avg_network_latency": self.avg_network_latency,
            "avg_hops": self.avg_hops,
            "reusability": self.reusability,
            "buffer_bypass_rate": self.buffer_bypass_rate,
            "e2e_locality": self.e2e_locality,
            "xbar_locality": self.xbar_locality,
            "flit_hops": self.flit_hops,
            "buffer_writes": self.buffer_writes,
            "buffer_reads": self.buffer_reads,
            "sa_arbitrations": self.sa_arbitrations,
        }
