"""Statistics collected by the network simulator.

One ``NetworkStats`` instance is shared by every router, link and NIC of a
simulation. Counters are plain integer attributes on a ``__slots__`` layout
(hot path: no per-instance dict); derived metrics — average latency,
pseudo-circuit reusability, temporal locality, energy — are computed on
demand. Per-packet latencies are kept as an exact histogram (latency ->
count) rather than an unbounded sample list, which bounds memory at long
simulations while reproducing the same averages and percentiles.
"""

from __future__ import annotations

from collections import Counter

from ..core.pseudo_circuit import Termination
from ..network.flit import Packet


class NetworkStats:
    """Event counters plus an exact per-packet latency histogram."""

    __slots__ = (
        "warmup_cycles",
        # Packet accounting.
        "injected_packets", "ejected_packets",
        "injected_flits", "ejected_flits",
        "measured_packets", "total_latency", "total_network_latency",
        "total_hops", "latency_histogram",
        # Per-flit-hop events (energy model inputs).
        "flit_hops", "buffer_writes", "buffer_reads",
        "sa_arbitrations", "va_allocations",
        # Pseudo-circuit events.
        "sa_bypass_flits", "buf_bypass_flits",
        "pc_established", "pc_restored", "pc_terminations",
        # Temporal locality (Fig. 1).
        "e2e_packets", "e2e_repeats", "xbar_flits", "xbar_repeats",
    )

    def __init__(self, warmup_cycles: int = 0):
        #: Packets ejected before this cycle are excluded from latency stats.
        self.warmup_cycles = warmup_cycles
        self.injected_packets = 0
        self.ejected_packets = 0
        self.injected_flits = 0
        self.ejected_flits = 0
        self.measured_packets = 0
        self.total_latency = 0
        self.total_network_latency = 0
        self.total_hops = 0
        #: Exact latency distribution: latency in cycles -> packet count.
        self.latency_histogram: dict[int, int] = {}
        self.flit_hops = 0          # crossbar traversals
        self.buffer_writes = 0
        self.buffer_reads = 0
        self.sa_arbitrations = 0    # switch-arbiter request-grant events
        self.va_allocations = 0
        self.sa_bypass_flits = 0    # flits that skipped SA via a circuit
        self.buf_bypass_flits = 0   # subset that also skipped the buffer
        self.pc_established = 0
        self.pc_restored = 0        # speculative restorations
        self.pc_terminations: Counter = Counter()
        self.e2e_packets = 0
        self.e2e_repeats = 0
        self.xbar_flits = 0
        self.xbar_repeats = 0

    # -- recording ------------------------------------------------------------

    def record_injection(self, packet: Packet) -> None:
        self.injected_packets += 1
        self.injected_flits += packet.size

    def record_ejection(self, packet: Packet) -> None:
        self.ejected_packets += 1
        self.ejected_flits += packet.size
        if packet.eject_cycle >= self.warmup_cycles:
            self.measured_packets += 1
            latency = packet.latency
            self.total_latency += latency
            self.total_network_latency += packet.network_latency
            self.total_hops += packet.hops
            hist = self.latency_histogram
            hist[latency] = hist.get(latency, 0) + 1

    def record_hop(self, via: str, read: bool, xbar_repeat: bool,
                   e2e_repeat: bool | None) -> None:
        """Fused per-traversal recording: one call per crossbar hop.

        ``via`` is the traversal kind ('sa' | 'pc' | 'buf'), ``read`` whether
        the flit came out of a buffer (write-through bypasses skip the read),
        ``xbar_repeat`` whether the crossbar connection repeated, and
        ``e2e_repeat`` the head-flit source/destination repeat flag (None for
        body/tail flits, which carry no end-to-end accounting).
        """
        self.flit_hops += 1
        self.xbar_flits += 1
        if read:
            self.buffer_reads += 1
        if xbar_repeat:
            self.xbar_repeats += 1
        if via == "sa":
            self.sa_arbitrations += 1
        else:
            self.sa_bypass_flits += 1
            if via == "buf":
                self.buf_bypass_flits += 1
        if e2e_repeat is not None:
            self.e2e_packets += 1
            if e2e_repeat:
                self.e2e_repeats += 1

    def record_termination(self, reason: Termination) -> None:
        self.pc_terminations[reason] += 1

    # -- identity -------------------------------------------------------------

    def fingerprint(self) -> dict:
        """Every observable counter as a flat dict (differential testing)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __eq__(self, other) -> bool:
        if not isinstance(other, NetworkStats):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    # -- derived metrics ------------------------------------------------------

    @property
    def avg_latency(self) -> float:
        """Average packet latency (creation to tail ejection), cycles."""
        if not self.measured_packets:
            return float("nan")
        return self.total_latency / self.measured_packets

    @property
    def avg_network_latency(self) -> float:
        if not self.measured_packets:
            return float("nan")
        return self.total_network_latency / self.measured_packets

    @property
    def avg_hops(self) -> float:
        if not self.measured_packets:
            return float("nan")
        return self.total_hops / self.measured_packets

    @property
    def reusability(self) -> float:
        """Fraction of flit traversals that reused a pseudo-circuit
        (paper's 'pseudo-circuit reusability', Figs. 8(b) and 10)."""
        if not self.flit_hops:
            return 0.0
        return self.sa_bypass_flits / self.flit_hops

    @property
    def buffer_bypass_rate(self) -> float:
        if not self.flit_hops:
            return 0.0
        return self.buf_bypass_flits / self.flit_hops

    @property
    def e2e_locality(self) -> float:
        """End-to-end communication temporal locality (Fig. 1, left bars)."""
        if not self.e2e_packets:
            return 0.0
        return self.e2e_repeats / self.e2e_packets

    @property
    def xbar_locality(self) -> float:
        """Crossbar-connection temporal locality (Fig. 1, right bars)."""
        if not self.xbar_flits:
            return 0.0
        return self.xbar_repeats / self.xbar_flits

    def latency_percentile(self, pct: float) -> float:
        """Percentile over the recorded latency distribution.

        Walks the histogram in latency order, reproducing exactly the value
        ``sorted(samples)[round(pct/100 * (n-1))]`` the pre-histogram
        implementation returned.
        """
        hist = self.latency_histogram
        if not hist:
            return float("nan")
        total = sum(hist.values())
        idx = min(total - 1, max(0, round(pct / 100 * (total - 1))))
        seen = 0
        for latency in sorted(hist):
            seen += hist[latency]
            if idx < seen:
                return float(latency)
        raise AssertionError("histogram counts inconsistent with total")

    def summary(self) -> dict:
        """Flat dict for reports and EXPERIMENTS.md tables."""
        return {
            "injected_packets": self.injected_packets,
            "ejected_packets": self.ejected_packets,
            "avg_latency": self.avg_latency,
            "avg_network_latency": self.avg_network_latency,
            "avg_hops": self.avg_hops,
            "reusability": self.reusability,
            "buffer_bypass_rate": self.buffer_bypass_rate,
            "e2e_locality": self.e2e_locality,
            "xbar_locality": self.xbar_locality,
            "flit_hops": self.flit_hops,
            "buffer_writes": self.buffer_writes,
            "buffer_reads": self.buffer_reads,
            "sa_arbitrations": self.sa_arbitrations,
        }
