"""Measurement: latency, reusability, temporal locality, energy inputs."""

from .stats import NetworkStats

__all__ = ["NetworkStats"]
