"""Run provenance: manifests that make any result file reproducible.

A *manifest* is a small JSON document written alongside every bench,
sweep, figure or trace output: the full config dict plus its SHA-256, the
git commit the code was at, the seed, the python/platform versions, and
the run's wall-clock and simulated-cycles-per-second. Re-running the
experiment described by a manifest reproduces the output bit-for-bit
(simulations are deterministic in their config + seed).

The canonical config hash computed here (``config_hash`` over
``config_dict``) is also the identity the content-addressed result store
builds its keys from (``repro.store.store_key`` =
``sha256(config_sha256 : code_version : seed)``, DESIGN.md §11), so a
manifest names exactly the store entry its run produced — ``repro
compare`` prints that key in its report header.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import asdict, is_dataclass
from functools import lru_cache

#: Bumped whenever manifest fields change meaning.
SCHEMA = "repro.run-manifest/1"


def config_dict(config) -> dict:
    """Normalize a config (dataclass or mapping) to a plain JSON-able dict."""
    if is_dataclass(config) and not isinstance(config, type):
        return asdict(config)
    if isinstance(config, dict):
        return dict(config)
    raise TypeError(f"cannot serialize config of type {type(config).__name__}")


def config_hash(config) -> str:
    """SHA-256 over the canonical JSON form of the config dict."""
    canon = json.dumps(config_dict(config), sort_keys=True, default=str)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def git_sha() -> str | None:
    """Commit SHA of the source tree, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def run_manifest(config, *, seed: int | None = None,
                 cycles: int | None = None, wall_s: float | None = None,
                 extra: dict | None = None) -> dict:
    """Build the provenance manifest for one run.

    ``config`` is any dataclass or dict describing the run; ``cycles`` the
    simulated cycle count and ``wall_s`` the measured wall-clock, from
    which the cycles/sec throughput is derived.
    """
    cfg = config_dict(config)
    manifest = {
        "schema": SCHEMA,
        "config": cfg,
        "config_sha256": config_hash(cfg),
        "seed": seed if seed is not None else cfg.get("seed"),
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "generated_unix": int(time.time()),
    }
    if cycles is not None:
        manifest["cycles"] = cycles
    if wall_s is not None:
        manifest["wall_s"] = round(wall_s, 4)
        if cycles and wall_s > 0:
            manifest["cycles_per_sec"] = round(cycles / wall_s, 1)
    if extra:
        manifest.update(extra)
    return manifest


def manifest_path(output_path: str) -> str:
    """Sidecar path for an output file: ``results.json`` ->
    ``results.manifest.json``."""
    stem, _ = os.path.splitext(output_path)
    return stem + ".manifest.json"


def write_manifest(manifest: dict, output_path: str) -> str:
    """Write ``manifest`` alongside ``output_path``; returns the sidecar
    path."""
    path = manifest_path(output_path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return path
