"""Probe interface: the event vocabulary of the instrumentation layer.

A probe receives the flit-lifecycle events the network components emit.
The null object is literally ``None``: components hold ``_probe = None``
when tracing is off and guard every emission with a single attribute test,
so the disabled hot path costs one pointer load per call site
(``python -m repro bench --gate`` keeps this honest). Probes that are
attached (``Network.bind_probe``) receive every event of the simulation
they observe; they must never mutate what they are handed — the overhead
gate asserts stats stay bit-identical with probes on.

Event vocabulary (all cycles are simulation cycles; ``flit`` arguments are
live :class:`~repro.network.flit.Flit` objects, read-only):

========================  ==================================================
``on_buffer_write``       flit written into an input VC buffer (BW stage)
``on_va_grant``           output VC granted to a head flit (VA stage)
``on_traverse``           crossbar traversal: ``via`` is ``'sa'`` (arbitrated),
                          ``'pc'`` (SA bypass) or ``'buf'`` (buffer bypass);
                          ``read`` tells whether a buffer read happened
``on_link``               flit handed to the downstream input port (LT done)
``on_credit_restore``     credit return landed in the upstream counter of
                          (router, port, vc); ``router == -1`` marks the
                          NIC ejection side, with ``port`` the terminal id
``on_pc_establish``       pseudo-circuit latched (``refreshed`` = re-latch of
                          the identical connection)
``on_pc_restore``         speculative restoration of an invalidated circuit
``on_pc_terminate``       circuit torn down, with the ``Termination`` reason
``on_inject``             packet left its source queue into the network
``on_eject``              packet fully reassembled at its destination NIC
``on_cycle_start``        a simulated cycle is about to execute, before any
                          other event of that cycle (after a quiescence
                          fast-forward ``cycle`` jumps; window-based probes
                          close every skipped window here, which is exact:
                          skipped cycles are provably event-free)
``bind``                  called once when attached to a Network
========================  ==================================================
"""

from __future__ import annotations


class Probe:
    """Base probe: every hook is a no-op; subclasses override what they
    need. Attach with :meth:`repro.network.simulator.Network.bind_probe`."""

    def bind(self, network) -> None:
        """Called once when the probe is attached to a network."""

    # -- flit lifecycle -------------------------------------------------------

    def on_buffer_write(self, cycle: int, router: int, in_port: int,
                        vc: int, flit) -> None:
        pass

    def on_va_grant(self, cycle: int, router: int, in_port: int, vc: int,
                    out_port: int, out_vc: int, flit) -> None:
        pass

    def on_traverse(self, cycle: int, router: int, in_port: int, vc: int,
                    out_port: int, via: str, read: bool, flit) -> None:
        pass

    def on_link(self, cycle: int, link: int, router: int, in_port: int,
                flit) -> None:
        pass

    def on_credit_restore(self, cycle: int, router: int, port: int,
                          vc: int) -> None:
        pass

    # -- pseudo-circuit lifecycle ---------------------------------------------

    def on_pc_establish(self, cycle: int, router: int, in_port: int,
                        in_vc: int, out_port: int, refreshed: bool) -> None:
        pass

    def on_pc_restore(self, cycle: int, router: int, in_port: int,
                      out_port: int) -> None:
        pass

    def on_pc_terminate(self, cycle: int, router: int, in_port: int,
                        out_port: int, reason) -> None:
        pass

    # -- terminals ------------------------------------------------------------

    def on_inject(self, cycle: int, terminal: int, packet) -> None:
        pass

    def on_eject(self, cycle: int, terminal: int, packet) -> None:
        pass

    # -- clock ----------------------------------------------------------------

    def on_cycle_start(self, cycle: int, network) -> None:
        pass


class CompositeProbe(Probe):
    """Fan every event out to several probes (e.g. tracer + time series)."""

    def __init__(self, *probes: Probe):
        self.probes = tuple(probes)

    def bind(self, network) -> None:
        for p in self.probes:
            p.bind(network)

    def on_buffer_write(self, cycle, router, in_port, vc, flit):
        for p in self.probes:
            p.on_buffer_write(cycle, router, in_port, vc, flit)

    def on_va_grant(self, cycle, router, in_port, vc, out_port, out_vc,
                    flit):
        for p in self.probes:
            p.on_va_grant(cycle, router, in_port, vc, out_port, out_vc, flit)

    def on_traverse(self, cycle, router, in_port, vc, out_port, via, read,
                    flit):
        for p in self.probes:
            p.on_traverse(cycle, router, in_port, vc, out_port, via, read,
                          flit)

    def on_link(self, cycle, link, router, in_port, flit):
        for p in self.probes:
            p.on_link(cycle, link, router, in_port, flit)

    def on_credit_restore(self, cycle, router, port, vc):
        for p in self.probes:
            p.on_credit_restore(cycle, router, port, vc)

    def on_pc_establish(self, cycle, router, in_port, in_vc, out_port,
                        refreshed):
        for p in self.probes:
            p.on_pc_establish(cycle, router, in_port, in_vc, out_port,
                              refreshed)

    def on_pc_restore(self, cycle, router, in_port, out_port):
        for p in self.probes:
            p.on_pc_restore(cycle, router, in_port, out_port)

    def on_pc_terminate(self, cycle, router, in_port, out_port, reason):
        for p in self.probes:
            p.on_pc_terminate(cycle, router, in_port, out_port, reason)

    def on_inject(self, cycle, terminal, packet):
        for p in self.probes:
            p.on_inject(cycle, terminal, packet)

    def on_eject(self, cycle, terminal, packet):
        for p in self.probes:
            p.on_eject(cycle, terminal, packet)

    def on_cycle_start(self, cycle, network):
        for p in self.probes:
            p.on_cycle_start(cycle, network)
