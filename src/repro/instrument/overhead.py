"""The instrumentation-overhead gate.

The layer's contract is *zero overhead when off*: a network built without
a probe must behave — and cost — exactly as if the layer did not exist.
The gate checks this three ways:

1. **Structural** (:func:`assert_probes_cold`): a default-built network
   holds no probe on any router, link or NIC — a probe accidentally left
   attached (hot) fails deterministically, at any cycle count. This is the
   check CI runs at reduced scale.
2. **Bit-identity** (:func:`identity_check`): the same workload run with
   probes disabled and with a full tracer + time-series stack attached
   produces identical ``NetworkStats`` fingerprints — instrumentation
   observes, never perturbs. The traced run also cross-checks the traced
   pseudo-circuit termination events against the aggregate counters.
3. **Timing** (:func:`timing_gate`): the freshly measured bench walls must
   be within ``GATE_THRESHOLD`` (2%) of the walls recorded by the previous
   ``BENCH_core.json`` — only meaningful at the same scale on the same
   machine, so ``python -m repro bench --gate`` applies it when a previous
   report at matching scale exists and always runs checks 1–2.
"""

from __future__ import annotations

import math

from ..metrics.stats import NetworkStats
from ..network.config import PSEUDO_SB, NetworkConfig
from ..network.simulator import build_network
from ..topology import make_topology
from ..traffic.synthetic import SyntheticTraffic
from .probe import CompositeProbe
from .series import TimeSeriesProbe
from .tracer import FlitTracer

#: Maximum tolerated slowdown of the probes-disabled hot path.
GATE_THRESHOLD = 0.02


class OverheadGateError(AssertionError):
    """The instrumentation layer violated its zero-overhead contract."""


def assert_probes_cold(network) -> None:
    """Raise unless every component of ``network`` has its probe unset.

    Covers both cores: the scalar core checks every router/link/NIC
    slot; the vectorized cores (no ``routers`` attribute) check that
    the probe, invariant checker, hook tuple and phase profiler are all
    cold — their emission sites are guarded by the hook tuple the same
    way the scalar hot path is guarded by the probe slot.
    """
    if getattr(network, "probe", None) is not None:
        raise OverheadGateError("network carries a probe by default")
    if not hasattr(network, "routers"):
        for attr, what in (("_vprobe", "a vector probe"),
                           ("_checker", "an invariant checker"),
                           ("_prof", "a live phase profiler")):
            if getattr(network, attr, None) is not None:
                raise OverheadGateError(
                    f"vectorized network carries {what} by default")
        if getattr(network, "_vhooks", ()):
            raise OverheadGateError(
                "vectorized network has hook emission enabled by default")
        return
    for router in network.routers:
        if router._probe is not None:
            raise OverheadGateError(
                f"router {router.router_id} carries a probe by default")
    for link in network.links:
        if link._probe is not None:
            raise OverheadGateError(
                f"link {link.link_id} carries a probe by default")
    for nic in network.nics:
        if nic._probe is not None:
            raise OverheadGateError(
                f"NIC {nic.terminal} carries a probe by default")


def _run(cycles: int, rate: float, seed: int, probe=None) -> NetworkStats:
    config = NetworkConfig(num_vcs=4, buffer_depth=4, pseudo=PSEUDO_SB)
    topo = make_topology("mesh", 8, 8, 1)
    net = build_network(topo, config=config, seed=seed, probe=probe)
    traffic = SyntheticTraffic("uniform", topo.num_terminals, rate, 5,
                               seed=seed)
    net.stats.warmup_cycles = cycles // 5
    net.run(cycles, traffic)
    net.drain(max_cycles=500_000)
    return net.stats


def identity_check(cycles: int = 400, rate: float = 0.30,
                   seed: int = 7) -> dict:
    """Run the saturation workload bare and fully instrumented; raise
    unless the stats are bit-identical and the traced pseudo-circuit
    termination events reconcile with the aggregate counters."""
    bare = _run(cycles, rate, seed)
    tracer = FlitTracer()
    series = TimeSeriesProbe(window=max(1, cycles // 16))
    probed = _run(cycles, rate, seed,
                  probe=CompositeProbe(tracer, series))
    if bare.fingerprint() != probed.fingerprint():
        diff = {k: (v, probed.fingerprint()[k])
                for k, v in bare.fingerprint().items()
                if probed.fingerprint()[k] != v}
        raise OverheadGateError(
            f"stats diverged with probes attached: {diff}")
    traced = tracer.termination_counts
    aggregate = {reason.value: count
                 for reason, count in probed.pc_terminations.items()
                 if count}
    if traced != aggregate:
        raise OverheadGateError(
            f"traced terminations {traced} != counters {aggregate}")
    return {
        "cycles": cycles,
        "stats_identical": True,
        "traced_events": sum(tracer.counts.values()),
        "pc_terminations": dict(traced),
        "series_windows": len(series.samples),
    }


def _run_vectorized(cycles: int, rate: float, seed: int, probe=None,
                    check: bool = False):
    """Drive the gate workload on the vectorized core; returns the net."""
    from ..network.vectorized import VectorInvariantChecker, VectorNetwork
    config = NetworkConfig(num_vcs=4, buffer_depth=4, pseudo=PSEUDO_SB)
    topo = make_topology("mesh", 8, 8, 1)
    net = VectorNetwork(topo, config, seed=seed)
    if probe is not None:
        net.bind_probe(probe)
    if check:
        net.attach_checker(VectorInvariantChecker(strict=True))
        net.enable_profile()
    traffic = SyntheticTraffic("uniform", topo.num_terminals, rate, 5,
                               seed=seed)
    net.stats.warmup_cycles = cycles // 5
    net.run(cycles, traffic)
    net.drain(max_cycles=500_000)
    return net


def vectorized_identity_check(cycles: int = 400, rate: float = 0.30,
                              seed: int = 7) -> dict:
    """Run the saturation workload on the vectorized core bare and fully
    observed (``VectorSeriesProbe`` + strict ``VectorInvariantChecker`` +
    phase profiler); raise unless the stats are bit-identical and the
    checker swept clean."""
    from ..network.vectorized import VectorSeriesProbe
    bare = _run_vectorized(cycles, rate, seed).stats
    series = VectorSeriesProbe(window=max(1, cycles // 16))
    net = _run_vectorized(cycles, rate, seed, probe=series, check=True)
    if bare.fingerprint() != net.stats.fingerprint():
        diff = {k: (v, net.stats.fingerprint()[k])
                for k, v in bare.fingerprint().items()
                if net.stats.fingerprint()[k] != v}
        raise OverheadGateError(
            f"vectorized stats diverged with observability attached: "
            f"{diff}")
    checker = net._checker
    if checker.violations:
        raise OverheadGateError(
            f"vectorized invariant checker flagged the gate workload: "
            f"{checker.violations[0]}")
    return {
        "cycles": cycles,
        "stats_identical": True,
        "series_windows": len(series.samples),
        "checker_sweeps": checker.sweeps,
        "phase_profile": net.profile(),
    }


def vectorized_overhead_gate(cycles: int = 400, show: bool = True) -> dict:
    """The structural + bit-identity gate for the vectorized core."""
    config = NetworkConfig(num_vcs=4, buffer_depth=4, pseudo=PSEUDO_SB)
    topo = make_topology("mesh", 8, 8, 1)
    from ..network.vectorized import VectorNetwork
    assert_probes_cold(VectorNetwork(topo, config))
    report = vectorized_identity_check(cycles=cycles)
    report["probes_cold"] = True
    if show:
        print(f"vectorized overhead gate: probes cold, stats "
              f"bit-identical over {cycles} cycles "
              f"({report['series_windows']} series windows, "
              f"{report['checker_sweeps']} checker sweeps)")
    return report


def timing_gate(workloads: list[dict], previous: list[dict],
                weights: dict[str, int],
                threshold: float = GATE_THRESHOLD) -> dict:
    """Compare fresh bench walls against the previous report's.

    Overhead is the weighted geometric mean of per-workload wall ratios
    (same weights as the bench summary); the gate trips when it exceeds
    ``threshold``. Per-workload ratios are reported for diagnosis.
    """
    prev_wall = {row["name"]: row["wall_s"] for row in previous}
    rows = []
    log_sum = 0.0
    weight_sum = 0
    for row in workloads:
        base = prev_wall.get(row["name"])
        if base is None or base <= 0:
            continue
        ratio = row["wall_s"] / base
        weight = weights.get(row["name"], 1)
        log_sum += weight * math.log(ratio)
        weight_sum += weight
        rows.append({"name": row["name"], "wall_s": row["wall_s"],
                     "previous_wall_s": base,
                     "overhead": round(ratio - 1.0, 4)})
    if not weight_sum:
        return {"applied": False, "reason": "no comparable workloads"}
    overhead = math.exp(log_sum / weight_sum) - 1.0
    result = {"applied": True, "threshold": threshold,
              "overhead": round(overhead, 4), "workloads": rows}
    if overhead > threshold:
        raise OverheadGateError(
            f"probes-disabled bench is {overhead:+.2%} vs the previous "
            f"report (threshold {threshold:.0%}): {rows}")
    return result


def overhead_gate(cycles: int = 400, show: bool = True) -> dict:
    """Run the scale-independent checks (structural + bit-identity)."""
    config = NetworkConfig(num_vcs=4, buffer_depth=4, pseudo=PSEUDO_SB)
    topo = make_topology("mesh", 8, 8, 1)
    assert_probes_cold(build_network(topo, config=config))
    report = identity_check(cycles=cycles)
    report["probes_cold"] = True
    if show:
        print(f"overhead gate: probes cold, stats bit-identical over "
              f"{cycles} cycles ({report['traced_events']} traced events, "
              f"{report['series_windows']} series windows)")
    return report
