"""Zero-overhead instrumentation layer.

Three orthogonal pieces, all optional at construction time:

* **Probes** (`probe`) — the event interface the network components emit
  into. When no probe is attached (the default) every hot path pays at most
  one attribute test; `python -m repro bench --gate` enforces this.
* **Flit-lifecycle tracing** (`tracer`) — per-hop events with packet-id
  correlation, exportable as JSONL and as Chrome ``trace_event`` JSON
  loadable in Perfetto / ``chrome://tracing``.
* **Windowed time series** (`series`) — per-router ring-buffer samples
  (occupancy, link utilization, pseudo-circuit reuse, throughput) with
  CSV/JSON export plus spatial heatmaps for grid topologies.

**Run provenance** (`provenance`) stamps every bench/sweep/figure output
with a manifest: config dict + hash, git SHA, seed, python version and
wall-clock, so any result file is reproducible from its sidecar alone.
"""

from .overhead import (GATE_THRESHOLD, identity_check, overhead_gate,
                       vectorized_identity_check, vectorized_overhead_gate)
from .probe import CompositeProbe, Probe
from .provenance import (config_hash, git_sha, manifest_path, run_manifest,
                         write_manifest)
from .series import TimeSeriesProbe
from .tracer import FlitTracer

__all__ = [
    "Probe", "CompositeProbe", "FlitTracer", "TimeSeriesProbe",
    "run_manifest", "write_manifest", "manifest_path", "config_hash",
    "git_sha", "overhead_gate", "identity_check", "GATE_THRESHOLD",
    "vectorized_overhead_gate", "vectorized_identity_check",
]
