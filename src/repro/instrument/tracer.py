"""Flit-lifecycle tracing: JSONL event stream + Chrome trace_event export.

``FlitTracer`` records every probe event as a flat dict. Two exports:

* :meth:`to_jsonl` — one JSON object per line, schema below; the natural
  input for ad-hoc analysis (``jq``, pandas).
* :meth:`to_chrome_trace` / :meth:`chrome_trace` — the Chrome
  ``trace_event`` JSON format, loadable in Perfetto or ``chrome://tracing``.
  Routers map to *processes* (pid), input ports to *threads* (tid), one
  simulated cycle to one microsecond. Crossbar traversals are complete
  ("X") slices named ``hop:<via>``; pseudo-circuit events are instants;
  hops of one packet are stitched together with flow events keyed by the
  packet id, so selecting any hop highlights the packet's whole path.

JSONL schema — every record has ``ev`` and ``cycle``; the rest varies:

=================  ========================================================
``buffer_write``   ``router, port, vc, pid, fidx``
``buffer_read``    ``router, port, vc, pid, fidx``
``va_grant``       ``router, port, vc, out_port, out_vc, pid``
``hop``            ``router, port, vc, out_port, via ('sa'|'pc'|'buf'),
                   read, pid, fidx`` — ``via='pc'`` is an SA bypass,
                   ``via='buf'`` a buffer bypass (skips BW *and* SA)
``link``           ``link, router, port, pid, fidx`` (arrival downstream)
``credit_restore`` ``router, port, vc`` (credit landed upstream;
                   ``router=-1`` is the NIC ejection side)
``pc_establish``   ``router, port, in_vc, out_port, refreshed``
``pc_restore``     ``router, port, out_port``
``pc_terminate``   ``router, port, out_port, reason`` (Termination value)
``inject``         ``terminal, pid, src, dst, size``
``eject``          ``terminal, pid, latency``
=================  ========================================================
"""

from __future__ import annotations

import json

from .probe import Probe


def chrome_trace_envelope(trace_events: list[dict], time_unit: str,
                          dropped: int = 0) -> dict:
    """The Chrome ``trace_event`` JSON envelope every exporter shares.

    ``FlitTracer`` wraps core-level flit events in it (one simulated
    cycle = 1 us); the harness-telemetry exporter
    (``repro.telemetry.trace_export``) wraps scheduler/worker spans in
    the same envelope (wall-clock us), so both open identically in
    Perfetto. ``time_unit`` documents the mapping in ``otherData``.
    """
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": {"time_unit": time_unit,
                          "dropped_events": dropped}}


class FlitTracer(Probe):
    """Record probe events; export as JSONL or Chrome trace JSON.

    ``max_events`` bounds memory: once reached, further events are counted
    in ``dropped`` instead of stored (the counters in ``counts`` keep
    accumulating, so aggregate cross-checks stay exact).
    """

    def __init__(self, max_events: int | None = None):
        self.events: list[dict] = []
        self.max_events = max_events
        self.dropped = 0
        #: Event-kind -> count over the whole run (never truncated).
        self.counts: dict[str, int] = {}
        #: Termination reason value -> count (cross-check against
        #: ``NetworkStats.pc_terminations``).
        self.termination_counts: dict[str, int] = {}

    def _emit(self, record: dict) -> None:
        ev = record["ev"]
        self.counts[ev] = self.counts.get(ev, 0) + 1
        if (self.max_events is not None
                and len(self.events) >= self.max_events):
            self.dropped += 1
            return
        self.events.append(record)

    # -- probe hooks ----------------------------------------------------------

    def on_buffer_write(self, cycle, router, in_port, vc, flit):
        self._emit({"ev": "buffer_write", "cycle": cycle, "router": router,
                    "port": in_port, "vc": vc, "pid": flit.packet.pid,
                    "fidx": flit.index})

    def on_va_grant(self, cycle, router, in_port, vc, out_port, out_vc,
                    flit):
        self._emit({"ev": "va_grant", "cycle": cycle, "router": router,
                    "port": in_port, "vc": vc, "out_port": out_port,
                    "out_vc": out_vc, "pid": flit.packet.pid})

    def on_traverse(self, cycle, router, in_port, vc, out_port, via, read,
                    flit):
        pid = flit.packet.pid
        if read:
            self._emit({"ev": "buffer_read", "cycle": cycle,
                        "router": router, "port": in_port, "vc": vc,
                        "pid": pid, "fidx": flit.index})
        self._emit({"ev": "hop", "cycle": cycle, "router": router,
                    "port": in_port, "vc": vc, "out_port": out_port,
                    "via": via, "read": read, "pid": pid,
                    "fidx": flit.index})

    def on_link(self, cycle, link, router, in_port, flit):
        self._emit({"ev": "link", "cycle": cycle, "link": link,
                    "router": router, "port": in_port,
                    "pid": flit.packet.pid, "fidx": flit.index})

    def on_credit_restore(self, cycle, router, port, vc):
        self._emit({"ev": "credit_restore", "cycle": cycle,
                    "router": router, "port": port, "vc": vc})

    def on_pc_establish(self, cycle, router, in_port, in_vc, out_port,
                        refreshed):
        self._emit({"ev": "pc_establish", "cycle": cycle, "router": router,
                    "port": in_port, "in_vc": in_vc, "out_port": out_port,
                    "refreshed": refreshed})

    def on_pc_restore(self, cycle, router, in_port, out_port):
        self._emit({"ev": "pc_restore", "cycle": cycle, "router": router,
                    "port": in_port, "out_port": out_port})

    def on_pc_terminate(self, cycle, router, in_port, out_port, reason):
        value = reason.value
        self.termination_counts[value] = \
            self.termination_counts.get(value, 0) + 1
        self._emit({"ev": "pc_terminate", "cycle": cycle, "router": router,
                    "port": in_port, "out_port": out_port, "reason": value})

    def on_inject(self, cycle, terminal, packet):
        self._emit({"ev": "inject", "cycle": cycle, "terminal": terminal,
                    "pid": packet.pid, "src": packet.src, "dst": packet.dst,
                    "size": packet.size})

    def on_eject(self, cycle, terminal, packet):
        self._emit({"ev": "eject", "cycle": cycle, "terminal": terminal,
                    "pid": packet.pid,
                    "latency": cycle - packet.create_cycle})

    # -- exports --------------------------------------------------------------

    def to_jsonl(self, path: str) -> str:
        """Write one JSON object per line; returns ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.events:
                fh.write(json.dumps(record, separators=(",", ":")))
                fh.write("\n")
        return path

    def chrome_trace(self) -> dict:
        """Build the Chrome ``trace_event`` document (see module doc)."""
        trace_events: list[dict] = []
        seen_pids: set[int] = set()
        named_procs: set[int] = set()

        def proc(router: int) -> None:
            if router not in named_procs:
                named_procs.add(router)
                trace_events.append({
                    "name": "process_name", "ph": "M", "pid": router,
                    "tid": 0, "args": {"name": f"router {router}"}})

        for record in self.events:
            ev = record["ev"]
            cycle = record["cycle"]
            if ev == "hop":
                router, port = record["router"], record["port"]
                proc(router)
                pid = record["pid"]
                trace_events.append({
                    "name": f"hop:{record['via']}", "cat": "hop",
                    "ph": "X", "ts": cycle, "dur": 1,
                    "pid": router, "tid": port,
                    "args": {"packet": pid, "fidx": record["fidx"],
                             "vc": record["vc"],
                             "out_port": record["out_port"],
                             "read": record["read"]}})
                # Flow events correlate the hops of one packet across
                # routers: start ("s") on the first hop, step ("t") after.
                phase = "t" if pid in seen_pids else "s"
                seen_pids.add(pid)
                trace_events.append({
                    "name": "packet", "cat": "packet", "ph": phase,
                    "id": pid, "ts": cycle, "pid": router, "tid": port})
            elif ev in ("pc_establish", "pc_restore", "pc_terminate"):
                router, port = record["router"], record["port"]
                proc(router)
                name = ev
                if ev == "pc_terminate":
                    name = f"pc_terminate:{record['reason']}"
                args = {k: v for k, v in record.items()
                        if k not in ("ev", "cycle", "router", "port")}
                trace_events.append({
                    "name": name, "cat": "pc", "ph": "i", "s": "t",
                    "ts": cycle, "pid": router, "tid": port, "args": args})
        return chrome_trace_envelope(trace_events,
                                     time_unit="1 cycle = 1 us",
                                     dropped=self.dropped)

    def to_chrome_trace(self, path: str) -> str:
        """Write the Chrome trace JSON; returns ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(), fh)
            fh.write("\n")
        return path
