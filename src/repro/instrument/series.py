"""Windowed per-router time series with ring-buffer storage.

``TimeSeriesProbe`` accumulates per-router activity counters (crossbar
hops, SA/buffer bypasses, buffer writes/reads, injections, ejections) and
closes a sample window every ``window`` cycles, snapshotting buffer
occupancy at the boundary. Samples live in a ``deque(maxlen=capacity)``,
so memory is bounded no matter how long the run is.

Windows close in ``on_cycle_start`` — *before* any event of the closing
cycle lands — so attribution is exact, including across quiescence
fast-forwards (the skipped cycles are event-free by construction; skipped
windows are emitted with zero activity and the carried occupancy).

Exports:

* :meth:`to_csv` — long format, one row per (window, router), with the
  derived ``pc_reuse`` (SA-bypass fraction) and ``link_util`` (flits
  launched per cycle) columns.
* :meth:`to_json` — per-window arrays plus network-wide totals.
* :meth:`heatmap` / :meth:`write_heatmap` — a spatial per-router grid for
  mesh/cmesh (any ``GridTopology``): activity metrics are summed over the
  recorded windows, occupancy is averaged.
"""

from __future__ import annotations

import json
from collections import deque

from .probe import Probe

#: Per-router accumulator keys, in export column order.
ACTIVITY_KEYS = ("hops", "sa_bypass", "buf_bypass", "buffer_writes",
                 "buffer_reads", "injected", "ejected")


class TimeSeriesProbe(Probe):
    """Ring-buffered windowed samples of per-router activity."""

    def __init__(self, window: int = 64, capacity: int | None = 4096):
        if window < 1:
            raise ValueError("window must be >= 1 cycle")
        self.window = window
        self.capacity = capacity
        #: Closed windows, oldest first (bounded by ``capacity``).
        self.samples: deque[dict] = deque(maxlen=capacity)
        self._network = None
        self._num = 0
        self._acc: dict[str, list[int]] = {}
        self._terminal_router: list[int] = []
        self._win_start = 0
        self._boundary = window

    def bind(self, network) -> None:
        topo = network.topology
        self._network = network
        n = topo.num_routers
        self._num = n
        self._acc = {key: [0] * n for key in ACTIVITY_KEYS}
        self._terminal_router = [topo.terminal_router(t)
                                 for t in range(topo.num_terminals)]
        self._win_start = network.cycle
        self._boundary = network.cycle + self.window

    # -- accumulation ---------------------------------------------------------

    def on_traverse(self, cycle, router, in_port, vc, out_port, via, read,
                    flit):
        acc = self._acc
        acc["hops"][router] += 1
        if via != "sa":
            acc["sa_bypass"][router] += 1
            if via == "buf":
                acc["buf_bypass"][router] += 1
        if read:
            acc["buffer_reads"][router] += 1

    def on_buffer_write(self, cycle, router, in_port, vc, flit):
        self._acc["buffer_writes"][router] += 1

    def on_inject(self, cycle, terminal, packet):
        self._acc["injected"][self._terminal_router[terminal]] += 1

    def on_eject(self, cycle, terminal, packet):
        self._acc["ejected"][self._terminal_router[terminal]] += 1

    # -- window management ----------------------------------------------------

    def on_cycle_start(self, cycle, network):
        while cycle >= self._boundary:
            self._close(self._boundary)

    def _occupancy(self) -> list[int]:
        return [router._buffered_flits for router in self._network.routers]

    def _close(self, end: int) -> None:
        acc = self._acc
        row = {"start": self._win_start, "end": end,
               "occupancy": self._occupancy()}
        for key in ACTIVITY_KEYS:
            row[key] = acc[key]
            acc[key] = [0] * self._num
        self.samples.append(row)
        self._win_start = end
        self._boundary = end + self.window

    def flush(self, cycle: int | None = None) -> None:
        """Close the open window (call once after the run finishes).

        ``cycle`` defaults to the bound network's current cycle; a window
        of zero elapsed cycles is discarded rather than emitted.
        """
        if cycle is None:
            cycle = self._network.cycle
        while cycle >= self._boundary:
            self._close(self._boundary)
        if cycle > self._win_start:
            self._close(cycle)

    # -- derived views --------------------------------------------------------

    def network_rows(self) -> list[dict]:
        """Network-wide totals per window (activity summed over routers)."""
        rows = []
        for sample in self.samples:
            row = {"start": sample["start"], "end": sample["end"],
                   "occupancy": sum(sample["occupancy"])}
            for key in ACTIVITY_KEYS:
                row[key] = sum(sample[key])
            hops = row["hops"]
            row["pc_reuse"] = row["sa_bypass"] / hops if hops else 0.0
            rows.append(row)
        return rows

    # -- exports --------------------------------------------------------------

    def to_csv(self, path: str) -> str:
        """Long-format CSV: one row per (window, router)."""
        header = ("start,end,router,occupancy," + ",".join(ACTIVITY_KEYS)
                  + ",pc_reuse,link_util")
        lines = [header]
        for sample in self.samples:
            span = sample["end"] - sample["start"]
            for r in range(self._num):
                hops = sample["hops"][r]
                reuse = sample["sa_bypass"][r] / hops if hops else 0.0
                util = hops / span if span else 0.0
                cells = [str(sample["start"]), str(sample["end"]), str(r),
                         str(sample["occupancy"][r])]
                cells += [str(sample[key][r]) for key in ACTIVITY_KEYS]
                cells += [f"{reuse:.4f}", f"{util:.4f}"]
                lines.append(",".join(cells))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        return path

    def to_json(self, path: str) -> str:
        payload = {"window": self.window, "num_routers": self._num,
                   "samples": list(self.samples),
                   "network": self.network_rows()}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
            fh.write("\n")
        return path

    def heatmap(self, metric: str = "hops") -> dict:
        """Spatial per-router grid of ``metric`` over the recorded windows.

        Activity metrics are summed; ``occupancy`` is averaged. Requires a
        grid topology (mesh/cmesh/fbfly) with ``kx``/``ky``/``coords``.
        """
        if metric != "occupancy" and metric not in ACTIVITY_KEYS:
            raise ValueError(f"unknown heatmap metric {metric!r}")
        topo = self._network.topology
        if not hasattr(topo, "kx"):
            raise ValueError(
                f"heatmap needs a grid topology, got {topo.name!r}")
        totals = [0.0] * self._num
        for sample in self.samples:
            values = sample[metric]
            for r in range(self._num):
                totals[r] += values[r]
        if metric == "occupancy" and self.samples:
            totals = [t / len(self.samples) for t in totals]
        grid = [[0.0] * topo.kx for _ in range(topo.ky)]
        for r in range(self._num):
            x, y = topo.coords(r)
            grid[y][x] = totals[r]
        return {"metric": metric, "kx": topo.kx, "ky": topo.ky,
                "windows": len(self.samples), "grid": grid}

    def write_heatmap(self, path: str, metric: str = "hops") -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.heatmap(metric), fh)
            fh.write("\n")
        return path
