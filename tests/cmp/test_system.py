"""Integration tests for the CMP system."""

import pytest

from repro.cmp.config import CmpConfig
from repro.cmp.messages import message_flits, READ_REQ, READ_RESP
from repro.cmp.system import CmpSystem
from repro.network.config import NetworkConfig
from repro.network.simulator import Network
from repro.topology.mesh import ConcentratedMesh, Mesh


class TestConstruction:
    def test_default_layout_is_paper_cmesh(self):
        system = CmpSystem("fma3d", seed=1)
        topo = system.network.topology
        assert isinstance(topo, ConcentratedMesh)
        assert topo.num_terminals == 64
        # Each router hosts 2 cores (locals 0-1) and 2 banks (locals 2-3).
        assert system.core_terminals[:4] == [0, 1, 4, 5]
        assert system.bank_terminals[:4] == [2, 3, 6, 7]

    def test_checkerboard_layout_on_plain_mesh(self):
        net = Network(Mesh(8, 8), NetworkConfig(), "xy", "dynamic", seed=1)
        system = CmpSystem("fft", network=net, seed=1)
        assert len(system.core_terminals) == 32
        assert len(system.bank_terminals) == 32
        assert set(system.core_terminals).isdisjoint(system.bank_terminals)

    def test_too_small_topology_rejected(self):
        net = Network(Mesh(2, 2), NetworkConfig(), "xy", "dynamic", seed=1)
        with pytest.raises(ValueError):
            CmpSystem("fft", network=net)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            CmpSystem("doom")


class TestExecution:
    def test_closed_loop_generates_and_delivers_traffic(self):
        system = CmpSystem("blackscholes", seed=2)
        system.run(600)
        stats = system.network.stats
        assert system.messages_sent > 50
        assert stats.ejected_packets > 0
        # Requests get responses: both 1-flit and 5-flit packets flow.
        system.network.check_invariants()

    def test_home_bank_mapping_is_interleaved(self):
        system = CmpSystem("fft", seed=1)
        shift = system.config.interleave_shift
        t0 = system.bank_terminal_for(0)
        assert system.bank_terminal_for((1 << shift) - 1) == t0
        assert system.bank_terminal_for(1 << shift) != t0

    def test_trace_recording_respects_warmup(self):
        system = CmpSystem("swaptions", seed=3)
        system.run(400, record_trace=True, warmup=200)
        trace = system.trace
        assert len(trace) > 0
        assert all(r.cycle < 200 for r in trace.records)  # re-based to 0
        assert trace.benchmark == "swaptions"

    def test_summary_fields(self):
        system = CmpSystem("lu", seed=1)
        system.run(300)
        summary = system.summary()
        assert summary["benchmark"] == "lu"
        assert 0.0 <= summary["l1_miss_rate"] <= 1.0
        assert summary["messages"] == system.messages_sent


class TestMessageSizes:
    def test_flit_sizes(self):
        cfg = CmpConfig()
        assert message_flits(READ_REQ, cfg) == 1
        assert message_flits(READ_RESP, cfg) == 5
        with pytest.raises(ValueError):
            message_flits("gossip", cfg)
