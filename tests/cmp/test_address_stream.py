"""Unit tests for profile-driven address streams."""

import random
from collections import Counter

from repro.cmp.address_stream import (PRIVATE_STRIDE, AddressStream,
                                      rng_geometric)
from repro.traffic.benchmarks import get_profile


def stream(bench="fma3d", core=0, seed=1):
    return AddressStream(get_profile(bench), core, num_banks=32, seed=seed)


def test_deterministic_for_same_seed():
    a = [stream(seed=5).next_access() for _ in range(200)]
    b = [stream(seed=5).next_access() for _ in range(200)]
    assert a == b


def test_different_cores_diverge():
    s0, s1 = stream(core=0), stream(core=1)
    a = [s0.next_access()[0] for _ in range(100)]
    b = [s1.next_access()[0] for _ in range(100)]
    assert a != b


def test_private_blocks_in_core_region():
    s = stream(core=3)
    ws = s.profile.working_set_blocks
    for _ in range(500):
        block, _ = s.next_access()
        private = block >= PRIVATE_STRIDE
        if private:
            assert (3 + 1) * PRIVATE_STRIDE <= block \
                < 4 * PRIVATE_STRIDE + ws


def test_write_fraction_matches_profile():
    s = stream("radix")  # read_frac 0.60
    writes = sum(1 for _ in range(4000) if s.next_access()[1])
    assert 0.3 < writes / 4000 < 0.5


def test_block_reuse_within_stream():
    """Spatial locality: consecutive accesses frequently hit one block."""
    s = stream("mgrid")
    repeats = 0
    prev = None
    for _ in range(2000):
        block, _ = s.next_access()
        repeats += block == prev
        prev = block
    assert repeats / 2000 > 0.5  # mean ~8 touches per block


def test_bank_skew_creates_hotspots():
    skewed = stream("specjbb")
    uniform = stream("streamcluster")

    def bank_share(s):
        """Distribution of fresh shared-region blocks over home banks."""
        ws = s.profile.working_set_blocks
        counts = Counter(s.home_bank(s._shared_block(ws))
                         for _ in range(4000))
        return max(counts.values()) / 4000

    assert bank_share(skewed) > 2.5 * bank_share(uniform)
    # Uniform profiles spread roughly evenly over the 32 banks.
    assert bank_share(uniform) < 0.10


def test_geometric_mean_approximation():
    rng = random.Random(3)
    samples = [rng_geometric(rng, 8.0) for _ in range(20000)]
    mean = sum(samples) / len(samples)
    assert 7.0 < mean < 9.0
    assert min(samples) >= 1


def test_geometric_degenerate_mean():
    rng = random.Random(0)
    assert rng_geometric(rng, 1.0) == 1
