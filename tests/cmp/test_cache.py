"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, strategies as st

from repro.cmp.cache import SetAssociativeCache


def cache(size=1024, assoc=2, block=64):
    return SetAssociativeCache(size, assoc, block)


class TestBasics:
    def test_geometry(self):
        c = cache(size=32 * 1024, assoc=4)
        assert c.num_sets == 128

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 3, 64)

    def test_miss_then_hit(self):
        c = cache()
        assert not c.lookup(7)
        c.fill(7)
        assert c.lookup(7)
        assert c.hits == 1 and c.misses == 1

    def test_contains_has_no_side_effects(self):
        c = cache()
        c.fill(7)
        assert c.contains(7)
        assert c.hits == 0 and c.misses == 0

    def test_invalidate(self):
        c = cache()
        c.fill(7)
        assert c.invalidate(7)
        assert not c.contains(7)
        assert not c.invalidate(7)


class TestLru:
    def test_eviction_is_lru(self):
        c = cache(size=128, assoc=2, block=64)  # 1 set, 2 ways
        c.fill(0)
        c.fill(1)
        c.lookup(0)          # 0 becomes MRU
        victim = c.fill(2)
        assert victim == 1   # LRU evicted

    def test_refill_does_not_evict(self):
        c = cache(size=128, assoc=2, block=64)
        c.fill(0)
        c.fill(1)
        assert c.fill(0) is None
        assert c.contains(1)

    def test_occupancy_bounded_by_capacity(self):
        c = cache(size=256, assoc=2, block=64)  # 4 blocks total
        for b in range(20):
            c.fill(b)
        assert c.occupancy <= 4


@given(st.lists(st.integers(0, 300), min_size=1, max_size=300))
def test_property_occupancy_and_membership(blocks):
    """Property: occupancy never exceeds capacity, and the most recently
    filled block of a set is always present."""
    c = SetAssociativeCache(512, 2, 64)  # 8 blocks, 4 sets
    for b in blocks:
        c.fill(b)
        assert c.contains(b)
        assert c.occupancy <= 8


@given(st.lists(st.tuples(st.sampled_from(["fill", "inv"]),
                          st.integers(0, 50)), max_size=200))
def test_property_invalidate_removes(ops):
    c = SetAssociativeCache(256, 4, 64)
    for op, b in ops:
        if op == "fill":
            c.fill(b)
        else:
            c.invalidate(b)
            assert not c.contains(b)
