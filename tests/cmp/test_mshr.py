"""Unit tests for the MSHR file."""

import pytest

from repro.cmp.mshr import MshrFile


def test_capacity_enforced():
    m = MshrFile(2)
    assert m.allocate(1, False)
    assert m.allocate(2, False)
    assert m.full
    assert not m.allocate(3, False)
    assert m.stalls == 1


def test_merge_does_not_consume_entry():
    m = MshrFile(1)
    assert m.allocate(1, False)
    assert m.allocate(1, True)  # merge into the same block
    assert m.merges == 1
    assert len(m) == 1


def test_release_returns_merged_accesses():
    m = MshrFile(4)
    m.allocate(9, False)
    m.allocate(9, True)
    m.allocate(9, False)
    assert m.release(9) == [False, True, False]
    assert not m.outstanding(9)


def test_release_unknown_raises():
    with pytest.raises(KeyError):
        MshrFile(1).release(5)


def test_capacity_validation():
    with pytest.raises(ValueError):
        MshrFile(0)


def test_freed_entry_reusable():
    m = MshrFile(1)
    m.allocate(1, False)
    m.release(1)
    assert m.allocate(2, False)
