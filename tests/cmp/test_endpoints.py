"""Unit tests for the core and L2 bank coherence endpoints."""

import random

import pytest

from repro.cmp.address_stream import AddressStream
from repro.cmp.config import CmpConfig
from repro.cmp.endpoints import Core, L2Bank
from repro.cmp.messages import (INV_ACK, INVAL, READ_REQ, READ_RESP,
                                WRITE_ACK, WRITE_REQ)
from repro.network.flit import Packet
from repro.traffic.benchmarks import get_profile


class FakeSystem:
    """Captures sends and routes blocks to a single fake bank terminal."""

    def __init__(self):
        self.sent = []

    def bank_terminal_for(self, block):
        return 100 + block % 4

    def send(self, src, dst, msg_type, block, cycle, payload=None):
        self.sent.append((src, dst, msg_type,
                          payload if payload is not None else block))


def make_core(core_id=0):
    cfg = CmpConfig()
    stream = AddressStream(get_profile("fma3d"), core_id, 32, seed=1)
    return Core(core_id, terminal=core_id, config=cfg, stream=stream,
                rng=random.Random(0)), cfg


def fake_packet(src, dst, msg_type, payload):
    p = Packet(src, dst, 1, 0, msg_type=msg_type, payload=payload)
    return p


class TestCore:
    def test_read_miss_sends_request(self):
        core, _ = make_core()
        system = FakeSystem()
        core._issue(system, 0, block=10, is_write=False)
        assert system.sent == [(0, 100 + 10 % 4, READ_REQ, 10)]

    def test_read_hit_after_fill_is_silent(self):
        core, _ = make_core()
        system = FakeSystem()
        core._issue(system, 0, 10, False)
        core.on_message(system, fake_packet(100, 0, READ_RESP, 10), 5)
        system.sent.clear()
        core._issue(system, 6, 10, False)
        assert system.sent == []
        assert core.l1_hits == 1

    def test_write_always_reaches_network(self):
        core, _ = make_core()
        system = FakeSystem()
        core._issue(system, 0, 10, False)
        core.on_message(system, fake_packet(100, 0, READ_RESP, 10), 5)
        system.sent.clear()
        core._issue(system, 6, 10, True)  # L1 hit, but write-through
        assert system.sent[0][2] == WRITE_REQ
        assert system.sent[0][3] == (10, True)  # keeps its L1 copy

    def test_writes_coalesce_while_outstanding(self):
        core, _ = make_core()
        system = FakeSystem()
        core._issue(system, 0, 10, True)
        core._issue(system, 1, 10, True)
        assert len(system.sent) == 1

    def test_mshr_exhaustion_stalls(self):
        core, cfg = make_core()
        system = FakeSystem()
        for b in range(cfg.mshrs_per_core):
            core._issue(system, 0, b, False)
        core._issue(system, 1, 99, False)
        assert core._stalled == (99, False)

    def test_inval_clears_l1_and_acks(self):
        core, _ = make_core()
        system = FakeSystem()
        core._issue(system, 0, 10, False)
        core.on_message(system, fake_packet(100, 0, READ_RESP, 10), 5)
        core.on_message(system, fake_packet(100, 0, INVAL, 10), 9)
        assert not core.l1.contains(10)
        assert system.sent[-1][2] == INV_ACK


class TestL2Bank:
    def make_bank(self, miss_rate=0.0):
        return L2Bank(0, terminal=100, config=CmpConfig(),
                      l2_miss_rate=miss_rate, rng=random.Random(1))

    def test_read_response_after_bank_latency(self):
        bank = self.make_bank()
        system = FakeSystem()
        bank.on_message(system, fake_packet(0, 100, READ_REQ, 7), cycle=0)
        bank.tick(system, 9)
        assert system.sent == []
        bank.tick(system, 10)
        assert system.sent == [(100, 0, READ_RESP, 7)]
        assert bank.directory[7] == {0}

    def test_l2_miss_adds_memory_latency(self):
        bank = self.make_bank(miss_rate=1.0)
        system = FakeSystem()
        bank.on_message(system, fake_packet(0, 100, READ_REQ, 7), 0)
        bank.tick(system, 10)
        assert system.sent == []
        bank.tick(system, 310)
        assert system.sent[-1][2] == READ_RESP

    def test_write_with_no_sharers_acks(self):
        bank = self.make_bank()
        system = FakeSystem()
        bank.on_message(system, fake_packet(0, 100, WRITE_REQ, (7, False)),
                        0)
        bank.tick(system, 10)
        assert system.sent == [(100, 0, WRITE_ACK, 7)]

    def test_write_invalidates_sharers_then_acks(self):
        bank = self.make_bank()
        system = FakeSystem()
        # Two sharers read block 7.
        bank.on_message(system, fake_packet(1, 100, READ_REQ, 7), 0)
        bank.on_message(system, fake_packet(2, 100, READ_REQ, 7), 0)
        system.sent.clear()
        bank.on_message(system, fake_packet(3, 100, WRITE_REQ, (7, True)), 1)
        invals = [s for s in system.sent if s[2] == INVAL]
        assert {s[1] for s in invals} == {1, 2}
        # Acks arrive; only after both does the writer get its WRITE_ACK.
        bank.on_message(system, fake_packet(1, 100, INV_ACK, 7), 5)
        bank.tick(system, 50)
        assert all(s[2] != WRITE_ACK for s in system.sent)
        bank.on_message(system, fake_packet(2, 100, INV_ACK, 7), 6)
        bank.tick(system, 50)
        assert system.sent[-1] == (100, 3, WRITE_ACK, 7)
        assert bank.directory[7] == {3}

    def test_requests_behind_busy_block_are_serialized(self):
        bank = self.make_bank()
        system = FakeSystem()
        bank.on_message(system, fake_packet(1, 100, READ_REQ, 7), 0)
        bank.on_message(system, fake_packet(3, 100, WRITE_REQ, (7, False)),
                        1)
        system.sent.clear()
        # While the write waits for sharer 1's ack, a new read queues.
        bank.on_message(system, fake_packet(4, 100, READ_REQ, 7), 2)
        assert all(s[2] != READ_RESP for s in system.sent)
        bank.on_message(system, fake_packet(1, 100, INV_ACK, 7), 3)
        bank.tick(system, 60)
        kinds = [s[2] for s in system.sent]
        assert WRITE_ACK in kinds and READ_RESP in kinds

    def test_stray_ack_raises(self):
        bank = self.make_bank()
        with pytest.raises(RuntimeError):
            bank.on_message(FakeSystem(), fake_packet(1, 100, INV_ACK, 9), 0)
