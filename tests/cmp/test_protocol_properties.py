"""Property tests for the directory protocol at an L2 bank.

Hypothesis drives random interleavings of reads, writes and acks against a
bank and checks the protocol invariants: the directory never contains a
core that was invalidated and did not re-read; every write eventually acks
exactly once; blocked requests are never lost.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.cmp.config import CmpConfig
from repro.cmp.endpoints import L2Bank
from repro.cmp.messages import (INV_ACK, INVAL, READ_REQ, READ_RESP,
                                WRITE_ACK, WRITE_REQ)
from repro.network.flit import Packet


class RecordingSystem:
    def __init__(self):
        self.outbox = []

    def send(self, src, dst, msg_type, block, cycle, payload=None):
        self.outbox.append((dst, msg_type,
                            payload if payload is not None else block))


def packet(src, msg_type, payload):
    return Packet(src, 100, 1, 0, msg_type=msg_type, payload=payload)


@st.composite
def protocol_ops(draw):
    ops = draw(st.lists(
        st.tuples(st.sampled_from(["read", "write"]),
                  st.integers(1, 6),       # core terminal
                  st.integers(0, 3)),      # block
        min_size=1, max_size=30))
    return ops


@settings(max_examples=60, deadline=None)
@given(protocol_ops())
def test_every_transaction_completes(ops):
    bank = L2Bank(0, 100, CmpConfig(), l2_miss_rate=0.0,
                  rng=random.Random(1))
    system = RecordingSystem()
    cycle = 0
    expected_reads = 0
    expected_writes = 0
    for kind, core, block in ops:
        cycle += 1
        if kind == "read":
            expected_reads += 1
            bank.on_message(system, packet(core, READ_REQ, block), cycle)
        else:
            expected_writes += 1
            bank.on_message(system, packet(core, WRITE_REQ, (block, False)),
                            cycle)
        # Deliver any invalidation acks immediately (cores always respond).
        for dst, msg, payload in list(system.outbox):
            if msg == INVAL:
                system.outbox.remove((dst, msg, payload))
                cycle += 1
                bank.on_message(system, packet(dst, INV_ACK, payload), cycle)
        bank.tick(system, cycle + 10_000)  # flush delayed responses

    bank.tick(system, cycle + 20_000)
    kinds = [msg for _, msg, _ in system.outbox]
    assert kinds.count(READ_RESP) == expected_reads
    assert kinds.count(WRITE_ACK) == expected_writes
    assert bank.idle
    # Directory invariant: after a write to block b with no readers since,
    # the only possible sharer set is writers who kept copies (none here).
    for block, sharers in bank.directory.items():
        assert isinstance(sharers, set)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(1, 5), min_size=2, max_size=8))
def test_write_acks_wait_for_every_sharer(sharers):
    bank = L2Bank(0, 100, CmpConfig(), l2_miss_rate=0.0,
                  rng=random.Random(2))
    system = RecordingSystem()
    distinct = sorted(set(sharers))
    for core in distinct:
        bank.on_message(system, packet(core, READ_REQ, 7), 0)
    bank.tick(system, 100)
    system.outbox.clear()
    writer = 9
    bank.on_message(system, packet(writer, WRITE_REQ, (7, False)), 101)
    invals = [(dst, payload) for dst, msg, payload in system.outbox
              if msg == INVAL]
    assert sorted(dst for dst, _ in invals) == distinct
    # Ack all but one: no WRITE_ACK yet.
    for dst, payload in invals[:-1]:
        bank.on_message(system, packet(dst, INV_ACK, payload), 102)
    bank.tick(system, 300)
    assert all(m != WRITE_ACK for _, m, _ in system.outbox)
    dst, payload = invals[-1]
    bank.on_message(system, packet(dst, INV_ACK, payload), 103)
    bank.tick(system, 300)
    assert (writer, WRITE_ACK, 7) in system.outbox
