"""Unit tests for the flattened butterfly topology."""

import pytest

from repro.topology.fbfly import FlattenedButterfly


class TestPorts:
    def test_port_counts(self):
        topo = FlattenedButterfly(4, 4, 4)
        for r in range(topo.num_routers):
            assert topo.num_network_inports(r) == 6
            assert topo.num_network_outports(r) == 6
            assert topo.num_inports(r) == 10

    def test_port_to_row_and_column(self):
        topo = FlattenedButterfly(4, 4)
        r = topo.router_at(1, 1)
        # Row peers x=0,2,3 occupy ports 0,1,2; column peers y=0,2,3 -> 3,4,5.
        assert topo.port_to(r, topo.router_at(0, 1)) == 0
        assert topo.port_to(r, topo.router_at(2, 1)) == 1
        assert topo.port_to(r, topo.router_at(3, 1)) == 2
        assert topo.port_to(r, topo.router_at(1, 0)) == 3
        assert topo.port_to(r, topo.router_at(1, 2)) == 4
        assert topo.port_to(r, topo.router_at(1, 3)) == 5

    def test_port_to_rejects_diagonal(self):
        topo = FlattenedButterfly(4, 4)
        with pytest.raises(ValueError):
            topo.port_to(topo.router_at(0, 0), topo.router_at(1, 1))


class TestChannels:
    def test_full_row_column_connectivity(self):
        topo = FlattenedButterfly(4, 4)
        # Each router drives (kx-1)+(ky-1) channels.
        assert len(topo.channels()) == topo.num_routers * 6

    def test_express_latency_scales_with_distance(self):
        topo = FlattenedButterfly(4, 4)
        for ch in topo.channels():
            ep = ch.endpoints[0]
            sx, sy = topo.coords(ch.src_router)
            dx, dy = topo.coords(ep.router)
            assert ep.latency == abs(sx - dx) + abs(sy - dy)

    def test_channels_symmetric_ports(self):
        topo = FlattenedButterfly(3, 3)
        for ch in topo.channels():
            ep = ch.endpoints[0]
            assert topo.port_to(ep.router, ch.src_router) == ep.in_port


class TestHops:
    def test_min_hops_at_most_two(self):
        topo = FlattenedButterfly(4, 4)
        for src in range(topo.num_routers):
            for dst in range(topo.num_routers):
                assert topo.min_hops(src, dst) <= 2

    def test_min_hops_values(self):
        topo = FlattenedButterfly(4, 4)
        assert topo.min_hops(topo.router_at(0, 0), topo.router_at(3, 0)) == 1
        assert topo.min_hops(topo.router_at(0, 0), topo.router_at(3, 3)) == 2
        assert topo.min_hops(5, 5) == 0

    def test_lower_average_hops_than_mesh(self):
        from repro.topology.mesh import Mesh
        fb = FlattenedButterfly(4, 4, 4)
        mesh = Mesh(8, 8, 1)
        assert fb.average_hops() < mesh.average_hops()
