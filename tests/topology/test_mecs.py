"""Unit tests for the Multidrop Express Cube topology."""

import pytest

from repro.topology.mecs import EAST, Mecs, NORTH, SOUTH, WEST


class TestStructure:
    def test_asymmetric_port_counts(self):
        topo = Mecs(4, 4, 4)
        for r in range(topo.num_routers):
            assert topo.num_network_outports(r) == 4   # one per direction
            assert topo.num_network_inports(r) == 6    # one tap per source

    def test_drops_ordering_nearest_first(self):
        topo = Mecs(4, 4)
        r = topo.router_at(0, 0)
        drops = topo.drops(r, EAST)
        assert drops == [topo.router_at(1, 0), topo.router_at(2, 0),
                         topo.router_at(3, 0)]
        assert topo.drops(r, WEST) == []
        assert topo.drops(r, NORTH)[0] == topo.router_at(0, 1)

    def test_inport_from_unique_per_source(self):
        topo = Mecs(4, 4)
        r = topo.router_at(1, 1)
        sources = topo.row_sources = [topo.router_at(x, 1)
                                      for x in (0, 2, 3)]
        sources += [topo.router_at(1, y) for y in (0, 2, 3)]
        ports = [topo.inport_from(r, s) for s in sources]
        assert sorted(ports) == list(range(6))

    def test_inport_from_rejects_diagonal(self):
        topo = Mecs(3, 3)
        with pytest.raises(ValueError):
            topo.inport_from(topo.router_at(0, 0), topo.router_at(1, 1))


class TestChannels:
    def test_multidrop_endpoints(self):
        topo = Mecs(4, 4)
        by_src = {(ch.src_router, ch.src_port): ch for ch in topo.channels()}
        corner = topo.router_at(0, 0)
        east = by_src[(corner, EAST)]
        assert len(east.endpoints) == 3
        # Nearest drop has latency 1, farthest kx-1.
        assert [ep.latency for ep in east.endpoints] == [1, 2, 3]
        assert (corner, WEST) not in by_src  # edge: no westward channel
        assert (corner, SOUTH) not in by_src

    def test_every_endpoint_tap_matches_inport_from(self):
        topo = Mecs(3, 3)
        for ch in topo.channels():
            for ep in ch.endpoints:
                assert topo.inport_from(ep.router, ch.src_router) == \
                    ep.in_port

    def test_min_hops_at_most_two(self):
        topo = Mecs(4, 4)
        for src in range(topo.num_routers):
            for dst in range(topo.num_routers):
                assert topo.min_hops(src, dst) <= 2
