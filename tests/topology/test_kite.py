"""KiteMesh: irregular mesh with skip-2 express channels."""

import pytest

from repro.topology.kite import (EXPRESS_LATENCY, EXPRESS_SPAN, KiteMesh,
                                 X_EXPRESS_WEIGHT, X_WEIGHT)


def express_channels(topo):
    out = []
    for chan in topo.channels():
        sx, sy = topo.coords(chan.src_router)
        dx, dy = topo.coords(chan.endpoints[0].router)
        if abs(sx - dx) + abs(sy - dy) > 1:
            out.append(chan)
    return out


class TestStructure:
    def test_small_kite_degenerates_to_mesh(self):
        assert express_channels(KiteMesh(2, 2)) == []

    def test_express_channels_span_two_and_cost_two(self):
        topo = KiteMesh(4, 4)
        express = express_channels(topo)
        assert express
        for chan in express:
            sx, sy = topo.coords(chan.src_router)
            dx, dy = topo.coords(chan.endpoints[0].router)
            assert abs(sx - dx) + abs(sy - dy) == EXPRESS_SPAN
            assert chan.endpoints[0].latency == EXPRESS_LATENCY

    def test_base_links_are_latency_1(self):
        topo = KiteMesh(4, 4)
        express = {(c.src_router, c.src_port) for c in express_channels(topo)}
        for chan in topo.channels():
            if (chan.src_router, chan.src_port) not in express:
                assert chan.endpoints[0].latency == 1

    def test_express_weight_matches_spanned_base_weight(self):
        # Weight per column crossed must be equal so the minimum-weight
        # metric stays Manhattan and express wins only on hop count.
        assert X_EXPRESS_WEIGHT == EXPRESS_SPAN * X_WEIGHT

    def test_every_row_has_x_express_when_wide_enough(self):
        topo = KiteMesh(5, 3)
        rows = {topo.coords(c.src_router)[1]
                for c in express_channels(topo)
                if topo.coords(c.src_router)[1]
                == topo.coords(c.endpoints[0].router)[1]}
        assert rows == set(range(3))

    def test_no_input_port_wired_twice(self):
        topo = KiteMesh(5, 4)
        seen = set()
        for chan in topo.channels():
            ep = chan.endpoints[0]
            assert (ep.router, ep.in_port) not in seen
            seen.add((ep.router, ep.in_port))


class TestGeometry:
    def test_coords_roundtrip(self):
        topo = KiteMesh(4, 3)
        for r in range(topo.num_routers):
            x, y = topo.coords(r)
            assert topo.router_at(x, y) == r

    def test_min_hops_uses_express(self):
        topo = KiteMesh(5, 2)
        # (0,0) -> (4,0): two express hops, not four base hops.
        assert topo.min_hops(topo.router_at(0, 0),
                             topo.router_at(4, 0)) == 2


class TestValidation:
    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            KiteMesh(1, 4)
