"""ChipletTopology: K sub-meshes star-connected to a central IO die."""

import pytest

from repro.topology.chiplet import BOUNDARY_WEIGHT, ChipletTopology


class TestStructure:
    def test_router_count_includes_io_die(self):
        topo = ChipletTopology(2, 2, chiplets=4)
        assert topo.num_routers == 4 * 4 + 1
        assert topo.io_router == 16

    def test_boundary_links_connect_gateways_to_io(self):
        topo = ChipletTopology(2, 2, chiplets=3, chiplet_link_latency=5)
        boundary = [c for c in topo.channels()
                    if topo.io_router in (c.src_router,
                                          c.endpoints[0].router)]
        # one duplex pair per die
        assert len(boundary) == 2 * 3
        for chan in boundary:
            assert chan.endpoints[0].latency == 5
        sources = {c.src_router for c in boundary}
        assert sources == {topo.gateway(d) for d in range(3)} | {
            topo.io_router}

    def test_intra_die_links_are_latency_1(self):
        topo = ChipletTopology(2, 2, chiplets=2, chiplet_link_latency=8)
        internal = [c for c in topo.channels()
                    if topo.io_router not in (c.src_router,
                                              c.endpoints[0].router)]
        assert internal
        assert all(c.endpoints[0].latency == 1 for c in internal)

    def test_boundary_weight_heavier_than_mesh_links(self):
        topo = ChipletTopology(2, 2, chiplets=2)
        gw = topo.gateway(0)
        weights = {c.weight for c in topo.out_channels(gw)}
        assert BOUNDARY_WEIGHT in weights
        assert max(w for w in weights if w != BOUNDARY_WEIGHT) \
            < BOUNDARY_WEIGHT

    def test_die_of_and_local_coords(self):
        topo = ChipletTopology(3, 2, chiplets=2)
        assert topo.die_of(0) == 0
        assert topo.die_of(6) == 1
        assert topo.die_of(topo.io_router) is None
        assert topo.local_coords(topo.router_id(1, 2, 1)) == (2, 1)
        with pytest.raises(ValueError, match="IO router"):
            topo.local_coords(topo.io_router)

    def test_no_input_port_wired_twice(self):
        topo = ChipletTopology(2, 2, chiplets=4)
        seen = set()
        for chan in topo.channels():
            ep = chan.endpoints[0]
            key = (ep.router, ep.in_port)
            assert key not in seen
            seen.add(key)

    def test_io_router_has_terminals_like_any_other(self):
        topo = ChipletTopology(2, 2, concentration=2, chiplets=2)
        assert topo.num_terminals == 9 * 2
        assert topo.terminal_router(topo.num_terminals - 1) == topo.io_router


class TestRouteClasses:
    def test_same_die_is_class_0_cross_die_class_1(self):
        topo = ChipletTopology(2, 2, chiplets=2)
        assert topo.num_route_classes == 2
        assert topo.route_class(0, 3) == 0
        assert topo.route_class(0, 4) == 1
        assert topo.route_class(4, topo.io_router) == 1
        assert topo.route_class(topo.io_router, topo.io_router) == 0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(kx=0), dict(ky=0), dict(chiplets=0),
        dict(chiplet_link_latency=0)])
    def test_bad_parameters_rejected(self, kwargs):
        params = dict(kx=2, ky=2, chiplets=2, chiplet_link_latency=4)
        params.update(kwargs)
        with pytest.raises(ValueError):
            ChipletTopology(**params)
