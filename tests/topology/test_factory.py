"""Topology factory and shared base-class behaviour."""

import pytest

from repro.topology import (ConcentratedMesh, FlattenedButterfly, Mecs, Mesh,
                            make_topology)


def test_factory_kinds():
    assert isinstance(make_topology("mesh", 4, 4), Mesh)
    assert isinstance(make_topology("cmesh", 4, 4, 4), ConcentratedMesh)
    assert isinstance(make_topology("fbfly", 4, 4, 4), FlattenedButterfly)
    assert isinstance(make_topology("mecs", 4, 4, 4), Mecs)


def test_factory_unknown():
    with pytest.raises(ValueError):
        make_topology("torus", 4, 4)


@pytest.mark.parametrize("name,conc", [
    ("mesh", 1), ("cmesh", 4), ("fbfly", 4), ("mecs", 4)])
def test_terminal_port_layout(name, conc):
    topo = make_topology(name, 4, 4, conc)
    for t in range(topo.num_terminals):
        r = topo.terminal_router(t)
        inj = topo.injection_port(t)
        ej = topo.ejection_port(t)
        assert topo.num_network_inports(r) <= inj < topo.num_inports(r)
        assert topo.num_network_outports(r) <= ej < topo.num_outports(r)


@pytest.mark.parametrize("name,conc", [
    ("mesh", 1), ("cmesh", 4), ("fbfly", 4), ("mecs", 4)])
def test_no_input_port_wired_twice(name, conc):
    """Every channel endpoint must land on a distinct (router, port)."""
    topo = make_topology(name, 4, 4, conc)
    seen = set()
    for ch in topo.channels():
        for ep in ch.endpoints:
            key = (ep.router, ep.in_port)
            assert key not in seen, key
            seen.add(key)
            assert ep.latency >= 1
