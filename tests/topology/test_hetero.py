"""HeterogeneousTopology: explicit graphs with per-channel latency/weight."""

import pytest

from repro.topology.base import Channel
from repro.topology.hetero import HeterogeneousTopology


def ring(n=4, latency=1, weight=1):
    topo = HeterogeneousTopology(n)
    for r in range(n):
        topo.add_duplex(r, (r + 1) % n, latency=latency, weight=weight)
    return topo


class TestConstruction:
    def test_ports_assigned_in_registration_order(self):
        topo = HeterogeneousTopology(3)
        a = topo.add_channel(0, 1)
        b = topo.add_channel(0, 2)
        c = topo.add_channel(2, 1)
        assert (a.src_port, a.dst_port) == (0, 0)
        assert (b.src_port, b.dst_port) == (1, 0)
        assert (c.src_port, c.dst_port) == (0, 1)
        assert topo.num_network_outports(0) == 2
        assert topo.num_network_inports(1) == 2
        assert topo.num_network_inports(0) == 0

    def test_channels_carry_latency(self):
        topo = HeterogeneousTopology(2)
        topo.add_channel(0, 1, latency=7, weight=3)
        (chan,) = topo.channels()
        assert isinstance(chan, Channel)
        assert chan.endpoints[0].latency == 7
        assert topo.link_weight(0, 0) == 3

    def test_duplex_registers_both_directions(self):
        topo = HeterogeneousTopology(2)
        topo.add_duplex(0, 1, latency=2)
        assert topo.num_network_outports(0) == 1
        assert topo.num_network_outports(1) == 1
        assert {(c.src_router, c.endpoints[0].router)
                for c in topo.channels()} == {(0, 1), (1, 0)}

    @pytest.mark.parametrize("kwargs", [
        dict(latency=0), dict(weight=0)])
    def test_invalid_channel_parameters_rejected(self, kwargs):
        topo = HeterogeneousTopology(2)
        with pytest.raises(ValueError):
            topo.add_channel(0, 1, **kwargs)

    def test_self_channel_rejected(self):
        with pytest.raises(ValueError, match="self-channel"):
            HeterogeneousTopology(2).add_channel(1, 1)

    def test_out_of_range_router_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            HeterogeneousTopology(2).add_channel(0, 2)


class TestTerminals:
    def test_terminal_ports_follow_network_ports(self):
        topo = HeterogeneousTopology(2, concentration=2)
        topo.add_duplex(0, 1)
        # network inport count is 1, so terminals use ports 1 and 2.
        assert topo.injection_port(0) == 1
        assert topo.injection_port(1) == 2
        assert topo.ejection_port(2) == 1
        assert topo.num_terminals == 4


class TestDistances:
    def test_min_hops_on_ring(self):
        topo = ring(6)
        assert topo.min_hops(0, 3) == 3
        assert topo.min_hops(0, 5) == 1
        assert topo.min_hops(2, 2) == 0

    def test_min_hops_cache_invalidated_by_new_channel(self):
        topo = ring(6)
        assert topo.min_hops(0, 3) == 3
        topo.add_duplex(0, 3)
        assert topo.min_hops(0, 3) == 1

    def test_unreachable_router_raises(self):
        topo = HeterogeneousTopology(3)
        topo.add_channel(0, 1)
        with pytest.raises(ValueError, match="unreachable"):
            topo.min_hops(0, 2)

    def test_average_hops_runs(self):
        assert ring(4).average_hops() > 0


class TestRoutingHooks:
    def test_single_route_class_by_default(self):
        topo = ring(4)
        assert topo.num_route_classes == 1
        assert topo.route_class(0, 3) == 0
