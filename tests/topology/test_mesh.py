"""Unit tests for mesh and concentrated mesh topologies."""

import pytest

from repro.topology.mesh import (EAST, NORTH, SOUTH, WEST, ConcentratedMesh,
                                 Mesh)


class TestGeometry:
    def test_coords_roundtrip(self):
        topo = Mesh(4, 3)
        for r in range(topo.num_routers):
            x, y = topo.coords(r)
            assert topo.router_at(x, y) == r

    def test_coords_out_of_range(self):
        topo = Mesh(2, 2)
        with pytest.raises(ValueError):
            topo.coords(4)
        with pytest.raises(ValueError):
            topo.router_at(2, 0)

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            Mesh(1, 4)

    def test_neighbors(self):
        topo = Mesh(3, 3)
        center = topo.router_at(1, 1)
        assert topo.neighbor(center, EAST) == topo.router_at(2, 1)
        assert topo.neighbor(center, WEST) == topo.router_at(0, 1)
        assert topo.neighbor(center, NORTH) == topo.router_at(1, 2)
        assert topo.neighbor(center, SOUTH) == topo.router_at(1, 0)

    def test_edges_have_no_neighbor(self):
        topo = Mesh(3, 3)
        assert topo.neighbor(topo.router_at(0, 0), WEST) is None
        assert topo.neighbor(topo.router_at(0, 0), SOUTH) is None
        assert topo.neighbor(topo.router_at(2, 2), EAST) is None
        assert topo.neighbor(topo.router_at(2, 2), NORTH) is None

    def test_min_hops_is_manhattan(self):
        topo = Mesh(4, 4)
        assert topo.min_hops(topo.router_at(0, 0), topo.router_at(3, 2)) == 5
        assert topo.min_hops(5, 5) == 0


class TestChannels:
    def test_channel_count(self):
        topo = Mesh(4, 4)
        # 2 directed channels per adjacent pair: 2 * (3*4 + 3*4).
        assert len(topo.channels()) == 48

    def test_channels_land_on_facing_port(self):
        topo = Mesh(3, 2)
        for ch in topo.channels():
            assert len(ch.endpoints) == 1
            ep = ch.endpoints[0]
            assert ep.latency == 1
            assert topo.neighbor(ch.src_router, ch.src_port) == ep.router
            assert Mesh.opposite(ch.src_port) == ep.in_port

    def test_every_nonedge_port_wired_once(self):
        topo = Mesh(3, 3)
        seen = set()
        for ch in topo.channels():
            key = (ch.src_router, ch.src_port)
            assert key not in seen
            seen.add(key)


class TestTerminals:
    def test_single_concentration(self):
        topo = Mesh(4, 4)
        assert topo.num_terminals == 16
        assert topo.terminal_router(9) == 9
        assert topo.injection_port(9) == 4
        assert topo.ejection_port(9) == 4

    def test_concentrated(self):
        topo = ConcentratedMesh(4, 4, 4)
        assert topo.num_terminals == 64
        assert topo.terminal_router(0) == 0
        assert topo.terminal_router(7) == 1
        assert topo.injection_port(5) == 4 + 1
        assert topo.num_inports(0) == 8
        assert topo.num_outports(0) == 8

    def test_cmesh_requires_concentration(self):
        with pytest.raises(ValueError):
            ConcentratedMesh(4, 4, 1)

    def test_terminal_out_of_range(self):
        with pytest.raises(ValueError):
            Mesh(2, 2).terminal_router(4)

    def test_average_hops_positive(self):
        assert 0 < Mesh(3, 3).average_hops() < 4
