"""Unit and integration tests for the EVC baseline."""

import pytest

from repro.evc import EvcMesh, EvcRouting, build_evc_network
from repro.evc.topology import EXPRESS_SPAN
from repro.network.config import NetworkConfig, PSEUDO
from repro.network.flit import Packet
from repro.topology.mesh import EAST, NORTH


class TestTopology:
    def test_port_counts(self):
        topo = EvcMesh(8, 8)
        assert topo.num_network_inports(0) == 8
        assert topo.num_network_outports(0) == 8

    def test_express_neighbor(self):
        topo = EvcMesh(8, 8)
        assert topo.express_neighbor(topo.router_at(0, 0), EAST) == \
            topo.router_at(2, 0)
        assert topo.express_neighbor(topo.router_at(7, 0), EAST) is None
        assert topo.express_neighbor(topo.router_at(6, 0), EAST) is None

    def test_express_channel_latency_covers_latch(self):
        topo = EvcMesh(4, 4)
        express = [ch for ch in topo.channels() if ch.src_port >= 4]
        assert express
        for ch in express:
            assert ch.endpoints[0].latency == EXPRESS_SPAN + 1

    def test_normal_channels_unchanged(self):
        topo = EvcMesh(4, 4)
        normal = [ch for ch in topo.channels() if ch.src_port < 4]
        assert all(ch.endpoints[0].latency == 1 for ch in normal)

    def test_span_validation(self):
        with pytest.raises(ValueError):
            EvcMesh(4, 4, span=1)


class TestRouting:
    def test_express_taken_when_far(self):
        topo = EvcMesh(8, 8)
        routing = EvcRouting(topo)
        p = Packet(0, 5, 1, 0)  # 5 hops east
        port, _ = routing.route(topo.router_at(0, 0), p)
        assert port == topo.express_port(EAST)

    def test_normal_when_one_hop_left(self):
        topo = EvcMesh(8, 8)
        routing = EvcRouting(topo)
        p = Packet(0, 1, 1, 0)
        assert routing.route(topo.router_at(0, 0), p) == (EAST, 0)

    def test_y_dimension_after_x(self):
        topo = EvcMesh(8, 8)
        routing = EvcRouting(topo)
        p = Packet(0, 16, 1, 0)  # straight north 2 hops
        port, _ = routing.route(topo.router_at(0, 0), p)
        assert port == topo.express_port(NORTH)

    def test_vc_partition(self):
        topo = EvcMesh(4, 4)
        routing = EvcRouting(topo)
        p = Packet(0, 5, 1, 0)
        assert routing.vc_limits(p, 4, out_port=0) == (0, 2)    # normal
        assert routing.vc_limits(p, 4, out_port=5) == (2, 4)    # express
        assert routing.vc_limits(p, 4, out_port=-1) == (0, 2)   # injection

    def test_requires_evc_mesh(self):
        from repro.topology.mesh import Mesh
        with pytest.raises(TypeError):
            EvcRouting(Mesh(4, 4))


class TestNetwork:
    def test_delivery_with_express_paths(self):
        net = build_evc_network(8, 8, seed=1)
        packets = [Packet(0, 56, 5, 0), Packet(7, 0, 1, 0),
                   Packet(9, 54, 5, 0)]
        for p in packets:
            net.inject(p)
        net.drain()
        assert all(p.eject_cycle >= 0 for p in packets)
        net.check_invariants()

    def test_express_paths_cut_latency(self):
        def latency(builder):
            net = builder()
            p = Packet(0, 7, 1, 0)  # 7 hops east on a mesh
            net.inject(p)
            net.drain()
            return p.network_latency
        from repro.network.simulator import build_network
        from repro.topology.mesh import Mesh
        evc = latency(lambda: build_evc_network(8, 8, seed=1))
        mesh = latency(lambda: build_network(Mesh(8, 8), routing="xy"))
        assert evc < mesh

    def test_pseudo_circuit_config_rejected(self):
        with pytest.raises(ValueError):
            build_evc_network(4, 4, config=NetworkConfig(pseudo=PSEUDO))
