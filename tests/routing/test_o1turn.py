"""Unit tests for O1TURN routing."""

import random

import pytest

from repro.network.flit import Packet
from repro.routing.o1turn import O1TurnRouting
from repro.topology.mesh import Mesh, NORTH, EAST


def test_choice_set_at_injection():
    routing = O1TurnRouting(Mesh(4, 4))
    rng = random.Random(1)
    choices = set()
    for _ in range(50):
        p = Packet(0, 10, 1, 0)
        routing.on_inject(p, rng)
        choices.add(p.route_choice)
    assert choices == {0, 1}


def test_choice_roughly_balanced():
    routing = O1TurnRouting(Mesh(4, 4))
    rng = random.Random(7)
    picks = []
    for _ in range(400):
        p = Packet(0, 10, 1, 0)
        routing.on_inject(p, rng)
        picks.append(p.route_choice)
    share = sum(picks) / len(picks)
    assert 0.4 < share < 0.6


def test_vc_classes_are_disjoint_halves():
    routing = O1TurnRouting(Mesh(4, 4))
    xy = Packet(0, 10, 1, 0)
    yx = Packet(0, 10, 1, 0)
    xy.route_choice, yx.route_choice = 0, 1
    assert routing.vc_limits(xy, 4) == (0, 2)
    assert routing.vc_limits(yx, 4) == (2, 4)


def test_requires_two_vcs():
    routing = O1TurnRouting(Mesh(4, 4))
    with pytest.raises(ValueError):
        routing.vc_limits(Packet(0, 1, 1, 0), 1)


def test_route_follows_choice():
    topo = Mesh(4, 4)
    routing = O1TurnRouting(topo)
    p = Packet(0, 10, 1, 0)
    p.route_choice = 0
    assert routing.route(topo.router_at(0, 0), p)[0] == EAST
    p.route_choice = 1
    assert routing.route(topo.router_at(0, 0), p)[0] == NORTH
