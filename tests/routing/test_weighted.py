"""Weight-ordered routing: minimality, determinism, verified deadlock
freedom (with a Hypothesis sweep over random irregular graphs)."""

import heapq
import random

import pytest

from repro.routing import make_routing
from repro.routing.weighted import (RoutingDeadlockError,
                                    WeightOrderedRouting,
                                    channel_dependency_graphs,
                                    find_dependency_cycle, _walk)
from repro.topology import make_topology
from repro.topology.chiplet import ChipletTopology
from repro.topology.hetero import HeterogeneousTopology
from repro.topology.kite import KiteMesh
from repro.topology.mesh import Mesh


def min_weight_to(topo, dst):
    """Independent single-criterion Dijkstra: cheapest weight to ``dst``."""
    inf = float("inf")
    dist = [inf] * topo.num_routers
    dist[dst] = 0
    reverse = [[] for _ in range(topo.num_routers)]
    for r in range(topo.num_routers):
        for c in topo.out_channels(r):
            reverse[c.dst_router].append((r, c.weight))
    heap = [(0, dst)]
    while heap:
        d, r = heapq.heappop(heap)
        if d > dist[r]:
            continue
        for prev, w in reverse[r]:
            if d + w < dist[prev]:
                dist[prev] = d + w
                heapq.heappush(heap, (d + w, prev))
    return dist


def path_weight(topo, routing, src, dst):
    return sum(topo.out_channels(r)[p].weight
               for r, p in _walk(routing, src, dst))


class TestMinimality:
    @pytest.mark.parametrize("topo", [
        ChipletTopology(2, 2, chiplets=4, chiplet_link_latency=4),
        ChipletTopology(3, 2, chiplets=2, chiplet_link_latency=8),
        KiteMesh(4, 4), KiteMesh(5, 3),
    ], ids=["chiplet4x2x2", "chiplet2x3x2", "kite4x4", "kite5x3"])
    def test_paths_achieve_minimum_weight(self, topo):
        routing = WeightOrderedRouting(topo)
        for dst in range(topo.num_routers):
            oracle = min_weight_to(topo, dst)
            for src in range(topo.num_routers):
                if src != dst:
                    assert path_weight(topo, routing, src, dst) \
                        == oracle[src], (src, dst)

    def test_mesh_weights_reproduce_xy_order(self):
        """With x weight 1 / y weight 2 on a plain mesh graph, the walk
        is dimension-ordered: all x movement before any y movement."""
        mesh = Mesh(4, 4, 1)
        topo = HeterogeneousTopology(mesh.num_routers)
        for y in range(4):
            for x in range(4):
                r = mesh.router_at(x, y)
                if x + 1 < 4:
                    topo.add_duplex(r, mesh.router_at(x + 1, y), weight=1)
                if y + 1 < 4:
                    topo.add_duplex(r, mesh.router_at(x, y + 1), weight=2)
        routing = WeightOrderedRouting(topo)
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                moved_y = False
                for r, port in _walk(routing, src, dst):
                    nxt = topo.out_channels(r)[port].dst_router
                    if (nxt % 4) != (r % 4):      # x changed
                        assert not moved_y, (src, dst)
                    else:
                        moved_y = True


class TestChipletClasses:
    def test_same_die_paths_avoid_boundary_links(self):
        topo = ChipletTopology(3, 3, chiplets=3, chiplet_link_latency=8)
        routing = WeightOrderedRouting(topo)
        for die in range(3):
            routers = [topo.router_id(die, x, y)
                       for x in range(3) for y in range(3)]
            for src in routers:
                for dst in routers:
                    if src != dst:
                        for r, _ in _walk(routing, src, dst):
                            assert r != topo.io_router

    def test_vc_windows_disjoint_per_class(self):
        routing = WeightOrderedRouting(ChipletTopology(2, 2, chiplets=2))
        assert routing.num_route_choices == 2
        lo0, hi0 = routing.vc_range_for_choice(0, 4)
        lo1, hi1 = routing.vc_range_for_choice(1, 4)
        assert (lo0, hi0) == (0, 2)
        assert (lo1, hi1) == (2, 4)

    def test_too_few_vcs_rejected(self):
        routing = WeightOrderedRouting(ChipletTopology(2, 2, chiplets=2))
        with pytest.raises(ValueError, match="needs >= 2 VCs"):
            routing.vc_range_for_choice(0, 1)

    def test_single_class_uses_full_vc_range(self):
        routing = WeightOrderedRouting(KiteMesh(4, 4))
        assert routing.vc_range_for_choice(0, 4) == (0, 4)


class TestVerification:
    def test_unidirectional_ring_is_refused(self):
        """A one-way ring routes every pair around the loop: the single
        channel-dependency graph is one big cycle and construction must
        fail loudly."""
        topo = HeterogeneousTopology(4)
        for r in range(4):
            topo.add_channel(r, (r + 1) % 4)
        with pytest.raises(RoutingDeadlockError, match="cycle"):
            WeightOrderedRouting(topo)

    def test_disconnected_graph_is_refused(self):
        topo = HeterogeneousTopology(3)
        topo.add_duplex(0, 1)
        with pytest.raises(ValueError, match="not connected"):
            WeightOrderedRouting(topo)

    def test_dependency_graphs_cover_all_route_classes(self):
        topo = ChipletTopology(2, 2, chiplets=2)
        graphs = channel_dependency_graphs(WeightOrderedRouting(topo))
        assert set(graphs) == {0, 1}
        assert all(graphs.values())

    def test_wrong_topology_type_rejected(self):
        with pytest.raises(TypeError, match="HeterogeneousTopology"):
            WeightOrderedRouting(Mesh(4, 4, 1))

    def test_factory_builds_weighted(self):
        topo = make_topology("kite", 4, 4, 1)
        assert make_routing("weighted", topo).name == "weighted"


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@st.composite
def connected_graphs(draw):
    """Random connected duplex graph with random weights/latencies."""
    n = draw(st.integers(3, 8))
    rng = random.Random(draw(st.integers(0, 10_000)))
    topo = HeterogeneousTopology(n)
    edges = set()
    order = list(range(1, n))
    rng.shuffle(order)
    for r in order:                      # random spanning tree first
        other = rng.randrange(0, r)
        edges.add((min(r, other), max(r, other)))
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        a, b = rng.sample(range(n), 2)
        edges.add((min(a, b), max(a, b)))
    for a, b in sorted(edges):
        topo.add_duplex(a, b, latency=rng.randint(1, 4),
                        weight=rng.randint(1, 4))
    return topo


@settings(max_examples=60, deadline=None)
@given(topo=connected_graphs())
def test_random_graphs_route_minimally_or_refuse(topo):
    """Over random irregular graphs the constructor either refuses with
    ``RoutingDeadlockError`` (tables would admit a channel-dependency
    cycle) or yields tables that are loop-free, weight-minimal for every
    pair, and verifiably acyclic."""
    try:
        routing = WeightOrderedRouting(topo)
    except RoutingDeadlockError:
        return
    assert find_dependency_cycle(routing) is None
    for dst in range(topo.num_routers):
        oracle = min_weight_to(topo, dst)
        for src in range(topo.num_routers):
            if src != dst:
                assert path_weight(topo, routing, src, dst) == oracle[src]


@settings(max_examples=25, deadline=None)
@given(kx=st.integers(1, 4), ky=st.integers(1, 4),
       chiplets=st.integers(1, 5), latency=st.integers(1, 8))
def test_chiplet_family_is_always_deadlock_free(kx, ky, chiplets, latency):
    topo = ChipletTopology(kx, ky, chiplets=chiplets,
                           chiplet_link_latency=latency)
    WeightOrderedRouting(topo)     # raises RoutingDeadlockError if cyclic


@settings(max_examples=25, deadline=None)
@given(kx=st.integers(2, 7), ky=st.integers(2, 7))
def test_kite_family_is_always_deadlock_free(kx, ky):
    WeightOrderedRouting(KiteMesh(kx, ky))
