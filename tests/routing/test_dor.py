"""Unit and property tests for dimension-order routing."""

import pytest
from hypothesis import given, strategies as st

from repro.network.flit import Packet
from repro.routing.dor import DimensionOrderRouting, xy_routing, yx_routing
from repro.topology.fbfly import FlattenedButterfly
from repro.topology.mecs import Mecs
from repro.topology.mesh import EAST, Mesh, NORTH, SOUTH, WEST


def pkt(src, dst):
    return Packet(src, dst, 1, 0)


class TestMeshXY:
    def test_corrects_x_first(self):
        topo = Mesh(4, 4)
        routing = xy_routing(topo)
        # From (0,0) to (2,2): east first.
        assert routing.route(topo.router_at(0, 0), pkt(0, 10)) == (EAST, 0)
        # Once x matches, go north.
        assert routing.route(topo.router_at(2, 0), pkt(0, 10)) == (NORTH, 0)

    def test_west_and_south(self):
        topo = Mesh(4, 4)
        routing = xy_routing(topo)
        assert routing.route(topo.router_at(3, 3), pkt(15, 0)) == (WEST, 0)
        assert routing.route(topo.router_at(0, 3), pkt(15, 0)) == (SOUTH, 0)

    def test_ejection_at_destination(self):
        topo = Mesh(4, 4)
        routing = xy_routing(topo)
        port, drop = routing.route(10, pkt(0, 10))
        assert port == topo.ejection_port(10) and drop == 0

    def test_yx_corrects_y_first(self):
        topo = Mesh(4, 4)
        routing = yx_routing(topo)
        assert routing.route(topo.router_at(0, 0), pkt(0, 10)) == (NORTH, 0)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            DimensionOrderRouting(Mesh(2, 2), "zigzag")

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_always_reaches_destination(self, src, dst):
        """Property: following XY hop-by-hop terminates at the dst router
        within the Manhattan distance."""
        if src == dst:
            return
        topo = Mesh(4, 4)
        routing = xy_routing(topo)
        packet = pkt(src, dst)
        router = topo.terminal_router(src)
        for _ in range(topo.min_hops(router, topo.terminal_router(dst))):
            port, _ = routing.route(router, packet)
            assert port < 4
            router = topo.neighbor(router, port)
        assert router == topo.terminal_router(dst)


class TestFbflyRouting:
    def test_two_hops_max(self):
        topo = FlattenedButterfly(4, 4, 1)
        routing = xy_routing(topo)
        src_router = topo.router_at(0, 0)
        dst = topo.router_at(3, 2)  # terminal == router with conc 1
        port, drop = routing.route(src_router, pkt(0, dst))
        assert drop == 0
        # First hop lands in the destination column, same row.
        assert port == topo.port_to(src_router, topo.router_at(3, 0))

    def test_second_dimension(self):
        topo = FlattenedButterfly(4, 4, 1)
        routing = xy_routing(topo)
        mid = topo.router_at(3, 0)
        port, _ = routing.route(mid, pkt(0, topo.router_at(3, 2)))
        assert port == topo.port_to(mid, topo.router_at(3, 2))


class TestMecsRouting:
    def test_drop_index_is_distance_minus_one(self):
        topo = Mecs(4, 4, 1)
        routing = xy_routing(topo)
        src = topo.router_at(0, 1)
        port, drop = routing.route(src, pkt(src, topo.router_at(3, 1)))
        assert port == EAST and drop == 2

    def test_vertical_drop(self):
        topo = Mecs(4, 4, 1)
        routing = xy_routing(topo)
        src = topo.router_at(2, 3)
        port, drop = routing.route(src, pkt(0, topo.router_at(2, 1)))
        assert port == SOUTH and drop == 1


def test_route_choice_flips_order():
    topo = Mesh(4, 4)
    routing = xy_routing(topo)
    p = pkt(0, 10)
    p.route_choice = 1  # O1TURN YX leg
    assert routing.route(topo.router_at(0, 0), p) == (NORTH, 0)
