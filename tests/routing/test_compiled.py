"""Compiled routing tables must be indistinguishable from dynamic route().

The hot path trusts ``route_table[router][route_choice][dst]`` completely —
a single wrong entry would silently misroute packets while every unit test
of the dynamic algorithms keeps passing. This locks the table to the
dynamic path: for every topology x tabulable algorithm, every (router, dst,
route_choice) entry must equal what ``route()`` returns for a live packet,
and the folded-in VC window must equal ``vc_limits``. Non-tabulable
algorithms (EVC) must compile to None and keep running dynamically.
"""

import pytest

from repro.harness.experiment import (ExperimentConfig, build_network,
                                      run_experiment)
from repro.network.flit import Packet
from repro.routing import (O1TurnRouting, compile_routing, make_routing,
                           xy_routing, yx_routing)
from repro.topology import make_topology

NUM_VCS = 4

TOPOLOGIES = [
    ("mesh", 3, 3, 1),
    ("mesh", 2, 4, 2),
    ("cmesh", 2, 2, 4),
    ("fbfly", 2, 2, 4),
    ("mecs", 2, 2, 4),
]

ALGORITHMS = ["xy", "yx", "o1turn"]


def _packet(dst: int, route_choice: int, num_terminals: int) -> Packet:
    src = (dst + 1) % num_terminals  # any src != dst; routing ignores it
    packet = Packet(src=src, dst=dst, size=1, create_cycle=0)
    packet.route_choice = route_choice
    return packet


@pytest.mark.parametrize("name,kx,ky,conc", TOPOLOGIES,
                         ids=[f"{n}{kx}x{ky}c{c}" for n, kx, ky, c
                              in TOPOLOGIES])
@pytest.mark.parametrize("algo", ALGORITHMS)
def test_table_matches_dynamic_route(name, kx, ky, conc, algo):
    topology = make_topology(name, kx, ky, conc)
    routing = make_routing(algo, topology)
    assert routing.tabulable
    compiled = compile_routing(routing, topology, NUM_VCS)
    assert compiled is not None
    assert compiled.num_route_choices == routing.num_route_choices
    for router in range(topology.num_routers):
        table = compiled.router_table(router)
        for choice in range(routing.num_route_choices):
            per_dst = table[choice]
            assert len(per_dst) == topology.num_terminals
            for dst in range(topology.num_terminals):
                packet = _packet(dst, choice, topology.num_terminals)
                out_port, drop = routing.route(router, packet)
                lo, hi = routing.vc_limits(packet, NUM_VCS, out_port)
                assert per_dst[dst] == (out_port, drop, lo, hi), (
                    f"{name} {algo} router={router} dst={dst} "
                    f"choice={choice}")


@pytest.mark.parametrize("make", [xy_routing, yx_routing, O1TurnRouting])
def test_vc_ranges_match_vc_limits(make):
    topology = make_topology("mesh", 3, 3, 1)
    routing = make(topology)
    compiled = compile_routing(routing, topology, NUM_VCS)
    for choice in range(routing.num_route_choices):
        assert (compiled.vc_ranges[choice]
                == routing.vc_range_for_choice(choice, NUM_VCS))


class TestNonTabulable:
    def test_evc_compiles_to_none(self):
        cfg = ExperimentConfig(topology="evc_mesh", kx=4, ky=4,
                               concentration=1, pattern="uniform")
        net = build_network(cfg)
        assert net.routing.name == "evc_xy"
        assert not net.routing.tabulable
        assert net.compiled_routing is None

    def test_evc_network_still_routes_dynamically(self):
        cfg = ExperimentConfig(topology="evc_mesh", kx=4, ky=4,
                               concentration=1, pattern="uniform",
                               rate=0.05, synth_cycles=200, synth_warmup=40)
        res = run_experiment(cfg, use_cache=False)
        assert res.packets > 0
