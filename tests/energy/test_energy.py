"""Unit tests for the Orion-style energy model (Table II, Fig. 11)."""

import pytest

from repro.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.metrics.stats import NetworkStats


class TestTable2:
    def test_component_shares_match_paper(self):
        shares = {name: share for name, (_, share)
                  in DEFAULT_ENERGY_MODEL.component_breakdown().items()}
        assert shares["buffer"] == pytest.approx(0.234, abs=0.002)
        assert shares["crossbar"] == pytest.approx(0.7622, abs=0.002)
        assert shares["arbiter"] == pytest.approx(0.0024, abs=0.001)

    def test_crossbar_value_from_table(self):
        pj, _ = DEFAULT_ENERGY_MODEL.component_breakdown()["crossbar"]
        assert pj == pytest.approx(6.38)

    def test_per_hop_total(self):
        model = DEFAULT_ENERGY_MODEL
        assert model.per_hop_baseline_pj() == pytest.approx(
            0.98 * 2 + 6.38 + 0.02)


class TestAccounting:
    def test_router_energy_from_counts(self):
        stats = NetworkStats()
        stats.buffer_writes = 10
        stats.buffer_reads = 8
        stats.flit_hops = 12
        stats.sa_arbitrations = 9
        energy = DEFAULT_ENERGY_MODEL.router_energy(stats)
        assert energy["buffer"] == pytest.approx(18 * 0.98)
        assert energy["crossbar"] == pytest.approx(12 * 6.38)
        assert energy["arbiter"] == pytest.approx(9 * 0.02)
        assert energy["total"] == pytest.approx(
            energy["buffer"] + energy["crossbar"] + energy["arbiter"])

    def test_bypassed_flits_save_buffer_energy(self):
        """A flit hop with buffer bypass charges the crossbar only."""
        base, bypass = NetworkStats(), NetworkStats()
        for s in (base, bypass):
            s.flit_hops = 100
        base.buffer_writes = base.buffer_reads = 100
        base.sa_arbitrations = 100
        bypass.buffer_writes = bypass.buffer_reads = 60   # 40% bypassed
        bypass.sa_arbitrations = 60
        model = DEFAULT_ENERGY_MODEL
        assert model.energy_per_flit_hop(bypass) < \
            model.energy_per_flit_hop(base)

    def test_zero_hops(self):
        assert DEFAULT_ENERGY_MODEL.energy_per_flit_hop(NetworkStats()) == 0

    def test_custom_model(self):
        model = EnergyModel(buffer_write_pj=1, buffer_read_pj=1,
                            crossbar_pj=2, arbiter_pj=1)
        assert model.per_hop_baseline_pj() == 5
