"""Probe attachment: null object by default, full fan-out when bound."""

from repro.instrument import CompositeProbe, Probe
from repro.network.config import PSEUDO_SB, NetworkConfig
from repro.network.simulator import build_network
from repro.topology import make_topology
from repro.traffic.synthetic import SyntheticTraffic


def small_net(probe=None):
    topo = make_topology("mesh", 4, 4, 1)
    config = NetworkConfig(num_vcs=2, buffer_depth=2, pseudo=PSEUDO_SB)
    return build_network(topo, config=config, seed=3, probe=probe)


class RecordingProbe(Probe):
    def __init__(self):
        self.bound = None
        self.calls: list[str] = []

    def bind(self, network):
        self.bound = network

    def on_buffer_write(self, cycle, router, in_port, vc, flit):
        self.calls.append("buffer_write")

    def on_traverse(self, cycle, router, in_port, vc, out_port, via, read,
                    flit):
        self.calls.append("traverse")

    def on_link(self, cycle, link, router, in_port, flit):
        self.calls.append("link")

    def on_inject(self, cycle, terminal, packet):
        self.calls.append("inject")

    def on_eject(self, cycle, terminal, packet):
        self.calls.append("eject")

    def on_cycle_start(self, cycle, network):
        self.calls.append("cycle")


def test_probe_is_null_object_by_default():
    net = small_net()
    assert net.probe is None
    assert all(r._probe is None for r in net.routers)
    assert all(link._probe is None for link in net.links)
    assert all(nic._probe is None for nic in net.nics)


def test_bind_probe_reaches_every_component():
    probe = RecordingProbe()
    net = small_net(probe=probe)
    assert probe.bound is net
    assert net.probe is probe
    assert all(r._probe is probe for r in net.routers)
    assert all(link._probe is probe for link in net.links)
    assert all(nic._probe is probe for nic in net.nics)


def test_probe_sees_full_flit_lifecycle():
    probe = RecordingProbe()
    net = small_net(probe=probe)
    traffic = SyntheticTraffic("uniform", net.topology.num_terminals, 0.1,
                               2, seed=3)
    net.run(200, traffic)
    net.drain(max_cycles=100_000)
    seen = set(probe.calls)
    assert {"buffer_write", "traverse", "link", "inject", "eject",
            "cycle"} <= seen


def test_base_probe_hooks_are_noops():
    net = small_net(probe=Probe())  # must not raise anywhere
    traffic = SyntheticTraffic("uniform", net.topology.num_terminals, 0.1,
                               2, seed=3)
    net.run(100, traffic)
    net.drain(max_cycles=100_000)


def test_composite_probe_fans_out():
    first, second = RecordingProbe(), RecordingProbe()
    net = small_net(probe=CompositeProbe(first, second))
    traffic = SyntheticTraffic("uniform", net.topology.num_terminals, 0.1,
                               2, seed=3)
    net.run(150, traffic)
    net.drain(max_cycles=100_000)
    assert first.bound is net and second.bound is net
    assert first.calls == second.calls
    assert "traverse" in first.calls
