"""Run manifests: hashing, schema, sidecar paths."""

import json

import pytest

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.instrument import (config_hash, git_sha, manifest_path,
                              run_manifest, write_manifest)
from repro.instrument.provenance import SCHEMA, config_dict


def test_config_dict_accepts_dataclass_and_mapping():
    cfg = ExperimentConfig(pattern="uniform", rate=0.1)
    as_dict = config_dict(cfg)
    assert as_dict["pattern"] == "uniform"
    assert isinstance(as_dict["scheme"], dict)  # nested dataclass unfolds
    assert config_dict({"a": 1}) == {"a": 1}
    with pytest.raises(TypeError):
        config_dict("not a config")


def test_config_hash_is_stable_and_order_insensitive():
    assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
    assert config_hash({"a": 1}) != config_hash({"a": 2})
    cfg = ExperimentConfig(pattern="uniform", rate=0.1)
    assert config_hash(cfg) == config_hash(cfg)


def test_manifest_fields():
    manifest = run_manifest({"x": 1}, seed=9, cycles=1000, wall_s=0.5,
                            extra={"note": "t"})
    assert manifest["schema"] == SCHEMA
    assert manifest["config"] == {"x": 1}
    assert manifest["config_sha256"] == config_hash({"x": 1})
    assert manifest["seed"] == 9
    assert manifest["cycles"] == 1000
    assert manifest["wall_s"] == 0.5
    assert manifest["cycles_per_sec"] == 2000.0
    assert manifest["note"] == "t"
    assert manifest["python"] and manifest["platform"]


def test_seed_falls_back_to_config():
    assert run_manifest({"seed": 11})["seed"] == 11
    assert run_manifest({"seed": 11}, seed=4)["seed"] == 4


def test_git_sha_in_checkout():
    sha = git_sha()
    assert sha is None or (len(sha) == 40
                           and all(c in "0123456789abcdef" for c in sha))


def test_manifest_path_and_write(tmp_path):
    out = str(tmp_path / "results.json")
    assert manifest_path(out) == str(tmp_path / "results.manifest.json")
    path = write_manifest(run_manifest({"x": 1}), out)
    with open(path, encoding="utf-8") as fh:
        assert json.load(fh)["config"] == {"x": 1}


def test_run_experiment_attaches_manifest():
    cfg = ExperimentConfig(pattern="uniform", rate=0.05, kx=4, ky=4,
                           synth_cycles=200, synth_warmup=50, seed=13)
    result = run_experiment(cfg, use_cache=False)
    manifest = result.manifest
    assert manifest["config"]["pattern"] == "uniform"
    assert manifest["seed"] == 13
    assert manifest["cycles"] > 0 and manifest["wall_s"] > 0


def test_manifest_excluded_from_result_equality():
    cfg = ExperimentConfig(pattern="uniform", rate=0.05, kx=4, ky=4,
                           synth_cycles=200, synth_warmup=50, seed=13)
    first = run_experiment(cfg, use_cache=False)
    second = run_experiment(cfg, use_cache=False)
    # Wall-clock (and hence the manifests) will differ between the runs;
    # equality must compare by metrics only.
    assert first == second
