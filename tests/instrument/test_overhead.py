"""Overhead gate: structural, bit-identity and timing checks."""

import pytest

from repro.instrument import FlitTracer, identity_check, overhead_gate
from repro.instrument.overhead import (OverheadGateError, assert_probes_cold,
                                       timing_gate)
from repro.network.config import PSEUDO_SB, NetworkConfig
from repro.network.simulator import build_network
from repro.topology import make_topology


def test_default_network_is_cold():
    topo = make_topology("mesh", 4, 4, 1)
    config = NetworkConfig(num_vcs=2, buffer_depth=2, pseudo=PSEUDO_SB)
    assert_probes_cold(build_network(topo, config=config))


def test_hot_probe_is_detected():
    topo = make_topology("mesh", 4, 4, 1)
    config = NetworkConfig(num_vcs=2, buffer_depth=2, pseudo=PSEUDO_SB)
    net = build_network(topo, config=config, probe=FlitTracer())
    with pytest.raises(OverheadGateError):
        assert_probes_cold(net)


def test_identity_check_passes():
    report = identity_check(cycles=200)
    assert report["stats_identical"]
    assert report["traced_events"] > 0
    assert sum(report["pc_terminations"].values()) > 0


def test_overhead_gate_runs_quiet(capsys):
    report = overhead_gate(cycles=200, show=False)
    assert report["probes_cold"] and report["stats_identical"]
    assert capsys.readouterr().out == ""


WEIGHTS = {"a": 1, "b": 3}


def test_timing_gate_passes_within_threshold():
    fresh = [{"name": "a", "wall_s": 1.01}, {"name": "b", "wall_s": 3.02}]
    previous = [{"name": "a", "wall_s": 1.0}, {"name": "b", "wall_s": 3.0}]
    report = timing_gate(fresh, previous, WEIGHTS)
    assert report["applied"]
    assert report["overhead"] < 0.02


def test_timing_gate_trips_on_regression():
    fresh = [{"name": "a", "wall_s": 1.2}, {"name": "b", "wall_s": 3.6}]
    previous = [{"name": "a", "wall_s": 1.0}, {"name": "b", "wall_s": 3.0}]
    with pytest.raises(OverheadGateError):
        timing_gate(fresh, previous, WEIGHTS)


def test_timing_gate_without_comparable_workloads():
    report = timing_gate([{"name": "new", "wall_s": 1.0}],
                         [{"name": "old", "wall_s": 1.0}], {"new": 1})
    assert not report["applied"]
