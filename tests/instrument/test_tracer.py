"""Flit tracer: JSONL schema, Chrome trace export, packet correlation."""

import json

from repro.instrument import FlitTracer
from repro.network.config import PSEUDO_SB, NetworkConfig
from repro.network.simulator import build_network
from repro.topology import make_topology
from repro.traffic.synthetic import SyntheticTraffic


def traced_run(cycles=300, rate=0.15, max_events=None, kx=4):
    tracer = FlitTracer(max_events=max_events)
    topo = make_topology("mesh", kx, kx, 1)
    config = NetworkConfig(num_vcs=4, buffer_depth=4, pseudo=PSEUDO_SB)
    net = build_network(topo, config=config, seed=5, probe=tracer)
    traffic = SyntheticTraffic("uniform", topo.num_terminals, rate, 5,
                               seed=5)
    net.run(cycles, traffic)
    net.drain(max_cycles=200_000)
    return tracer, net


def test_event_kinds_and_schema():
    tracer, _ = traced_run()
    kinds = {e["ev"] for e in tracer.events}
    assert {"buffer_write", "buffer_read", "va_grant", "hop", "link",
            "inject", "eject", "pc_establish", "pc_terminate"} <= kinds
    for record in tracer.events:
        assert "cycle" in record
        if record["ev"] == "hop":
            assert record["via"] in ("sa", "pc", "buf")
            assert {"router", "port", "vc", "out_port", "pid",
                    "fidx"} <= set(record)


def test_packet_correlated_across_hops():
    tracer, _ = traced_run()
    ejected = next(e for e in tracer.events if e["ev"] == "eject")
    pid = ejected["pid"]
    hops = [e for e in tracer.events
            if e["ev"] == "hop" and e["pid"] == pid]
    assert hops, "ejected packet left no hop events"
    routers = [h["router"] for h in hops]
    assert len(set(routers)) >= 1
    cycles = [h["cycle"] for h in hops]
    assert cycles == sorted(cycles)


def test_terminations_match_aggregate_counters():
    tracer, net = traced_run(rate=0.3)
    aggregate = {reason.value: count
                 for reason, count in net.stats.pc_terminations.items()
                 if count}
    assert tracer.termination_counts == aggregate
    assert sum(aggregate.values()) > 0


def test_jsonl_round_trip(tmp_path):
    tracer, _ = traced_run()
    path = tracer.to_jsonl(str(tmp_path / "events.jsonl"))
    with open(path, encoding="utf-8") as fh:
        parsed = [json.loads(line) for line in fh]
    assert parsed == tracer.events


def test_chrome_trace_loads_and_correlates(tmp_path):
    tracer, net = traced_run(rate=0.3, kx=8)
    path = tracer.to_chrome_trace(str(tmp_path / "run.trace.json"))
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)  # must be valid JSON (Perfetto-loadable)
    events = doc["traceEvents"]
    slices = [e for e in events if e.get("ph") == "X"]
    assert slices and all(e["name"].startswith("hop:") for e in slices)
    # Flow events stitch one packet's hops: exactly one start per packet.
    flows = [e for e in events if e.get("cat") == "packet"]
    starts = [e["id"] for e in flows if e["ph"] == "s"]
    assert len(starts) == len(set(starts))
    assert any(e["ph"] == "t" for e in flows)
    # PC lifecycle instants with termination reasons, reconciled against
    # the aggregate counters.
    terms = [e for e in events if e["name"].startswith("pc_terminate:")]
    by_reason: dict[str, int] = {}
    for e in terms:
        reason = e["name"].split(":", 1)[1]
        assert e["args"]["reason"] == reason
        by_reason[reason] = by_reason.get(reason, 0) + 1
    aggregate = {reason.value: count
                 for reason, count in net.stats.pc_terminations.items()
                 if count}
    assert by_reason == aggregate
    assert any(e["name"] == "pc_establish" for e in events)
    assert any(e["ph"] == "M" for e in events)  # process names


def test_max_events_caps_storage_not_counts():
    capped, _ = traced_run(max_events=100)
    full, _ = traced_run(max_events=None)
    assert len(capped.events) == 100
    assert capped.dropped == sum(full.counts.values()) - 100
    assert capped.counts == full.counts
