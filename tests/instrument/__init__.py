"""Tests for the instrumentation layer."""
