"""Time series: exact windows (incl. fast-forward), exports, heatmap."""

import csv
import json

import pytest

from repro.instrument import CompositeProbe, FlitTracer, TimeSeriesProbe
from repro.network.config import PSEUDO_SB, NetworkConfig
from repro.network.simulator import build_network
from repro.topology import make_topology
from repro.traffic.synthetic import SyntheticTraffic


def run_with_series(window=32, cycles=300, rate=0.15, topology="mesh",
                    capacity=4096, concentration=1):
    series = TimeSeriesProbe(window=window, capacity=capacity)
    tracer = FlitTracer()
    topo = make_topology(topology, 4, 4, concentration)
    config = NetworkConfig(num_vcs=4, buffer_depth=4, pseudo=PSEUDO_SB)
    net = build_network(topo, config=config, seed=5,
                        probe=CompositeProbe(tracer, series))
    traffic = SyntheticTraffic("uniform", topo.num_terminals, rate, 5,
                               seed=5)
    net.run(cycles, traffic)
    net.drain(max_cycles=200_000)
    series.flush()
    return series, tracer, net


def test_rejects_zero_window():
    with pytest.raises(ValueError):
        TimeSeriesProbe(window=0)


def test_windows_tile_the_run_exactly():
    series, _, net = run_with_series(window=32)
    samples = list(series.samples)
    assert samples[0]["start"] == 0
    for prev, cur in zip(samples, samples[1:]):
        assert cur["start"] == prev["end"]
    # drain() fast-forwards across quiescent stretches; the tiling must
    # survive the cycle jumps and cover the whole run.
    assert samples[-1]["end"] == net.cycle


def test_activity_totals_match_trace_counts():
    series, tracer, _ = run_with_series()
    totals = {key: 0 for key in ("hops", "buffer_writes", "injected",
                                 "ejected")}
    for sample in series.samples:
        for key in totals:
            totals[key] += sum(sample[key])
    assert totals["hops"] == tracer.counts["hop"]
    assert totals["buffer_writes"] == tracer.counts["buffer_write"]
    assert totals["injected"] == tracer.counts["inject"]
    assert totals["ejected"] == tracer.counts["eject"]


def test_ring_buffer_caps_memory():
    series, _, _ = run_with_series(window=8, capacity=5)
    assert len(series.samples) == 5


def test_network_rows_derive_pc_reuse():
    series, _, net = run_with_series(rate=0.3)
    rows = series.network_rows()
    busy = [r for r in rows if r["hops"]]
    assert busy
    for row in busy:
        assert row["pc_reuse"] == row["sa_bypass"] / row["hops"]
    assert any(row["pc_reuse"] > 0 for row in busy)


def test_csv_export(tmp_path):
    series, _, _ = run_with_series()
    path = series.to_csv(str(tmp_path / "series.csv"))
    with open(path, encoding="utf-8") as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == len(series.samples) * 16
    first = rows[0]
    for column in ("start", "end", "router", "occupancy", "hops",
                   "sa_bypass", "pc_reuse", "link_util"):
        assert column in first


def test_json_export(tmp_path):
    series, _, _ = run_with_series()
    path = series.to_json(str(tmp_path / "series.json"))
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["window"] == series.window
    assert doc["num_routers"] == 16
    assert len(doc["samples"]) == len(series.samples)
    assert len(doc["network"]) == len(series.samples)


def test_heatmap_grid(tmp_path):
    series, tracer, _ = run_with_series()
    doc = series.heatmap("hops")
    assert doc["kx"] == 4 and doc["ky"] == 4
    total = sum(sum(row) for row in doc["grid"])
    assert total == tracer.counts["hop"]
    path = series.write_heatmap(str(tmp_path / "heat.json"), "occupancy")
    with open(path, encoding="utf-8") as fh:
        assert json.load(fh)["metric"] == "occupancy"
    with pytest.raises(ValueError):
        series.heatmap("nonsense")


def test_heatmap_on_cmesh():
    series, _, _ = run_with_series(topology="cmesh", concentration=4)
    doc = series.heatmap("hops")
    assert doc["kx"] == 4 and doc["ky"] == 4
