"""Series parity: ``VectorSeriesProbe`` rows equal the scalar probe's.

The vectorized observability layer is only trustworthy if its windowed
numpy reductions reproduce the scalar ``TimeSeriesProbe`` rows exactly —
same window boundaries, same per-router occupancy snapshots, same
activity counts — so every exporter (CSV, JSON, heatmap) downstream sees
identical data whichever core ran. This suite pins that contract on the
canonical bench workloads, checks the dual-bind path (one probe instance
serves scalar and vector networks), per-lane batched views, and the
zero-overhead gate (instrumented runs stay bit-identical to bare runs).
"""

import pytest

np = pytest.importorskip("numpy")

from repro.instrument import TimeSeriesProbe
from repro.network.config import BASELINE, PSEUDO_SB, NetworkConfig
from repro.network.simulator import Network
from repro.network.vectorized import (BatchNetwork, VectorNetwork,
                                      VectorSeriesProbe)
from repro.topology import make_topology
from repro.traffic.synthetic import SyntheticTraffic

WINDOW = 32


def _run(cls, scheme, rate, cycles, probe, *, topo_args=("mesh", 8, 8, 1),
         pattern="uniform", seed=7, **net_kw):
    topo = make_topology(*topo_args)
    net = cls(topo, NetworkConfig(pseudo=scheme), routing="xy",
              vc_policy="dynamic", seed=seed, **net_kw)
    if probe is not None:
        net.bind_probe(probe)
    traffic = SyntheticTraffic(pattern, topo.num_terminals, rate, 5,
                               seed=seed)
    net.stats.warmup_cycles = cycles // 5
    net.run(cycles, traffic)
    net.drain(max_cycles=500_000)
    net.check_invariants()
    if probe is not None:
        probe.flush()
    return net


class TestRowParity:
    """Scalar probe vs vector probe on the canonical 8x8 workloads."""

    @pytest.mark.parametrize("scheme,rate", [
        (BASELINE, 0.02), (PSEUDO_SB, 0.02),
        (BASELINE, 0.30), (PSEUDO_SB, 0.30),
    ], ids=["low-baseline", "low-pseudo_sb",
            "sat-baseline", "sat-pseudo_sb"])
    def test_rows_and_heatmap_identical(self, scheme, rate):
        scalar_probe = TimeSeriesProbe(window=WINDOW)
        vector_probe = VectorSeriesProbe(window=WINDOW)
        scalar = _run(Network, scheme, rate, 400, scalar_probe)
        vector = _run(VectorNetwork, scheme, rate, 400, vector_probe)
        assert vector_probe.samples == scalar_probe.samples
        assert vector_probe.heatmap() == scalar_probe.heatmap()
        # Instrumentation is read-only: stats stay bit-identical too.
        assert scalar.stats.fingerprint() == vector.stats.fingerprint()

    def test_dual_bind_scalar_fallback(self):
        """One VectorSeriesProbe instance must serve the scalar core via
        the inherited per-event path (the auto-backend fallback)."""
        reference = TimeSeriesProbe(window=WINDOW)
        dual = VectorSeriesProbe(window=WINDOW)
        _run(Network, PSEUDO_SB, 0.20, 300, reference)
        _run(Network, PSEUDO_SB, 0.20, 300, dual)
        assert dual.samples == reference.samples
        assert dual.heatmap() == reference.heatmap()


class TestLaneView:
    """Per-lane batched views match solo runs of the same point."""

    LANES = ((0.05, 3), (0.30, 11))

    def test_lane_rows_match_solo(self):
        topo = make_topology("mesh", 4, 4, 1)
        batch_probe = VectorSeriesProbe(window=WINDOW)
        net = BatchNetwork(topo, NetworkConfig(pseudo=PSEUDO_SB),
                           routing="xy", vc_policy="dynamic",
                           seeds=[seed for _, seed in self.LANES])
        net.bind_probe(batch_probe)
        traffics = [SyntheticTraffic("uniform", topo.num_terminals, rate,
                                     5, seed=seed)
                    for rate, seed in self.LANES]
        net.run_batch(traffics, [300] * len(self.LANES),
                      warmups=[60] * len(self.LANES))
        net.drain(max_cycles=500_000)
        net.check_invariants()
        batch_probe.flush()

        for lane, (rate, seed) in enumerate(self.LANES):
            solo_probe = VectorSeriesProbe(window=WINDOW)
            _run(VectorNetwork, PSEUDO_SB, rate, 300, solo_probe,
                 topo_args=("mesh", 4, 4, 1), seed=seed)
            view = batch_probe.lane_view(lane)
            solo = list(solo_probe.samples)
            got = list(view.samples)
            assert len(got) >= len(solo)
            # The shared chip drains to its slowest lane, so the view
            # may carry extra all-idle trailing windows and a later
            # final ``end``; every count and occupancy must still match.
            for idx, ref in enumerate(solo):
                row = got[idx]
                assert row["start"] == ref["start"]
                if idx < len(solo) - 1:
                    assert row["end"] == ref["end"]
                for key in ref:
                    if key not in ("start", "end"):
                        assert row[key] == ref[key], (idx, key)
            idle = {key: [0] * view._num for key in solo[0]
                    if key not in ("start", "end", "occupancy")}
            for row in got[len(solo):]:
                for key, zeros in idle.items():
                    assert row[key] == zeros
                assert row["occupancy"] == [0] * view._num
            assert view.heatmap()["grid"] is not None

    def test_lane_out_of_range(self):
        topo = make_topology("mesh", 4, 4, 1)
        probe = VectorSeriesProbe(window=WINDOW)
        net = BatchNetwork(topo, NetworkConfig(pseudo=BASELINE),
                           routing="xy", vc_policy="dynamic", seeds=[1, 2])
        net.bind_probe(probe)
        with pytest.raises(ValueError, match="out of range"):
            probe.lane_view(2)


class TestOverheadGate:
    def test_default_network_is_cold(self):
        from repro.instrument.overhead import assert_probes_cold
        topo = make_topology("mesh", 4, 4, 1)
        net = VectorNetwork(topo, NetworkConfig(pseudo=PSEUDO_SB),
                            routing="xy", vc_policy="dynamic", seed=7)
        assert_probes_cold(net)

    def test_instrumented_network_is_hot(self):
        from repro.instrument.overhead import assert_probes_cold
        topo = make_topology("mesh", 4, 4, 1)
        net = VectorNetwork(topo, NetworkConfig(pseudo=PSEUDO_SB),
                            routing="xy", vc_policy="dynamic", seed=7)
        net.bind_probe(VectorSeriesProbe(window=WINDOW))
        with pytest.raises(AssertionError):
            assert_probes_cold(net)

    def test_identity_check(self):
        """The full stack (series probe + strict checker + profiler)
        must leave the stats fingerprint bit-identical to a bare run."""
        from repro.instrument import vectorized_identity_check
        report = vectorized_identity_check(cycles=300)
        assert report["stats_identical"]
        assert report["series_windows"] > 0
        assert report["checker_sweeps"] > 0
        assert report["phase_profile"]["stepped_cycles"] > 0
