"""Active-set stepping must be indistinguishable from exhaustive stepping.

The active-set core (``Network._step_active``) only visits components that
registered work for the current cycle and fast-forwards fully quiescent
stretches. These tests run the same workload twice — once per stepping
mode — and require *bit-identical* ``NetworkStats`` plus the same final
cycle, across topologies, pseudo-circuit schemes, and traffic patterns.

Also covers the parallel sweep harness: a multi-worker run must return
rows identical to a serial run (deterministic per-point seeds, ordered
merge).
"""

import pytest

from repro.harness.bench import time_workload
from repro.harness.experiment import clear_cache
from repro.harness.sweep import sweep_load, sweep_vcs
from repro.network.config import (BASELINE, NetworkConfig, PSEUDO, PSEUDO_B,
                                  PSEUDO_S, PSEUDO_SB)
from repro.network.simulator import build_network
from repro.topology import make_topology
from repro.traffic.synthetic import SyntheticTraffic

CYCLES = 300
RATE = 0.08


def _fingerprint(topo_name, kx, ky, conc, scheme, pattern, active,
                 vc_policy="dynamic", seed=3):
    """Simulate once and return every observable stat plus the end cycle."""
    topo = make_topology(topo_name, kx, ky, conc)
    # The reference leg also disables compiled routing tables, so one
    # comparison covers active sets, compiled routing and the bitmask
    # allocator against the fully dynamic exhaustive core.
    net = build_network(topo, vc_policy=vc_policy,
                        config=NetworkConfig(num_vcs=4, buffer_depth=4,
                                             pseudo=scheme),
                        seed=seed, active_set=active,
                        compiled_routing=active)
    traffic = SyntheticTraffic(pattern, topo.num_terminals, RATE, 3,
                               seed=seed)
    net.stats.warmup_cycles = CYCLES // 4
    net.run(CYCLES, traffic)
    net.drain(max_cycles=100_000)
    net.check_invariants()
    fp = net.stats.fingerprint()
    fp["final_cycle"] = net.cycle
    return fp


def _assert_equivalent(*args, **kwargs):
    active = _fingerprint(*args, active=True, **kwargs)
    exhaustive = _fingerprint(*args, active=False, **kwargs)
    assert active == exhaustive
    assert active["ejected_packets"] > 0  # the workload actually ran


class TestSchemeEquivalence:
    """Every pseudo-circuit variant, on the paper's mesh."""

    @pytest.mark.parametrize(
        "scheme", [BASELINE, PSEUDO, PSEUDO_S, PSEUDO_B, PSEUDO_SB],
        ids=lambda s: s.label)
    def test_mesh_uniform(self, scheme):
        _assert_equivalent("mesh", 4, 4, 1, scheme, "uniform")

    @pytest.mark.parametrize(
        "scheme", [BASELINE, PSEUDO_SB], ids=lambda s: s.label)
    def test_static_va(self, scheme):
        _assert_equivalent("mesh", 4, 4, 1, scheme, "uniform",
                           vc_policy="static")


class TestTopologyEquivalence:
    """Multi-drop and high-radix topologies exercise other port shapes."""

    @pytest.mark.parametrize("topo,conc", [
        ("mesh", 1), ("cmesh", 4), ("fbfly", 4), ("mecs", 4)])
    @pytest.mark.parametrize(
        "scheme", [BASELINE, PSEUDO_SB], ids=lambda s: s.label)
    def test_uniform(self, topo, conc, scheme):
        _assert_equivalent(topo, 4, 4, conc, scheme, "uniform")


class TestPatternEquivalence:
    """Non-uniform patterns change which routers go idle (and when)."""

    @pytest.mark.parametrize("pattern", ["transpose", "hotspot"])
    @pytest.mark.parametrize(
        "scheme", [BASELINE, PSEUDO, PSEUDO_SB], ids=lambda s: s.label)
    def test_mesh(self, pattern, scheme):
        _assert_equivalent("mesh", 4, 4, 1, scheme, pattern)


class TestQuiescence:
    def test_idle_network_fast_forwards(self):
        """With no traffic source, drain() must not iterate cycle by cycle."""
        net = build_network(make_topology("mesh", 4, 4, 1))
        net.run(5)
        assert net.quiescent()
        start = net.cycle
        net.run(10_000)
        assert net.cycle == start + 10_000
        assert net.in_flight_packets() == 0


class TestParallelSweepDeterminism:
    """Worker-pool dispatch must be invisible in the results."""

    def test_sweep_load_matches_serial(self):
        kwargs = dict(loads=(0.05, 0.15), kx=4, ky=4, synth_cycles=300,
                      synth_warmup=75)
        serial = sweep_load(max_workers=1, **kwargs)
        clear_cache()  # force the parallel run to actually simulate
        parallel = sweep_load(max_workers=2, **kwargs)
        assert serial == parallel

    def test_sweep_vcs_matches_serial(self):
        kwargs = dict(vc_counts=(2, 4), kx=4, ky=4, synth_cycles=300,
                      synth_warmup=75)
        serial = sweep_vcs(max_workers=1, **kwargs)
        clear_cache()
        parallel = sweep_vcs(max_workers=3, **kwargs)
        assert serial == parallel


class TestBenchSmoke:
    """Fast smoke over the perf driver (full scale runs via `repro bench`)."""

    def test_time_workload_small(self):
        row = time_workload(PSEUDO_SB, 0.05, cycles=120, repeats=1)
        assert row["stats_identical"]
        assert row["packets"] > 0
        assert row["wall_s"] > 0 and row["reference_wall_s"] > 0
