"""Batched-lane parity: every lane is bit-identical to its solo run.

The batched core steps S independent simulations as one lane-replicated
chip; it is a throughput backend, never a semantic fork. Each lane of a
mixed-rate / mixed-seed / mixed-pattern batch must reproduce the exact
``NetworkStats`` fingerprint and latency histogram of a solo run of the
same point — checked against *both* reference backends (the scalar
object core and the solo vectorized core) — and a Hypothesis property
test re-checks the invariant over random batch compositions.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.network.config import BASELINE, PSEUDO, PSEUDO_SB, NetworkConfig
from repro.network.simulator import Network
from repro.network.vectorized import BatchNetwork, VectorNetwork
from repro.topology import make_topology
from repro.traffic.synthetic import SyntheticTraffic

#: (pattern, rate, seed, cycles) per lane: a low-load point, a saturated
#: point, and two non-uniform patterns, all with distinct seeds and
#: cycle budgets — nothing about the lanes is allowed to line up.
MIXED_LANES = (
    ("uniform", 0.02, 1, 300),
    ("uniform", 0.30, 2, 300),
    ("transpose", 0.10, 3, 240),
    ("bitcomp", 0.05, 4, 360),
)


def _solo_stats(cls, topo_args, scheme, lane, *, routing="xy",
                vc_policy="dynamic"):
    pattern, rate, seed, cycles = lane
    topo = make_topology(*topo_args)
    net = cls(topo, NetworkConfig(pseudo=scheme), routing=routing,
              vc_policy=vc_policy, seed=seed)
    traffic = SyntheticTraffic(pattern, topo.num_terminals, rate, 5,
                               seed=seed)
    net.stats.warmup_cycles = cycles // 5
    net.run(cycles, traffic)
    net.drain(max_cycles=500_000)
    net.check_invariants()
    return net.stats


def _batched_stats(topo_args, scheme, lanes, *, routing="xy",
                   vc_policy="dynamic"):
    topo = make_topology(*topo_args)
    net = BatchNetwork(topo, NetworkConfig(pseudo=scheme), routing=routing,
                       vc_policy=vc_policy,
                       seeds=[seed for _, _, seed, _ in lanes])
    traffics = [SyntheticTraffic(pattern, topo.num_terminals, rate, 5,
                                 seed=seed)
                for pattern, rate, seed, _ in lanes]
    net.run_batch(traffics, [cycles for *_, cycles in lanes],
                  warmups=[cycles // 5 for *_, cycles in lanes])
    net.drain(max_cycles=500_000)
    net.check_invariants()
    return [net.lane_stats(lane) for lane in range(len(lanes))]


def assert_lane_parity(reference_cls, topo_args, scheme, lanes, **kw):
    batched = _batched_stats(topo_args, scheme, lanes, **kw)
    for lane, stats in zip(lanes, batched):
        solo = _solo_stats(reference_cls, topo_args, scheme, lane, **kw)
        assert stats.fingerprint() == solo.fingerprint(), lane
        assert stats.latency_histogram == solo.latency_histogram, lane
        assert stats.pc_terminations == solo.pc_terminations, lane


class TestMixedLanes:
    """The mixed-composition batch against both reference backends."""

    @pytest.mark.parametrize("scheme", [BASELINE, PSEUDO_SB],
                             ids=["baseline", "pseudo_sb"])
    @pytest.mark.parametrize("vc_policy", ["dynamic", "static"])
    def test_lanes_match_scalar(self, scheme, vc_policy):
        assert_lane_parity(Network, ("mesh", 4, 4, 1), scheme, MIXED_LANES,
                           vc_policy=vc_policy)

    @pytest.mark.parametrize("scheme", [BASELINE, PSEUDO_SB],
                             ids=["baseline", "pseudo_sb"])
    @pytest.mark.parametrize("vc_policy", ["dynamic", "static"])
    def test_lanes_match_vectorized(self, scheme, vc_policy):
        assert_lane_parity(VectorNetwork, ("mesh", 4, 4, 1), scheme,
                           MIXED_LANES, vc_policy=vc_policy)

    def test_mesh8x8_canonical_rates(self):
        lanes = (("uniform", 0.02, 7, 300), ("uniform", 0.30, 8, 300))
        assert_lane_parity(VectorNetwork, ("mesh", 8, 8, 1), PSEUDO_SB,
                           lanes)

    @pytest.mark.parametrize("routing", ["xy", "yx", "o1turn"])
    def test_routings(self, routing):
        lanes = (("uniform", 0.05, 3, 240), ("uniform", 0.25, 9, 240))
        assert_lane_parity(VectorNetwork, ("mesh", 4, 4, 1), PSEUDO_SB,
                           lanes, routing=routing)

    def test_concentrated_topology(self):
        lanes = (("uniform", 0.05, 1, 240), ("uniform", 0.20, 2, 240))
        assert_lane_parity(VectorNetwork, ("cmesh", 2, 2, 4), PSEUDO_SB,
                           lanes)


class TestDegenerateBatches:
    def test_single_lane_batch_matches_solo(self):
        lane = ("uniform", 0.15, 5, 300)
        batched, = _batched_stats(("mesh", 4, 4, 1), PSEUDO_SB, (lane,))
        solo = _solo_stats(VectorNetwork, ("mesh", 4, 4, 1), PSEUDO_SB,
                           lane)
        assert batched.fingerprint() == solo.fingerprint()

    def test_run_is_refused(self):
        topo = make_topology("mesh", 2, 2, 1)
        net = BatchNetwork(topo, NetworkConfig(pseudo=BASELINE),
                           seeds=(1, 2))
        with pytest.raises(TypeError, match="run_batch"):
            net.run(10)

    def test_lane_budget_mismatch_rejected(self):
        topo = make_topology("mesh", 2, 2, 1)
        net = BatchNetwork(topo, NetworkConfig(pseudo=BASELINE),
                           seeds=(1, 2))
        traffic = SyntheticTraffic("uniform", topo.num_terminals, 0.1, 5)
        with pytest.raises(ValueError, match="per lane"):
            net.run_batch([traffic], [10, 10])


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_lane = st.tuples(
    st.sampled_from(["uniform", "transpose", "bitcomp", "tornado"]),
    st.sampled_from([0.0, 0.05, 0.15, 0.3, 0.5]),
    st.integers(0, 999),
    st.sampled_from([60, 90, 120]),
)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(lanes=st.lists(_lane, min_size=1, max_size=4),
       scheme=st.sampled_from([BASELINE, PSEUDO, PSEUDO_SB]),
       vc_policy=st.sampled_from(["dynamic", "static"]))
def test_random_batch_compositions_match_solo(lanes, scheme, vc_policy):
    """Any composition of lanes — including duplicated points, rate-0
    lanes and unequal cycle budgets — is bit-identical per lane to the
    solo vectorized runs of the same points."""
    assert_lane_parity(VectorNetwork, ("mesh", 4, 4, 1), scheme, lanes,
                       vc_policy=vc_policy)
