"""Router pipeline timing tests.

These pin the cycle-level behaviour the reproduction depends on: 4-cycle
hops for the baseline (BW | VA+SA | ST | LT), 3 with pseudo-circuit reuse,
2 with buffer bypassing, and wormhole ordering.
"""

import pytest

from repro.network.config import (BASELINE, PSEUDO, PSEUDO_SB,
                                  NetworkConfig)
from repro.network.flit import Packet
from repro.network.simulator import Network
from repro.topology.mesh import Mesh


def net_for(scheme, kx=4, ky=2, vc_policy="static"):
    return Network(Mesh(kx, ky), NetworkConfig(pseudo=scheme),
                   routing="xy", vc_policy=vc_policy, seed=1)


def send_and_measure(net, src, dst, size=1, repeats=1):
    """Inject ``repeats`` identical packets sequentially; return the last
    packet's network latency."""
    latency = None
    for _ in range(repeats):
        packet = Packet(src, dst, size, net.cycle)
        net.inject(packet)
        net.drain()
        latency = packet.network_latency
    return latency


class TestBaselineTiming:
    def test_single_hop_latency(self):
        # 1 network hop: inject link (1) + BW/SA/ST+LT through two routers
        # (source and destination) + eject link.
        lat3 = send_and_measure(net_for(BASELINE), 0, 3)
        lat1 = send_and_measure(net_for(BASELINE), 0, 1)
        assert lat3 - lat1 == 8  # 2 extra hops at 4 cycles each

    def test_per_hop_is_four_cycles(self):
        lat_a = send_and_measure(net_for(BASELINE), 0, 1)
        lat_b = send_and_measure(net_for(BASELINE), 0, 2)
        assert lat_b - lat_a == 4

    def test_serialization_cost_of_multi_flit_packets(self):
        one = send_and_measure(net_for(BASELINE), 0, 2, size=1)
        five = send_and_measure(net_for(BASELINE), 0, 2, size=5)
        # 4 extra flits at 1/cycle plus one credit-turnaround bubble: a
        # 4-flit buffer with a 5-cycle credit loop peaks at 4/5 flit/cycle
        # per VC, so the fifth flit stalls once.
        assert five - one == 5

    def test_no_bypass_counters_in_baseline(self):
        net = net_for(BASELINE)
        send_and_measure(net, 0, 3, repeats=3)
        assert net.stats.sa_bypass_flits == 0
        assert net.stats.buf_bypass_flits == 0


class TestPseudoCircuitTiming:
    def test_warm_circuit_saves_one_cycle_per_hop(self):
        cold = send_and_measure(net_for(PSEUDO), 0, 3)
        warm = send_and_measure(net_for(PSEUDO), 0, 3, repeats=3)
        # 4 routers on the path (0,1,2,3) each save 1 cycle when warm.
        assert cold - warm == 4

    def test_buffer_bypass_saves_two_cycles_per_hop(self):
        cold = send_and_measure(net_for(PSEUDO_SB), 0, 3)
        warm = send_and_measure(net_for(PSEUDO_SB), 0, 3, repeats=3)
        assert cold - warm == 8

    def test_first_packet_pays_baseline_latency(self):
        assert send_and_measure(net_for(PSEUDO), 0, 3) == \
            send_and_measure(net_for(BASELINE), 0, 3)

    def test_warm_reuse_counts_flit_bypasses(self):
        net = net_for(PSEUDO_SB)
        send_and_measure(net, 0, 3, repeats=3)
        assert net.stats.sa_bypass_flits > 0
        assert net.stats.buf_bypass_flits > 0


class TestDelivery:
    def test_all_flits_arrive_exactly_once(self):
        net = net_for(BASELINE)
        packets = [Packet(0, 7, 5, 0), Packet(3, 4, 1, 0), Packet(6, 1, 5, 0)]
        for p in packets:
            net.inject(p)
        net.drain()
        assert net.stats.ejected_packets == 3
        assert net.stats.ejected_flits == 11
        for p in packets:
            assert p.eject_cycle > p.inject_cycle >= 0

    @pytest.mark.parametrize("scheme", [BASELINE, PSEUDO, PSEUDO_SB])
    def test_wormhole_order_with_back_to_back_packets(self, scheme):
        net = net_for(scheme)
        # Two multi-flit packets on the same flow, injected back to back.
        a = Packet(0, 3, 5, 0)
        b = Packet(0, 3, 5, 0)
        net.inject(a)
        net.inject(b)
        net.drain()
        assert a.eject_cycle < b.eject_cycle
        net.check_invariants()

    def test_hop_counting(self):
        net = net_for(BASELINE)
        p = Packet(0, 3, 1, 0)
        net.inject(p)
        net.drain()
        # Router 0 (inject->E), routers 1, 2, router 3 (W->eject).
        assert p.hops == 4
