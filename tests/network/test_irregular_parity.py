"""Irregular-topology parity: chiplet and kite are bit-identical across
the scalar, vectorized and batched cores, and survive saturation under
the full monitor suite.

Weight-ordered routing is tabulable, so the heterogeneous topologies ride
the same compiled-table path as the grid ones; these suites lock in that
none of the three cores forked semantics for irregular graphs, and that
the verified-deadlock-free tables really do keep traffic moving at
saturation (watchdog attached, zero violations).
"""

import pytest

np = pytest.importorskip("numpy")

from repro.harness.experiment import (ExperimentConfig, run_batch_experiments,
                                      run_experiment)
from repro.network.config import BASELINE, PSEUDO_SB, NetworkConfig
from repro.network.simulator import Network
from repro.network.vectorized import BatchNetwork, VectorNetwork
from repro.topology import make_topology
from repro.traffic.synthetic import SyntheticTraffic

CHIPLET = ("chiplet", 2, 2, 1)
CHIPLET_KW = dict(chiplets=4, chiplet_link_latency=4)
KITE = ("kite", 4, 4, 1)

POINTS = [(CHIPLET, CHIPLET_KW), (KITE, {})]
POINT_IDS = ["chiplet", "kite"]


def _run(cls, topo_args, topo_kw, scheme, rate, cycles, *, seed=7,
         vc_policy="static"):
    topo = make_topology(*topo_args, **topo_kw)
    net = cls(topo, NetworkConfig(pseudo=scheme), routing="weighted",
              vc_policy=vc_policy, seed=seed)
    traffic = SyntheticTraffic("uniform", topo.num_terminals, rate, 5,
                               seed=seed)
    net.stats.warmup_cycles = cycles // 5
    net.run(cycles, traffic)
    net.drain(max_cycles=500_000)
    net.check_invariants()
    return net


class TestScalarVectorParity:
    @pytest.mark.parametrize("topo_args,topo_kw", POINTS, ids=POINT_IDS)
    @pytest.mark.parametrize("scheme", [BASELINE, PSEUDO_SB],
                             ids=["baseline", "pseudo_sb"])
    @pytest.mark.parametrize("rate", [0.02, 0.20], ids=["low", "sat"])
    def test_fingerprints_match(self, topo_args, topo_kw, scheme, rate):
        scalar = _run(Network, topo_args, topo_kw, scheme, rate, 400)
        vector = _run(VectorNetwork, topo_args, topo_kw, scheme, rate, 400)
        assert scalar.stats.fingerprint() == vector.stats.fingerprint()
        assert scalar.stats.latency_histogram \
            == vector.stats.latency_histogram
        assert scalar.cycle == vector.cycle

    @pytest.mark.parametrize("topo_args,topo_kw", POINTS, ids=POINT_IDS)
    @pytest.mark.parametrize("vc_policy", ["dynamic", "static"])
    def test_vc_policies(self, topo_args, topo_kw, vc_policy):
        scalar = _run(Network, topo_args, topo_kw, PSEUDO_SB, 0.10, 300,
                      vc_policy=vc_policy)
        vector = _run(VectorNetwork, topo_args, topo_kw, PSEUDO_SB, 0.10,
                      300, vc_policy=vc_policy)
        assert scalar.stats.fingerprint() == vector.stats.fingerprint()


class TestBatchedParity:
    @pytest.mark.parametrize("topo_args,topo_kw", POINTS, ids=POINT_IDS)
    def test_lanes_match_solo_runs(self, topo_args, topo_kw):
        lanes = ((0.02, 3, 300), (0.20, 9, 240))
        topo = make_topology(*topo_args, **topo_kw)
        net = BatchNetwork(topo, NetworkConfig(pseudo=PSEUDO_SB),
                           routing="weighted", vc_policy="static",
                           seeds=[seed for _, seed, _ in lanes])
        traffics = [SyntheticTraffic("uniform", topo.num_terminals, rate,
                                     5, seed=seed)
                    for rate, seed, _ in lanes]
        net.run_batch(traffics, [cycles for *_, cycles in lanes],
                      [cycles // 5 for *_, cycles in lanes])
        net.drain(max_cycles=500_000)
        net.check_invariants()
        for lane, (rate, seed, cycles) in enumerate(lanes):
            solo = _run(VectorNetwork, topo_args, topo_kw, PSEUDO_SB, rate,
                        cycles, seed=seed)
            stats = net.lane_stats(lane)
            assert stats.fingerprint() == solo.stats.fingerprint(), lane
            assert stats.latency_histogram \
                == solo.stats.latency_histogram, lane


def _config(topo_args, topo_kw, backend, *, rate, scheme=PSEUDO_SB,
            cycles=400, seed=7):
    name, kx, ky, conc = topo_args
    return ExperimentConfig(
        topology=name, kx=kx, ky=ky, concentration=conc, **topo_kw,
        routing="weighted", vc_policy="static", scheme=scheme,
        pattern="uniform", rate=rate, synth_cycles=cycles,
        synth_warmup=cycles // 4, seed=seed, backend=backend)


class TestHarnessBackends:
    """The figure path: all three backend policies agree per point."""

    @pytest.mark.parametrize("topo_args,topo_kw", POINTS, ids=POINT_IDS)
    def test_three_backends_bit_identical(self, topo_args, topo_kw):
        scalar = run_experiment(
            _config(topo_args, topo_kw, "scalar", rate=0.05),
            use_cache=False)
        vector = run_experiment(
            _config(topo_args, topo_kw, "vectorized", rate=0.05),
            use_cache=False)
        (batched,) = run_batch_experiments(
            [_config(topo_args, topo_kw, "batched", rate=0.05)],
            use_cache=False)
        for field in ("avg_latency", "avg_network_latency", "avg_hops",
                      "reusability", "buffer_bypass_rate", "packets",
                      "flit_hops", "energy_pj", "pc_restored"):
            assert getattr(scalar, field) == getattr(vector, field), field
            assert getattr(scalar, field) == getattr(batched, field), field


class TestSaturationWatchdog:
    """Saturation runs with the full monitor suite (progress watchdog
    included): the verified tables must keep delivering — zero
    violations, packets actually drained."""

    @pytest.mark.parametrize("topo_args,topo_kw", POINTS, ids=POINT_IDS)
    @pytest.mark.parametrize("scheme", [BASELINE, PSEUDO_SB],
                             ids=["baseline", "pseudo_sb"])
    def test_checked_saturation_run(self, topo_args, topo_kw, scheme):
        result = run_experiment(
            _config(topo_args, topo_kw, "scalar", rate=0.40, scheme=scheme,
                    cycles=600),
            check=True)
        assert result.monitor_report["violation_count"] == 0
        assert result.packets > 0
