"""Unit tests for packets and flits."""

import pytest

from repro.network.flit import Flit, FlitType, Packet


class TestFlitType:
    def test_head_flags(self):
        assert FlitType.HEAD.is_head
        assert FlitType.HEAD_TAIL.is_head
        assert not FlitType.BODY.is_head
        assert not FlitType.TAIL.is_head

    def test_tail_flags(self):
        assert FlitType.TAIL.is_tail
        assert FlitType.HEAD_TAIL.is_tail
        assert not FlitType.HEAD.is_tail
        assert not FlitType.BODY.is_tail


class TestPacket:
    def test_basic_fields(self):
        p = Packet(3, 7, 5, 100, msg_type="read_resp")
        assert p.src == 3 and p.dst == 7 and p.size == 5
        assert p.create_cycle == 100
        assert p.msg_type == "read_resp"

    def test_unique_ids(self):
        a, b = Packet(0, 1, 1, 0), Packet(0, 1, 1, 0)
        assert a.pid != b.pid

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            Packet(0, 1, 0, 0)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Packet(4, 4, 1, 0)

    def test_latency_requires_ejection(self):
        p = Packet(0, 1, 1, 10)
        with pytest.raises(ValueError):
            _ = p.latency
        p.inject_cycle = 12
        p.eject_cycle = 30
        assert p.latency == 20
        assert p.network_latency == 18

    def test_single_flit_packet(self):
        flits = Packet(0, 1, 1, 0).make_flits()
        assert len(flits) == 1
        assert flits[0].ftype == FlitType.HEAD_TAIL
        assert flits[0].is_head and flits[0].is_tail

    def test_multi_flit_packet(self):
        flits = Packet(0, 1, 5, 0).make_flits()
        assert [f.ftype for f in flits] == [
            FlitType.HEAD, FlitType.BODY, FlitType.BODY, FlitType.BODY,
            FlitType.TAIL]
        assert [f.index for f in flits] == list(range(5))

    def test_two_flit_packet_has_no_body(self):
        flits = Packet(0, 1, 2, 0).make_flits()
        assert [f.ftype for f in flits] == [FlitType.HEAD, FlitType.TAIL]


class TestFlit:
    def test_delegates_to_packet(self):
        p = Packet(2, 9, 3, 0)
        flit = p.make_flits()[1]
        assert flit.src == 2 and flit.dst == 9
        assert flit.packet is p

    def test_vc_mutable(self):
        flit = Packet(0, 1, 1, 0).make_flits()[0]
        assert flit.vc == -1
        flit.vc = 3
        assert flit.vc == 3

    def test_repr_mentions_type(self):
        flit = Flit(Packet(0, 1, 1, 0), FlitType.HEAD_TAIL, 0)
        assert "HEAD_TAIL" in repr(flit)
