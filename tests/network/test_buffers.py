"""Unit tests for the bounded flit buffer."""

import pytest

from repro.network.buffers import BufferOverflowError, FlitBuffer
from repro.network.flit import Packet


def flits(n):
    return Packet(0, 1, max(n, 1), 0).make_flits()[:n]


class TestFlitBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlitBuffer(0)

    def test_fifo_order(self):
        buf = FlitBuffer(4)
        items = flits(3)
        for f in items:
            buf.append(f)
        assert [buf.pop() for _ in range(3)] == items

    def test_front_does_not_remove(self):
        buf = FlitBuffer(2)
        f = flits(1)[0]
        buf.append(f)
        assert buf.front() is f
        assert len(buf) == 1

    def test_overflow_raises(self):
        buf = FlitBuffer(2)
        for f in flits(2):
            buf.append(f)
        with pytest.raises(BufferOverflowError):
            buf.append(flits(1)[0])

    def test_empty_access_raises(self):
        buf = FlitBuffer(1)
        with pytest.raises(IndexError):
            buf.front()
        with pytest.raises(IndexError):
            buf.pop()

    def test_free_slots_tracking(self):
        buf = FlitBuffer(4)
        assert buf.free_slots == 4 and buf.is_empty and not buf.is_full
        buf.append(flits(1)[0])
        assert buf.free_slots == 3 and not buf.is_empty
        for f in flits(3):
            buf.append(f)
        assert buf.is_full and buf.free_slots == 0

    def test_bool_and_iter(self):
        buf = FlitBuffer(3)
        assert not buf
        items = flits(2)
        for f in items:
            buf.append(f)
        assert buf
        assert list(buf) == items
