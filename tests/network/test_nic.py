"""Unit tests for the network interface."""

import pytest

from repro.network.config import NetworkConfig
from repro.network.flit import Packet
from repro.network.simulator import Network
from repro.topology.mesh import Mesh


def build(mshrs=0, inject_queue=0):
    net = Network(Mesh(4, 2), NetworkConfig(mshrs=mshrs,
                                            inject_queue=inject_queue),
                  routing="xy", vc_policy="dynamic", seed=1)
    return net


class TestInjection:
    def test_one_flit_per_cycle(self):
        net = build()
        net.inject(Packet(0, 3, 5, 0))
        nic = net.nics[0]
        # After 3 cycles at most 3 flits can have left the NIC.
        for _ in range(3):
            net.step()
        in_progress = sum(len(e[1]) - e[2] for e in nic._sending.values())
        assert in_progress >= 2  # at least 2 of 5 flits still to send

    def test_packets_interleave_on_different_vcs(self):
        net = build()
        net.inject(Packet(0, 3, 5, 0))
        net.inject(Packet(0, 5, 5, 0))
        net.step()
        net.step()
        nic = net.nics[0]
        assert len(nic._sending) == 2  # both packets started, distinct VCs

    def test_queue_capacity_enforced(self):
        net = build(inject_queue=2)
        net.inject(Packet(0, 1, 1, 0))
        net.inject(Packet(0, 2, 1, 0))
        with pytest.raises(RuntimeError):
            net.inject(Packet(0, 3, 1, 0))

    def test_mshr_limits_outstanding(self):
        net = build(mshrs=2)
        for dst in (1, 2, 3, 5):
            net.inject(Packet(0, dst, 1, 0))
        net.step()
        net.step()
        nic = net.nics[0]
        assert nic.outstanding <= 2
        assert len(nic.queue) >= 2
        net.drain()
        assert nic.outstanding == 0

    def test_injection_records_stats(self):
        net = build()
        net.inject(Packet(0, 3, 1, 0))
        net.step()
        assert net.stats.injected_packets == 1


class TestEjection:
    def test_reassembly_and_callbacks(self):
        net = build()
        got = []
        net.nics[3].on_packet = lambda p, c: got.append((p.pid, c))
        p = Packet(0, 3, 5, 0)
        net.inject(p)
        net.drain()
        assert got == [(p.pid, p.eject_cycle)]

    def test_keep_ejected_collects_packets(self):
        net = build()
        net.nics[3].keep_ejected = True
        net.inject(Packet(0, 3, 1, 0))
        net.inject(Packet(0, 3, 1, 0))
        net.drain()
        assert len(net.nics[3].ejected) == 2

    def test_idle_flag(self):
        net = build()
        assert all(nic.idle for nic in net.nics)
        net.inject(Packet(0, 3, 1, 0))
        assert not net.nics[0].idle
        net.drain()
        assert all(nic.idle for nic in net.nics)
