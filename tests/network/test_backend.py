"""The backend seam: selection, config plumbing, and refusal paths."""

import pytest

from repro.harness.experiment import (ExperimentConfig, build_network,
                                      run_experiment)
from repro.network.backend import (BACKENDS, BackendUnsupportedError,
                                   default_backend, resolve_backend,
                                   set_default_backend)
from repro.network.simulator import Network


@pytest.fixture
def scalar_default():
    """Restore the process default backend after the test."""
    previous = default_backend()
    yield
    set_default_backend(previous)


class TestRegistry:
    def test_resolve_passthrough_and_default(self):
        assert resolve_backend("scalar") == "scalar"
        assert resolve_backend("vectorized") == "vectorized"
        assert resolve_backend(None) == default_backend()

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown network backend"):
            resolve_backend("simd")
        with pytest.raises(ValueError, match="unknown network backend"):
            set_default_backend("simd")

    def test_set_default_round_trip(self, scalar_default):
        previous = set_default_backend("vectorized")
        assert default_backend() == "vectorized"
        assert resolve_backend(None) == "vectorized"
        set_default_backend(previous)
        assert default_backend() == previous


class TestConfigPlumbing:
    def test_backend_resolved_at_construction(self):
        cfg = ExperimentConfig(pattern="uniform")
        assert cfg.backend == "scalar"

    def test_unset_backend_freezes_process_default(self, scalar_default):
        set_default_backend("vectorized")
        cfg = ExperimentConfig(pattern="uniform")
        assert cfg.backend == "vectorized"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown network backend"):
            ExperimentConfig(pattern="uniform", backend="simd")

    def test_backends_never_alias_in_cache_or_store(self):
        from repro.store import store_key
        scalar = ExperimentConfig(pattern="uniform", backend="scalar")
        vector = ExperimentConfig(pattern="uniform", backend="vectorized")
        assert scalar != vector
        assert store_key(scalar) != store_key(vector)


class TestBuildDispatch:
    def test_scalar_build(self):
        cfg = ExperimentConfig(topology="mesh", kx=2, ky=2, concentration=1,
                               pattern="uniform", backend="scalar")
        assert type(build_network(cfg)) is Network

    def test_vectorized_build(self):
        pytest.importorskip("numpy")
        from repro.network.vectorized import VectorNetwork
        cfg = ExperimentConfig(topology="mesh", kx=2, ky=2, concentration=1,
                               routing="xy", pattern="uniform",
                               backend="vectorized")
        assert type(build_network(cfg)) is VectorNetwork


class TestRefusals:
    """Unsupported combinations fail loudly, never silently fall back."""

    def test_probe_rejected(self):
        pytest.importorskip("numpy")
        cfg = ExperimentConfig(topology="mesh", kx=2, ky=2, concentration=1,
                               routing="xy", pattern="uniform",
                               backend="vectorized")
        with pytest.raises(BackendUnsupportedError, match="probes"):
            build_network(cfg, probe=object())

    def test_checked_run_rejected(self):
        pytest.importorskip("numpy")
        cfg = ExperimentConfig(topology="mesh", kx=2, ky=2, concentration=1,
                               routing="xy", pattern="uniform",
                               backend="vectorized")
        with pytest.raises(BackendUnsupportedError, match="probes"):
            run_experiment(cfg, check=True)

    def test_multidrop_topology_rejected(self):
        # MECS at 4x4 has true multidrop express channels (2x2 is
        # degenerate: single-hop rows/columns are point-to-point).
        pytest.importorskip("numpy")
        cfg = ExperimentConfig(topology="mecs", kx=4, ky=4, concentration=4,
                               routing="xy", pattern="uniform",
                               backend="vectorized")
        with pytest.raises(BackendUnsupportedError,
                           match="point-to-point"):
            build_network(cfg)

    def test_require_numpy_returns_module_when_available(self):
        numpy = pytest.importorskip("numpy")
        from repro.network.backend import require_numpy
        assert require_numpy() is numpy

    def test_backends_tuple_is_the_public_contract(self):
        assert BACKENDS == ("scalar", "vectorized")
