"""The backend seam: selection, config plumbing, and refusal paths."""

import pytest

from repro.harness.experiment import (ExperimentConfig, build_network,
                                      run_experiment)
from repro.network.backend import (BACKENDS, CONCRETE_BACKENDS,
                                   BackendUnsupportedError, calibration,
                                   choose_backend, default_backend,
                                   load_calibration, resolve_backend,
                                   set_calibration, set_default_backend)
from repro.network.simulator import Network


@pytest.fixture
def scalar_default():
    """Restore the process default backend after the test."""
    previous = default_backend()
    yield
    set_default_backend(previous)


class TestRegistry:
    def test_resolve_passthrough_and_default(self):
        assert resolve_backend("scalar") == "scalar"
        assert resolve_backend("vectorized") == "vectorized"
        assert resolve_backend(None) == default_backend()

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown network backend"):
            resolve_backend("simd")
        with pytest.raises(ValueError, match="unknown network backend"):
            set_default_backend("simd")

    def test_set_default_round_trip(self, scalar_default):
        previous = set_default_backend("vectorized")
        assert default_backend() == "vectorized"
        assert resolve_backend(None) == "vectorized"
        set_default_backend(previous)
        assert default_backend() == previous


class TestConfigPlumbing:
    def test_backend_resolved_at_construction(self):
        cfg = ExperimentConfig(pattern="uniform")
        assert cfg.backend == "scalar"

    def test_unset_backend_freezes_process_default(self, scalar_default):
        set_default_backend("vectorized")
        cfg = ExperimentConfig(pattern="uniform")
        assert cfg.backend == "vectorized"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown network backend"):
            ExperimentConfig(pattern="uniform", backend="simd")

    def test_backends_never_alias_in_cache_or_store(self):
        from repro.store import store_key
        scalar = ExperimentConfig(pattern="uniform", backend="scalar")
        vector = ExperimentConfig(pattern="uniform", backend="vectorized")
        assert scalar != vector
        assert store_key(scalar) != store_key(vector)


class TestBuildDispatch:
    def test_scalar_build(self):
        cfg = ExperimentConfig(topology="mesh", kx=2, ky=2, concentration=1,
                               pattern="uniform", backend="scalar")
        assert type(build_network(cfg)) is Network

    def test_vectorized_build(self):
        pytest.importorskip("numpy")
        from repro.network.vectorized import VectorNetwork
        cfg = ExperimentConfig(topology="mesh", kx=2, ky=2, concentration=1,
                               routing="xy", pattern="uniform",
                               backend="vectorized")
        assert type(build_network(cfg)) is VectorNetwork


class TestRefusals:
    """Unsupported combinations fail loudly, never silently fall back."""

    def test_per_flit_probe_rejected(self):
        # Only probes *without* the vector_hooks capability are refused
        # now: per-flit event streams (Chrome tracing) genuinely need
        # the scalar core. Vector-aware probes bind fine (see
        # tests/instrument/test_vector_series.py).
        pytest.importorskip("numpy")
        from repro.instrument import FlitTracer
        cfg = ExperimentConfig(topology="mesh", kx=2, ky=2, concentration=1,
                               routing="xy", pattern="uniform",
                               backend="vectorized")
        with pytest.raises(BackendUnsupportedError, match="per-flit"):
            build_network(cfg, probe=FlitTracer())

    def test_checked_run_supported(self):
        # --check no longer pins the scalar core: the vectorized path
        # attaches the array-native invariant checker instead.
        pytest.importorskip("numpy")
        cfg = ExperimentConfig(topology="mesh", kx=4, ky=4, concentration=1,
                               routing="xy", pattern="uniform", rate=0.1,
                               synth_cycles=200, backend="vectorized")
        res = run_experiment(cfg, check=True)
        report = res.monitor_report
        assert report["backend"] == "vectorized"
        assert report["violation_count"] == 0
        assert report["monitors"]["vector_invariants"]["sweeps"] > 0

    def test_multidrop_topology_rejected(self):
        # MECS at 4x4 has true multidrop express channels (2x2 is
        # degenerate: single-hop rows/columns are point-to-point).
        pytest.importorskip("numpy")
        cfg = ExperimentConfig(topology="mecs", kx=4, ky=4, concentration=4,
                               routing="xy", pattern="uniform",
                               backend="vectorized")
        with pytest.raises(BackendUnsupportedError,
                           match="point-to-point"):
            build_network(cfg)

    def test_require_numpy_returns_module_when_available(self):
        numpy = pytest.importorskip("numpy")
        from repro.network.backend import require_numpy
        assert require_numpy() is numpy

    def test_backends_tuple_is_the_public_contract(self):
        assert BACKENDS == ("scalar", "vectorized", "batched", "auto")
        assert CONCRETE_BACKENDS == ("scalar", "vectorized", "batched")


@pytest.fixture
def default_calibration():
    """Restore the selector calibration after the test."""
    previous = calibration()
    yield
    set_calibration(previous)


class TestAutoSelector:
    def test_batch_always_picks_batched(self):
        assert choose_backend(terminals=64, rate=0.01, batch=4) == "batched"
        assert choose_backend(terminals=4, rate=None, batch=2) == "batched"

    def test_trace_replay_picks_scalar(self):
        assert choose_backend(terminals=64, rate=None) == "scalar"

    def test_offered_load_crossover(self, default_calibration):
        set_calibration({"crossover_flits_per_cycle": {"baseline": 6.0,
                                                       "pseudo": 8.0}})
        # 64 terminals: 0.05 offers 3.2 flits/cycle, 0.30 offers 19.2.
        assert choose_backend(terminals=64, rate=0.05) == "scalar"
        assert choose_backend(terminals=64, rate=0.30) == "vectorized"
        # The pseudo crossover is higher: 0.11 straddles 6.0 and 8.0.
        assert choose_backend(terminals=64, rate=0.11) == "vectorized"
        assert choose_backend(terminals=64, rate=0.11,
                              pseudo=True) == "scalar"

    def test_set_calibration_merges_partial_blocks(self,
                                                   default_calibration):
        set_calibration({"crossover_flits_per_cycle": {"baseline": 2.0}})
        cal = calibration()
        assert cal["crossover_flits_per_cycle"]["baseline"] == 2.0
        assert cal["crossover_flits_per_cycle"]["pseudo"] == 8.0

    def test_load_calibration_from_bench_report(self, tmp_path,
                                                default_calibration):
        import json
        path = tmp_path / "BENCH_core.json"
        path.write_text(json.dumps({"calibration": {
            "crossover_flits_per_cycle": {"baseline": 3.0, "pseudo": 4.0},
            "source": "measured"}}))
        assert load_calibration(path)
        assert calibration()["crossover_flits_per_cycle"] == {
            "baseline": 3.0, "pseudo": 4.0}
        assert calibration()["source"] == "measured"

    def test_load_calibration_tolerates_missing_block(self, tmp_path,
                                                      default_calibration):
        before = calibration()
        assert not load_calibration(tmp_path / "absent.json")
        path = tmp_path / "noblock.json"
        path.write_text("{}")
        assert not load_calibration(path)
        assert calibration() == before

    def test_load_calibration_warns_on_stderr(self, tmp_path, capsys,
                                              default_calibration):
        # A typo'd path must not silently run with default crossovers:
        # both failure modes name the path and the reason on stderr.
        missing = tmp_path / "absent.json"
        assert not load_calibration(missing)
        err = capsys.readouterr().err
        assert "warning" in err and str(missing) in err
        assert "default crossovers" in err

        noblock = tmp_path / "noblock.json"
        noblock.write_text("{}")
        assert not load_calibration(noblock)
        err = capsys.readouterr().err
        assert str(noblock) in err and "no 'calibration' block" in err


class TestAutoDispatch:
    def test_low_load_builds_scalar(self, default_calibration):
        set_calibration({"crossover_flits_per_cycle": {"baseline": 6.0}})
        cfg = ExperimentConfig(topology="mesh", kx=8, ky=8, concentration=1,
                               routing="xy", pattern="uniform", rate=0.02,
                               backend="auto")
        assert type(build_network(cfg)) is Network

    def test_high_load_builds_vectorized(self, default_calibration):
        pytest.importorskip("numpy")
        from repro.network.vectorized import VectorNetwork
        set_calibration({"crossover_flits_per_cycle": {"baseline": 6.0}})
        cfg = ExperimentConfig(topology="mesh", kx=8, ky=8, concentration=1,
                               routing="xy", pattern="uniform", rate=0.30,
                               backend="auto")
        assert type(build_network(cfg)) is VectorNetwork

    def test_refused_config_falls_back_to_scalar(self):
        # MECS has multidrop channels the vectorized core refuses;
        # auto's documented policy is to fall back to scalar there —
        # the explicit backend (TestRefusals) still fails loudly.
        pytest.importorskip("numpy")
        cfg = ExperimentConfig(topology="mecs", kx=4, ky=4, concentration=4,
                               routing="xy", pattern="uniform", rate=0.30,
                               backend="auto")
        assert type(build_network(cfg)) is Network

    def test_auto_kept_in_store_key(self):
        from repro.store import store_key
        auto = ExperimentConfig(pattern="uniform", backend="auto")
        assert auto.backend == "auto"
        assert store_key(auto) != store_key(
            ExperimentConfig(pattern="uniform", backend="scalar"))
