"""Property-based backend parity on randomized small configurations.

Hypothesis draws small topologies, injection rates, schemes, policies and
seeds; for each draw both backends are stepped cycle by cycle under the
same Bernoulli traffic and must report identical injected/ejected
counters at *every* cycle — not just at the end — so a divergence is
pinned to the first cycle it appears in. The drained fingerprints must
match too.
"""

import pytest

np = pytest.importorskip("numpy")
hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.config import (BASELINE, PSEUDO, PSEUDO_SB,
                                  NetworkConfig)
from repro.network.simulator import Network
from repro.network.vectorized import VectorNetwork
from repro.topology import make_topology
from repro.traffic.synthetic import SyntheticTraffic

CYCLES = 60


def _counter_trace(cls, kx, ky, scheme, vc_policy, rate, seed):
    topo = make_topology("mesh", kx, ky, 1)
    net = cls(topo, NetworkConfig(pseudo=scheme), routing="xy",
              vc_policy=vc_policy, seed=seed)
    traffic = SyntheticTraffic("uniform", topo.num_terminals, rate, 3,
                               seed=seed)
    trace = []
    for cycle in range(CYCLES):
        traffic.tick(net, net.cycle)
        net.step()
        trace.append((net.stats.injected_packets,
                      net.stats.injected_flits,
                      net.stats.ejected_packets,
                      net.stats.ejected_flits))
    net.drain(max_cycles=100_000)
    net.check_invariants()
    return trace, net.stats.fingerprint()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kx=st.integers(2, 4), ky=st.integers(2, 4),
       scheme=st.sampled_from([BASELINE, PSEUDO, PSEUDO_SB]),
       vc_policy=st.sampled_from(["dynamic", "static"]),
       rate=st.sampled_from([0.05, 0.15, 0.3, 0.5]),
       seed=st.integers(0, 999))
def test_per_cycle_counters_match(kx, ky, scheme, vc_policy, rate, seed):
    scalar_trace, scalar_fp = _counter_trace(
        Network, kx, ky, scheme, vc_policy, rate, seed)
    vector_trace, vector_fp = _counter_trace(
        VectorNetwork, kx, ky, scheme, vc_policy, rate, seed)
    for cycle, (s, v) in enumerate(zip(scalar_trace, vector_trace)):
        assert s == v, (
            f"cycle {cycle}: scalar {s} != vectorized {v} "
            f"(injected_packets, injected_flits, ejected_packets, "
            f"ejected_flits)")
    assert scalar_fp == vector_fp
