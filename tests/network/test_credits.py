"""Unit tests for credit-based flow control primitives."""

import pytest

from repro.network.credits import CreditChannel, CreditCounter, CreditError


class TestCreditCounter:
    def test_starts_full(self):
        c = CreditCounter(4)
        assert c.count == 4 and c.available

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            CreditCounter(0)

    def test_consume_restore_cycle(self):
        c = CreditCounter(2)
        c.consume()
        c.consume()
        assert not c.available
        c.restore()
        assert c.count == 1

    def test_underflow_raises(self):
        c = CreditCounter(1)
        c.consume()
        with pytest.raises(CreditError):
            c.consume()

    def test_overflow_raises(self):
        c = CreditCounter(1)
        with pytest.raises(CreditError):
            c.restore()


class TestCreditChannel:
    def test_delay_respected(self):
        ch = CreditChannel(delay=2)
        ch.send(vc=1, now=10)
        assert ch.deliver(11) == []
        assert ch.deliver(12) == [1]

    def test_zero_delay(self):
        ch = CreditChannel(delay=0)
        ch.send(0, now=5)
        assert ch.deliver(5) == [0]

    def test_batched_delivery_in_order(self):
        ch = CreditChannel(delay=1)
        ch.send(0, now=0)
        ch.send(3, now=0)
        ch.send(1, now=1)
        assert ch.deliver(2) == [0, 3, 1]
        assert ch.pending() == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            CreditChannel(delay=-1)

    def test_pending_count(self):
        ch = CreditChannel(delay=5)
        ch.send(0, now=0)
        ch.send(1, now=0)
        assert ch.pending() == 2


class TestCreditChannelEdgeCases:
    """Delay-line corner cases: equal due-cycles, zero delay, limits."""

    def test_equal_due_cycles_deliver_in_send_order(self):
        ch = CreditChannel(delay=2)
        ch.send(vc=3, now=5)
        ch.send(vc=0, now=5)
        ch.send(vc=3, now=5)
        assert ch.deliver(7) == [3, 0, 3]

    def test_deliver_stops_at_the_first_future_credit(self):
        ch = CreditChannel(delay=1)
        ch.send(0, now=0)
        ch.send(1, now=3)
        assert ch.deliver(1) == [0]
        assert ch.pending() == 1
        assert ch.next_due() == 4

    def test_zero_delay_same_cycle_round_trip(self):
        ch = CreditChannel(delay=0)
        ch.send(2, now=9)
        ch.send(1, now=9)
        assert ch.deliver(9) == [2, 1]
        assert ch.pending() == 0

    def test_deliver_on_empty_channel(self):
        ch = CreditChannel(delay=1)
        assert ch.deliver(100) == []

    def test_next_due_on_empty_channel_raises(self):
        ch = CreditChannel(delay=1)
        with pytest.raises(IndexError):
            ch.next_due()

    def test_restore_past_limit_names_the_edge(self):
        counter = CreditCounter(2, where=(6, 2, 1))
        with pytest.raises(CreditError) as exc:
            counter.restore()
        err = exc.value
        assert err.rule == "credit_overflow"
        assert (err.router, err.port, err.vc) == (6, 2, 1)
        assert err.cycle is None  # call sites fill the cycle in

    def test_underflow_without_where_has_no_location(self):
        counter = CreditCounter(1)
        counter.consume()
        with pytest.raises(CreditError) as exc:
            counter.consume()
        assert exc.value.router is None
        assert exc.value.rule == "credit_underflow"

    def test_full_drain_and_refill_cycle_via_channel(self):
        """Consume-to-zero then restore-via-channel ends exactly full."""
        counter = CreditCounter(3)
        ch = CreditChannel(delay=1)
        for _ in range(3):
            counter.consume()
        for cycle in range(3):
            ch.send(0, now=cycle)
        for cycle in range(1, 4):
            for _vc in ch.deliver(cycle):
                counter.restore()
        assert counter.count == 3
        with pytest.raises(CreditError):
            counter.restore()
