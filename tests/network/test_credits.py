"""Unit tests for credit-based flow control primitives."""

import pytest

from repro.network.credits import CreditChannel, CreditCounter, CreditError


class TestCreditCounter:
    def test_starts_full(self):
        c = CreditCounter(4)
        assert c.count == 4 and c.available

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            CreditCounter(0)

    def test_consume_restore_cycle(self):
        c = CreditCounter(2)
        c.consume()
        c.consume()
        assert not c.available
        c.restore()
        assert c.count == 1

    def test_underflow_raises(self):
        c = CreditCounter(1)
        c.consume()
        with pytest.raises(CreditError):
            c.consume()

    def test_overflow_raises(self):
        c = CreditCounter(1)
        with pytest.raises(CreditError):
            c.restore()


class TestCreditChannel:
    def test_delay_respected(self):
        ch = CreditChannel(delay=2)
        ch.send(vc=1, now=10)
        assert ch.deliver(11) == []
        assert ch.deliver(12) == [1]

    def test_zero_delay(self):
        ch = CreditChannel(delay=0)
        ch.send(0, now=5)
        assert ch.deliver(5) == [0]

    def test_batched_delivery_in_order(self):
        ch = CreditChannel(delay=1)
        ch.send(0, now=0)
        ch.send(3, now=0)
        ch.send(1, now=1)
        assert ch.deliver(2) == [0, 3, 1]
        assert ch.pending() == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            CreditChannel(delay=-1)

    def test_pending_count(self):
        ch = CreditChannel(delay=5)
        ch.send(0, now=0)
        ch.send(1, now=0)
        assert ch.pending() == 2
