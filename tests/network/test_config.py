"""Unit tests for network and pseudo-circuit configuration."""

import pytest

from repro.network.config import (ALL_SCHEMES, BASELINE, PC_SCHEMES, PSEUDO,
                                  PSEUDO_B, PSEUDO_S, PSEUDO_SB,
                                  NetworkConfig, PseudoCircuitConfig)


class TestPseudoCircuitConfig:
    def test_labels(self):
        assert BASELINE.label == "Baseline"
        assert PSEUDO.label == "Pseudo"
        assert PSEUDO_S.label == "Pseudo+S"
        assert PSEUDO_B.label == "Pseudo+B"
        assert PSEUDO_SB.label == "Pseudo+S+B"

    def test_aggressive_schemes_require_base(self):
        with pytest.raises(ValueError):
            PseudoCircuitConfig(enabled=False, speculation=True)
        with pytest.raises(ValueError):
            PseudoCircuitConfig(enabled=False, buffer_bypass=True)

    def test_scheme_tuples(self):
        assert ALL_SCHEMES[0] is BASELINE
        assert len(ALL_SCHEMES) == 5
        assert len(PC_SCHEMES) == 4
        assert all(s.enabled for s in PC_SCHEMES)

    def test_frozen_and_hashable(self):
        assert hash(PSEUDO_SB) == hash(PseudoCircuitConfig(
            enabled=True, speculation=True, buffer_bypass=True))


class TestNetworkConfig:
    def test_paper_defaults(self):
        cfg = NetworkConfig()
        assert cfg.num_vcs == 4
        assert cfg.buffer_depth == 4
        assert cfg.link_latency == 1
        assert not cfg.pseudo.enabled

    @pytest.mark.parametrize("field,value", [
        ("num_vcs", 0), ("buffer_depth", 0), ("link_latency", 0),
        ("credit_delay", -1)])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            NetworkConfig(**{field: value})

    def test_scheme_embedding(self):
        cfg = NetworkConfig(pseudo=PSEUDO_SB)
        assert cfg.pseudo.buffer_bypass
