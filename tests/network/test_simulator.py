"""Tests for network construction and the simulation loop."""

import pytest

from repro.network.config import NetworkConfig, PSEUDO_SB
from repro.network.flit import Packet
from repro.network.simulator import Network, build_network
from repro.topology import make_topology
from repro.topology.mesh import Mesh


class TestConstruction:
    @pytest.mark.parametrize("name,conc", [
        ("mesh", 1), ("cmesh", 4), ("fbfly", 4), ("mecs", 4)])
    def test_every_topology_builds_and_delivers(self, name, conc):
        topo = make_topology(name, 4, 4, conc)
        net = Network(topo, NetworkConfig(), "xy", "dynamic", seed=1)
        n = topo.num_terminals
        packets = [Packet(i, (i + n // 2 + 1) % n, 2, 0) for i in range(6)]
        for p in packets:
            net.inject(p)
        net.drain()
        assert all(p.eject_cycle >= 0 for p in packets)
        net.check_invariants()

    def test_string_factories(self):
        net = build_network(Mesh(2, 2), routing="yx", vc_policy="static")
        assert net.routing.name == "yx"
        assert net.vc_policy.name == "static"

    def test_config_override_exclusivity(self):
        with pytest.raises(ValueError):
            build_network(Mesh(2, 2), config=NetworkConfig(), num_vcs=2)

    def test_router_port_counts_match_topology(self):
        topo = make_topology("mecs", 4, 4, 4)
        net = Network(topo, NetworkConfig(), "xy", "dynamic")
        for r in net.routers:
            assert len(r.in_ports) == topo.num_inports(r.router_id)
            assert len(r.out_ports) == topo.num_outports(r.router_id)


class TestRunLoop:
    def test_drain_timeout_raises(self):
        net = build_network(Mesh(2, 2))
        net.inject(Packet(0, 3, 1, 0))
        with pytest.raises(RuntimeError):
            net.drain(max_cycles=2)

    def test_quiescent_accounting(self):
        net = build_network(Mesh(2, 2))
        assert net.quiescent()
        net.inject(Packet(0, 3, 1, 0))
        assert not net.quiescent()
        assert net.in_flight_packets() == 1
        net.drain()
        assert net.quiescent()
        assert net.in_flight_packets() == 0

    def test_same_seed_is_deterministic(self):
        def run(seed):
            from repro.traffic.synthetic import SyntheticTraffic
            net = build_network(Mesh(4, 4), vc_policy="dynamic", seed=seed)
            net.run(300, SyntheticTraffic("uniform", 16, 0.2, 5, seed=3))
            net.drain()
            return (net.stats.avg_latency, net.stats.ejected_packets,
                    net.stats.flit_hops)
        assert run(5) == run(5)

    def test_scheme_changes_are_isolated_to_latency(self):
        """Same traffic: pseudo-circuits never lose or duplicate packets."""
        from repro.traffic.synthetic import SyntheticTraffic
        results = []
        for scheme in (NetworkConfig(), NetworkConfig(pseudo=PSEUDO_SB)):
            net = Network(Mesh(4, 4), scheme, "xy", "static", seed=2)
            net.run(400, SyntheticTraffic("transpose", 16, 0.3, 5, seed=8))
            net.drain()
            results.append(net.stats)
        base, pc = results
        assert base.injected_packets == pc.injected_packets
        assert base.ejected_flits == pc.ejected_flits
        assert pc.avg_latency <= base.avg_latency
