"""Unit tests for router port structures."""

from repro.network.ports import InputPort, OutEndpoint, OutputPort, OutVC


class TestOutVC:
    def test_initially_free_with_full_credits(self):
        ovc = OutVC(4)
        assert ovc.free
        assert ovc.credit_count == 4

    def test_ownership(self):
        ovc = OutVC(4)
        ovc.owner = (2, 1)
        assert not ovc.free


class TestOutEndpoint:
    def test_credit_restore_by_vc(self):
        ep = OutEndpoint(router=1, in_port=0, latency=1, num_vcs=2,
                         buffer_depth=2)
        ep.ovcs[1].credits.consume()
        assert ep.ovcs[1].credit_count == 1
        ep.restore_credit(1)
        assert ep.ovcs[1].credit_count == 2

    def test_any_credit(self):
        ep = OutEndpoint(0, 0, 1, num_vcs=2, buffer_depth=1)
        assert ep.any_credit()
        for ovc in ep.ovcs:
            ovc.credits.consume()
        assert not ep.any_credit()


class TestOutputPort:
    def test_any_credit_across_endpoints(self):
        eps = [OutEndpoint(0, 0, 1, 1, 1), OutEndpoint(1, 0, 2, 1, 1)]
        port = OutputPort(0, eps)
        eps[0].ovcs[0].credits.consume()
        assert port.any_credit()
        eps[1].ovcs[0].credits.consume()
        assert not port.any_credit()

    def test_initial_pc_state(self):
        port = OutputPort(3, [])
        assert port.pc_holder == -1
        assert port.history.last_input == -1
        assert not port.is_ejection


class TestInputPort:
    def test_credit_roundtrip_to_upstream(self):
        upstream = OutEndpoint(0, 0, 1, num_vcs=4, buffer_depth=4)
        ip = InputPort(0, num_vcs=4, buffer_depth=4, credit_delay=1)
        ip.upstream = upstream
        upstream.ovcs[2].credits.consume()
        ip.send_credit(2, now=5)
        ip.deliver_credits(5)   # too early: delay is 1
        assert upstream.ovcs[2].credit_count == 3
        ip.deliver_credits(6)
        assert upstream.ovcs[2].credit_count == 4

    def test_no_upstream_is_noop(self):
        ip = InputPort(0, 1, 1, 0)
        ip.send_credit(0, now=0)
        ip.deliver_credits(0)  # must not raise

    def test_locality_trackers_initial(self):
        ip = InputPort(0, 1, 1, 0)
        assert ip.last_pair is None and ip.last_out == -1
