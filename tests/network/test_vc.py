"""Unit tests for the input virtual-channel state machine."""

import pytest

from repro.network.flit import Packet
from repro.network.vc import VCState, VirtualChannel


def vc(depth=4):
    return VirtualChannel(0, depth)


class TestTransitions:
    def test_initial_state(self):
        v = vc()
        assert v.state == VCState.IDLE
        assert v.out_port == -1 and v.out_vc == -1

    def test_full_packet_lifecycle(self):
        v = vc()
        v.start_packet(out_port=2, out_ep=0)
        assert v.state == VCState.VA and v.out_port == 2
        v.grant_out_vc(3)
        assert v.state == VCState.ACTIVE and v.out_vc == 3
        v.finish_packet()
        assert v.state == VCState.IDLE
        assert v.out_port == -1 and v.out_vc == -1 and v.out_ep == 0

    def test_start_on_busy_vc_raises(self):
        v = vc()
        v.start_packet(1)
        with pytest.raises(RuntimeError):
            v.start_packet(2)

    def test_grant_requires_va_state(self):
        with pytest.raises(RuntimeError):
            vc().grant_out_vc(0)

    def test_finish_requires_active(self):
        v = vc()
        v.start_packet(1)
        with pytest.raises(RuntimeError):
            v.finish_packet()

    def test_multidrop_endpoint_recorded(self):
        v = vc()
        v.start_packet(out_port=0, out_ep=2)
        assert v.out_ep == 2


class TestReadiness:
    def test_ready_requires_active_state_and_flit(self):
        v = vc()
        assert not v.ready_for_sa(10)
        flit = Packet(0, 1, 1, 0).make_flits()[0]
        flit.ready_cycle = 5
        v.buffer.append(flit)
        assert not v.ready_for_sa(10)  # still IDLE
        v.start_packet(1)
        v.grant_out_vc(0)
        assert v.ready_for_sa(10)

    def test_ready_respects_flit_ready_cycle(self):
        v = vc()
        flit = Packet(0, 1, 1, 0).make_flits()[0]
        flit.ready_cycle = 8
        v.buffer.append(flit)
        v.start_packet(1)
        v.grant_out_vc(0)
        assert not v.ready_for_sa(7)
        assert v.ready_for_sa(8)

    def test_has_flit_and_front(self):
        v = vc()
        assert not v.has_flit
        flit = Packet(0, 1, 1, 0).make_flits()[0]
        v.buffer.append(flit)
        assert v.has_flit and v.front() is flit
