"""The vectorized invariant checker: clean runs, fault injection, lanes.

A checker that never fires is indistinguishable from one that cannot
fire, so beyond the clean-run sweeps (zero violations on every canonical
workload) this suite corrupts live state cells and asserts the next
sweep reports the *right* rule with the *right* coordinates — including
the lane index on batched networks. Strictness, stride pacing and the
snapshot document round out the contract.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.violation import InvariantViolation
from repro.network.config import BASELINE, PSEUDO_SB, NetworkConfig
from repro.network.vectorized import (BatchNetwork, VectorInvariantChecker,
                                      VectorNetwork)
from repro.topology import make_topology
from repro.traffic.synthetic import SyntheticTraffic


def _checked_run(scheme, rate, cycles, *, stride=1, strict=True,
                 topo_args=("mesh", 4, 4, 1), seed=7, drain=True):
    topo = make_topology(*topo_args)
    net = VectorNetwork(topo, NetworkConfig(pseudo=scheme), routing="xy",
                        vc_policy="dynamic", seed=seed)
    checker = VectorInvariantChecker(strict=strict, stride=stride)
    net.attach_checker(checker)
    traffic = SyntheticTraffic("uniform", topo.num_terminals, rate, 5,
                               seed=seed)
    net.stats.warmup_cycles = cycles // 5
    net.run(cycles, traffic)
    if drain:
        net.drain(max_cycles=500_000)
        checker.finish(net)
    return net, checker


class TestCleanRuns:
    @pytest.mark.parametrize("scheme,rate", [
        (BASELINE, 0.02), (PSEUDO_SB, 0.02),
        (BASELINE, 0.30), (PSEUDO_SB, 0.30),
    ], ids=["low-baseline", "low-pseudo_sb",
            "sat-baseline", "sat-pseudo_sb"])
    def test_no_violations(self, scheme, rate):
        net, checker = _checked_run(scheme, rate, 300)
        assert checker.violations == []
        assert checker.sweeps > 0
        doc = checker.snapshot()
        assert doc == {"violations": 0, "sweeps": checker.sweeps,
                       "stride": 1}

    def test_checked_stats_identical_to_bare(self):
        topo = make_topology("mesh", 4, 4, 1)
        bare = VectorNetwork(topo, NetworkConfig(pseudo=PSEUDO_SB),
                             routing="xy", vc_policy="dynamic", seed=7)
        traffic = SyntheticTraffic("uniform", topo.num_terminals, 0.25, 5,
                                   seed=7)
        bare.stats.warmup_cycles = 60
        bare.run(300, traffic)
        bare.drain(max_cycles=500_000)
        checked, _ = _checked_run(PSEUDO_SB, 0.25, 300)
        assert checked.stats.fingerprint() == bare.stats.fingerprint()

    def test_stride_paces_sweeps(self):
        _, every = _checked_run(PSEUDO_SB, 0.10, 200)
        _, strided = _checked_run(PSEUDO_SB, 0.10, 200, stride=8)
        assert every.violations == [] and strided.violations == []
        # Fast-forwarded cycles never tick the stride counter, so the
        # exact ratio varies with quiescence; an 8x stride must still
        # cut sweeps by far more than half.
        assert strided.sweeps < every.sweeps / 2

    def test_stride_validated(self):
        with pytest.raises(ValueError, match="stride"):
            VectorInvariantChecker(stride=0)


class TestFaultInjection:
    """Corrupted state cells must fire the matching rule, with
    coordinates pointing at the corrupted cell."""

    def _net(self, strict=False):
        net, checker = _checked_run(PSEUDO_SB, 0.25, 200, strict=strict)
        assert checker.violations == []
        return net, checker

    def test_credit_range(self):
        net, checker = self._net()
        net.cred[13] += 2  # above limit
        checker.sweep(net.cycle)
        rules = {v.rule for v in checker.violations}
        assert "credit_range" in rules
        v = next(v for v in checker.violations if v.rule == "credit_range")
        assert v.actual == int(net.cred[13])
        assert v.lane is None

    def test_credit_count(self):
        net, checker = self._net()
        ci = int((net.cred > 0).nonzero()[0][0])
        net.cred[ci] -= 1  # still within [0, limit], wrong count
        checker.sweep(net.cycle)
        assert {v.rule for v in checker.violations} == {"credit_count"}

    def test_conservation(self):
        net, checker = self._net()
        net.buf_len[7] += 1
        checker.sweep(net.cycle)
        rules = [v.rule for v in checker.violations]
        assert "conservation" in rules
        v = checker.violations[0]
        pv = net._Pi * net._V
        assert v.router == 7 // pv
        assert v.port == (7 // net._V) % net._Pi
        assert v.vc == 7 % net._V

    def test_occupancy_caches(self):
        net, checker = self._net()
        net._r_buffered[3] += 1
        checker.sweep(net.cycle)
        rules = {v.rule for v in checker.violations}
        assert "occupancy_sync" in rules
        net2, checker2 = self._net()
        net2._buffered += 1
        checker2.sweep(net2.cycle)
        assert {v.rule for v in checker2.violations} == {"occupancy_total"}

    def test_pc_holder_sync(self):
        # Saturated pseudo_sb keeps circuits alive mid-run; corrupt a
        # holder register before the drain so circuits still exist.
        net, checker = _checked_run(PSEUDO_SB, 0.30, 200, strict=False,
                                    drain=False)
        assert checker.violations == []
        valid = net.pc_valid.nonzero()[0]
        assert len(valid), "expected live circuits at saturation"
        opid = int((valid[0] // net._Pi) * net._Po
                   + net.pc_out_port[valid[0]])
        net.op_holder[opid] = -1
        checker.sweep(net.cycle)
        assert {v.rule for v in checker.violations} == {"pc_holder_sync"}

    def test_strict_raises(self):
        net, checker = self._net(strict=True)
        net.cred[0] -= 1
        with pytest.raises(InvariantViolation, match="credit"):
            checker.sweep(net.cycle)

    def test_violation_is_structured(self):
        net, checker = self._net()
        net.cred[13] += 2
        checker.sweep(net.cycle)
        v = checker.violations[0]
        doc = v.to_dict()
        assert doc["monitor"] == "vector_invariants"
        assert doc["rule"] == "credit_range"
        assert doc["cycle"] == net.cycle
        assert "credit counter" in str(v)


class TestBatchedLaneAttribution:
    def _batched(self):
        topo = make_topology("mesh", 4, 4, 1)
        net = BatchNetwork(topo, NetworkConfig(pseudo=PSEUDO_SB),
                           routing="xy", vc_policy="dynamic", seeds=[3, 11])
        checker = VectorInvariantChecker(strict=False)
        net.attach_checker(checker)
        traffics = [SyntheticTraffic("uniform", topo.num_terminals, rate,
                                     5, seed=seed)
                    for rate, seed in ((0.05, 3), (0.25, 11))]
        net.run_batch(traffics, [200, 200], warmups=[40, 40])
        net.drain(max_cycles=500_000)
        checker.finish(net)
        assert checker.violations == []
        return net, checker

    def test_lane_in_occupancy_violation(self):
        net, checker = self._batched()
        solo_routers = net._lay.R // net.lanes
        net._r_buffered[solo_routers + 5] += 1  # lane 1, router 5
        checker.sweep(net.cycle)
        v = next(v for v in checker.violations
                 if v.rule == "occupancy_sync")
        assert v.lane == 1
        assert v.router == 5

    def test_lane_in_conservation_violation(self):
        net, checker = self._batched()
        solo_ivcs = net._lay.NIVC // net.lanes
        net.buf_len[solo_ivcs + 2] += 1  # lane 1, ivc 2
        checker.sweep(net.cycle)
        v = checker.violations[0]
        assert v.rule == "conservation"
        assert v.lane == 1
        assert v.router == 0
