"""Backend parity: the vectorized core is bit-identical to the scalar one.

Every supported configuration must produce the same ``NetworkStats``
fingerprint, the same latency histogram, and the same final cycle on
both backends — the vectorized core is a performance backend, never a
semantic fork. The grid here covers the canonical bench workloads (at
reduced cycles), every pseudo-circuit scheme, both VC policies, every
tabulable routing algorithm, every point-to-point topology, and a
monitored (``check=True``) scalar run cross-checked against an
unmonitored vectorized one.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.network.config import (ALL_SCHEMES, BASELINE, PSEUDO_SB,
                                  NetworkConfig)
from repro.network.simulator import Network
from repro.network.vectorized import VectorNetwork
from repro.topology import make_topology
from repro.traffic.synthetic import SyntheticTraffic


def _run(cls, topo_args, scheme, rate, cycles, *, routing="xy",
         vc_policy="dynamic", seed=7, packet_size=5):
    topo = make_topology(*topo_args)
    net = cls(topo, NetworkConfig(pseudo=scheme), routing=routing,
              vc_policy=vc_policy, seed=seed)
    traffic = SyntheticTraffic("uniform", topo.num_terminals, rate,
                               packet_size, seed=seed)
    net.stats.warmup_cycles = cycles // 5
    net.run(cycles, traffic)
    net.drain(max_cycles=500_000)
    net.check_invariants()
    return net


def assert_parity(topo_args, scheme, rate, cycles, **kw):
    scalar = _run(Network, topo_args, scheme, rate, cycles, **kw)
    vector = _run(VectorNetwork, topo_args, scheme, rate, cycles, **kw)
    assert scalar.stats.fingerprint() == vector.stats.fingerprint()
    assert scalar.stats.latency_histogram == vector.stats.latency_histogram
    assert scalar.cycle == vector.cycle


class TestCanonicalWorkloads:
    """The bench's canonical 8x8 workloads, at reduced cycles."""

    @pytest.mark.parametrize("scheme,rate", [
        (BASELINE, 0.02), (PSEUDO_SB, 0.02),
        (BASELINE, 0.30), (PSEUDO_SB, 0.30),
    ], ids=["low-baseline", "low-pseudo_sb",
            "sat-baseline", "sat-pseudo_sb"])
    def test_mesh8x8(self, scheme, rate):
        assert_parity(("mesh", 8, 8, 1), scheme, rate, cycles=400)


class TestSchemeGrid:
    """Every scheme x VC policy near saturation on a small mesh."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES,
                             ids=[s.label for s in ALL_SCHEMES])
    @pytest.mark.parametrize("vc_policy", ["dynamic", "static"])
    def test_mesh4x4(self, scheme, vc_policy):
        assert_parity(("mesh", 4, 4, 1), scheme, 0.25, cycles=400,
                      vc_policy=vc_policy)


class TestRoutingAndTopology:
    @pytest.mark.parametrize("routing", ["xy", "yx", "o1turn"])
    def test_routings(self, routing):
        assert_parity(("mesh", 4, 4, 1), PSEUDO_SB, 0.20, cycles=300,
                      routing=routing)

    @pytest.mark.parametrize("topo_args", [
        ("cmesh", 2, 2, 4), ("fbfly", 2, 2, 4)],
        ids=["cmesh", "fbfly"])
    def test_concentrated_topologies(self, topo_args):
        assert_parity(topo_args, PSEUDO_SB, 0.15, cycles=300)

    @pytest.mark.parametrize("seed", [1, 11, 42])
    def test_seeds(self, seed):
        assert_parity(("mesh", 4, 4, 1), PSEUDO_SB, 0.30, cycles=300,
                      seed=seed)


class TestMonitoredRun:
    def test_checked_scalar_matches_vectorized(self):
        """A ``check=True`` scalar run (full monitor suite attached) must
        report the same metrics as the vectorized backend: monitors are
        read-only, and the backends are bit-identical underneath them."""
        base = dict(topology="mesh", kx=4, ky=4, concentration=1,
                    routing="xy", scheme=PSEUDO_SB, pattern="uniform",
                    rate=0.25, synth_cycles=400, synth_warmup=80, seed=7)
        checked = run_experiment(ExperimentConfig(backend="scalar", **base),
                                 check=True)
        assert checked.monitor_report["violation_count"] == 0
        vector = run_experiment(
            ExperimentConfig(backend="vectorized", **base), use_cache=False)
        for field in ("avg_latency", "avg_network_latency", "avg_hops",
                      "reusability", "buffer_bypass_rate", "packets",
                      "flit_hops", "energy_pj", "pc_restored"):
            assert getattr(checked, field) == getattr(vector, field), field
