"""Unit and property tests for the arbiters."""

import pytest
from hypothesis import given, strategies as st

from repro.network.arbiters import (MatrixArbiter, RoundRobinArbiter,
                                    make_arbiter)


class TestRoundRobin:
    def test_empty_requests(self):
        assert RoundRobinArbiter(4).grant([]) is None

    def test_single_request(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([2]) == 2

    def test_rotation(self):
        arb = RoundRobinArbiter(3)
        grants = [arb.grant([0, 1, 2]) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_skips_non_requesters(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([3]) == 3
        # Priority moved past 3 -> wraps to 0.
        assert arb.grant([0, 3]) == 0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(2).grant([5])

    def test_no_starvation_under_persistent_requests(self):
        arb = RoundRobinArbiter(5)
        granted = set()
        for _ in range(5):
            granted.add(arb.grant([0, 2, 4]))
        assert granted == {0, 2, 4}


class TestMatrixArbiter:
    def test_least_recently_served(self):
        arb = MatrixArbiter(3)
        first = arb.grant([0, 1])
        # The winner drops to lowest priority among the two.
        assert arb.grant([0, 1]) != first

    def test_all_requesters_served(self):
        arb = MatrixArbiter(4)
        granted = [arb.grant([0, 1, 2, 3]) for _ in range(4)]
        assert sorted(granted) == [0, 1, 2, 3]

    def test_single_request(self):
        assert MatrixArbiter(2).grant([1]) == 1

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            MatrixArbiter(2).grant([2])


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_arbiter("roundrobin", 2), RoundRobinArbiter)
        assert isinstance(make_arbiter("matrix", 2), MatrixArbiter)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_arbiter("magic", 2)


@given(st.lists(st.sets(st.integers(0, 7), min_size=1), min_size=1,
                max_size=50),
       st.sampled_from(["roundrobin", "matrix"]))
def test_grant_is_always_a_requester(request_seq, kind):
    """Property: every grant is one of the requests, for any sequence."""
    arb = make_arbiter(kind, 8)
    for requests in request_seq:
        grant = arb.grant(requests)
        assert grant in requests


@given(st.sets(st.integers(0, 5), min_size=2, max_size=6))
def test_persistent_requesters_are_all_served(requests):
    """Property: under persistent requests, round-robin serves everyone
    within len(requests) grants (starvation freedom)."""
    arb = RoundRobinArbiter(6)
    served = {arb.grant(requests) for _ in range(len(requests))}
    assert served == set(requests)
