"""Unit tests for channel delivery queues."""

from repro.network.flit import Packet
from repro.network.link import Link
from repro.network.ports import OutEndpoint


class FakeRouter:
    def __init__(self):
        self.received = []

    def accept_flit(self, in_port, flit):
        self.received.append((in_port, flit))


def test_delivery_at_scheduled_cycle():
    link = Link()
    router = FakeRouter()
    ep = OutEndpoint(router=0, in_port=2, latency=1, num_vcs=1,
                     buffer_depth=1)
    flit = Packet(0, 1, 1, 0).make_flits()[0]
    link.deliver(flit, ep, cycle=5)
    link.tick(4, [router])
    assert router.received == []
    link.tick(5, [router])
    assert router.received == [(2, flit)]
    assert link.in_flight == 0


def test_out_of_order_scheduling_delivers_in_cycle_order():
    link = Link()
    router = FakeRouter()
    ep = OutEndpoint(0, 0, 1, 1, 1)
    early = Packet(0, 1, 1, 0).make_flits()[0]
    late = Packet(0, 1, 1, 0).make_flits()[0]
    link.deliver(late, ep, cycle=9)
    link.deliver(early, ep, cycle=3)
    link.tick(10, [router])
    assert [f for _, f in router.received] == [early, late]


def test_same_cycle_preserves_send_order():
    link = Link()
    router = FakeRouter()
    ep = OutEndpoint(0, 1, 1, 1, 1)
    a = Packet(0, 1, 1, 0).make_flits()[0]
    b = Packet(0, 1, 1, 0).make_flits()[0]
    link.deliver(a, ep, cycle=4)
    link.deliver(b, ep, cycle=4)
    link.tick(4, [router])
    assert [f for _, f in router.received] == [a, b]


def test_multidrop_endpoints_route_to_their_router():
    link = Link()
    near, far = FakeRouter(), FakeRouter()
    ep_near = OutEndpoint(router=0, in_port=0, latency=1, num_vcs=1,
                          buffer_depth=1)
    ep_far = OutEndpoint(router=1, in_port=3, latency=2, num_vcs=1,
                         buffer_depth=1)
    f1 = Packet(0, 1, 1, 0).make_flits()[0]
    f2 = Packet(0, 2, 1, 0).make_flits()[0]
    link.deliver(f1, ep_near, 2)
    link.deliver(f2, ep_far, 3)
    link.tick(3, [near, far])
    assert near.received == [(0, f1)]
    assert far.received == [(3, f2)]
