"""Behavioural tests for pseudo-circuit creation, reuse and termination
inside the router (paper Sections III-IV)."""

from repro.core.pseudo_circuit import Termination
from repro.network.config import (PSEUDO, PSEUDO_S, PSEUDO_SB,
                                  NetworkConfig)
from repro.network.flit import Packet
from repro.network.simulator import Network
from repro.topology.mesh import EAST, Mesh


def make_net(scheme=PSEUDO, vc_policy="static", kx=4, ky=2):
    return Network(Mesh(kx, ky), NetworkConfig(pseudo=scheme),
                   routing="xy", vc_policy=vc_policy, seed=1)


def run_packets(net, specs):
    """Inject (src, dst, size) packets sequentially, draining in between."""
    sent = []
    for src, dst, size in specs:
        p = Packet(src, dst, size, net.cycle)
        net.inject(p)
        net.drain()
        sent.append(p)
    return sent


class TestCreation:
    def test_traversal_establishes_circuit(self):
        net = make_net()
        run_packets(net, [(0, 2, 1)])
        router1 = net.routers[1]  # intermediate: W input -> E output
        reg = router1.in_ports[1].pc  # WEST input port
        assert reg.valid
        assert reg.out_port == EAST
        assert router1.out_ports[EAST].pc_holder == 1
        assert net.stats.pc_established > 0

    def test_registers_survive_in_every_visited_router(self):
        net = make_net()
        run_packets(net, [(0, 3, 1)])
        for router_id in (1, 2):
            reg = net.routers[router_id].in_ports[1].pc
            assert reg.valid and reg.out_port == EAST
        net.check_invariants()


class TestReuse:
    def test_same_flow_reuses(self):
        net = make_net()
        run_packets(net, [(0, 3, 1), (0, 3, 1)])
        assert net.stats.sa_bypass_flits > 0

    def test_reuse_requires_same_vc(self):
        # With static VA, flows whose destinations hash to different VCs
        # cannot reuse each other's circuits even on a shared path segment
        # (the comparator muxes the circuit's stored VC only)...
        net = make_net(vc_policy="static")
        run_packets(net, [(0, 3, 1)])
        before = net.stats.sa_bypass_flits
        run_packets(net, [(0, 2, 1)])  # dst 2 -> VC 2, circuit holds VC 3
        assert net.stats.sa_bypass_flits == before
        # ...while flows hashing to the same VC do share circuits along the
        # common segment (this is why static VA maximizes reusability).
        net2 = make_net(vc_policy="static")
        run_packets(net2, [(0, 3, 1)])
        before2 = net2.stats.sa_bypass_flits
        run_packets(net2, [(0, 7, 1)])  # dst 7 -> VC 3 too, shares 0->1->2
        assert net2.stats.sa_bypass_flits > before2

    def test_flit_level_reuse_for_multiflit_packets(self):
        net = make_net()
        run_packets(net, [(0, 3, 5)])
        # Body/tail flits stream through the circuit the head established.
        assert net.stats.sa_bypass_flits > 0


class TestTermination:
    def test_output_conflict_terminates(self):
        net = make_net()
        # Flow A: 0 -> 2 (router 1: W -> E). Flow B: 5 -> 2 arrives at
        # router 1 from the north side and claims E ... use dst on row 0.
        run_packets(net, [(0, 2, 1)])
        run_packets(net, [(5, 2, 1)])  # router 5 is above router 1
        terms = net.stats.pc_terminations
        assert terms[Termination.CONFLICT_OUTPUT] > 0
        net.check_invariants()

    def test_route_mismatch_terminates(self):
        # Same input VC, different output: second packet from 0 turns north
        # at router 1 (dst picked so static VA maps both to the same VC).
        net = make_net(vc_policy="static", kx=4, ky=2)
        run_packets(net, [(0, 2, 1)])   # straight east through router 1
        run_packets(net, [(0, 6, 1)])   # 6 mod 4 == 2: same VC, turns north
        terms = net.stats.pc_terminations
        assert (terms[Termination.ROUTE_MISMATCH]
                + terms[Termination.CONFLICT_INPUT]) > 0
        net.check_invariants()

    def test_invariants_hold_under_cross_traffic(self):
        net = make_net(PSEUDO_SB, vc_policy="dynamic")
        for i in range(30):
            net.inject(Packet(i % 8, (i * 3 + 1) % 8, 1 + (i % 2) * 4,
                              net.cycle))
            net.step()
            net.check_invariants()
        net.drain()
        net.check_invariants()


class TestSpeculation:
    def test_restoration_happens(self):
        net = make_net(PSEUDO_S)
        # A establishes W->E at router 1; B (1->3) steals the E output
        # (A's register keeps pointing at E, invalid); B then moves its
        # circuit to the north port (1->5), freeing E. Speculation must
        # reconnect A's old circuit W->E.
        run_packets(net, [(0, 3, 1), (1, 3, 1), (1, 5, 1)])
        assert net.stats.pc_restored > 0
        router1 = net.routers[1]
        reg = router1.in_ports[1].pc  # WEST input
        assert reg.valid and reg.out_port == EAST
        assert router1.out_ports[EAST].pc_holder == 1
        net.check_invariants()

    def test_restored_circuit_is_reusable(self):
        net = make_net(PSEUDO_S)
        run_packets(net, [(0, 3, 1), (1, 3, 1), (1, 5, 1)])
        before = net.stats.sa_bypass_flits
        run_packets(net, [(0, 3, 1)])  # A again: rides the restored circuit
        assert net.stats.sa_bypass_flits > before

    def test_no_restoration_without_flag(self):
        net = make_net(PSEUDO)
        run_packets(net, [(0, 3, 1), (1, 3, 1), (1, 5, 1)])
        assert net.stats.pc_restored == 0


class TestStarvation:
    def test_sa_traffic_beats_circuit_holder(self):
        """A continuous reusing flow must not starve a crossing flow."""
        net = make_net(PSEUDO_SB, vc_policy="dynamic")
        crossing = []
        for i in range(40):
            net.inject(Packet(0, 3, 1, net.cycle))      # hot flow, reuses
            if i % 4 == 0:
                p = Packet(5, 2, 1, net.cycle)            # crosses at rtr 1
                crossing.append(p)
                net.inject(p)
            net.step()
        net.drain()
        assert all(p.eject_cycle >= 0 for p in crossing)
