"""Router protocol-violation detection and wiring checks."""

import pytest

from repro.network.config import NetworkConfig
from repro.network.flit import Packet
from repro.network.router import ProtocolError, Router
from repro.network.simulator import Network
from repro.topology.base import Channel
from repro.topology.mesh import Mesh


def test_body_flit_on_idle_vc_is_a_protocol_error(stats, config):
    from repro.routing.dor import xy_routing
    from repro.vcalloc import make_vc_policy
    topo = Mesh(2, 2)
    router = Router(0, 5, 5, config, xy_routing(topo),
                    make_vc_policy("dynamic"), stats)
    body = Packet(0, 1, 5, 0).make_flits()[1]
    body.vc = 0
    router.accept_flit(4, body)
    router.step(0)  # buffer write happens here
    with pytest.raises(ProtocolError):
        router.step(1)  # body at the front of an IDLE VC


def test_double_wired_input_port_rejected():
    class BadTopology(Mesh):
        def channels(self):
            chans = super().channels()
            dup = chans[0]
            return chans + [Channel(
                src_router=dup.src_router,
                src_port=2,  # different source port, same destination tap
                endpoints=dup.endpoints)]

    with pytest.raises(ValueError):
        Network(BadTopology(2, 2), NetworkConfig(), "xy", "dynamic")


def test_check_invariants_detects_corruption():
    net = Network(Mesh(2, 2), NetworkConfig(), "xy", "dynamic")
    router = net.routers[0]
    # Forge an inconsistent pseudo-circuit holder.
    router.in_ports[0].pc.establish(0, 1)
    with pytest.raises(AssertionError):
        router.check_invariants()


def test_flit_buffer_overflow_is_fatal_not_silent():
    """Force a flit at a full buffer: the simulator must raise, not drop."""
    from repro.network.buffers import BufferOverflowError
    net = Network(Mesh(2, 2), NetworkConfig(buffer_depth=1), "xy", "dynamic")
    router = net.routers[0]
    flits = Packet(0, 3, 5, 0).make_flits()
    for f in flits[:2]:
        f.vc = 0
        router.accept_flit(0, f)
    with pytest.raises(BufferOverflowError):
        router.step(0)
