"""Unit tests for the benchmark workload profiles."""

import pytest

from repro.traffic.benchmarks import (BENCHMARKS, PROFILES, BenchmarkProfile,
                                      get_profile)


def test_paper_benchmark_set_present():
    # Section V: SPEComp, PARSEC, NAS, SPECjbb, SPLASH-2.
    expected = {"fma3d", "equake", "mgrid", "blackscholes", "streamcluster",
                "swaptions", "specjbb", "fft", "lu", "radix"}
    assert expected <= set(BENCHMARKS)
    suites = {p.suite for p in PROFILES.values()}
    assert {"specomp", "parsec", "nas", "specjbb", "splash2"} <= suites


def test_profiles_are_valid():
    for profile in PROFILES.values():
        assert 0 < profile.access_rate <= 1
        assert 0 <= profile.read_frac <= 1
        assert profile.working_set_blocks >= 64
        assert profile.run_len >= 1
        assert 0 <= profile.reuse_prob <= 1


def test_specjbb_is_the_skewed_profile():
    assert get_profile("specjbb").bank_skew > 0
    assert get_profile("fma3d").bank_skew == 0


def test_get_profile_unknown():
    with pytest.raises(ValueError):
        get_profile("quake3")


def test_profile_validation():
    with pytest.raises(ValueError):
        BenchmarkProfile("x", "s", 0.0, 0.5, 1024, 0.1, 1, 0.1, 4, 0, 0.1)
    with pytest.raises(ValueError):
        BenchmarkProfile("x", "s", 0.5, 1.5, 1024, 0.1, 1, 0.1, 4, 0, 0.1)
    with pytest.raises(ValueError):
        BenchmarkProfile("x", "s", 0.5, 0.5, 2, 0.1, 1, 0.1, 4, 0, 0.1)
