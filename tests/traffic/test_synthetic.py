"""Unit tests for synthetic traffic patterns."""

import random

import pytest

from repro.traffic.synthetic import (PAPER_PATTERNS, SyntheticTraffic,
                                     destination_function)


class FakeNetwork:
    def __init__(self):
        self.packets = []

    def inject(self, packet):
        self.packets.append(packet)


RNG = random.Random(0)


class TestPatterns:
    def test_bit_complement(self):
        f = destination_function("bitcomp", 64)
        assert f(0, RNG) == 63
        assert f(21, RNG) == 42
        assert f(63, RNG) == 0

    def test_transpose(self):
        f = destination_function("transpose", 64)
        # src = (x=5, y=2) -> dst = (x=2, y=5): 2*8+5=21 maps to 5*8+2=42.
        assert f(0b010101, RNG) == 0b101010
        assert f(0, RNG) is None  # diagonal maps to itself

    def test_uniform_excludes_self(self):
        f = destination_function("uniform", 16)
        rng = random.Random(4)
        for src in range(16):
            for _ in range(50):
                assert f(src, rng) != src

    def test_tornado(self):
        f = destination_function("tornado", 64)
        assert f(0, RNG) == 31
        assert f(40, RNG) == 7

    def test_shuffle(self):
        f = destination_function("shuffle", 8)
        assert f(0b011, RNG) == 0b110
        assert f(0b100, RNG) == 0b001

    def test_neighbor(self):
        f = destination_function("neighbor", 8)
        assert f(7, RNG) == 0

    def test_non_power_of_two_rejected_for_bit_patterns(self):
        with pytest.raises(ValueError):
            destination_function("bitcomp", 60)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            destination_function("zigzag", 16)

    def test_paper_patterns_present(self):
        assert set(PAPER_PATTERNS) == {"uniform", "bitcomp", "transpose"}


class TestInjectionProcess:
    def test_offered_load_accounting(self):
        traffic = SyntheticTraffic("uniform", 64, rate=0.2, packet_size=5,
                                   seed=1)
        net = FakeNetwork()
        for cycle in range(1000):
            traffic.tick(net, cycle)
        flits = sum(p.size for p in net.packets)
        load = flits / (1000 * 64)
        assert 0.16 < load < 0.24  # Bernoulli noise around 0.2

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraffic("uniform", 64, rate=1.5)

    def test_packets_carry_creation_cycle(self):
        traffic = SyntheticTraffic("uniform", 16, rate=1.0, packet_size=1,
                                   seed=2)
        net = FakeNetwork()
        traffic.tick(net, 7)
        assert net.packets
        assert all(p.create_cycle == 7 for p in net.packets)

    def test_deterministic_given_seed(self):
        def gen(seed):
            traffic = SyntheticTraffic("uniform", 16, 0.5, 1, seed=seed)
            net = FakeNetwork()
            for c in range(50):
                traffic.tick(net, c)
            return [(p.src, p.dst) for p in net.packets]
        assert gen(9) == gen(9)
        assert gen(9) != gen(10)
