"""Unit tests for synthetic traffic patterns."""

import random

import pytest

from repro.traffic.synthetic import (PAPER_PATTERNS, SyntheticTraffic,
                                     destination_function)


class FakeNetwork:
    def __init__(self):
        self.packets = []

    def inject(self, packet):
        self.packets.append(packet)


RNG = random.Random(0)


class TestPatterns:
    def test_bit_complement(self):
        f = destination_function("bitcomp", 64)
        assert f(0, RNG) == 63
        assert f(21, RNG) == 42
        assert f(63, RNG) == 0

    def test_transpose(self):
        f = destination_function("transpose", 64)
        # src = (x=5, y=2) -> dst = (x=2, y=5): 2*8+5=21 maps to 5*8+2=42.
        assert f(0b010101, RNG) == 0b101010
        assert f(0, RNG) is None  # diagonal maps to itself

    def test_uniform_excludes_self(self):
        f = destination_function("uniform", 16)
        rng = random.Random(4)
        for src in range(16):
            for _ in range(50):
                assert f(src, rng) != src

    def test_tornado(self):
        f = destination_function("tornado", 64)
        assert f(0, RNG) == 31
        assert f(40, RNG) == 7

    def test_shuffle(self):
        f = destination_function("shuffle", 8)
        assert f(0b011, RNG) == 0b110
        assert f(0b100, RNG) == 0b001

    def test_neighbor(self):
        f = destination_function("neighbor", 8)
        assert f(7, RNG) == 0

    def test_non_power_of_two_rejected_for_bit_patterns(self):
        with pytest.raises(ValueError):
            destination_function("bitcomp", 60)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            destination_function("zigzag", 16)

    def test_paper_patterns_present(self):
        assert set(PAPER_PATTERNS) == {"uniform", "bitcomp", "transpose"}


class TestInjectionProcess:
    def test_offered_load_accounting(self):
        traffic = SyntheticTraffic("uniform", 64, rate=0.2, packet_size=5,
                                   seed=1)
        net = FakeNetwork()
        for cycle in range(1000):
            traffic.tick(net, cycle)
        flits = sum(p.size for p in net.packets)
        load = flits / (1000 * 64)
        assert 0.16 < load < 0.24  # Bernoulli noise around 0.2

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraffic("uniform", 64, rate=1.5)

    def test_packets_carry_creation_cycle(self):
        traffic = SyntheticTraffic("uniform", 16, rate=1.0, packet_size=1,
                                   seed=2)
        net = FakeNetwork()
        traffic.tick(net, 7)
        assert net.packets
        assert all(p.create_cycle == 7 for p in net.packets)

    def test_deterministic_given_seed(self):
        def gen(seed):
            traffic = SyntheticTraffic("uniform", 16, 0.5, 1, seed=seed)
            net = FakeNetwork()
            for c in range(50):
                traffic.tick(net, c)
            return [(p.src, p.dst) for p in net.packets]
        assert gen(9) == gen(9)
        assert gen(9) != gen(10)


class TestInjectionLookahead:
    """The fast-forward contract behind low-load cycle skipping."""

    def _every_cycle(self, seed, cycles=400, rate=0.02):
        traffic = SyntheticTraffic("uniform", 16, rate, 5, seed=seed)
        net = FakeNetwork()
        for c in range(cycles):
            traffic.tick(net, c)
        return [(p.create_cycle, p.src, p.dst) for p in net.packets]

    def test_skipping_idle_cycles_is_bit_identical(self):
        reference = self._every_cycle(3)
        traffic = SyntheticTraffic("uniform", 16, 0.02, 5, seed=3)
        net = FakeNetwork()
        c = 0
        while c < 400:
            traffic.tick(net, c)
            nxt = traffic.next_injection_cycle(c)
            # One-sided contract: never later than the true next
            # injection, so jumping straight there skips only cycles
            # that inject nothing.
            c = max(c + 1, nxt)
        got = [(p.create_cycle, p.src, p.dst) for p in net.packets]
        assert got == reference

    def test_never_later_than_true_next_injection(self):
        reference = self._every_cycle(5, cycles=600)
        injection_cycles = sorted({c for c, _, _ in reference})
        traffic = SyntheticTraffic("uniform", 16, 0.02, 5, seed=5)
        net = FakeNetwork()
        for c in range(600):
            nxt = traffic.next_injection_cycle(c)
            true_next = next((i for i in injection_cycles if i >= c), None)
            if true_next is not None:
                assert nxt <= true_next, (c, nxt, true_next)
            traffic.tick(net, c)

    def test_rate_zero_never_injects(self):
        traffic = SyntheticTraffic("uniform", 16, 0.0, 5, seed=1)
        assert traffic.next_injection_cycle(0) is None

    def test_lookahead_horizon_bounds_each_call(self):
        traffic = SyntheticTraffic("uniform", 16, 1e-9, 5, seed=1)
        nxt = traffic.next_injection_cycle(0, lookahead=64)
        assert nxt is not None and nxt <= 65
