"""Unit tests for trace capture, serialization and replay."""

import pytest

from repro.traffic.trace import Trace, TraceRecord, TraceReplayTraffic


class FakeNetwork:
    def __init__(self):
        self.packets = []

    def inject(self, packet):
        self.packets.append(packet)


def small_trace():
    return Trace(16, benchmark="demo", records=[
        TraceRecord(0, 0, 5, 1, "read_req"),
        TraceRecord(2, 5, 0, 5, "read_resp"),
        TraceRecord(2, 1, 9, 1, "write_req"),
        TraceRecord(7, 9, 1, 1, "write_ack"),
    ])


class TestRecords:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(-1, 0, 1, 1, "x")
        with pytest.raises(ValueError):
            TraceRecord(0, 3, 3, 1, "x")
        with pytest.raises(ValueError):
            TraceRecord(0, 0, 1, 0, "x")


class TestTrace:
    def test_metrics(self):
        trace = small_trace()
        assert len(trace) == 4
        assert trace.duration == 8
        assert trace.flits() == 8
        assert trace.offered_load() == pytest.approx(8 / (8 * 16))

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "t.trace"
        trace = small_trace()
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.num_terminals == 16
        assert loaded.benchmark == "demo"
        assert loaded.records == trace.records

    def test_load_rejects_other_files(self, tmp_path):
        path = tmp_path / "bogus.txt"
        path.write_text("not a trace\n")
        with pytest.raises(ValueError):
            Trace.load(path)

    def test_sorted(self):
        trace = Trace(4, records=[TraceRecord(5, 0, 1, 1, "a"),
                                  TraceRecord(1, 1, 2, 1, "b")])
        assert [r.cycle for r in trace.sorted().records] == [1, 5]


class TestReplay:
    def test_injects_at_recorded_cycles(self):
        replay = TraceReplayTraffic(small_trace())
        net = FakeNetwork()
        replay.tick(net, 0)
        assert len(net.packets) == 1
        replay.tick(net, 1)
        assert len(net.packets) == 1
        replay.tick(net, 2)
        assert len(net.packets) == 3
        replay.tick(net, 7)
        assert len(net.packets) == 4
        assert replay.exhausted

    def test_catches_up_after_gap(self):
        replay = TraceReplayTraffic(small_trace())
        net = FakeNetwork()
        replay.tick(net, 100)  # network was busy; all records now due
        assert len(net.packets) == 4

    def test_repeat_rounds(self):
        replay = TraceReplayTraffic(small_trace(), repeat=2)
        net = FakeNetwork()
        cycle = 0
        while not replay.exhausted:
            replay.tick(net, cycle)
            cycle += 1
        assert len(net.packets) == 8
        assert replay.injected == 8

    def test_packet_fields_from_records(self):
        replay = TraceReplayTraffic(small_trace())
        net = FakeNetwork()
        replay.tick(net, 0)
        p = net.packets[0]
        assert (p.src, p.dst, p.size, p.msg_type) == (0, 5, 1, "read_req")

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            TraceReplayTraffic(small_trace(), repeat=0)
