"""Unit tests for the statistics collector."""

import math

from repro.core.pseudo_circuit import Termination
from repro.metrics.stats import NetworkStats
from repro.network.flit import Packet


def ejected_packet(create=0, inject=2, eject=20, size=1, hops=3):
    p = Packet(0, 1, size, create)
    p.inject_cycle = inject
    p.eject_cycle = eject
    p.hops = hops
    return p


class TestPacketAccounting:
    def test_latency_averages(self):
        s = NetworkStats()
        s.record_ejection(ejected_packet(eject=20))
        s.record_ejection(ejected_packet(eject=30))
        assert s.avg_latency == 25.0
        assert s.avg_network_latency == 23.0
        assert s.avg_hops == 3.0

    def test_warmup_excludes_early_packets(self):
        s = NetworkStats(warmup_cycles=25)
        s.record_ejection(ejected_packet(eject=20))   # during warmup
        s.record_ejection(ejected_packet(eject=30))
        assert s.measured_packets == 1
        assert s.avg_latency == 30.0
        assert s.ejected_packets == 2  # still counted for conservation

    def test_injection_counts_flits(self):
        s = NetworkStats()
        s.record_injection(Packet(0, 1, 5, 0))
        assert s.injected_packets == 1
        assert s.injected_flits == 5

    def test_empty_stats_are_nan(self):
        s = NetworkStats()
        assert math.isnan(s.avg_latency)
        assert math.isnan(s.avg_hops)


class TestDerivedMetrics:
    def test_reusability(self):
        s = NetworkStats()
        s.flit_hops = 100
        s.sa_bypass_flits = 40
        s.buf_bypass_flits = 15
        assert s.reusability == 0.40
        assert s.buffer_bypass_rate == 0.15

    def test_locality_fractions(self):
        s = NetworkStats()
        s.e2e_packets, s.e2e_repeats = 50, 11
        s.xbar_flits, s.xbar_repeats = 200, 62
        assert s.e2e_locality == 0.22
        assert s.xbar_locality == 0.31

    def test_zero_division_guards(self):
        s = NetworkStats()
        assert s.reusability == 0.0
        assert s.e2e_locality == 0.0
        assert s.xbar_locality == 0.0

    def test_termination_counter(self):
        s = NetworkStats()
        s.record_termination(Termination.NO_CREDIT)
        s.record_termination(Termination.NO_CREDIT)
        s.record_termination(Termination.ROUTE_MISMATCH)
        assert s.pc_terminations[Termination.NO_CREDIT] == 2

    def test_percentile(self):
        s = NetworkStats()
        for lat in (10, 20, 30, 40, 50):
            s.record_ejection(ejected_packet(eject=lat))
        assert s.latency_percentile(0) == 10
        assert s.latency_percentile(50) == 30
        assert s.latency_percentile(100) == 50

    def test_percentile_empty_histogram(self):
        assert math.isnan(NetworkStats().latency_percentile(50))

    def test_percentile_single_sample(self):
        s = NetworkStats()
        s.record_ejection(ejected_packet(eject=42))
        for pct in (0, 25, 50, 99.9, 100):
            assert s.latency_percentile(pct) == 42

    def test_percentile_clamps_out_of_range(self):
        s = NetworkStats()
        for lat in (10, 20, 30):
            s.record_ejection(ejected_packet(eject=lat))
        assert s.latency_percentile(-5) == 10
        assert s.latency_percentile(250) == 30

    def test_percentile_matches_sample_list_semantics(self):
        # The histogram walk must reproduce the pre-histogram
        # implementation: sorted(samples)[round(pct/100 * (n-1))], with
        # duplicated latencies collapsing into one histogram bucket.
        latencies = [10, 10, 10, 20, 30, 30, 40, 55, 55, 70, 90]
        s = NetworkStats()
        for lat in latencies:
            s.record_ejection(ejected_packet(eject=lat))
        ordered = sorted(latencies)
        n = len(ordered)
        for pct in (0, 10, 25, 33.3, 50, 66.7, 75, 90, 95, 100):
            expected = ordered[min(n - 1, max(0, round(pct / 100 * (n - 1))))]
            assert s.latency_percentile(pct) == expected, pct

    def test_summary_keys(self):
        summary = NetworkStats().summary()
        for key in ("avg_latency", "reusability", "e2e_locality",
                    "xbar_locality", "buffer_writes"):
            assert key in summary
