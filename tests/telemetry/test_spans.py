"""Scheduler span contract: one closed span per point, honest tiers.

Every execution path of ``run_experiments`` — serial, pooled, batched
units, cache hits, journal replay, retries, terminal failures — must
leave exactly one ``point`` record per resolved point carrying the tier
that actually resolved it, and telemetry must never change the results
themselves.
"""

import pytest

from repro.harness.experiment import (ExperimentConfig, clear_cache,
                                      set_default_store)
from repro.harness.parallel import SweepPointError, run_experiments
from repro.store import ResultStore, store_key
from repro.telemetry import read_stream


def _point(seed, **overrides):
    base = dict(topology="mesh", kx=2, ky=2, concentration=1, routing="xy",
                pattern="uniform", rate=0.05, synth_cycles=120,
                synth_warmup=20, seed=seed)
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    set_default_store(None)
    yield
    clear_cache()
    set_default_store(None)


def _points_of(records):
    return [r for r in records if r["ev"] == "point"]


class TestSpanPerPoint:
    def test_serial_sweep_spans_every_point(self, tmp_path):
        tel = str(tmp_path / "t.jsonl")
        points = [_point(s) for s in (1, 2, 3)]
        run_experiments(points, max_workers=1, telemetry=tel)
        records = read_stream(tel)
        spans = _points_of(records)
        assert sorted(s["idx"] for s in spans) == [0, 1, 2]
        assert {s["tier"] for s in spans} == {"simulate"}
        assert {s["key"] for s in spans} == {store_key(p) for p in points}
        assert records[0]["ev"] == "sweep_begin"
        assert records[-1]["ev"] == "sweep_end"
        assert records[-1]["status"] == "ok"

    def test_pooled_sweep_spans_every_point(self, tmp_path):
        tel = str(tmp_path / "t.jsonl")
        points = [_point(s) for s in range(1, 7)]
        run_experiments(points, max_workers=2, chunk_size=1, telemetry=tel)
        records = read_stream(tel)
        spans = _points_of(records)
        assert sorted(s["idx"] for s in spans) == list(range(6))
        assert any(r["ev"] == "dispatch" for r in records)
        assert any(r["ev"] == "chunk" for r in records)
        # Spans were emitted in the worker processes, not the parent.
        parent = records[0]["pid"]
        assert any(s["pid"] != parent for s in spans)

    def test_results_bit_identical_with_telemetry(self, tmp_path):
        points = [_point(s) for s in (11, 12, 13)]
        plain = run_experiments(points, max_workers=1)
        clear_cache()
        traced = run_experiments(points, max_workers=1,
                                 telemetry=str(tmp_path / "t.jsonl"))
        assert plain == traced


class TestTiers:
    def test_memo_and_store_tiers(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        points = [_point(s) for s in (21, 22)]
        run_experiments(points, max_workers=1, store=store)
        # Memo still warm: both points resolve from the in-process memo.
        tel = str(tmp_path / "memo.jsonl")
        run_experiments(points, max_workers=1, store=store, telemetry=tel)
        assert {s["tier"] for s in _points_of(read_stream(tel))} == {"memo"}
        # Memo cleared, store warm: both resolve from the store, and the
        # span records a real (timed) store read.
        clear_cache()
        tel = str(tmp_path / "store.jsonl")
        run_experiments(points, max_workers=1, store=store, telemetry=tel)
        spans = _points_of(read_stream(tel))
        assert {s["tier"] for s in spans} == {"store"}
        assert all(s["attempts"] == 0 for s in spans)

    def test_journal_replay_tier(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        points = [_point(s) for s in (31, 32)]
        run_experiments(points, max_workers=1, journal=journal)
        clear_cache()
        tel = str(tmp_path / "t.jsonl")
        resumed = run_experiments(points, max_workers=1, journal=journal,
                                  resume=True, telemetry=tel)
        spans = _points_of(read_stream(tel))
        assert {s["tier"] for s in spans} == {"journal-replay"}
        clear_cache()
        assert resumed == run_experiments(points, max_workers=1)

    def test_batched_unit_spans_carry_lanes(self, tmp_path):
        pytest.importorskip("numpy")
        tel = str(tmp_path / "t.jsonl")
        points = [_point(s, backend="batched") for s in range(1, 5)]
        run_experiments(points, max_workers=1, batch_size=4, telemetry=tel)
        records = read_stream(tel)
        spans = _points_of(records)
        assert sorted(s["idx"] for s in spans) == [0, 1, 2, 3]
        assert {s["backend"] for s in spans} == {"batched"}
        assert sorted(s["lane"] for s in spans) == [0, 1, 2, 3]
        assert {s["lanes"] for s in spans} == {4}
        (unit,) = [r for r in records if r["ev"] == "unit"]
        assert unit["status"] == "ok" and unit["lanes"] == 4
        (groups,) = [r for r in records if r["ev"] == "batch_groups"]
        assert groups["multi_lane_units"] == 1
        assert groups["batched_points"] == 4

    def test_backend_decision_recorded(self, tmp_path):
        tel = str(tmp_path / "t.jsonl")
        run_experiments([_point(41)], max_workers=1, telemetry=tel)
        (span,) = _points_of(read_stream(tel))
        assert span["backend"] == "scalar"
        assert span["decision"]["reason"] == "explicit"


class TestFailurePaths:
    def test_retry_events_and_attempt_count(self, tmp_path, monkeypatch):
        import repro.harness.parallel as parallel
        real = parallel._run_point
        calls = {"n": 0}

        def flaky(cfg, check=False, check_stride=1):
            calls["n"] += 1
            if calls["n"] < 3:
                raise SweepPointError(cfg.label, "OSError: flaky", None,
                                      1, [])
            return real(cfg, check, check_stride)

        monkeypatch.setattr(parallel, "_run_point", flaky)
        tel = str(tmp_path / "t.jsonl")
        run_experiments([_point(51)], max_workers=1, retries=3,
                        backoff_base=0.25, sleep=lambda s: None,
                        telemetry=tel)
        records = read_stream(tel)
        retries = [r for r in records if r["ev"] == "retry"]
        assert [r["delay_s"] for r in retries] == [0.25, 0.5]
        assert all(r["cause"] == "OSError: flaky" for r in retries)
        (span,) = _points_of(records)
        assert span["attempts"] == 3
        assert span["backoff_s"] == [0.25, 0.5]

    def test_terminal_failure_emits_point_error(self, tmp_path,
                                                monkeypatch):
        import repro.harness.parallel as parallel

        def broken(cfg, check=False, check_stride=1):
            raise SweepPointError(cfg.label, "OSError: dead", None, 1, [])

        monkeypatch.setattr(parallel, "_run_point", broken)
        tel = str(tmp_path / "t.jsonl")
        with pytest.raises(SweepPointError):
            run_experiments([_point(52)], max_workers=1, retries=1,
                            backoff_base=0.0, sleep=lambda s: None,
                            telemetry=tel)
        records = read_stream(tel)
        (err,) = [r for r in records if r["ev"] == "point_error"]
        assert err["reason"] == "OSError: dead"
        assert err["attempts"] == 2
        assert records[-1]["ev"] == "sweep_end"
        assert records[-1]["status"] == "error"
        assert "SweepPointError" in records[-1]["error"]


class TestWorkerStore:
    def test_worker_store_deltas_cover_all_puts(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        set_default_store(store)
        tel = str(tmp_path / "t.jsonl")
        points = [_point(s) for s in range(1, 7)]
        run_experiments(points, max_workers=2, chunk_size=1, telemetry=tel)
        records = read_stream(tel)
        deltas = [r for r in records if r["ev"] == "worker_store"]
        assert deltas, "no worker_store events"
        # Forked workers inherit parent counters; the per-pid deltas must
        # sum to exactly the sweep's real store traffic.
        by_pid = {}
        for record in deltas:
            by_pid[record["pid"]] = record["stats"]
        puts = sum(stats["puts"] for stats in by_pid.values())
        assert puts == len(points)
