"""Telemetry crash contract, proven with a real SIGKILL.

A multi-worker batched sweep is killed mid-flight; its leftover
telemetry stream must still explain every completed point — tier,
backend, retry history — through ``repro top --once`` and the Perfetto
export, every journaled point must have its span (spans flush *before*
journal lines), and the resumed sweep must be bit-identical while its
own stream attributes the replayed points to the journal tier.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.harness.experiment import (ExperimentConfig, clear_cache,
                                      set_default_store)
from repro.harness.parallel import run_experiments
from repro.store import SweepJournal, store_key
from repro.telemetry import (build_sweep_report, read_stream, run_top,
                             telemetry_chrome_trace)

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

POINT_SEEDS = (61, 62, 63, 64, 65, 66)


def _point(seed, **overrides):
    base = dict(topology="mesh", kx=2, ky=2, concentration=1, routing="xy",
                pattern="uniform", rate=0.05, synth_cycles=120,
                synth_warmup=20, seed=seed)
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    set_default_store(None)
    yield
    clear_cache()
    set_default_store(None)


_CHILD_SCRIPT = textwrap.dedent("""
    import sys, time
    sys.path.insert(0, {src!r})
    import repro.harness.parallel as parallel
    from repro.harness.experiment import ExperimentConfig

    real = parallel.run_experiment
    def slowed(cfg, check=False, **kwargs):
        result = real(cfg, check=check, **kwargs)
        time.sleep(0.25)   # widen the kill window between checkpoints
        return result
    parallel.run_experiment = slowed

    points = [ExperimentConfig(topology="mesh", kx=2, ky=2,
                               concentration=1, routing="xy",
                               pattern="uniform", rate=0.05,
                               synth_cycles=120, synth_warmup=20,
                               seed=s)
              for s in {seeds!r}]
    parallel.run_experiments(points, max_workers=2, chunk_size=1,
                             batch_size=1, journal={journal!r},
                             telemetry={telemetry!r})
    print("UNEXPECTED: sweep finished before the kill", flush=True)
""")


def _journaled(path):
    try:
        return SweepJournal(path).load()
    except OSError:
        return {}


class TestKilledSweepStream:
    def test_stream_survives_and_reconstructs(self, tmp_path):
        journal = str(tmp_path / "sweep.journal")
        telemetry = str(tmp_path / "sweep.tel.jsonl")
        child = subprocess.Popen(
            [sys.executable, "-c",
             _CHILD_SCRIPT.format(src=os.path.abspath(SRC),
                                  seeds=POINT_SEEDS, journal=journal,
                                  telemetry=telemetry)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            deadline = time.monotonic() + 60
            while (len(_journaled(journal)) < 2
                   and time.monotonic() < deadline
                   and child.poll() is None):
                time.sleep(0.02)
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        journaled = _journaled(journal)
        assert 1 <= len(journaled) < len(POINT_SEEDS), (
            f"kill landed outside the sweep: {len(journaled)} journaled")

        # Spans flush before journal lines: every journaled point's
        # tier/backend/attempt history is reconstructible post-mortem.
        records = read_stream(telemetry)
        spans = {r["key"]: r for r in records if r["ev"] == "point"}
        for key in journaled:
            assert key in spans, f"journaled point {key[:12]} has no span"
            span = spans[key]
            assert span["tier"] == "simulate"
            assert span["attempts"] >= 1
            assert span["dur_s"] > 0

        # The stream has no terminal record — it reads as in-flight.
        report = build_sweep_report(records)
        assert report["status"] == "in-flight"
        assert report["completed"] >= len(journaled)

        # repro top --once renders the post-mortem without error.
        lines = []
        assert run_top(telemetry, once=True, out=lines.append) == 0
        assert "[running]" in lines[0]

        # The Perfetto export renders one slice per completed point.
        trace = telemetry_chrome_trace(records)
        point_slices = [e for e in trace["traceEvents"]
                        if e.get("name", "").startswith("point:")]
        assert len(point_slices) == len(spans)

        # Resume is bit-identical, and the resumed stream attributes the
        # journaled points to the replay tier.
        resumed_tel = str(tmp_path / "resumed.tel.jsonl")
        points = [_point(s) for s in POINT_SEEDS]
        resumed = run_experiments(points, max_workers=1, journal=journal,
                                  resume=True, telemetry=resumed_tel)
        clear_cache()
        reference = run_experiments(points, max_workers=1)
        assert resumed == reference
        resumed_report = build_sweep_report(read_stream(resumed_tel))
        assert resumed_report["status"] == "ok"
        assert resumed_report["completed"] == len(POINT_SEEDS)
        assert (resumed_report["tiers"]["journal-replay"]
                == len(journaled))


class TestStreamAppendAcrossRuns:
    def test_killed_then_resumed_stream_reads_as_latest_sweep(
            self, tmp_path):
        """Reusing one stream file across the kill and the resume keeps
        ``repro top`` coherent: the resumed sweep_begin resets the view."""
        journal = str(tmp_path / "j.jsonl")
        telemetry = str(tmp_path / "t.jsonl")
        points = [_point(s) for s in POINT_SEEDS[:3]]
        run_experiments(points, max_workers=1, journal=journal,
                        telemetry=telemetry)
        clear_cache()
        run_experiments(points, max_workers=1, journal=journal,
                        resume=True, telemetry=telemetry)
        lines = []
        run_top(telemetry, once=True, out=lines.append)
        assert "[ok] 3/3 points" in lines[0]
        report = build_sweep_report(read_stream(telemetry))
        assert report["tiers"] == {"journal-replay": 3}
        assert set(SweepJournal(journal).load()) == {store_key(p)
                                                     for p in points}
