"""The zero-cost contract: telemetry off must mean *nothing* attached.

``telemetry_cold_check`` is the bench-gate hook; here it runs directly,
plus direct assertions that the off path holds no emitter and that the
``run_experiments`` default stays off.
"""

import inspect

import pytest

from repro.harness import parallel
from repro.harness.experiment import ExperimentConfig, clear_cache
from repro.telemetry.overhead import OverheadGateError, telemetry_cold_check


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestColdCheck:
    def test_gate_passes(self):
        verdict = telemetry_cold_check()
        assert verdict["default_off"]
        assert verdict["scheduler_null"]
        assert verdict["results_identical"]
        # The stream holds the point spans plus lifecycle records.
        assert verdict["stream_records"] >= verdict["points"] + 2

    def test_default_is_off(self):
        params = inspect.signature(parallel.run_experiments).parameters
        assert params["telemetry"].default is None

    def test_scheduler_holds_no_emitter_by_default(self):
        cfg = ExperimentConfig(topology="mesh", kx=2, ky=2,
                               concentration=1, routing="xy",
                               pattern="uniform", rate=0.05,
                               synth_cycles=50, synth_warmup=10, seed=1)
        scheduler = parallel._Scheduler(
            [cfg], check=False, store=None, journal=None, resume=False,
            max_attempts=1, backoff_base=0.5, backoff_cap=30.0,
            timeout=None, sleep=lambda s: None)
        assert scheduler.tel is None

    def test_gate_error_is_the_shared_gate_type(self):
        # The bench gate treats telemetry violations exactly like probe
        # overhead violations: same exception family, same hard failure.
        from repro.instrument.overhead import \
            OverheadGateError as probe_gate_error
        assert OverheadGateError is probe_gate_error
        assert issubclass(OverheadGateError, AssertionError)
