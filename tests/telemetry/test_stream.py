"""Stream discipline: checksummed lines, torn tails, concurrent follow.

The telemetry stream inherits the checkpoint journal's trust model —
every line carries a schema tag and a SHA-256 over its body, readers
skip anything that fails either — and adds the tail-follow contract:
a reader polling a file another process is appending to must only ever
consume newline-terminated, checksum-valid lines, no matter where the
writer currently is.
"""

import json
import threading

from repro.telemetry import (TailReader, Telemetry, TelemetryWriter,
                             parse_telemetry_line, read_stream)
from repro.telemetry.stream import SCHEMA


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetryWriter(path) as writer:
            writer.write({"ev": "point", "idx": 3, "dur_s": 0.25})
            writer.write({"ev": "sweep_end", "status": "ok"})
        records = read_stream(path)
        assert [r["ev"] for r in records] == ["point", "sweep_end"]
        assert records[0]["idx"] == 3
        # The envelope (schema, sha256) is stripped on read.
        assert "sha256" not in records[0]

    def test_lines_carry_schema_and_checksum(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetryWriter(path) as writer:
            writer.write({"ev": "point"})
        raw = json.loads(open(path, encoding="utf-8").read())
        assert raw["schema"] == SCHEMA
        assert len(raw["sha256"]) == 64

    def test_corrupted_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetryWriter(path) as writer:
            writer.write({"ev": "a"})
            writer.write({"ev": "b"})
        lines = open(path, encoding="utf-8").read().splitlines()
        lines[0] = lines[0].replace('"ev": "a"', '"ev": "tampered"')
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        assert [r["ev"] for r in read_stream(path)] == ["b"]

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetryWriter(path) as writer:
            writer.write({"ev": "a"})
            writer.write({"ev": "b"})
        text = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text[:-20])  # tear the last line mid-JSON
        assert [r["ev"] for r in read_stream(path)] == ["a"]

    def test_wrong_schema_and_garbage_skipped(self):
        assert parse_telemetry_line("not json at all") is None
        assert parse_telemetry_line('{"schema": "other/1"}') is None
        assert parse_telemetry_line("") is None


class TestTailReader:
    def test_incremental_poll(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        reader = TailReader(path)
        assert reader.poll() == []  # file does not exist yet
        writer = TelemetryWriter(path)
        writer.write({"ev": "a"})
        assert [r["ev"] for r in reader.poll()] == ["a"]
        assert reader.poll() == []  # nothing new
        writer.write({"ev": "b"})
        writer.write({"ev": "c"})
        assert [r["ev"] for r in reader.poll()] == ["b", "c"]
        writer.close()

    def test_partial_line_held_until_newline(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = TelemetryWriter(path)
        writer.write({"ev": "a"})
        writer.close()
        full = open(path, encoding="utf-8").read()
        # Rewrite: one whole line plus the first half of another.
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(full + full[:25])
        reader = TailReader(path)
        assert [r["ev"] for r in reader.poll()] == ["a"]
        # Writer finishes the torn line: the reader stitches it whole.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(full[25:])
        assert [r["ev"] for r in reader.poll()] == ["a"]

    def test_truncated_file_resets_reader(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = TelemetryWriter(path)
        writer.write({"ev": "a"})
        writer.write({"ev": "b"})
        writer.close()
        reader = TailReader(path)
        assert len(reader.poll()) == 2
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("")  # a fresh, shorter file: start over
        writer = TelemetryWriter(path)
        writer.write({"ev": "fresh"})
        writer.close()
        assert [r["ev"] for r in reader.poll()] == ["fresh"]

    def test_concurrent_writer_never_misparses(self, tmp_path):
        """A reader polling while a thread appends sees every record
        exactly once, in order, with no torn or invented lines."""
        path = str(tmp_path / "t.jsonl")
        total = 200
        done = threading.Event()

        def write_all():
            writer = TelemetryWriter(path)
            for i in range(total):
                writer.write({"ev": "point", "idx": i})
            writer.close()
            done.set()

        thread = threading.Thread(target=write_all)
        reader = TailReader(path)
        seen = []
        thread.start()
        while not done.is_set():
            seen.extend(reader.poll())
        thread.join()
        seen.extend(reader.poll())
        assert [r["idx"] for r in seen] == list(range(total))


class TestTelemetryEmitter:
    def test_records_are_stamped(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Telemetry(path) as tel:
            tel.emit("sweep_begin", points=2)
        (record,) = read_stream(path)
        assert record["ev"] == "sweep_begin"
        assert record["points"] == 2
        assert isinstance(record["pid"], int)
        assert isinstance(record["t"], float)
        assert record["sweep"]  # non-empty sweep id

    def test_sweep_ids_are_unique(self, tmp_path):
        ids = {Telemetry(str(tmp_path / f"{i}.jsonl")).sweep
               for i in range(16)}
        assert len(ids) == 16

    def test_truncate_starts_over(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tel = Telemetry(path)
        tel.emit("sweep_begin")
        tel.close()
        tel2 = Telemetry(path)
        tel2.truncate()
        tel2.emit("sweep_begin")
        tel2.close()
        assert len(read_stream(path)) == 1
