"""``repro top``: the live follower and its trace/report exports.

Covers the follower against finished streams (``--once`` post-mortem),
streams still being appended (a writer interleaved with the polling
loop), bare checkpoint journals, and the Perfetto export's
trace_event structure.
"""

import json

import pytest

from repro.harness.experiment import (ExperimentConfig, clear_cache,
                                      set_default_store)
from repro.harness.parallel import run_experiments
from repro.store.journal import SweepJournal
from repro.telemetry import (SweepProgress, Telemetry, read_stream,
                             run_top, telemetry_chrome_trace)
from repro.telemetry.top import parse_journal_line, sniff_stream_kind


def _point(seed, **overrides):
    base = dict(topology="mesh", kx=2, ky=2, concentration=1, routing="xy",
                pattern="uniform", rate=0.05, synth_cycles=120,
                synth_warmup=20, seed=seed)
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    set_default_store(None)
    yield
    clear_cache()
    set_default_store(None)


def _sweep(tmp_path, **kwargs):
    tel = str(tmp_path / "t.jsonl")
    run_experiments([_point(s) for s in (1, 2, 3)], max_workers=1,
                    telemetry=tel, **kwargs)
    return tel


class TestSniff:
    def test_kinds(self, tmp_path):
        tel = _sweep(tmp_path)
        assert sniff_stream_kind(tel) == "telemetry"
        journal = str(tmp_path / "j.jsonl")
        SweepJournal(journal).append("k" * 64, {"x": 1})
        assert sniff_stream_kind(journal) == "journal"
        assert sniff_stream_kind(str(tmp_path / "absent")) is None
        empty = str(tmp_path / "empty")
        open(empty, "w").close()
        assert sniff_stream_kind(empty) is None

    def test_journal_lines_parse_to_progress_records(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        SweepJournal(journal).append("k" * 64, {"x": 1})
        line = open(journal, encoding="utf-8").readline()
        assert parse_journal_line(line) == {"ev": "journal_point",
                                            "key": "k" * 64}
        assert parse_journal_line("garbage") is None


class TestSweepProgress:
    def test_render_finished_sweep(self, tmp_path):
        progress = SweepProgress()
        for record in read_stream(_sweep(tmp_path)):
            progress.feed(record)
        assert progress.finished
        assert progress.completed == 3
        text = progress.render()
        assert "[ok] 3/3 points (100%)" in text
        assert "simulate 3" in text
        assert "retries 0" in text

    def test_render_in_flight_has_eta(self, tmp_path):
        records = read_stream(_sweep(tmp_path))
        progress = SweepProgress()
        # Drop sweep_end plus the final point's span and persist record.
        for record in records[:-3]:
            progress.feed(record)
        assert not progress.finished
        text = progress.render(now=progress.last_t + 1.0)
        assert "[running]" in text
        assert "ETA" in text

    def test_degrade_and_failures_surface(self, tmp_path):
        tel = str(tmp_path / "t.jsonl")
        with Telemetry(tel) as emitter:
            emitter.emit("sweep_begin", points=2, workers=2)
            emitter.emit("degrade", reason="stall-timeout", points=2)
            emitter.emit("point_error", idx=0, label="p0", reason="boom",
                         attempts=3)
            emitter.emit("sweep_end", status="error", error="boom")
        progress = SweepProgress()
        for record in read_stream(tel):
            progress.feed(record)
        text = progress.render()
        assert "DEGRADED: stall-timeout" in text
        assert "FAILED point 0" in text
        assert "SWEEP FAILED: boom" in text

    def test_new_sweep_begin_resets(self, tmp_path):
        tel = _sweep(tmp_path)
        clear_cache()
        run_experiments([_point(9)], max_workers=1, telemetry=tel,
                        resume=True)
        progress = SweepProgress()
        for record in read_stream(tel):
            progress.feed(record)
        assert progress.completed == 1


class TestRunTop:
    def test_once_snapshot(self, tmp_path):
        tel = _sweep(tmp_path)
        lines = []
        assert run_top(tel, once=True, out=lines.append) == 0
        assert "[ok] 3/3 points" in "\n".join(lines)

    def test_exports(self, tmp_path):
        tel = _sweep(tmp_path)
        trace = str(tmp_path / "trace.json")
        report = str(tmp_path / "report.json")
        lines = []
        run_top(tel, once=True, trace_out=trace, report_out=report,
                out=lines.append)
        doc = json.load(open(trace, encoding="utf-8"))
        assert doc["traceEvents"]
        rep = json.load(open(report, encoding="utf-8"))
        assert rep["schema"] == "repro.sweep-report/1"
        assert rep["completed"] == 3

    def test_follow_live_writer(self, tmp_path):
        """The follower tracks a stream another 'process' is appending:
        each injected sleep writes the next event, and the loop exits on
        the terminal record without needing --once or max_polls."""
        source = read_stream(_sweep(tmp_path))
        live = str(tmp_path / "live.jsonl")
        emitter = Telemetry(live)
        pending = list(source)

        def advance(_interval):
            if pending:
                record = pending.pop(0)
                record.pop("t"), record.pop("pid"), record.pop("sweep")
                emitter.emit(record.pop("ev"), **record)

        # Seed the stream so the kind sniffs as telemetry.
        advance(0)
        lines = []
        code = run_top(live, interval=0.01, out=lines.append,
                       sleep=advance, max_polls=100)
        emitter.close()
        assert code == 0
        assert not pending, "follower exited before the stream finished"
        assert "[ok] 3/3 points" in lines[-1]

    def test_journal_mode(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        run_experiments([_point(s) for s in (1, 2)], max_workers=1,
                        journal=journal)
        lines = []
        assert run_top(journal, once=True, out=lines.append) == 0
        assert "2 points checkpointed" in "\n".join(lines)
        # Exports need span data a journal does not carry.
        lines = []
        run_top(journal, once=True, trace_out=str(tmp_path / "x.json"),
                out=lines.append)
        assert any("need a telemetry stream" in line for line in lines)

    def test_empty_stream_notes_and_exits(self, tmp_path):
        path = str(tmp_path / "nothing.jsonl")
        open(path, "w").close()
        lines = []
        assert run_top(path, once=True, out=lines.append) == 0
        assert any("no valid records" in line for line in lines)


class TestChromeTrace:
    def test_trace_structure(self, tmp_path):
        tel = _sweep(tmp_path)
        doc = telemetry_chrome_trace(read_stream(tel))
        events = doc["traceEvents"]
        names = {e.get("name") for e in events}
        assert "sweep" in names
        assert any(n and n.startswith("point:") for n in names)
        slices = [e for e in events if e.get("ph") == "X"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in slices)
        meta = [e for e in events if e.get("ph") == "M"]
        assert any("scheduler" in e["args"]["name"] for e in meta)

    def test_batched_lanes_become_threads(self, tmp_path):
        pytest.importorskip("numpy")
        tel = str(tmp_path / "t.jsonl")
        points = [_point(s, backend="batched") for s in range(1, 5)]
        run_experiments(points, max_workers=1, batch_size=4, telemetry=tel)
        doc = telemetry_chrome_trace(read_stream(tel))
        point_tids = {e["tid"] for e in doc["traceEvents"]
                      if e.get("name", "").startswith("point:")}
        assert point_tids == {1, 2, 3, 4}  # one thread track per lane
