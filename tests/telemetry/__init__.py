"""Harness-telemetry tests: stream, spans, report, follower, crashes."""
