"""Sweep-report aggregation and its ``repro compare`` integration.

``build_sweep_report`` folds a raw telemetry stream into the
``repro.sweep-report/1`` summary; these tests pin the aggregation
semantics (tier mixes, cross-process store totals, batch occupancy,
scheduler accounting) and prove the report diffs through the existing
regression machinery with sensible directions.
"""

import json

import pytest

from repro.harness.experiment import (ExperimentConfig, clear_cache,
                                      set_default_store)
from repro.harness.parallel import run_experiments
from repro.monitor.regression import compare_docs
from repro.store import ResultStore
from repro.telemetry import (SWEEP_REPORT_SCHEMA, build_sweep_report,
                             read_stream, report_path, write_sweep_report)


def _point(seed, **overrides):
    base = dict(topology="mesh", kx=2, ky=2, concentration=1, routing="xy",
                pattern="uniform", rate=0.05, synth_cycles=120,
                synth_warmup=20, seed=seed)
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    set_default_store(None)
    yield
    clear_cache()
    set_default_store(None)


def _regressed(verdict):
    return [row["metric"] for row in verdict["rows"]
            if row["status"] == "regressed"]


def _sweep(tmp_path, name="t.jsonl", seeds=(1, 2, 3), workers=1, **kwargs):
    tel = str(tmp_path / name)
    run_experiments([_point(s) for s in seeds], max_workers=workers,
                    telemetry=tel, **kwargs)
    return tel


class TestAggregation:
    def test_clean_sweep_report(self, tmp_path):
        tel = _sweep(tmp_path)
        report = build_sweep_report(read_stream(tel))
        assert report["schema"] == SWEEP_REPORT_SCHEMA
        assert report["status"] == "ok"
        assert report["points"] == 3
        assert report["completed"] == 3
        assert report["failed"] == 0
        assert report["tiers"] == {"simulate": 3}
        assert report["points_per_s"] > 0
        assert report["scheduler"]["degraded"] == []

    def test_sidecar_written_at_sweep_end(self, tmp_path):
        tel = _sweep(tmp_path)
        sidecar = report_path(tel)
        doc = json.load(open(sidecar, encoding="utf-8"))
        assert doc == build_sweep_report(read_stream(tel))
        # Explicit re-derivation writes the identical document.
        out = write_sweep_report(tel, str(tmp_path / "again.json"))
        assert json.load(open(out, encoding="utf-8")) == doc

    def test_store_stats_aggregate_across_processes(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        set_default_store(store)
        tel = _sweep(tmp_path, seeds=tuple(range(1, 7)), workers=2,
                     chunk_size=1)
        report = build_sweep_report(read_stream(tel))
        assert report["store"]["puts"] == 6
        assert report["store"]["processes"] >= 2
        assert report["store_hit_rate"] == 0.0
        # Warm re-run: everything hits, across however many processes.
        clear_cache()
        tel2 = _sweep(tmp_path, name="warm.jsonl",
                      seeds=tuple(range(1, 7)), workers=1)
        warm = build_sweep_report(read_stream(tel2))
        assert warm["store"]["hits"] == 6
        assert warm["store_hit_rate"] == 1.0
        assert warm["tiers"] == {"store": 6}

    def test_batch_occupancy(self, tmp_path):
        pytest.importorskip("numpy")
        tel = str(tmp_path / "t.jsonl")
        points = [_point(s, backend="batched") for s in range(1, 6)]
        run_experiments(points, max_workers=1, batch_size=4, telemetry=tel)
        report = build_sweep_report(read_stream(tel))
        batch = report["batch"]
        # 5 points into size-4 units: one full 4-lane unit plus one solo
        # point (singleton units run unbatched, resolving to vectorized).
        assert batch["lanes"] == 4
        assert batch["multi_lane_units"] == 1
        assert batch["occupancy"] == pytest.approx(1.0)
        assert report["backends"] == {"batched": 4, "vectorized": 1}

    def test_in_flight_stream_reports_partial(self, tmp_path):
        tel = _sweep(tmp_path)
        records = read_stream(tel)
        # Drop the terminal record: the stream of a killed sweep.
        report = build_sweep_report(
            [r for r in records if r["ev"] != "sweep_end"])
        assert report["status"] == "in-flight"
        assert report["completed"] == 3

    def test_latest_sweep_wins_in_appended_stream(self, tmp_path):
        tel = _sweep(tmp_path)
        # Append a second sweep to the same file (resume-style reuse).
        clear_cache()
        run_experiments([_point(s) for s in (8, 9)], max_workers=1,
                        telemetry=tel, resume=True)
        report = build_sweep_report(read_stream(tel))
        assert report["points"] == 2


class TestCompareIntegration:
    def test_identical_cold_reports_do_not_regress(self, tmp_path):
        a = build_sweep_report(read_stream(_sweep(tmp_path, "a.jsonl")))
        clear_cache()
        b = build_sweep_report(read_stream(_sweep(tmp_path, "b.jsonl")))
        verdict = compare_docs(a, b, {"*_s": 100.0, "*points_per_s": 100.0,
                                      "*utilization": 1.0,
                                      "*overhead_fraction": 1.0})
        assert _regressed(verdict) == []

    def test_hit_rate_drop_regresses(self, tmp_path):
        a = build_sweep_report(read_stream(_sweep(tmp_path, "a.jsonl")))
        clear_cache()
        b = build_sweep_report(read_stream(_sweep(tmp_path, "b.jsonl")))
        a["store_hit_rate"], b["store_hit_rate"] = 1.0, 0.5
        verdict = compare_docs(a, b, {"*_s": 100.0, "*points_per_s": 100.0,
                                      "*utilization": 1.0,
                                      "*overhead_fraction": 1.0})
        assert "store_hit_rate" in _regressed(verdict)

    def test_throughput_direction_is_higher(self, tmp_path):
        a = build_sweep_report(read_stream(_sweep(tmp_path, "a.jsonl")))
        clear_cache()
        b = build_sweep_report(read_stream(_sweep(tmp_path, "b.jsonl")))
        a["points_per_s"], b["points_per_s"] = 100.0, 10.0
        # Overrides match first-in-order, so the throughput rule must be
        # listed before the catch-all *_s wall rule it would fall into.
        loose = {"*points_per_s": 0.10, "*_s": 100.0, "*utilization": 1.0,
                 "*overhead_fraction": 1.0}
        assert "points_per_s" in _regressed(compare_docs(a, b, loose))
        # And the reverse is an improvement, not a regression.
        assert "points_per_s" not in _regressed(compare_docs(b, a, loose))
